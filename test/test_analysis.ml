(* The static analyzer: every diagnostic code, spans, witnesses, fixes. *)

open Relational
open Helpers
module Pt = Wdpt.Pattern_tree
module D = Analysis.Diagnostic
module Lint = Analysis.Lint

let codes ds = List.map (fun d -> D.code_id d.D.code) ds
let has code ds = List.mem code (codes ds)
let find code ds = List.find (fun d -> D.code_id d.D.code = code) ds

let test_parse_error () =
  (* S001 from both front ends, with a position *)
  let ds = Lint.lint_relational "free (x) { R(?x" in
  check_bool "S001" true (has "S001" ds);
  let d = find "S001" ds in
  check_bool "error severity" true (d.D.severity = D.Error);
  check_bool "has span" true (d.D.span <> None);
  check_int "exit 2" 2 (D.exit_code ds);
  let ds = Lint.lint_sparql "SELECT ?x WHERE { ?x p }" in
  check_bool "sparql S001" true (has "S001" ds);
  (* satellite: Syntax.parse errors carry line and column *)
  (match Wdpt.Syntax.parse "free (x)\n  { R(?x }" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e ->
      check_bool "names line 2" true
        (String.length e >= 6 && String.sub e 0 6 = "line 2"));
  match Wdpt.Syntax.parse_database "E(1, 2)\nE(3 4)" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e ->
      check_bool "db error names line 2" true
        (String.length e >= 6 && String.sub e 0 6 = "line 2")

let disconnected_spec =
  (* ?y lives in the two sibling branches but not in the root *)
  Pt.Node
    ( [ atom "R" [ v "x" ] ],
      [ Node ([ atom "S" [ v "x"; v "y" ] ], []);
        Node ([ atom "T" [ v "y" ] ], []) ] )

let test_not_well_designed () =
  let ds = Lint.analyze_spec ~free:[ "x" ] disconnected_spec in
  let d = find "W001" ds in
  check_bool "error severity" true (d.D.severity = D.Error);
  (match d.D.witness with
  | Some (D.Disconnected { variable; top; stray; broken_at }) ->
      check_bool "names ?y" true (variable = "y");
      check_int "top node" 1 top;
      check_int "stray node" 2 stray;
      check_int "broken at the root" 0 broken_at;
      (* the witness is machine-checkable: both nodes mention the variable,
         the breaking node does not *)
      let mentions i =
        let node_atoms, _parents =
          ( [| [ atom "R" [ v "x" ] ];
               [ atom "S" [ v "x"; v "y" ] ];
               [ atom "T" [ v "y" ] ] |],
            [| -1; 0; 0 |] )
        in
        List.exists (fun a -> String_set.mem variable (Atom.var_set a)) node_atoms.(i)
      in
      check_bool "top mentions" true (mentions top);
      check_bool "stray mentions" true (mentions stray);
      check_bool "broken_at does not" false (mentions broken_at)
  | _ -> Alcotest.fail "expected a Disconnected witness");
  check_int "exit 2" 2 (D.exit_code ds);
  (* the message names the variable and both nodes, per the CLI contract *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "message names ?y" true (contains d.D.message "?y");
  check_bool "message names node 1" true (contains d.D.message "1");
  check_bool "message names node 2" true (contains d.D.message "2")

let test_unsafe_free () =
  let spec = Pt.Node ([ e "x" "y" ], []) in
  let ds = Lint.analyze_spec ~free:[ "x"; "z" ] spec in
  let d = find "W002" ds in
  check_bool "missing witness" true (d.D.witness = Some (D.Missing_free "z"));
  check_bool "suggests removal" true (d.D.fix = Some (D.Remove_free "z"));
  let ds = Lint.analyze_spec ~free:[ "x"; "x" ] spec in
  check_bool "duplicate" true
    ((find "W002" ds).D.witness = Some (D.Duplicate_free "x"))

let test_unsatisfiable () =
  let spec =
    Pt.Node
      ( [ atom "R" [ v "x" ] ],
        [ Node ([ atom "R" [ v "x"; v "y" ] ], []) ] )
  in
  let ds = Lint.analyze_spec ~free:[ "x" ] spec in
  match (find "W003" ds).D.witness with
  | Some (D.Arity_clash { relation; node_a; arity_a; node_b; arity_b }) ->
      check_bool "relation R" true (relation = "R");
      check_int "first node" 0 node_a;
      check_int "first arity" 1 arity_a;
      check_int "second node" 1 node_b;
      check_int "second arity" 2 arity_b
  | _ -> Alcotest.fail "expected an Arity_clash witness"

let test_redundant_atom () =
  (* duplicated within the node, and inherited from an ancestor *)
  let p =
    Pt.make ~free:[ "x" ]
      (Node ([ e "x" "y"; e "x" "y" ], [ Node ([ e "x" "y"; e "y" "z" ], []) ]))
  in
  let ds = Lint.analyze_tree p in
  let red = List.filter (fun d -> D.code_id d.D.code = "W004") ds in
  check_bool "two redundant atoms" true (List.length red >= 2);
  List.iter
    (fun d ->
      match Lint.apply_fix p d with
      | Some p' -> check_int "one atom fewer" (Pt.size p - 1) (Pt.size p')
      | None -> Alcotest.fail "fix should apply")
    red

let test_cartesian () =
  let ds =
    Lint.analyze_spec ~free:[ "x" ]
      (Pt.Node ([ e "x" "y"; atom "U" [ v "z" ] ], []))
  in
  (match (find "W005" ds).D.witness with
  | Some (D.Cartesian { node = 0; components = [ a; b ] }) ->
      check_bool "components {x,y} and {z}" true
        (List.sort compare [ a; b ] = [ [ "x"; "y" ]; [ "z" ] ])
  | _ -> Alcotest.fail "expected a Cartesian witness");
  (* atoms linked through a parent-bound variable only are still independent,
     but a genuinely shared new variable joins them *)
  let joined =
    Lint.analyze_spec ~free:[ "x" ]
      (Pt.Node ([ e "x" "y"; e "y" "z" ], []))
  in
  check_bool "chain is not cartesian" false (has "W005" joined)

let test_dead_branch () =
  let p =
    Pt.make ~free:[ "x" ]
      (Node ([ e "x" "y" ], [ Node ([ e "y" "x" ], []) ]))
  in
  let ds = Lint.analyze_tree p in
  let d = find "W006" ds in
  check_bool "witness" true (d.D.witness = Some (D.Dead { node = 1 }));
  match Lint.apply_fix p d with
  | Some p' -> check_int "branch gone" 1 (Pt.node_count p')
  | None -> Alcotest.fail "fix should apply"

let test_class_membership () =
  (* the Figure 1 query is in WB(1), and the hint must say so *)
  let p = Workload.Datasets.figure1_wdpt ~free:[ "y"; "z" ] in
  let ds = Lint.analyze_tree p in
  (match (find "W007" ds).D.witness with
  | Some (D.Membership { local_tw; interface; wb_tw }) ->
      check_int "least WB k" 1 wb_tw;
      check_int "least local k" 1 local_tw;
      check_bool "interface" true (interface >= 1)
  | _ -> Alcotest.fail "expected a Membership witness");
  check_int "figure 1 is clean" 0 (D.exit_code ds);
  (* a triangle needs width 2 *)
  let tri = Pt.of_cq (Workload.Gen_cq.cycle 3) in
  match (find "W007" (Lint.analyze_tree tri)).D.witness with
  | Some (D.Membership { wb_tw; _ }) -> check_int "triangle WB k" 2 wb_tw
  | _ -> Alcotest.fail "expected a Membership witness"

let test_spans () =
  (*      1         2         3
    123456789012345678901234567890123456789 *)
  let src = "free (x) { R(?x) } [ { S(?x, ?y) }; { T(?y) } ]" in
  let ds = Lint.lint_relational src in
  let d = find "W001" ds in
  match d.D.span with
  | Some { start; stop } ->
      (* the span covers the stray node's block "{ T(?y) }" *)
      check_int "start line" 1 start.Wdpt.Loc.line;
      check_bool "covers the stray node" true
        (start.Wdpt.Loc.col >= 37 && stop.Wdpt.Loc.col <= 48)
  | None -> Alcotest.fail "expected a span"

let test_sparql_surface () =
  let ds =
    Lint.lint_sparql "SELECT * WHERE { { ?x p ?y OPT { ?x q ?z } } . ?z r ?w }"
  in
  let d = find "W001" ds in
  match d.D.witness with
  | Some (D.Escaping { variable; subpattern }) ->
      check_bool "names ?z" true (variable = "z");
      check_bool "prints the OPT subpattern" true
        (String.length subpattern > 0)
  | _ -> Alcotest.fail "expected an Escaping witness"

let test_json () =
  let ds = Lint.analyze_spec ~free:[ "x" ] disconnected_spec in
  let s = Analysis.Json.to_string (D.report_json ds) in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "names the code" true (contains "\"W001\"");
  check_bool "names the variable" true (contains "\"variable\": \"y\"");
  check_bool "names the nodes" true (contains "\"nodes\": [1,2]");
  check_bool "carries the exit code" true (contains "\"exit-code\": 2");
  (* escaping *)
  let escaped = Analysis.Json.(to_string (Str "a\"b\\c\nd")) in
  check_bool "escapes" true (escaped = "\"a\\\"b\\\\c\\nd\"")

let test_optimizer_consumes_fixes () =
  (* the optimizer applies exactly the analyzer's rewrite fixes *)
  let p =
    Pt.make ~free:[ "x" ]
      (Node ([ e "x" "y"; e "x" "y" ], [ Node ([ e "y" "x" ], []) ]))
  in
  let pl = Wdpt.Optimizer.plan ~k:1 p in
  check_bool "plan simplified" true (pl.Wdpt.Optimizer.rewrites <> []);
  let fixed =
    List.fold_left
      (fun q d -> match Lint.apply_fix q d with Some q' -> q' | None -> q)
      p
      (List.filter
         (fun d -> match d.D.fix with Some (D.Apply_rewrite _) -> true | _ -> false)
         (Lint.analyze_tree p))
  in
  check_bool "fixes reach the plan's query" true
    (Pt.size fixed <= Pt.size p && Pt.node_count fixed <= Pt.node_count p)

(* generated trees are well-designed by construction: the analyzer must not
   report any error-severity diagnostic on them *)
let prop_wd_trees_clean =
  qtest ~count:100 "well-designed trees trigger no error" arbitrary_wdpt
    (fun p ->
      List.for_all (fun d -> d.D.severity <> D.Error) (Lint.analyze_tree p))

(* suggested rewrite fixes preserve the evaluation on random databases *)
let prop_fixes_preserve_eval =
  qtest ~count:60 "applying suggested fixes preserves evaluation"
    (QCheck.pair arbitrary_small_wdpt arbitrary_db) (fun (p, db) ->
      let reference = Wdpt.Semantics.eval db p in
      List.for_all
        (fun d ->
          match d.D.fix with
          | Some (D.Apply_rewrite _) -> (
              match Lint.apply_fix p d with
              | Some p' -> Mapping.Set.equal reference (Wdpt.Semantics.eval db p')
              | None -> false)
          | _ -> true)
        (Lint.analyze_tree p))

let suite =
  [ Alcotest.test_case "S001 parse errors carry positions" `Quick test_parse_error;
    Alcotest.test_case "W001 connectedness witness" `Quick test_not_well_designed;
    Alcotest.test_case "W002 unsafe free variables" `Quick test_unsafe_free;
    Alcotest.test_case "W003 arity clash" `Quick test_unsatisfiable;
    Alcotest.test_case "W004 redundant atoms" `Quick test_redundant_atom;
    Alcotest.test_case "W005 cartesian products" `Quick test_cartesian;
    Alcotest.test_case "W006 dead branches" `Quick test_dead_branch;
    Alcotest.test_case "W007 class membership (Figure 1)" `Quick
      test_class_membership;
    Alcotest.test_case "diagnostics point at source spans" `Quick test_spans;
    Alcotest.test_case "SPARQL-level witness" `Quick test_sparql_surface;
    Alcotest.test_case "JSON report" `Quick test_json;
    Alcotest.test_case "optimizer consumes the fixes" `Quick
      test_optimizer_consumes_fixes;
    prop_wd_trees_clean;
    prop_fixes_preserve_eval ]
