(* The batch-pipeline auditor (Analysis.Batch_audit, E017-E021) and the
   certified resource envelopes (Analysis.Resource): genuine batched layouts
   audit clean at every pool size and morsel geometry, each corruption of
   the batch_view draws exactly its E-code with the exact machine-checkable
   witness, measured batch_stats high-water marks stay within the certified
   envelope (and a shrunk envelope draws E021 per component), admission
   verdicts, the schema-stable batch JSON under WDPT_ENGINE_BATCH=0, and
   paging across ragged-tail morsel-group boundaries. *)

open Relational
open Helpers
module P = Engine.Parallel
module I = Engine.Inspect
module D = Analysis.Diagnostic
module R = Analysis.Resource

(* every test restores the ambient engine configuration, whatever happens
   (the suite may itself run under WDPT_ENGINE_BATCH / _DOMAINS / _MORSEL /
   _CHECKED) *)
let with_engine ?batched ?checked ?domains ?min_rows ?morsel f =
  let b0 = Engine.batched_enabled () and c0 = Engine.checked_enabled () in
  let d0 = P.domains () and m0 = P.min_rows () and g0 = P.morsel_rows () in
  Option.iter Engine.set_batched batched;
  Option.iter Engine.set_checked checked;
  Option.iter P.set_domains domains;
  Option.iter P.set_min_rows min_rows;
  Option.iter P.set_morsel_rows morsel;
  Fun.protect
    ~finally:(fun () ->
      Engine.set_batched b0;
      Engine.set_checked c0;
      P.set_domains d0;
      P.set_min_rows m0;
      P.set_morsel_rows g0)
    f

let chain_db n = db_of_edges (List.init n (fun i -> (i, i + 1)) @ [ (0, 0) ])
let chain_atoms = [ e "x" "y"; e "y" "z" ]

let compile_plan () =
  Engine.compile (chain_db 40) chain_atoms ~init:Mapping.empty

let views () =
  let plan = compile_plan () in
  (plan, I.plan plan, I.batch plan)

let slot_of v name =
  let found = ref (-1) in
  Array.iteri (fun i x -> if x = name then found := i) v.I.i_slots;
  if !found < 0 then Alcotest.failf "no slot for %s" name;
  !found

let with_stage b i f =
  let ss = Array.copy b.I.b_stages in
  ss.(i) <- f ss.(i);
  { b with I.b_stages = ss }

let audit1 name v b =
  match Analysis.Batch_audit.audit_view v b with
  | [ d ] -> d
  | ds -> Alcotest.failf "%s: expected 1 finding, got %d" name (List.length ds)

(* ---- genuine layouts audit clean ---------------------------------------- *)

let test_genuine_clean () =
  let plan = compile_plan () in
  List.iter
    (fun nd ->
      List.iter
        (fun morsel ->
          with_engine ~batched:true ~domains:nd ~min_rows:1 ~morsel (fun () ->
              check_bool
                (Printf.sprintf "clean at pool %d morsel %d" nd morsel)
                true
                (Analysis.Batch_audit.audit plan = [])))
        [ 1; 7; 1024 ])
    [ 1; 2; 4 ];
  (* the would-be layout of a disabled pipeline is the same stage sequence,
     and it still audits clean *)
  with_engine ~batched:false (fun () ->
      let b = I.batch plan in
      check_bool "disabled view keeps its geometry" true
        (Array.length b.I.b_stages = 2);
      check_bool "clean with batch off" true
        (Analysis.Batch_audit.audit plan = []))

(* ---- corruption tests: exactly the right code + witness ----------------- *)

let test_e017 () =
  let _, v, b = views () in
  let s1 = b.I.b_stages.(1) in
  let late_slot = snd s1.I.bv_binds.(0) in
  (* stage 0 probes a column only stage 1 writes *)
  (match
     audit1 "late"
       v
       (with_stage b 0 (fun st -> { st with I.bv_cols = [| (0, late_slot) |] }))
   with
  | { D.code = D.Stage_read_before_bind;
      witness =
        Some (D.Read_before_bind { stage = 0; atom; pos = 0; slot; binder = 1 });
      _
    } ->
      check_int "late atom" b.I.b_stages.(0).I.bv_atom atom;
      check_int "late slot" late_slot slot
  | _ -> Alcotest.fail "E017 late: wrong code or witness");
  (* a probe against a slot no stage ever binds *)
  let ghost = Array.length v.I.i_slots in
  match
    audit1 "unbound"
      v
      (with_stage b 0 (fun st -> { st with I.bv_cols = [| (1, ghost) |] }))
  with
  | { D.code = D.Stage_read_before_bind;
      witness =
        Some (D.Read_before_bind { stage = 0; pos = 1; slot; binder = -1; _ });
      _
    } ->
      check_int "unbound slot" ghost slot
  | _ -> Alcotest.fail "E017 unbound: wrong code or witness"

let test_e018 () =
  let _, v, b = views () in
  let xslot = snd b.I.b_stages.(0).I.bv_binds.(0) in
  (* stage 1 rebinds a column stage 0 already wrote *)
  (match
     audit1 "rebind"
       v
       (with_stage b 1 (fun st ->
            { st with I.bv_binds = Array.append st.I.bv_binds [| (0, xslot) |] }))
   with
  | { D.code = D.Column_aliasing;
      witness =
        Some
          (D.Aliased { slot; first_stage = 0; second_stage = 1; init = false });
      _
    } ->
      check_int "rebind slot" xslot slot
  | _ -> Alcotest.fail "E018 rebind: wrong code or witness");
  (* stage 0 binds a slot the initial environment pinned: the compiler
     folds init slots into constant checks, so a genuine layout never
     writes one *)
  let env = Array.copy v.I.i_env in
  env.(xslot) <- 0;
  match audit1 "init" { v with I.i_env = env } b with
  | { D.code = D.Column_aliasing;
      witness =
        Some
          (D.Aliased { slot; first_stage = -1; second_stage = 0; init = true });
      _
    } ->
      check_int "init slot" xslot slot
  | _ -> Alcotest.fail "E018 init: wrong code or witness"

let test_e019 () =
  let _, v, b = views () in
  let s1 = b.I.b_stages.(1) in
  let col_pos = fst s1.I.bv_cols.(0) in
  (* drop stage 1's probe column: its position loses its only role *)
  match
    audit1 "uncovered" v (with_stage b 1 (fun st -> { st with I.bv_cols = [||] }))
  with
  | { D.code = D.Position_cover;
      witness =
        Some (D.Cover { stage = 1; atom; arity = 2; covered = 1; missing });
      _
    } ->
      check_int "uncovered atom" s1.I.bv_atom atom;
      check_int "uncovered position" col_pos missing
  | _ -> Alcotest.fail "E019: wrong code or witness"

let test_e020 () =
  let _, v, b = views () in
  let s1 = b.I.b_stages.(1) in
  let bind_pos = fst s1.I.bv_binds.(0) in
  let col_pos = fst s1.I.bv_cols.(0) in
  (* a stage that binds, flagged mask-only: the filter path skips writes *)
  (match
     audit1 "filter-binds"
       v
       (with_stage b 1 (fun st -> { st with I.bv_filter = true }))
   with
  | { D.code = D.Filter_binds;
      witness =
        Some (D.Filter_bind { stage = 1; atom; binds = 1; streamed = false });
      _
    } ->
      check_int "filter-binds atom" s1.I.bv_atom atom
  | _ -> Alcotest.fail "E020 filter-binds: wrong code or witness");
  (* the final stage claims new columns but binds none — its streamed
     output would be read back as a materialized column (the duplicate
     role keeps the position cover intact, isolating the E020) *)
  match
    audit1 "streamed"
      v
      (with_stage b 1 (fun st ->
           { st with I.bv_binds = [||]; bv_dups = [| (bind_pos, col_pos) |] }))
  with
  | { D.code = D.Filter_binds;
      witness = Some (D.Filter_bind { stage = 1; binds = 0; streamed = true; _ });
      _
    } ->
      ()
  | _ -> Alcotest.fail "E020 streamed: wrong code or witness"

let test_e021 () =
  with_engine ~batched:true ~checked:true ~domains:1 ~min_rows:1 ~morsel:7
    (fun () ->
      let plan = compile_plan () in
      let r = R.of_plan plan in
      Engine.reset_batch_stats ();
      ignore (Engine.count_envs plan);
      Engine.iter_envs plan (fun _ -> ());
      let s = Engine.batch_stats () in
      check_bool "columns measured" true (s.Engine.bm_column_words > 0);
      check_bool "replay measured (checked mode)" true
        (s.Engine.bm_replay_rows > 0);
      (* the genuine envelope dominates every mark *)
      check_bool "genuine envelope dominates" true
        (Analysis.Batch_audit.check_envelope r s = []);
      (* shrink two components below their marks: one E021 each, with the
         exact certified/measured pair *)
      let shrunk = { r with R.r_column_words = 0; r_replay_rows = 0 } in
      match Analysis.Batch_audit.check_envelope shrunk s with
      | [ { D.code = D.Resource_envelope;
            witness =
              Some
                (D.Envelope
                   { component = "column-words"; certified = 0; measured });
            _
          };
          { D.code = D.Resource_envelope;
            witness =
              Some
                (D.Envelope
                   { component = "replay-rows";
                     certified = 0;
                     measured = replay });
            _
          } ] ->
          check_int "measured column words" s.Engine.bm_column_words measured;
          check_int "measured replay rows" s.Engine.bm_replay_rows replay
      | ds ->
          Alcotest.failf "E021: expected 2 findings, got %d" (List.length ds))

(* ---- admission ----------------------------------------------------------- *)

let test_admission () =
  with_engine ~batched:true ~checked:false ~domains:1 ~min_rows:1 ~morsel:7
    (fun () ->
      let plan = compile_plan () in
      let r = R.of_plan plan in
      check_bool "envelope is finite" true
        ((not r.R.r_saturated) && r.R.r_peak_bytes > 0);
      check_bool "admits a generous budget" true
        (R.admits r ~budget:(1 lsl 30));
      check_bool "rejects a tiny budget" false (R.admits r ~budget:16);
      (* a saturated envelope never admits, whatever the budget *)
      check_bool "saturated never admits" false
        (R.admits { r with R.r_saturated = true } ~budget:max_int))

(* ---- explain JSON schema locks ------------------------------------------ *)

let json_keys = function
  | Analysis.Json.Obj fields -> List.map fst fields
  | _ -> []

let batch_keys = [ "enabled"; "morsel-rows"; "groups"; "columns"; "stages" ]

let resource_keys =
  [ "batched"; "checked"; "rows"; "group-rows"; "groups"; "slices"; "slots";
    "stage-rows"; "peak-rows"; "column-words"; "dense-words"; "replay-rows";
    "buffered-rows"; "peak-bytes"; "infeasible"; "saturated" ]

let test_schema_stable () =
  let plan = compile_plan () in
  (* the batch JSON keeps its full schema — including the would-be stage
     geometry — when the pipeline is disabled (WDPT_ENGINE_BATCH=0) *)
  List.iter
    (fun batched ->
      with_engine ~batched (fun () ->
          let b = I.batch plan in
          check_bool
            (Printf.sprintf "batch json schema (batched=%b)" batched)
            true
            (json_keys (Analysis.Par_audit.batch_json b) = batch_keys);
          check_bool
            (Printf.sprintf "enabled flag tracks config (batched=%b)" batched)
            true
            (b.I.b_enabled = batched);
          check_int
            (Printf.sprintf "stage geometry survives (batched=%b)" batched)
            2
            (Array.length b.I.b_stages);
          check_int
            (Printf.sprintf "group geometry survives (batched=%b)" batched)
            b.I.b_groups
            ((41 + b.I.b_morsel_rows - 1) / b.I.b_morsel_rows)))
    [ true; false ];
  with_engine ~batched:true (fun () ->
      check_bool "resource json schema" true
        (json_keys (R.to_json (R.of_plan plan)) = resource_keys))

(* ---- ragged-tail morsels x paging --------------------------------------- *)

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t

let take n l = List.filteri (fun i _ -> i < n) l

(* 41 candidate rows under 7-row morsel groups: boundaries at 7, 14, ..., 35
   with a 6-row ragged tail. Pages whose offset lands exactly on, one
   before, and one past a group boundary (and past the end) must slice the
   full first-seen enumeration exactly, at pools 1 and 2. *)
let test_ragged_paging () =
  let db = chain_db 40 in
  let atoms = [ e "x" "y" ] in
  let collect ~offset ~limit =
    let out = ref [] in
    let n =
      Engine.stream_projections db atoms ~init:Mapping.empty
        ~onto:[ "x"; "y" ] ~offset ~limit (fun m -> out := m :: !out)
    in
    (n, List.rev !out)
  in
  List.iter
    (fun nd ->
      with_engine ~batched:true ~domains:nd ~min_rows:1 ~morsel:7 (fun () ->
          let _, all = collect ~offset:0 ~limit:None in
          let total = List.length all in
          check_int "41 distinct rows" 41 total;
          check_bool "ragged tail" true (total mod 7 <> 0);
          List.iter
            (fun offset ->
              List.iter
                (fun lim ->
                  let n, page = collect ~offset ~limit:(Some lim) in
                  let expected = take lim (drop offset all) in
                  check_int
                    (Printf.sprintf "count offset=%d limit=%d pool=%d" offset
                       lim nd)
                    (List.length expected) n;
                  check_bool
                    (Printf.sprintf "page offset=%d limit=%d pool=%d" offset
                       lim nd)
                    true
                    (List.equal Mapping.equal page expected))
                [ 1; 7; 13 ])
            [ 6; 7; 8; 13; 14; 15; 34; 35; 36; 40; 41; 42 ]))
    [ 1; 2 ]

(* ---- properties ---------------------------------------------------------- *)

let prop_genuine_clean =
  qtest ~count:100 "genuine batch layouts audit clean (pools 1/2/4)"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let plan = Engine.compile db (Cq.Query.body q) ~init:Mapping.empty in
      List.for_all
        (fun nd ->
          with_engine ~batched:true ~domains:nd ~min_rows:1 ~morsel:3
            (fun () -> Analysis.Batch_audit.audit plan = []))
        [ 1; 2; 4 ])

let prop_envelope_dominates =
  qtest ~count:60 "certified envelope dominates measured marks"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      List.for_all
        (fun (nd, checked) ->
          with_engine ~batched:true ~checked ~domains:nd ~min_rows:1 ~morsel:3
            (fun () ->
              let plan =
                Engine.compile db (Cq.Query.body q) ~init:Mapping.empty
              in
              let r = R.of_plan plan in
              Engine.reset_batch_stats ();
              ignore (Engine.count_envs plan);
              Engine.iter_envs plan (fun _ -> ());
              Analysis.Batch_audit.check_envelope r (Engine.batch_stats ())
              = []))
        [ (1, false); (2, false); (1, true); (2, true) ])

let suite =
  [ Alcotest.test_case "genuine layouts audit clean" `Quick test_genuine_clean;
    Alcotest.test_case "E017 stage-read-before-bind" `Quick test_e017;
    Alcotest.test_case "E018 column-aliasing" `Quick test_e018;
    Alcotest.test_case "E019 incomplete-position-cover" `Quick test_e019;
    Alcotest.test_case "E020 filter-stage-binds" `Quick test_e020;
    Alcotest.test_case "E021 unsound-resource-envelope" `Quick test_e021;
    Alcotest.test_case "admission verdicts" `Quick test_admission;
    Alcotest.test_case "batch/resource JSON schema locks" `Quick
      test_schema_stable;
    Alcotest.test_case "ragged-tail morsel paging" `Quick test_ragged_paging;
    prop_genuine_clean;
    prop_envelope_dominates ]
