(* The Optimizer facade: strategy selection and answer soundness. *)

open Relational
open Helpers
module Pt = Wdpt.Pattern_tree
module Opt = Wdpt.Optimizer

let test_strategies () =
  (* tractable as written *)
  let chain = Workload.Gen_wdpt.chain_tree ~nodes:3 ~rel:"E" in
  let pl = Opt.plan ~k:1 chain in
  check_bool "chain exact" true (pl.Opt.strategy = Opt.Exact_tractable);
  check_bool "complete" true (Opt.complete pl);
  (* semantically tractable: the foldable square is simplified to its core
     (a path) by the analyzer's redundant-atom rewrites, so it is now exact *)
  let sq =
    Pt.of_cq (Cq.Query.boolean [ e "x" "y"; e "y" "z"; e "x" "y2"; e "y2" "z" ])
  in
  let pl2 = Opt.plan ~k:1 sq in
  check_bool "square simplified" true (pl2.Opt.rewrites <> []);
  check_bool "square exact after simplification" true
    (pl2.Opt.strategy = Opt.Exact_tractable);
  (* Via_witness still fires where simplification cannot help: a triangle in
     an OPT branch binds new (non-free) variables, so only the ≡ₛ-witness
     search (Lemma 1 normalization) can drop it *)
  let gated =
    Pt.make ~free:[ "x" ]
      (Node ([ e "x" "x" ], [ Node ([ e "a" "b"; e "b" "c"; e "c" "a" ], []) ]))
  in
  let pl_w = Opt.plan ~k:1 gated in
  check_bool "no syntactic rewrite for gated triangle" true (pl_w.Opt.rewrites = []);
  check_bool "gated triangle via witness" true
    (match pl_w.Opt.strategy with Opt.Via_witness _ -> true | _ -> false);
  (* core triangle: approximation *)
  let tri = Pt.of_cq (Workload.Gen_cq.cycle 3) in
  let pl3 = Opt.plan ~k:1 tri in
  check_bool "triangle approximated" true
    (match pl3.Opt.strategy with Opt.Via_approximation _ -> true | _ -> false);
  check_bool "approximation incomplete" false (Opt.complete pl3);
  check_bool "describe says something" true (String.length (Opt.describe pl3) > 0)

let test_answers_sound () =
  let tri = Pt.of_cq (Workload.Gen_cq.cycle 3) in
  let pl = Opt.plan ~k:1 tri in
  let db = db_of_edges [ (1, 2); (2, 3); (3, 1); (4, 4) ] in
  (* db has a triangle and a self-loop: both exact and approximate answers
     are the empty mapping (boolean query) *)
  let exact = Wdpt.Semantics.eval db tri in
  let approx = Opt.eval pl db in
  check_bool "approximate answers subsumed by exact ones" true
    (Mapping.Set.for_all
       (fun h -> Mapping.Set.exists (Mapping.subsumes h) exact)
       approx);
  (* the self-loop satisfies the TW(1)-approximation, and indeed the db has a
     real triangle too *)
  check_bool "true positive" true (Mapping.Set.mem Mapping.empty approx)

(* cost-based execution selection: the engine choice follows the Cq.Cost
   bounds of the instance, and the routed evaluation answers exactly like the
   reference semantics *)
let test_exec_selection () =
  let sparse = db_of_edges [ (1, 2); (2, 3); (3, 4) ] in
  (* every pair over 3 nodes: distinct counts saturate the active domain, so
     the (tw+1)·log|adom| bag bound undercuts the backtracking bounds *)
  let dense =
    db_of_edges
      (List.concat_map (fun i -> List.map (fun j -> (i, j)) [ 1; 2; 3 ]) [ 1; 2; 3 ])
  in
  let check_routed name pl db p =
    check_bool (name ^ ": routed eval agrees with the semantics") true
      (Mapping.Set.equal (Opt.eval pl db) (Wdpt.Semantics.eval db p))
  in
  (* no database: backtracking default, no cost record *)
  let chain = Workload.Gen_wdpt.chain_tree ~nodes:3 ~rel:"E" in
  let pl0 = Opt.plan ~k:1 chain in
  check_bool "no db: backtracking" true (pl0.Opt.exec = Opt.Backtracking);
  check_bool "no db: no cost" true (pl0.Opt.cost = None);
  (* acyclic single-node instance: Yannakakis *)
  let path =
    Pt.of_cq
      (Cq.Query.make ~head:[ "x"; "z" ] ~body:[ e "x" "y"; e "y" "z" ])
  in
  let pl1 = Opt.plan ~db:sparse ~k:1 path in
  check_bool "acyclic: Yannakakis" true (pl1.Opt.exec = Opt.Yannakakis);
  check_bool "cost recorded" true (pl1.Opt.cost <> None);
  check_routed "yannakakis" pl1 sparse path;
  (* cyclic + sparse: the variable-domain bound beats the bag bound *)
  let tri = Pt.of_cq (Workload.Gen_cq.cycle 3) in
  let pl2 = Opt.plan ~db:sparse ~k:2 tri in
  check_bool "cyclic sparse: backtracking" true (pl2.Opt.exec = Opt.Backtracking);
  check_routed "backtracking" pl2 sparse tri;
  (* cyclic + dense: tw+1 = 3 < 4 variables, distinct counts saturated *)
  let c4 = Pt.of_cq (Workload.Gen_cq.cycle 4) in
  let pl3 = Opt.plan ~db:dense ~k:2 c4 in
  check_bool "cyclic dense: decomposition" true (pl3.Opt.exec = Opt.Decomposition);
  check_routed "decomposition" pl3 dense c4;
  check_bool "describe names the engine" true
    (let s = Opt.describe pl3 in
     let sub = "execution:" in
     let n = String.length s and m = String.length sub in
     let rec has i = i + m <= n && (String.sub s i m = sub || has (i + 1)) in
     has 0)

(* the routed evaluation is exact on every single-node tree whose strategy
   is exact, whatever engine the statistics picked *)
let prop_exec_routing_exact =
  qtest ~count:150 "cost-routed evaluation = reference semantics"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let p = Pt.of_cq q in
      let pl = Opt.plan ~db ~k:2 p in
      (not (Opt.complete pl))
      || Mapping.Set.equal (Opt.eval pl db) (Wdpt.Semantics.eval db p))

let test_partial_decision_via_witness () =
  let sq =
    Pt.of_cq
      (Cq.Query.make ~head:[ "x" ]
         ~body:[ e "x" "y"; e "y" "z"; e "x" "y2"; e "y2" "z" ])
  in
  let pl = Opt.plan ~k:1 sq in
  let db = db_of_edges [ (1, 2); (2, 3) ] in
  check_bool "partial via witness" true
    (Opt.partial_decision pl db (mapping [ ("x", 1) ]));
  check_bool "negative" false (Opt.partial_decision pl db (mapping [ ("x", 3) ]))

let prop_plan_partial_sound =
  qtest ~count:60 "planned partial decisions are sound"
    (QCheck.pair arbitrary_small_wdpt arbitrary_db) (fun (p, db) ->
      let pl = Opt.plan ~k:1 p in
      let ans = Wdpt.Semantics.eval_naive db p in
      Mapping.Set.for_all
        (fun h ->
          let planned = Opt.partial_decision pl db h in
          if Opt.complete pl then planned = Wdpt.Semantics.partial_decision db p h
          else (not planned) || Wdpt.Semantics.partial_decision db p h)
        ans)

let suite =
  [ Alcotest.test_case "strategy selection" `Quick test_strategies;
    Alcotest.test_case "cost-based execution selection" `Quick
      test_exec_selection;
    Alcotest.test_case "sound approximate answers" `Quick test_answers_sound;
    prop_exec_routing_exact;
    Alcotest.test_case "partial decision via witness" `Quick
      test_partial_decision_via_witness;
    prop_plan_partial_sound ]
