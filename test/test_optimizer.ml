(* The Optimizer facade: strategy selection and answer soundness. *)

open Relational
open Helpers
module Pt = Wdpt.Pattern_tree
module Opt = Wdpt.Optimizer

let test_strategies () =
  (* tractable as written *)
  let chain = Workload.Gen_wdpt.chain_tree ~nodes:3 ~rel:"E" in
  let pl = Opt.plan ~k:1 chain in
  check_bool "chain exact" true (pl.Opt.strategy = Opt.Exact_tractable);
  check_bool "complete" true (Opt.complete pl);
  (* semantically tractable: the foldable square is simplified to its core
     (a path) by the analyzer's redundant-atom rewrites, so it is now exact *)
  let sq =
    Pt.of_cq (Cq.Query.boolean [ e "x" "y"; e "y" "z"; e "x" "y2"; e "y2" "z" ])
  in
  let pl2 = Opt.plan ~k:1 sq in
  check_bool "square simplified" true (pl2.Opt.rewrites <> []);
  check_bool "square exact after simplification" true
    (pl2.Opt.strategy = Opt.Exact_tractable);
  (* Via_witness still fires where simplification cannot help: a triangle in
     an OPT branch binds new (non-free) variables, so only the ≡ₛ-witness
     search (Lemma 1 normalization) can drop it *)
  let gated =
    Pt.make ~free:[ "x" ]
      (Node ([ e "x" "x" ], [ Node ([ e "a" "b"; e "b" "c"; e "c" "a" ], []) ]))
  in
  let pl_w = Opt.plan ~k:1 gated in
  check_bool "no syntactic rewrite for gated triangle" true (pl_w.Opt.rewrites = []);
  check_bool "gated triangle via witness" true
    (match pl_w.Opt.strategy with Opt.Via_witness _ -> true | _ -> false);
  (* core triangle: approximation *)
  let tri = Pt.of_cq (Workload.Gen_cq.cycle 3) in
  let pl3 = Opt.plan ~k:1 tri in
  check_bool "triangle approximated" true
    (match pl3.Opt.strategy with Opt.Via_approximation _ -> true | _ -> false);
  check_bool "approximation incomplete" false (Opt.complete pl3);
  check_bool "describe says something" true (String.length (Opt.describe pl3) > 0)

let test_answers_sound () =
  let tri = Pt.of_cq (Workload.Gen_cq.cycle 3) in
  let pl = Opt.plan ~k:1 tri in
  let db = db_of_edges [ (1, 2); (2, 3); (3, 1); (4, 4) ] in
  (* db has a triangle and a self-loop: both exact and approximate answers
     are the empty mapping (boolean query) *)
  let exact = Wdpt.Semantics.eval db tri in
  let approx = Opt.eval pl db in
  check_bool "approximate answers subsumed by exact ones" true
    (Mapping.Set.for_all
       (fun h -> Mapping.Set.exists (Mapping.subsumes h) exact)
       approx);
  (* the self-loop satisfies the TW(1)-approximation, and indeed the db has a
     real triangle too *)
  check_bool "true positive" true (Mapping.Set.mem Mapping.empty approx)

let test_partial_decision_via_witness () =
  let sq =
    Pt.of_cq
      (Cq.Query.make ~head:[ "x" ]
         ~body:[ e "x" "y"; e "y" "z"; e "x" "y2"; e "y2" "z" ])
  in
  let pl = Opt.plan ~k:1 sq in
  let db = db_of_edges [ (1, 2); (2, 3) ] in
  check_bool "partial via witness" true
    (Opt.partial_decision pl db (mapping [ ("x", 1) ]));
  check_bool "negative" false (Opt.partial_decision pl db (mapping [ ("x", 3) ]))

let prop_plan_partial_sound =
  qtest ~count:60 "planned partial decisions are sound"
    (QCheck.pair arbitrary_small_wdpt arbitrary_db) (fun (p, db) ->
      let pl = Opt.plan ~k:1 p in
      let ans = Wdpt.Semantics.eval_naive db p in
      Mapping.Set.for_all
        (fun h ->
          let planned = Opt.partial_decision pl db h in
          if Opt.complete pl then planned = Wdpt.Semantics.partial_decision db p h
          else (not planned) || Wdpt.Semantics.partial_decision db p h)
        ans)

let suite =
  [ Alcotest.test_case "strategy selection" `Quick test_strategies;
    Alcotest.test_case "sound approximate answers" `Quick test_answers_sound;
    Alcotest.test_case "partial decision via witness" `Quick
      test_partial_decision_via_witness;
    prop_plan_partial_sound ]
