(* The compiled evaluation engine: unit tests for interning, counted indexes
   and plan caching, plus the agreement properties pinning the engine to the
   naive reference evaluator (Cq.Eval.Naive) and the engine-backed tractable
   WDPT evaluator to the reference semantics. *)

open Relational
open Helpers

(* ---- interner / tuple ------------------------------------------------- *)

let test_interner () =
  let p = Interner.create () in
  check_int "first id" 0 (Interner.intern p (Value.int 7));
  check_int "second id" 1 (Interner.intern p (Value.str "a"));
  check_int "idempotent" 0 (Interner.intern p (Value.int 7));
  check_int "size" 2 (Interner.size p);
  check_bool "get roundtrip" true (Value.equal (Interner.get p 1) (Value.str "a"));
  check_bool "find hit" true (Interner.find p (Value.int 7) = Some 0);
  check_bool "find miss" true (Interner.find p (Value.int 8) = None)

let test_tuple () =
  let a = Tuple.of_list [ 1; 2; 3 ] and b = Tuple.of_list [ 1; 2; 3 ] in
  check_bool "equal" true (Tuple.equal a b);
  check_int "hash agrees" (Tuple.hash a) (Tuple.hash b);
  check_bool "compare" true (Tuple.compare a (Tuple.of_list [ 1; 2; 4 ]) < 0);
  check_bool "length order" true (Tuple.compare (Tuple.of_list [ 9 ]) a < 0)

(* ---- counted indexes --------------------------------------------------- *)

let test_counted_index () =
  let db = db_of_edges [ (1, 2); (1, 3); (2, 3) ] in
  check_int "relation count" 3 (Database.count_of db "E");
  check_int "absent relation" 0 (Database.count_of db "Z");
  check_int "pos 0 of 1" 2 (Database.index_count db "E" 0 (Value.int 1));
  check_int "pos 1 of 3" 2 (Database.index_count db "E" 1 (Value.int 3));
  check_int "unseen value" 0 (Database.index_count db "E" 0 (Value.int 9));
  (* candidates picks the smaller counted cell *)
  let a = atom "E" [ v "x"; v "y" ] in
  let h = mapping [ ("x", 2) ] in
  check_int "selective index" 1 (List.length (Database.candidates db a h));
  check_int "unbound scans relation" 3
    (List.length (Database.candidates db a Mapping.empty))

let test_cache_invalidation () =
  let db = db_of_edges [ (1, 2) ] in
  let v0 = Database.version db in
  check_bool "satisfiable before" true
    (Cq.Eval.satisfiable db [ e "x" "y" ] ~init:(mapping [ ("x", 1) ]));
  check_bool "nothing from 5 yet" false
    (Cq.Eval.satisfiable db [ e "x" "y" ] ~init:(mapping [ ("x", 5) ]));
  (* adding a fact must invalidate the compiled form *)
  Database.add db (Fact.make "E" [ Value.int 5; Value.int 6 ]);
  check_bool "version bumped" true (Database.version db > v0);
  check_bool "new fact visible" true
    (Cq.Eval.satisfiable db [ e "x" "y" ] ~init:(mapping [ ("x", 5) ]));
  (* idempotent re-add keeps the version (and the cache) *)
  let v1 = Database.version db in
  Database.add db (Fact.make "E" [ Value.int 5; Value.int 6 ]);
  check_int "idempotent add" v1 (Database.version db)

let test_infeasible_plans () =
  let db = db_of_edges [ (1, 2) ] in
  check_bool "absent relation" false
    (Cq.Eval.satisfiable db [ atom "Z" [ v "x" ] ] ~init:Mapping.empty);
  check_bool "unseen constant" false
    (Cq.Eval.satisfiable db [ atom "E" [ c 9; v "y" ] ] ~init:Mapping.empty);
  check_bool "unseen init value" false
    (Cq.Eval.satisfiable db [ e "x" "y" ] ~init:(mapping [ ("x", 9) ]));
  (* init values outside the atoms pass through untouched *)
  let hs =
    Cq.Eval.homomorphisms db [ e "x" "y" ] ~init:(mapping [ ("z", 42) ])
  in
  check_int "pass-through kept" 1 (List.length hs);
  check_bool "binding survives" true
    (List.for_all (fun h -> Mapping.find "z" h = Some (Value.int 42)) hs);
  (* empty body yields exactly init *)
  let hs = Cq.Eval.homomorphisms db [] ~init:(mapping [ ("z", 1) ]) in
  check_bool "empty body" true
    (match hs with [ h ] -> Mapping.equal h (mapping [ ("z", 1) ]) | _ -> false)

(* ---- engine vs naive agreement ---------------------------------------- *)

let prop_answers_agree =
  qtest ~count:300 "compiled answers = naive answers"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      Mapping.Set.equal (Cq.Eval.answers db q) (Cq.Eval.Naive.answers db q))

let prop_homomorphisms_agree =
  qtest ~count:300 "compiled homomorphism set = naive homomorphism set"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let body = Cq.Query.body q in
      Mapping.Set.equal
        (Mapping.Set.of_list (Cq.Eval.homomorphisms db body ~init:Mapping.empty))
        (Mapping.Set.of_list
           (Cq.Eval.Naive.homomorphisms db body ~init:Mapping.empty)))

let prop_satisfiable_agree_under_init =
  qtest ~count:300 "compiled satisfiable = naive satisfiable (random init)"
    (QCheck.triple arbitrary_cq arbitrary_db (QCheck.int_range 0 7))
    (fun (q, db, seed) ->
      let body = Cq.Query.body q in
      let init =
        (* bind a random body variable to a value that may or may not occur *)
        match String_set.elements (Cq.Query.vars q) with
        | [] -> Mapping.empty
        | xs ->
            let x = List.nth xs (seed mod List.length xs) in
            Mapping.singleton x (Value.int (seed - 2))
      in
      Cq.Eval.satisfiable db body ~init
      = Cq.Eval.Naive.satisfiable db body ~init)

let prop_first_homomorphism_agree =
  qtest ~count:300 "compiled first-hom existence = naive"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let body = Cq.Query.body q in
      Option.is_some (Cq.Eval.first_homomorphism db body ~init:Mapping.empty)
      = Option.is_some
          (Cq.Eval.Naive.first_homomorphism db body ~init:Mapping.empty))

(* ---- engine-backed tractable WDPT evaluation vs reference semantics ---- *)

let prop_eval_tractable_agrees =
  qtest ~count:100 "rewired Eval_tractable = reference Semantics.decision"
    (QCheck.pair arbitrary_small_wdpt arbitrary_db) (fun (p, db) ->
      let answers = Mapping.Set.elements (Wdpt.Semantics.eval db p) in
      let negatives =
        (* perturb each answer: bind a fresh free variable combination *)
        List.filteri (fun i _ -> i < 3)
          (List.map
             (fun h ->
               match Mapping.bindings h with
               | (x, _) :: _ -> Mapping.add x (Value.int 997) h
               | [] -> Mapping.singleton "x" (Value.int 997))
             answers)
      in
      List.for_all
        (fun h ->
          Wdpt.Eval_tractable.decision db p h = Wdpt.Semantics.decision db p h)
        (Mapping.empty :: (answers @ negatives)))

(* ---- maximal_elements sweep -------------------------------------------- *)

let naive_maximal hs =
  let distinct = List.sort_uniq Mapping.compare hs in
  List.filter
    (fun h ->
      not (List.exists (fun h' -> Mapping.strictly_subsumes h h') distinct))
    distinct

let arbitrary_mappings =
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 25)
        (let* n = int_range 0 4 in
         let* vals = list_size (return n) (int_range 0 3) in
         return
           (Mapping.of_list
              (List.mapi (fun i v -> ("x" ^ string_of_int i, Value.int v)) vals))))
  in
  QCheck.make
    ~print:(fun hs -> Format.asprintf "%a" (Format.pp_print_list Mapping.pp) hs)
    gen

let prop_maximal_elements =
  qtest ~count:500 "maximal_elements sweep = quadratic reference"
    arbitrary_mappings (fun hs ->
      let a = Mapping.Set.of_list (Mapping.maximal_elements hs) in
      let b = Mapping.Set.of_list (naive_maximal hs) in
      Mapping.Set.equal a b)

(* ---- interned relations ------------------------------------------------ *)

let test_rel_ops () =
  let db = db_of_edges [ (1, 2); (2, 3); (3, 4) ] in
  let r = Engine.Rel.of_atom db (e "x" "y") in
  check_int "atom relation rows" 3 (Engine.Rel.cardinal r);
  let s = Engine.Rel.of_atom db (e "y" "z") in
  let sj = Engine.Rel.semijoin r s in
  (* (3,4) has no outgoing edge beyond 4 *)
  check_int "semijoin drops dead end" 2 (Engine.Rel.cardinal sj);
  let j = Engine.Rel.join r s in
  check_int "join paths" 2 (Engine.Rel.cardinal j);
  let pr = Engine.Rel.project (String_set.of_list [ "x"; "z" ]) j in
  check_int "projection" 2 (Engine.Rel.cardinal pr);
  let ms = Engine.Rel.to_mappings db pr in
  check_bool "boundary conversion" true
    (List.exists (fun m -> Mapping.equal m (mapping [ ("x", 1); ("z", 3) ])) ms);
  (* self-join pattern E(x,x) only matches loops *)
  check_bool "self loop absent" true
    (Engine.Rel.is_empty (Engine.Rel.of_atom db (atom "E" [ v "x"; v "x" ])))

(* ---- answer paging boundaries ------------------------------------------ *)

(* the streamed page (stream_projections, first-seen order, early exit) and
   the materialized sorted page (Mapping.Set.elements sliced by the CLI's
   OPT-branch path) at their boundaries: offset at / past the answer count,
   limit 0, and page-by-page reassembly of the full answer set on both paths *)
let test_paging_boundaries () =
  let db = db_of_edges [ (1, 2); (2, 3); (3, 4); (1, 3); (2, 4) ] in
  let atoms = [ e "x" "y" ] in
  let onto = [ "x" ] in
  let stream ~offset ~limit =
    let out = ref [] in
    let n =
      Engine.stream_projections db atoms ~init:Mapping.empty ~onto ~offset
        ~limit (fun m -> out := m :: !out)
    in
    check_int "emitted = returned" (List.length !out) n;
    List.rev !out
  in
  let full = stream ~offset:0 ~limit:None in
  let count = List.length full in
  check_int "distinct projections" 3 count;
  (* offset exactly at the count, and past it: empty page, no error *)
  check_int "offset = count" 0 (List.length (stream ~offset:count ~limit:None));
  check_int "offset past count" 0
    (List.length (stream ~offset:(count + 7) ~limit:(Some 2)));
  (* limit 0: empty page whatever the offset *)
  check_int "limit 0" 0 (List.length (stream ~offset:0 ~limit:(Some 0)));
  check_int "limit 0 offset 1" 0 (List.length (stream ~offset:1 ~limit:(Some 0)));
  (* a middle page is exactly the slice of the full stream *)
  let page = stream ~offset:1 ~limit:(Some 2) in
  check_bool "middle page = stream slice" true
    (page = (List.filteri (fun i _ -> i >= 1 && i < 3) full));
  (* short last page: limit overshooting the tail *)
  check_int "short last page" 1
    (List.length (stream ~offset:(count - 1) ~limit:(Some 5)));
  (* page-by-page reassembly: streamed pages concatenate to the full stream,
     sorted pages concatenate to the sorted elements, and both cover the
     same answer set *)
  let streamed = stream ~offset:0 ~limit:(Some 2) @ stream ~offset:2 ~limit:(Some 2) in
  check_bool "streamed pages reassemble" true (streamed = full);
  let sorted =
    Mapping.Set.elements (Mapping.Set.of_list full)
  in
  let sorted_page off lim =
    List.filteri (fun i _ -> i >= off && i < off + lim) sorted
  in
  check_bool "sorted pages reassemble" true
    (sorted_page 0 2 @ sorted_page 2 2 = sorted);
  check_bool "both paths cover the same answers" true
    (Mapping.Set.equal (Mapping.Set.of_list streamed)
       (Mapping.Set.of_list (sorted_page 0 2 @ sorted_page 2 2)))

let suite =
  [ Alcotest.test_case "interner" `Quick test_interner;
    Alcotest.test_case "paging boundaries" `Quick test_paging_boundaries;
    Alcotest.test_case "tuples" `Quick test_tuple;
    Alcotest.test_case "counted indexes" `Quick test_counted_index;
    Alcotest.test_case "compiled cache invalidation" `Quick test_cache_invalidation;
    Alcotest.test_case "infeasible plans" `Quick test_infeasible_plans;
    Alcotest.test_case "interned relations" `Quick test_rel_ops;
    prop_answers_agree;
    prop_homomorphisms_agree;
    prop_satisfiable_agree_under_init;
    prop_first_homomorphism_agree;
    prop_eval_tractable_agrees;
    prop_maximal_elements ]
