(* Each test case runs with the fresh-constant counter rewound, so the names
   Value.fresh generates are deterministic per test instead of depending on
   how many tests (or qcheck iterations) ran before — see Value.reset_fresh. *)
let deterministic_fresh (name, cases) =
  ( name,
    List.map
      (fun case ->
        let n, speed, f = case in
        (n, speed, fun x ->
          Relational.Value.reset_fresh ();
          f x))
      cases )

let () =
  Alcotest.run "wdpt"
    (List.map deterministic_fresh
       [ ("relational", Test_relational.suite);
         ("engine", Test_engine.suite);
         ("parallel", Test_parallel.suite);
         ("par-audit", Test_par_audit.suite);
         ("batch", Test_batch.suite);
         ("batch-audit", Test_batch_audit.suite);
         ("hypergraph", Test_hypergraph.suite);
         ("cq", Test_cq.suite);
         ("pattern-tree", Test_pattern_tree.suite);
         ("semantics", Test_semantics.suite);
         ("projection-free", Test_projection_free.suite);
         ("algebra", Test_algebra.suite);
         ("syntax", Test_syntax.suite);
         ("classes", Test_classes.suite);
         ("subsumption", Test_subsumption.suite);
         ("approximation", Test_approximation.suite);
         ("semantic-opt", Test_semantic_opt.suite);
         ("optimizer", Test_optimizer.suite);
         ("union", Test_union.suite);
         ("reductions", Test_reductions.suite);
         ("sparql", Test_sparql.suite);
         ("analysis", Test_analysis.suite);
         ("audit", Test_audit.suite);
         ("feedback", Test_feedback.suite);
         ("equiv", Test_equiv.suite);
         ("delta", Test_delta.suite);
         ("edge-cases", Test_edge_cases.suite);
         ("opt-semantics", Test_opt_semantics.suite);
         ("paper-claims", Test_paper_claims.suite) ])
