(* The vectorized (batched) interpreter: the morsel-skew regression (a fat
   top-level relation must split into capped morsels, not 4*pool static
   slices), batch-edge geometry (candidate ranges smaller than a morsel
   group, survivor masks going all-zero mid-instruction, morsel boundaries
   inside OPT branches), paging parity on the batched streamed path, morsel
   configuration clamping, and qcheck properties pinning batched = scalar
   answers at both semantics levels and a deterministic batched enumeration
   order across pool sizes. *)

open Relational
open Helpers
module P = Engine.Parallel
module I = Engine.Inspect

(* every test restores the ambient engine configuration, whatever happens
   (the suite may itself run under WDPT_ENGINE_BATCH / _DOMAINS / _MORSEL) *)
let with_engine ?batched ?domains ?min_rows ?morsel f =
  let b0 = Engine.batched_enabled () in
  let d0 = P.domains () and m0 = P.min_rows () and g0 = P.morsel_rows () in
  Option.iter Engine.set_batched batched;
  Option.iter P.set_domains domains;
  Option.iter P.set_min_rows min_rows;
  Option.iter P.set_morsel_rows morsel;
  Fun.protect
    ~finally:(fun () ->
      Engine.set_batched b0;
      P.set_domains d0;
      P.set_min_rows m0;
      P.set_morsel_rows g0)
    f

let envs_of plan =
  let out = ref [] in
  Engine.iter_envs plan (fun env -> out := Array.copy env :: !out);
  List.rev !out

(* ---- morsel-skew regression --------------------------------------------- *)

(* One fat relation: 20000 top-level candidate rows. The pre-morsel geometry
   cut 4*pool static slices — 2500 rows each at pool 2, so one straggler
   domain could sit on a quarter of the work. Morsels cap every chunk at
   morsel_rows, splitting the fat range into 20 slices drained from the
   shared counter. *)
let chain_db_40 () = db_of_edges (List.init 40 (fun i -> (i, i + 1)))

let test_morsel_skew () =
  let db = db_of_edges (List.init 20000 (fun i -> (i, i + 1))) in
  let plan = Engine.compile db [ e "x" "y" ] ~init:Mapping.empty in
  with_engine ~domains:2 ~min_rows:1 ~morsel:1024 (fun () ->
      let v = I.par plan in
      check_bool "parallel" true (not v.I.pv_sequential);
      check_int "morsel count pinned" 20 (Array.length v.I.pv_chunks);
      Array.iter
        (fun (lo, hi) ->
          check_bool "chunk within the morsel cap" true (hi - lo <= 1024))
        v.I.pv_chunks;
      check_bool "audits clean (incl. E016)" true
        (Analysis.Par_audit.audit_view v = []);
      check_int "all rows enumerated" 20000 (Engine.count_envs plan));
  (* small regions still split into ~4 waves per domain below the cap *)
  let small = Engine.compile (chain_db_40 ()) [ e "x" "y" ] ~init:Mapping.empty in
  with_engine ~domains:2 ~min_rows:1 ~morsel:1024 (fun () ->
      let v = I.par small in
      check_bool "small region still chunked" true
        (Array.length v.I.pv_chunks > 1))

(* ---- morsel configuration ------------------------------------------------ *)

let test_morsel_config () =
  with_engine (fun () ->
      P.set_morsel_rows 0;
      check_int "0 clamps to 1" 1 (P.morsel_rows ());
      P.set_morsel_rows (-5);
      check_int "negative clamps to 1" 1 (P.morsel_rows ());
      P.set_morsel_rows (1 lsl 30);
      check_int "oversized clamps to the cap" (1 lsl 20) (P.morsel_rows ());
      P.set_morsel_rows 256;
      check_int "in-range value kept" 256 (P.morsel_rows ()));
  (* the batched toggle round-trips *)
  with_engine ~batched:false (fun () ->
      check_bool "toggle off" false (Engine.batched_enabled ()));
  with_engine ~batched:true (fun () ->
      check_bool "toggle on" true (Engine.batched_enabled ()))

(* ---- batch-edge geometry ------------------------------------------------- *)

let test_batch_edges () =
  (* candidate range far smaller than the morsel group: one ragged batch *)
  let db = db_of_edges [ (1, 2); (2, 3) ] in
  let plan = Engine.compile db [ e "x" "y"; e "y" "z" ] ~init:Mapping.empty in
  with_engine ~batched:true ~morsel:1024 (fun () ->
      check_int "batch smaller than the group" 1 (Engine.count_envs plan));
  (* a constant check kills the entire batch at stage 0 *)
  let dead0 =
    Engine.compile db [ atom "E" [ v "x"; c 99 ] ] ~init:Mapping.empty
  in
  with_engine ~batched:true (fun () ->
      check_int "mask all-zero at stage 0" 0 (Engine.count_envs dead0);
      check_bool "no solutions enumerated" true (envs_of dead0 = []));
  (* a later filter stage starves every surviving row mid-instruction: the
     top-level choice is the smaller U, the E probe then matches nothing *)
  let db2 = Database.create () in
  Database.add db2 (Fact.make "E" [ Value.int 1; Value.int 2 ]);
  Database.add db2 (Fact.make "E" [ Value.int 3; Value.int 4 ]);
  Database.add db2 (Fact.make "U" [ Value.int 99 ]);
  let dead_mid =
    Engine.compile db2
      [ atom "U" [ v "x" ]; atom "E" [ v "x"; v "y" ] ]
      ~init:Mapping.empty
  in
  with_engine ~batched:true (fun () ->
      check_int "mask all-zero mid-pipeline" 0 (Engine.count_envs dead_mid);
      check_bool "sat agrees" false (Engine.sat dead_mid));
  (* forcing single-row batches exercises every group boundary *)
  let full = with_engine ~batched:false (fun () -> envs_of plan) in
  with_engine ~batched:true ~morsel:1 (fun () ->
      check_int "1-row morsel groups, same count" (List.length full)
        (Engine.count_envs plan))

(* ---- morsel boundary inside an OPT branch -------------------------------- *)

let test_opt_boundary () =
  let p =
    match Wdpt.Syntax.parse "free (x) { E(?x, ?y) } [ { U(?y) } ]" with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let db = Database.create () in
  List.iter
    (fun i -> Database.add db (Fact.make "E" [ Value.int i; Value.int (i + 1) ]))
    (List.init 10 Fun.id);
  List.iter
    (fun i ->
      if i mod 2 = 0 then Database.add db (Fact.make "U" [ Value.int i ]))
    (List.init 11 Fun.id);
  let scalar = with_engine ~batched:false (fun () -> Wdpt.Semantics.eval db p) in
  check_bool "instance has extended and bare answers" true
    (Mapping.Set.cardinal scalar = 10);
  (* morsel 3 puts group boundaries inside both the root body's and the OPT
     branch's candidate ranges, sequentially and across a pool of 2 *)
  List.iter
    (fun nd ->
      with_engine ~batched:true ~domains:nd ~min_rows:1 ~morsel:3 (fun () ->
          check_bool
            (Printf.sprintf "batched OPT answers at pool %d" nd)
            true
            (Mapping.Set.equal (Wdpt.Semantics.eval db p) scalar)))
    [ 1; 2 ]

(* ---- paging parity on the batched streamed path -------------------------- *)

let test_paging_parity () =
  let db = db_of_edges [ (1, 2); (2, 3); (3, 4); (1, 3); (2, 4); (4, 1) ] in
  let atoms = [ e "x" "y" ] in
  let onto = [ "x" ] in
  let stream ~offset ~limit =
    let out = ref [] in
    let n =
      Engine.stream_projections db atoms ~init:Mapping.empty ~onto ~offset
        ~limit (fun m -> out := m :: !out)
    in
    check_int "emitted = returned" (List.length !out) n;
    List.rev !out
  in
  with_engine ~batched:true ~morsel:2 (fun () ->
      let full = stream ~offset:0 ~limit:None in
      check_int "distinct projections" 4 (List.length full);
      (* pages cut at morsel boundaries reassemble the batched stream *)
      let pages =
        stream ~offset:0 ~limit:(Some 2)
        @ stream ~offset:2 ~limit:(Some 1)
        @ stream ~offset:3 ~limit:(Some 5)
      in
      check_bool "batched pages reassemble the batched stream" true
        (pages = full);
      (* and the page union is the scalar answer set *)
      let scalar =
        with_engine ~batched:false (fun () -> stream ~offset:0 ~limit:None)
      in
      check_bool "batched pages = scalar answers as sets" true
        (Mapping.Set.equal
           (Mapping.Set.of_list pages)
           (Mapping.Set.of_list scalar)))

(* ---- properties ---------------------------------------------------------- *)

let prop_batched_cq_agree =
  qtest ~count:100 "batched = scalar CQ answers (pools 1/2/4, small morsels)"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let scalar =
        with_engine ~batched:false ~domains:1 (fun () -> Cq.Eval.answers db q)
      in
      List.for_all
        (fun nd ->
          with_engine ~batched:true ~domains:nd ~min_rows:1 ~morsel:2
            (fun () -> Mapping.Set.equal (Cq.Eval.answers db q) scalar))
        [ 1; 2; 4 ])

let prop_batched_wdpt_agree =
  qtest ~count:60 "batched = scalar WDPT answers (pools 1/2/4)"
    (QCheck.pair arbitrary_small_wdpt arbitrary_db) (fun (p, db) ->
      let scalar =
        with_engine ~batched:false ~domains:1 (fun () ->
            Wdpt.Semantics.eval db p)
      in
      List.for_all
        (fun nd ->
          with_engine ~batched:true ~domains:nd ~min_rows:1 ~morsel:3
            (fun () -> Mapping.Set.equal (Wdpt.Semantics.eval db p) scalar))
        [ 1; 2; 4 ])

let prop_batched_order_deterministic =
  qtest ~count:100 "batched enumeration order identical at pools 1/2/4"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let plan = Engine.compile db (Cq.Query.body q) ~init:Mapping.empty in
      let reference =
        with_engine ~batched:true ~domains:1 ~min_rows:1 ~morsel:2 (fun () ->
            envs_of plan)
      in
      List.for_all
        (fun nd ->
          with_engine ~batched:true ~domains:nd ~min_rows:1 ~morsel:2
            (fun () -> envs_of plan = reference && envs_of plan = reference))
        [ 2; 4 ])

let suite =
  [ Alcotest.test_case "morsel-skew regression" `Quick test_morsel_skew;
    Alcotest.test_case "morsel configuration clamps" `Quick test_morsel_config;
    Alcotest.test_case "batch-edge geometry" `Quick test_batch_edges;
    Alcotest.test_case "morsel boundary inside OPT" `Quick test_opt_boundary;
    Alcotest.test_case "paging parity (batched stream)" `Quick
      test_paging_parity;
    prop_batched_cq_agree;
    prop_batched_wdpt_agree;
    prop_batched_order_deterministic ]
