(* Incremental answer maintenance: tombstone deletes, delta batches,
   standing queries with subsumption frontiers, and the E027–E030 auditor. *)

open Relational
open Helpers

let fact r vs = Fact.make r (List.map Value.int vs)
let e2 a b = fact "E" [ a; b ]
let u1 a = fact "U" [ a ]

let set_testable = mapping_set_testable
let check_set = Alcotest.check set_testable

(* ---- tombstone deletes ------------------------------------------------ *)

let test_remove_basic () =
  let db = Database.of_list [ e2 1 2; e2 2 3; e2 1 3; u1 2 ] in
  Database.remove db (e2 2 3);
  check_int "size" 3 (Database.size db);
  check_bool "mem gone" false (Database.mem db (e2 2 3));
  check_int "count_of E" 2 (Database.count_of db "E");
  check_int "index_count E.0=2" 0 (Database.index_count db "E" 0 (Value.int 2));
  check_int "distinct E.0" 1 (Database.distinct_count db "E" 0);
  check_int "facts_of filters" 2 (List.length (Database.facts_of db "E"));
  let h = Mapping.empty in
  let ms = Database.matches db (atom "E" [ v "x"; v "y" ]) h in
  check_int "matches filter tombstones" 2 (List.length ms);
  (* remove is idempotent on dead facts *)
  let ver = Database.version db in
  Database.remove db (e2 2 3);
  check_int "remove of dead fact is a no-op" ver (Database.version db)

let test_version_and_deletions () =
  let db = Database.of_list [ e2 1 2 ] in
  check_int "deletions start at 0" 0 (Database.deletions db);
  let v0 = Database.version db in
  Database.remove db (e2 1 2);
  check_int "remove bumps version" (v0 + 1) (Database.version db);
  check_int "remove bumps deletions" 1 (Database.deletions db);
  Database.add db (e2 1 2);
  check_int "re-add bumps version, not deletions" 1 (Database.deletions db);
  Database.compact db;
  check_int "compact bumps neither (version)" (v0 + 2) (Database.version db);
  check_int "compact bumps neither (deletions)" 1 (Database.deletions db)

let test_delete_then_reinsert () =
  let db = Database.of_list [ e2 1 2; e2 2 3 ] in
  Database.remove db (e2 1 2);
  Database.add db (e2 1 2);
  check_bool "resurrected" true (Database.mem db (e2 1 2));
  check_int "size restored" 2 (Database.size db);
  check_int "count restored" 2 (Database.count_of db "E");
  check_int "index restored" 1 (Database.index_count db "E" 0 (Value.int 1));
  check_int "distinct restored" 2 (Database.distinct_count db "E" 0);
  (* the physical cell must not have been re-appended: candidates sees the
     fact exactly once *)
  let cands = Database.candidates db (atom "E" [ v "x"; v "y" ]) Mapping.empty in
  check_int "no duplicate physical entry" 2 (List.length cands);
  (* same again but with a compaction between delete and re-insert *)
  Database.remove db (e2 1 2);
  Database.compact db;
  Database.add db (e2 1 2);
  let cands = Database.candidates db (atom "E" [ v "x"; v "y" ]) Mapping.empty in
  check_int "re-add after compaction appends once" 2 (List.length cands)

let test_compaction_mid_enumeration () =
  let facts = List.init 20 (fun i -> e2 i (i + 1)) in
  let db = Database.of_list facts in
  (* a candidate list obtained before the deletes is an immutable snapshot *)
  let before = Database.candidates db (atom "E" [ v "x"; v "y" ]) Mapping.empty in
  List.iteri (fun i f -> if i mod 2 = 0 then Database.remove db f) facts;
  Database.compact db;
  check_int "snapshot list survives compaction" 20 (List.length before);
  check_int "post-compaction candidates are live only" 10
    (List.length (Database.candidates db (atom "E" [ v "x"; v "y" ]) Mapping.empty));
  (* adom/distinct recomputed exactly *)
  check_int "distinct E.0 recomputed" 10 (Database.distinct_count db "E" 0);
  let expect_adom =
    List.length
      (List.sort_uniq compare
         (List.concat_map
            (fun f -> List.map (fun v -> v) (Fact.tuple f))
            (Database.facts db)))
  in
  check_int "adom recomputed exactly" expect_adom (Database.adom_size db)

let test_auto_compaction () =
  let facts = List.init 200 (fun i -> e2 i (i + 1)) in
  let db = Database.of_list facts in
  List.iteri (fun i f -> if i mod 2 = 0 then Database.remove db f) facts;
  (* 100 tombstones against 100 live facts crosses the auto threshold *)
  check_int "live size" 100 (Database.size db);
  check_int "adom tight after auto-compaction" (Database.adom_size db)
    (List.length
       (List.sort_uniq compare (List.concat_map Fact.tuple (Database.facts db))))

(* ---- log contracts ---------------------------------------------------- *)

let test_facts_since_future_version () =
  let db = Database.of_list [ e2 1 2; e2 2 3 ] in
  let now = Database.version db in
  check_bool "future version yields []" true (Database.facts_since db (now + 1) = []);
  check_bool "far future yields []" true (Database.facts_since db (now + 1000) = []);
  check_bool "current version yields []" true (Database.facts_since db now = []);
  Database.remove db (e2 1 2);
  let now = Database.version db in
  check_bool "future version after deletes yields []" true
    (Database.facts_since db (now + 1) = [])

let test_facts_since_nets_deletions () =
  let db = Database.of_list [ e2 1 2 ] in
  let v0 = Database.version db in
  Database.add db (e2 2 3);
  Database.remove db (e2 2 3);
  check_bool "add then remove nets to nothing" true (Database.facts_since db v0 = []);
  Database.remove db (e2 1 2);
  Database.add db (e2 1 2);
  check_bool "remove then re-add nets to nothing" true
    (Database.facts_since db v0 = []);
  Database.add db (e2 3 4);
  check_bool "net-new fact survives the netting" true
    (Database.facts_since db v0 = [ e2 3 4 ]);
  (* full replay lists exactly the live facts *)
  check_bool "facts_since 0 = live replay" true
    (List.sort Fact.compare (Database.facts_since db 0)
    = List.sort Fact.compare (Database.facts db))

let test_changes_since () =
  let db = Database.of_list [ e2 1 2 ] in
  let v0 = Database.version db in
  Database.remove db (e2 1 2);
  Database.add db (e2 1 2);
  Database.add db (e2 2 3);
  (match Database.changes_since db v0 with
  | [ Database.Remove a; Database.Add b; Database.Add c ] ->
      check_bool "entry order" true
        (Fact.equal a (e2 1 2) && Fact.equal b (e2 1 2) && Fact.equal c (e2 2 3))
  | _ -> Alcotest.fail "unexpected changes_since shape");
  check_bool "changes_since at current version" true
    (Database.changes_since db (Database.version db) = [])

let test_delta_batch_netting () =
  let db = Database.of_list [ e2 1 2; e2 2 3 ] in
  let v0 = Database.version db in
  Database.add db (e2 3 4);
  Database.remove db (e2 3 4);
  Database.remove db (e2 1 2);
  Database.add db (e2 1 2);
  Database.remove db (e2 2 3);
  Database.add db (e2 4 5);
  let b = Engine.Delta.batch db ~since:v0 in
  check_bool "added nets transients away" true (b.added = [ e2 4 5 ]);
  check_bool "removed nets resurrections away" true (b.removed = [ e2 2 3 ]);
  let b' = Engine.Delta.batch db ~since:(Database.version db + 5) in
  check_bool "future-version batch is empty" true (Engine.Delta.is_empty b')

(* ---- engine rebuild discipline after deletes -------------------------- *)

let q_xy = Cq.Query.make ~head:[ "x"; "y" ] ~body:[ atom "E" [ v "x"; v "y" ] ]

let test_engine_rebuild_after_delete () =
  let db = Database.of_list [ e2 1 2; e2 2 3 ] in
  ignore (Cq.Eval.answers db q_xy);
  check_bool "compiled form cached" true (Database.get_cache db <> None);
  Database.remove db (e2 2 3);
  let a = Cq.Eval.answers db q_xy in
  check_int "no ghost rows after delete" 1 (Mapping.Set.cardinal a);
  (* incremental extension still works on the rebuilt form *)
  Database.add db (e2 5 6);
  let a = Cq.Eval.answers db q_xy in
  check_int "extend after rebuild" 2 (Mapping.Set.cardinal a);
  (* clear_cache after deletes: rebuild from scratch replays live facts *)
  Database.remove db (e2 1 2);
  Database.clear_cache db;
  let a = Cq.Eval.answers db q_xy in
  check_int "clear_cache + rebuild sees live facts only" 1
    (Mapping.Set.cardinal a)

let test_version_triple_after_delete () =
  (* E006 interaction: a plan compiled before a delete is stale (its store
     version is behind the live version) and the auditor says so; a plan
     compiled after the rebuild is clean. *)
  let db = Database.of_list [ e2 1 2; e2 2 3 ] in
  let p0 = Engine.compile db [ atom "E" [ v "x"; v "y" ] ] ~init:Mapping.empty in
  Database.remove db (e2 2 3);
  let stale =
    List.filter
      (fun d -> d.Analysis.Diagnostic.code = Analysis.Diagnostic.Stale_plan)
      (Analysis.Plan_audit.audit p0)
  in
  check_bool "old plan trips E006 after a delete" true
    (List.exists (fun d -> d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error) stale);
  let p1 = Engine.compile db [ atom "E" [ v "x"; v "y" ] ] ~init:Mapping.empty in
  let stale1 =
    List.filter
      (fun d ->
        d.Analysis.Diagnostic.code = Analysis.Diagnostic.Stale_plan
        && d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error)
      (Analysis.Plan_audit.audit p1)
  in
  check_int "fresh plan is clean" 0 (List.length stale1)

(* ---- streaming eval (bounded-buffer maximality) ----------------------- *)

let tree_p =
  (* root E(x,y) OPT child U(y), free x y — tree-shaped, projections differ *)
  Wdpt.Pattern_tree.make ~free:[ "x"; "y" ]
    (Wdpt.Pattern_tree.Node
       ([ atom "E" [ v "x"; v "y" ] ],
        [ Wdpt.Pattern_tree.Node ([ atom "U" [ v "y" ] ], []) ]))

let test_stream_eval_tree () =
  let db = Database.of_list [ e2 1 2; e2 2 3; e2 3 4; u1 2; u1 4 ] in
  let reference = Wdpt.Semantics.eval db tree_p in
  let all = ref [] in
  let n =
    Wdpt.Semantics.stream_eval db tree_p ~offset:0 ~limit:None (fun a ->
        all := a :: !all)
  in
  check_int "stream count" (Mapping.Set.cardinal reference) n;
  check_set "stream = eval" reference (Mapping.Set.of_list !all);
  (* paging: offset/limit slice the same enumeration order *)
  let order = List.rev !all in
  let page = ref [] in
  let k =
    Wdpt.Semantics.stream_eval db tree_p ~offset:1 ~limit:(Some 2) (fun a ->
        page := a :: !page)
  in
  check_int "page size" 2 k;
  check_bool "page = slice of stream order" true
    (List.rev !page = [ List.nth order 1; List.nth order 2 ]);
  (* offset beyond the answer set *)
  let k = Wdpt.Semantics.stream_eval db tree_p ~offset:100 ~limit:None (fun _ -> ()) in
  check_int "offset past the end" 0 k

(* ---- standing queries ------------------------------------------------- *)

let check_against_full st =
  let db = Wdpt.Standing.database st and p = Wdpt.Standing.query st in
  check_set "standing eval = full eval" (Wdpt.Semantics.eval db p)
    (Wdpt.Standing.answers st);
  check_set "standing max = full eval_max" (Wdpt.Semantics.eval_max db p)
    (Wdpt.Standing.maximal_answers st)

let refresh_checked st =
  let before_eval = Wdpt.Standing.answers st
  and before_max = Wdpt.Standing.maximal_answers st in
  let events = Wdpt.Standing.refresh st in
  check_against_full st;
  let ds =
    Analysis.Delta_audit.check_events ~before_eval ~before_max
      ~after_eval:(Wdpt.Standing.answers st)
      ~after_max:(Wdpt.Standing.maximal_answers st)
      events
  in
  check_int "E030 clean" 0 (List.length ds);
  check_int "view audit clean" 0 (List.length (Analysis.Delta_audit.audit st));
  events

let test_standing_insert_extends () =
  let db = Database.of_list [ e2 1 2 ] in
  let st = Wdpt.Standing.register db tree_p in
  check_against_full st;
  Database.add db (e2 3 4);
  let evs = refresh_checked st in
  check_int "one added answer" 1 (List.length evs);
  (match evs with
  | [ Wdpt.Standing.Added { maximal; _ } ] ->
      check_bool "new answer is maximal" true maximal
  | _ -> Alcotest.fail "expected a single Added event");
  (* no-op refresh *)
  check_int "idle refresh is silent" 0 (List.length (refresh_checked st))

let test_standing_demotion () =
  (* Two root homs share x=1: E(1,2) and E(1,5). Neither extends into the
     OPT child, so the bare answer {x=1} is maximal with support 2. Adding
     E(2,3) extends only the y=2 hom — the y=5 one still supports {x=1},
     which therefore stays an answer but is *demoted* by the strictly
     larger {x=1,z=3}. (With a single root hom the bare answer would leave
     the eval set entirely: Removed, not Demoted.) *)
  let p =
    Wdpt.Pattern_tree.make ~free:[ "x"; "z" ]
      (Wdpt.Pattern_tree.Node
         ([ atom "E" [ v "x"; v "y" ] ],
          [ Wdpt.Pattern_tree.Node ([ atom "E" [ v "y"; v "z" ] ], []) ]))
  in
  let db = Database.of_list [ e2 1 2; e2 1 5 ] in
  let st = Wdpt.Standing.register db p in
  check_set "initially the bare answer is maximal"
    (Mapping.Set.singleton (mapping [ ("x", 1) ]))
    (Wdpt.Standing.maximal_answers st);
  Database.add db (e2 2 3);
  let evs = refresh_checked st in
  (* the answer {x=1} is demoted by the new {x=1,z=3} *)
  check_bool "insertion demotes the bare answer" true
    (List.exists
       (function
         | Wdpt.Standing.Demoted a -> Mapping.equal a (mapping [ ("x", 1) ])
         | _ -> false)
       evs);
  check_bool "the subsuming answer arrives maximal" true
    (List.exists
       (function
         | Wdpt.Standing.Added { answer; maximal } ->
             maximal && Mapping.equal answer (mapping [ ("x", 1); ("z", 3) ])
         | _ -> false)
       evs);
  (* deleting the extension promotes the bare answer back *)
  Database.remove db (e2 2 3);
  let evs = refresh_checked st in
  check_bool "deletion promotes the bare answer back" true
    (List.exists
       (function
         | Wdpt.Standing.Promoted a -> Mapping.equal a (mapping [ ("x", 1) ])
         | _ -> false)
       evs);
  check_bool "the subsuming answer is removed as maximal" true
    (List.exists
       (function
         | Wdpt.Standing.Removed { answer; was_maximal } ->
             was_maximal && Mapping.equal answer (mapping [ ("x", 1); ("z", 3) ])
         | _ -> false)
       evs)

let test_standing_mixed_batches () =
  let p =
    Wdpt.Pattern_tree.make ~free:[ "x"; "z" ]
      (Wdpt.Pattern_tree.Node
         ([ atom "E" [ v "x"; v "y" ] ],
          [ Wdpt.Pattern_tree.Node ([ atom "E" [ v "y"; v "z" ] ], []);
            Wdpt.Pattern_tree.Node ([ atom "U" [ v "x" ] ], []) ]))
  in
  let db = Database.of_list [ e2 1 2; e2 2 3; u1 1 ] in
  let st = Wdpt.Standing.register db p in
  check_against_full st;
  (* one batch mixing inserts, deletes and a transient *)
  Database.add db (e2 3 4);
  Database.remove db (e2 2 3);
  Database.add db (u1 9);
  Database.remove db (u1 9);
  Database.add db (e2 9 1);
  ignore (refresh_checked st);
  (* root binding deleted outright *)
  Database.remove db (e2 1 2);
  ignore (refresh_checked st);
  (* resurrect it *)
  Database.add db (e2 1 2);
  ignore (refresh_checked st);
  (* many-step churn against a compaction *)
  List.iter (fun f -> Database.remove db f) (Database.facts db);
  Database.compact db;
  ignore (refresh_checked st);
  check_set "empty database, empty answers" Mapping.Set.empty
    (Wdpt.Standing.answers st)

(* ---- frontier unit behavior ------------------------------------------- *)

let test_frontier_apply () =
  let a = mapping [ ("x", 1) ] in
  let ab = mapping [ ("x", 1); ("z", 3) ] in
  let g = Wdpt.Frontier.of_answers [ a ] in
  check_bool "singleton frontier" true
    (Mapping.Set.mem a (Wdpt.Frontier.maximal g));
  let g, evs = Wdpt.Frontier.apply g ~add:[ ab ] ~remove:[] in
  check_bool "dominator demotes" true
    (List.exists (function Wdpt.Frontier.Demoted x -> Mapping.equal x a | _ -> false) evs);
  check_bool "dominator is the frontier" true
    (Mapping.Set.equal (Wdpt.Frontier.maximal g) (Mapping.Set.singleton ab));
  (* support accumulates; removal of one copy keeps the answer *)
  let g, evs = Wdpt.Frontier.apply g ~add:[ a ] ~remove:[] in
  check_int "re-adding a dominated answer is silent" 0 (List.length evs);
  check_int "support 2" 2 (Wdpt.Frontier.support g a);
  let g, evs = Wdpt.Frontier.apply g ~add:[] ~remove:[ a ] in
  check_int "support drop to 1 is silent" 0 (List.length evs);
  let g, evs = Wdpt.Frontier.apply g ~add:[] ~remove:[ a; ab ] in
  check_bool "dropping the dominator promotes nothing (both gone)" true
    (List.for_all
       (function
         | Wdpt.Frontier.Removed _ -> true
         | _ -> false)
       evs);
  check_bool "group empty" true (Wdpt.Frontier.is_empty g);
  Alcotest.check_raises "underflow rejected"
    (Invalid_argument "Frontier.apply: removing an unsupported answer")
    (fun () -> ignore (Wdpt.Frontier.apply g ~add:[] ~remove:[ a ]))

(* ---- auditor corruption tests ----------------------------------------- *)

let code_count c ds =
  List.length (List.filter (fun d -> d.Analysis.Diagnostic.code = c) ds)

let test_audit_dirty_ranges () =
  let db = Database.of_list [ e2 1 2 ] in
  let since = Database.version db in
  Database.add db (e2 3 4);
  Database.remove db (e2 1 2);
  let b = Engine.Delta.batch db ~since in
  let atoms = [ atom "E" [ v "x"; v "y" ]; atom "U" [ v "x" ] ] in
  let ranges = Engine.Delta.dirty_ranges atoms b in
  check_int "derived ranges are E027-clean" 0
    (List.length (Analysis.Delta_audit.audit_ranges atoms b ranges));
  (* corrupt: drop one range *)
  let corrupted = List.tl ranges in
  let ds = Analysis.Delta_audit.audit_ranges atoms b corrupted in
  check_bool "dropped range trips E027" true
    (code_count Analysis.Diagnostic.Delta_dirty ds > 0);
  (* corrupt: drop one value from a range *)
  let corrupted =
    List.map
      (fun (r : Engine.Delta.dirty_range) ->
        { r with Engine.Delta.dr_values = List.tl r.dr_values })
      ranges
  in
  let ds = Analysis.Delta_audit.audit_ranges atoms b corrupted in
  check_bool "dropped value trips E027" true
    (code_count Analysis.Diagnostic.Delta_dirty ds > 0)

let test_audit_view_corruptions () =
  let db = Database.of_list [ e2 1 2; e2 2 3; u1 2 ] in
  let st = Wdpt.Standing.register db tree_p in
  let view = Wdpt.Standing.view st in
  check_int "honest view is clean" 0
    (List.length (Analysis.Delta_audit.audit_view tree_p view));
  (* E028: swap a frontier for a dominated answer *)
  let fake_sub = mapping [ ("x", 1) ] in
  let corrupted =
    { view with
      Wdpt.Standing.v_groups =
        List.map
          (fun (gk, answers, frontier) ->
            (gk, (fake_sub, 1) :: answers, fake_sub :: frontier))
          view.Wdpt.Standing.v_groups }
  in
  let ds = Analysis.Delta_audit.audit_view tree_p corrupted in
  check_bool "dominated frontier member trips E028" true
    (code_count Analysis.Diagnostic.Frontier_nonmaximal ds > 0);
  (* E028: empty out a frontier *)
  let corrupted =
    { view with
      Wdpt.Standing.v_groups =
        List.map (fun (gk, answers, _) -> (gk, answers, [])) view.Wdpt.Standing.v_groups }
  in
  let ds = Analysis.Delta_audit.audit_view tree_p corrupted in
  check_bool "missing frontier member trips E028" true
    (code_count Analysis.Diagnostic.Frontier_nonmaximal ds > 0);
  (* E029: inflate a support count *)
  let corrupted =
    { view with
      Wdpt.Standing.v_groups =
        List.map
          (fun (gk, answers, frontier) ->
            (gk, List.map (fun (a, n) -> (a, n + 1)) answers, frontier))
          view.Wdpt.Standing.v_groups }
  in
  let ds = Analysis.Delta_audit.audit_view tree_p corrupted in
  check_bool "inflated support trips E029" true
    (code_count Analysis.Diagnostic.Support_mismatch ds > 0);
  (* E029: drop a hom partition the groups still reference *)
  let corrupted = { view with Wdpt.Standing.v_rootkeys = [] } in
  let ds = Analysis.Delta_audit.audit_view tree_p corrupted in
  check_bool "orphaned answers trip E029" true
    (code_count Analysis.Diagnostic.Support_mismatch ds > 0);
  (* E029: file a hom under the wrong rootkey *)
  let corrupted =
    { view with
      Wdpt.Standing.v_rootkeys =
        (match view.Wdpt.Standing.v_rootkeys with
        | (_, homs) :: rest -> (mapping [ ("x", 77); ("y", 77) ], homs) :: rest
        | [] -> []) }
  in
  let ds = Analysis.Delta_audit.audit_view tree_p corrupted in
  check_bool "misfiled hom trips E029" true
    (code_count Analysis.Diagnostic.Support_mismatch ds > 0)

let test_audit_events () =
  let db = Database.of_list [ e2 1 2 ] in
  let st = Wdpt.Standing.register db tree_p in
  let before_eval = Wdpt.Standing.answers st
  and before_max = Wdpt.Standing.maximal_answers st in
  Database.add db (e2 3 4);
  let events = Wdpt.Standing.refresh st in
  let after_eval = Wdpt.Standing.answers st
  and after_max = Wdpt.Standing.maximal_answers st in
  check_int "honest events are E030-clean" 0
    (List.length
       (Analysis.Delta_audit.check_events ~before_eval ~before_max ~after_eval
          ~after_max events));
  (* drop an event *)
  let ds =
    Analysis.Delta_audit.check_events ~before_eval ~before_max ~after_eval
      ~after_max []
  in
  check_bool "dropped event trips E030" true
    (code_count Analysis.Diagnostic.Event_mismatch ds > 0);
  (* flip an event's frontier flag *)
  let flipped =
    List.map
      (function
        | Wdpt.Standing.Added { answer; maximal } ->
            Wdpt.Standing.Added { answer; maximal = not maximal }
        | e -> e)
      events
  in
  let ds =
    Analysis.Delta_audit.check_events ~before_eval ~before_max ~after_eval
      ~after_max flipped
  in
  check_bool "flipped flag trips E030" true
    (code_count Analysis.Diagnostic.Event_mismatch ds > 0)

(* ---- randomized differential ------------------------------------------ *)

let test_qcheck_standing_diff () =
  let gen =
    QCheck.Gen.(
      let* dbseed = int_range 0 10000 in
      let* steps =
        list_size (int_range 1 12)
          (pair (int_range 0 5) (pair (int_range 0 5) (int_range 0 5)))
      in
      return (dbseed, steps))
  in
  let arb = QCheck.make gen in
  (* same convention as wdpt_fuzz --delta-diff: under the env flag the
     stream turns delete-heavy (4/6 deletes instead of 3/6), so a CI leg
     can lean on tombstones and removal-induced promotions suite-wide *)
  let delete_heavy =
    match Sys.getenv_opt "WDPT_DELTA_FUZZ_DELETES" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false
  in
  let prop (dbseed, steps) =
    let db = Workload.Gen_db.random_graph_db ~seed:dbseed ~nodes:5 ~edges:8 in
    let p =
      Wdpt.Pattern_tree.make ~free:[ "x"; "z" ]
        (Wdpt.Pattern_tree.Node
           ([ atom "E" [ v "x"; v "y" ] ],
            [ Wdpt.Pattern_tree.Node ([ atom "E" [ v "y"; v "z" ] ], []) ]))
    in
    let st = Wdpt.Standing.register db p in
    List.for_all
      (fun (kind, (a, b)) ->
        let is_add = if delete_heavy then kind < 2 else kind mod 2 = 0 in
        (if is_add then Database.add db (e2 a b)
         else Database.remove db (e2 a b));
        let before_eval = Wdpt.Standing.answers st
        and before_max = Wdpt.Standing.maximal_answers st in
        let events = Wdpt.Standing.refresh st in
        Mapping.Set.equal (Wdpt.Standing.answers st) (Wdpt.Semantics.eval db p)
        && Mapping.Set.equal
             (Wdpt.Standing.maximal_answers st)
             (Wdpt.Semantics.eval_max db p)
        && Analysis.Delta_audit.check_events ~before_eval ~before_max
             ~after_eval:(Wdpt.Standing.answers st)
             ~after_max:(Wdpt.Standing.maximal_answers st)
             events
           = []
        && Analysis.Delta_audit.audit st = [])
      steps
  in
  let cell = QCheck.Test.make ~count:60 ~name:"standing refresh = full re-eval" arb prop in
  QCheck.Test.check_exn cell

let suite =
  [ Alcotest.test_case "remove: counts and filters" `Quick test_remove_basic;
    Alcotest.test_case "version and deletion epochs" `Quick test_version_and_deletions;
    Alcotest.test_case "delete then reinsert" `Quick test_delete_then_reinsert;
    Alcotest.test_case "compaction mid-enumeration" `Quick test_compaction_mid_enumeration;
    Alcotest.test_case "auto-compaction" `Quick test_auto_compaction;
    Alcotest.test_case "facts_since: future versions" `Quick test_facts_since_future_version;
    Alcotest.test_case "facts_since nets deletions" `Quick test_facts_since_nets_deletions;
    Alcotest.test_case "changes_since log shape" `Quick test_changes_since;
    Alcotest.test_case "Delta.batch netting" `Quick test_delta_batch_netting;
    Alcotest.test_case "engine rebuilds after delete" `Quick test_engine_rebuild_after_delete;
    Alcotest.test_case "E006 version triple after delete" `Quick test_version_triple_after_delete;
    Alcotest.test_case "stream_eval: tree-shaped paging" `Quick test_stream_eval_tree;
    Alcotest.test_case "standing: inserts" `Quick test_standing_insert_extends;
    Alcotest.test_case "standing: demotion and promotion" `Quick test_standing_demotion;
    Alcotest.test_case "standing: mixed batches" `Quick test_standing_mixed_batches;
    Alcotest.test_case "frontier apply" `Quick test_frontier_apply;
    Alcotest.test_case "E027 dirty-range corruption" `Quick test_audit_dirty_ranges;
    Alcotest.test_case "E028/E029 view corruption" `Quick test_audit_view_corruptions;
    Alcotest.test_case "E030 event corruption" `Quick test_audit_events;
    Alcotest.test_case "qcheck: standing differential" `Slow test_qcheck_standing_diff ]
