(* The domain-parallel runtime and incremental compiled databases: unit
   tests for the partitioning decision, the per-primitive reducers, the
   in-place extension of the compiled form and its E006 audit verdicts, plus
   the qcheck properties pinning parallel runs to the sequential path —
   set-equal answers at every pool size, deterministic (and
   sequential-identical) enumeration order, checked-mode env-for-env parity,
   and incremental extension indistinguishable from a rebuild. *)

open Relational
open Helpers
module P = Engine.Parallel
module D = Analysis.Diagnostic

(* every test restores the ambient engine configuration, whatever happens
   (the suite may itself run under WDPT_ENGINE_DOMAINS / _CHECKED) *)
let with_engine ?domains ?min_rows ?checked f =
  let d0 = P.domains () and m0 = P.min_rows () in
  let c0 = Engine.checked_enabled () in
  Option.iter P.set_domains domains;
  Option.iter P.set_min_rows min_rows;
  Option.iter Engine.set_checked checked;
  Fun.protect
    ~finally:(fun () ->
      P.set_domains d0;
      P.set_min_rows m0;
      Engine.set_checked c0)
    f

let chain_db n =
  db_of_edges (List.init n (fun i -> (i, i + 1)) @ [ (0, 0) ])

let chain_atoms = [ e "x" "y"; e "y" "z" ]

let envs_of plan =
  let out = ref [] in
  Engine.iter_envs plan (fun env -> out := Array.copy env :: !out);
  List.rev !out

(* ---- partitioning decision --------------------------------------------- *)

let test_decision () =
  let db = chain_db 40 in
  let plan = Engine.compile db chain_atoms ~init:Mapping.empty in
  with_engine ~domains:1 ~min_rows:128 (fun () ->
      let d = P.decision plan in
      check_int "pool of 1" 1 d.P.d_domains;
      check_int "sequential = one chunk" 1 d.P.d_chunks;
      check_bool "rows counted" true (d.P.d_rows > 0));
  with_engine ~domains:4 ~min_rows:1 (fun () ->
      let d = P.decision plan in
      check_int "configured pool" 4 d.P.d_domains;
      check_bool "chunked" true (d.P.d_chunks > 1);
      check_bool "chunks cover the rows" true
        (d.P.d_chunks * d.P.d_chunk_rows >= d.P.d_rows);
      check_bool "names the top-level atom" true (d.P.d_atom <> None));
  with_engine ~domains:4 ~min_rows:1_000_000 (fun () ->
      let d = P.decision plan in
      check_int "under the threshold: sequential" 1 d.P.d_chunks)

(* ---- reducers ----------------------------------------------------------- *)

let test_reducers () =
  let db = chain_db 40 in
  let plan = Engine.compile db chain_atoms ~init:Mapping.empty in
  let seq_count = with_engine ~domains:1 (fun () -> Engine.count_envs plan) in
  let seq_envs = with_engine ~domains:1 (fun () -> envs_of plan) in
  check_bool "instance is non-trivial" true (seq_count > 10);
  List.iter
    (fun nd ->
      with_engine ~domains:nd ~min_rows:1 (fun () ->
          check_int
            (Printf.sprintf "count at %d domains" nd)
            seq_count (Engine.count_envs plan);
          check_bool
            (Printf.sprintf "sat at %d domains" nd)
            true (Engine.sat plan);
          check_bool
            (Printf.sprintf "enumeration order at %d domains" nd)
            true
            (envs_of plan = seq_envs)))
    [ 2; 4 ];
  (* an unsatisfiable plan stays unsatisfiable in parallel *)
  let dead =
    Engine.compile db [ e "x" "y"; atom "U" [ v "x" ] ] ~init:Mapping.empty
  in
  with_engine ~domains:4 ~min_rows:1 (fun () ->
      check_bool "no witness" false (Engine.sat dead);
      check_int "empty count" 0 (Engine.count_envs dead))

(* a worker callback that re-enters the engine must not deadlock or nest
   domain pools: the nested call takes the sequential path *)
let test_reentrancy () =
  let db = chain_db 20 in
  let plan = Engine.compile db [ e "x" "y" ] ~init:Mapping.empty in
  with_engine ~domains:4 ~min_rows:1 (fun () ->
      let nested_ok = ref true in
      Engine.iter_envs plan (fun _ ->
          if Engine.count_envs plan <= 0 then nested_ok := false);
      check_bool "nested evaluation inside a callback" true !nested_ok)

(* ---- incremental compiled databases ------------------------------------ *)

let test_incremental_extension () =
  let db = db_of_edges [ (1, 2); (2, 3) ] in
  let before = Cq.Eval.answers db (Cq.Query.make ~head:[ "x" ] ~body:[ e "x" "y" ]) in
  check_int "answers before" 2 (Mapping.Set.cardinal before);
  let v0 = Database.version db in
  Database.add db (Fact.make "E" [ Value.int 3; Value.int 4 ]);
  check_bool "cache survives add" true (Database.get_cache db <> None);
  check_bool "catch-up feed" true
    (Database.facts_since db v0 = [ Fact.make "E" [ Value.int 3; Value.int 4 ] ]);
  let after = Cq.Eval.answers db (Cq.Query.make ~head:[ "x" ] ~body:[ e "x" "y" ]) in
  check_int "new fact visible after extension" 3 (Mapping.Set.cardinal after);
  (* the extended form answers exactly like a from-scratch rebuild *)
  Database.clear_cache db;
  let rebuilt = Cq.Eval.answers db (Cq.Query.make ~head:[ "x" ] ~body:[ e "x" "y" ]) in
  check_bool "extension = rebuild" true (Mapping.Set.equal after rebuilt)

(* the catch-up feed at its boundaries: an up-to-date reader gets an empty
   batch, a reader claiming a version from the future gets an empty batch
   (never a negative take or an exception), and extending after a cache
   clear rebuilds to the same answers as extending a live cache *)
let test_facts_since_edges () =
  let db = db_of_edges [ (1, 2); (2, 3) ] in
  let now = Database.version db in
  check_bool "up to date: empty batch" true (Database.facts_since db now = []);
  check_bool "future version: empty batch" true
    (Database.facts_since db (now + 5) = []);
  Database.add db (Fact.make "E" [ Value.int 3; Value.int 4 ]);
  check_bool "one-fact batch" true
    (Database.facts_since db now = [ Fact.make "E" [ Value.int 3; Value.int 4 ] ]);
  check_bool "caught up again" true
    (Database.facts_since db (Database.version db) = []);
  (* an add that lands after clear_cache (no compiled form to extend in
     place) must be indistinguishable from an incremental extension *)
  let q = Cq.Query.make ~head:[ "x" ] ~body:[ e "x" "y" ] in
  let live = db_of_edges [ (1, 2); (2, 3) ] in
  ignore (Cq.Eval.answers live q);
  Database.add live (Fact.make "E" [ Value.int 3; Value.int 4 ]);
  let incremental = Cq.Eval.answers live q in
  let cleared = db_of_edges [ (1, 2); (2, 3) ] in
  ignore (Cq.Eval.answers cleared q);
  Database.clear_cache cleared;
  Database.add cleared (Fact.make "E" [ Value.int 3; Value.int 4 ]);
  check_bool "add after clear_cache = incremental extension" true
    (Mapping.Set.equal (Cq.Eval.answers cleared q) incremental)

let test_e006_extended () =
  let db = db_of_edges [ (1, 2); (2, 3) ] in
  let plan = Engine.compile db [ e "x" "y" ] ~init:Mapping.empty in
  check_bool "fresh plan audits clean" true
    (Analysis.Plan_audit.audit plan = []);
  Database.add db (Fact.make "E" [ Value.int 3; Value.int 4 ]);
  (* store not yet caught up: the old plan is detached (error form) *)
  (match Analysis.Plan_audit.audit plan with
  | [ { D.code = D.Stale_plan; severity = D.Error; witness = Some (D.Stale _); _ } ]
    ->
      ()
  | ds -> Alcotest.failf "expected detached-stale, got %d finding(s)" (List.length ds));
  (* compiling anything catches the shared store up in place; now the old
     plan is merely extended (warning form), and a fresh plan is clean *)
  let fresh = Engine.compile db [ e "x" "y" ] ~init:Mapping.empty in
  check_bool "fresh plan after extension audits clean" true
    (Analysis.Plan_audit.audit fresh = []);
  (match Analysis.Plan_audit.audit plan with
  | [ { D.code = D.Stale_plan;
        severity = D.Warning;
        witness = Some (D.Extended { compiled; store; live });
        _
      } ] ->
      check_bool "compiled < store" true (compiled < store);
      check_int "store caught up to live" live store
  | ds ->
      Alcotest.failf "expected incrementally-extended, got %d finding(s)"
        (List.length ds));
  (* the extended store is usable: the old plan's view sees the new row *)
  let view = Engine.Inspect.plan plan in
  check_int "extended row count" 3 view.Engine.Inspect.i_atoms.(0).Engine.Inspect.a_rows

(* ---- properties --------------------------------------------------------- *)

let prop_parallel_answers_agree =
  qtest ~count:150 "parallel answers = sequential answers (domains 1/2/4)"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let reference = Cq.Eval.answers db q in
      List.for_all
        (fun nd ->
          with_engine ~domains:nd ~min_rows:1 (fun () ->
              Mapping.Set.equal (Cq.Eval.answers db q) reference))
        [ 1; 2; 4 ])

let prop_parallel_wdpt_agree =
  qtest ~count:60 "parallel WDPT eval = sequential (domains 2/4)"
    (QCheck.pair arbitrary_small_wdpt arbitrary_db) (fun (p, db) ->
      let reference = Wdpt.Semantics.eval db p in
      List.for_all
        (fun nd ->
          with_engine ~domains:nd ~min_rows:1 (fun () ->
              Mapping.Set.equal (Wdpt.Semantics.eval db p) reference))
        [ 2; 4 ])

let prop_parallel_order_deterministic =
  qtest ~count:150 "parallel enumeration order = sequential, twice"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let plan = Engine.compile db (Cq.Query.body q) ~init:Mapping.empty in
      let seq = with_engine ~domains:1 (fun () -> envs_of plan) in
      with_engine ~domains:4 ~min_rows:1 (fun () ->
          let run1 = envs_of plan and run2 = envs_of plan in
          run1 = run2 && run1 = seq))

let prop_checked_parallel_parity =
  qtest ~count:100 "checked parallel = checked sequential, env for env"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let plan = Engine.compile db (Cq.Query.body q) ~init:Mapping.empty in
      let seq =
        with_engine ~domains:1 ~checked:true (fun () -> envs_of plan)
      in
      with_engine ~domains:4 ~min_rows:1 ~checked:true (fun () ->
          envs_of plan = seq))

let prop_incremental_equals_rebuild =
  qtest ~count:100 "incremental add + re-eval = rebuild from scratch"
    (QCheck.triple arbitrary_cq arbitrary_db arbitrary_db)
    (fun (q, db, extra) ->
      (* warm the compiled form, then extend it in place fact by fact *)
      ignore (Cq.Eval.answers db q);
      List.iter (Database.add db) (Database.facts extra);
      let incremental = Cq.Eval.answers db q in
      (* the same final fact set, compiled from scratch *)
      let scratch = Database.of_list (Database.facts db) in
      let rebuilt = Cq.Eval.answers scratch q in
      Database.clear_cache db;
      let recleared = Cq.Eval.answers db q in
      Mapping.Set.equal incremental rebuilt
      && Mapping.Set.equal incremental recleared)

let suite =
  [ Alcotest.test_case "partitioning decision" `Quick test_decision;
    Alcotest.test_case "reducers" `Quick test_reducers;
    Alcotest.test_case "region re-entrancy" `Quick test_reentrancy;
    Alcotest.test_case "incremental extension" `Quick test_incremental_extension;
    Alcotest.test_case "facts_since edge cases" `Quick test_facts_since_edges;
    Alcotest.test_case "E006 extended vs detached" `Quick test_e006_extended;
    prop_parallel_answers_agree;
    prop_parallel_wdpt_agree;
    prop_parallel_order_deterministic;
    prop_checked_parallel_parity;
    prop_incremental_equals_rebuild ]
