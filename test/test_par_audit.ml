(* The concurrency auditor (Analysis.Par_audit, E011-E016) and the data-race
   sanitizer: genuine parallel plans audit clean at every pool size, each
   corruption of the par_view draws exactly its E-code with the exact
   machine-checkable witness, sanitized parallel runs report zero races and
   sequential-identical answers, and the seeded fault-injection hook (the
   test-only corrupted reducer) is caught both dynamically (Race_failure)
   and statically (E014 on the genuine view). Also locks the explain JSON
   schema for the partitioning decision across pool sizes. *)

open Relational
open Helpers
module P = Engine.Parallel
module I = Engine.Inspect
module D = Analysis.Diagnostic

(* every test restores the ambient engine configuration, whatever happens
   (the suite may itself run under WDPT_ENGINE_DOMAINS / _TSAN) *)
let with_engine ?domains ?min_rows ?race ?fault f =
  let d0 = P.domains () and m0 = P.min_rows () in
  let r0 = P.race_check_enabled () and f0 = P.fault_injection_enabled () in
  Option.iter P.set_domains domains;
  Option.iter P.set_min_rows min_rows;
  Option.iter P.set_race_check race;
  Option.iter P.set_fault_injection fault;
  Fun.protect
    ~finally:(fun () ->
      P.set_domains d0;
      P.set_min_rows m0;
      P.set_race_check r0;
      P.set_fault_injection f0)
    f

let chain_db n = db_of_edges (List.init n (fun i -> (i, i + 1)) @ [ (0, 0) ])
let chain_atoms = [ e "x" "y"; e "y" "z" ]

let compile_plan () =
  Engine.compile (chain_db 40) chain_atoms ~init:Mapping.empty

let envs_of plan =
  let out = ref [] in
  Engine.iter_envs plan (fun env -> out := Array.copy env :: !out);
  List.rev !out

(* ---- genuine views audit clean ------------------------------------------ *)

let test_genuine_clean () =
  let plan = compile_plan () in
  List.iter
    (fun nd ->
      with_engine ~domains:nd ~min_rows:1 (fun () ->
          let v = I.par plan in
          check_bool
            (Printf.sprintf "parallel decision at pool %d" nd)
            (nd > 1) (not v.I.pv_sequential);
          check_bool
            (Printf.sprintf "clean at pool %d" nd)
            true
            (Analysis.Par_audit.audit_view v = [])))
    [ 1; 2; 4; 8 ];
  (* threshold fallback: sequential single-chunk view, still clean *)
  with_engine ~domains:4 ~min_rows:1_000_000 (fun () ->
      let v = I.par plan in
      check_bool "under threshold: sequential" true v.I.pv_sequential;
      check_int "single chunk" 1 (Array.length v.I.pv_chunks);
      check_bool "clean" true (Analysis.Par_audit.audit_view v = []))

(* ---- corruption tests: exactly the right code + witness ----------------- *)

let audit1 name v =
  match Analysis.Par_audit.audit_view v with
  | [ d ] -> d
  | ds -> Alcotest.failf "%s: expected 1 finding, got %d" name (List.length ds)

let test_e011 () =
  with_engine ~domains:4 ~min_rows:1 (fun () ->
      let v = I.par (compile_plan ()) in
      let rows = v.I.pv_rows in
      check_bool "instance chunks" true (rows >= 4);
      (* gap: the second chunk starts one row past where the first ended *)
      (match audit1 "gap" { v with I.pv_chunks = [| (0, 2); (3, rows) |] } with
      | { D.code = D.Chunk_coverage;
          witness =
            Some (D.Coverage { chunk = 1; lo = 3; hi; expected_lo = 2; rows = r });
          _
        } ->
          check_int "gap hi" rows hi;
          check_int "gap rows" rows r
      | _ -> Alcotest.fail "gap: wrong code or witness");
      (* overlap: the second chunk re-covers the first one's last row *)
      (match
         audit1 "overlap" { v with I.pv_chunks = [| (0, 3); (2, rows) |] }
       with
      | { D.code = D.Chunk_coverage;
          witness = Some (D.Coverage { chunk = 1; lo = 2; expected_lo = 3; _ });
          _
        } ->
          ()
      | _ -> Alcotest.fail "overlap: wrong code or witness");
      (* short tail: the partition ends one row before the range does *)
      (match audit1 "tail" { v with I.pv_chunks = [| (0, rows - 1) |] } with
      | { D.code = D.Chunk_coverage;
          witness = Some (D.Coverage { chunk = 1; lo; expected_lo; rows = r; _ });
          _
        } ->
          check_int "tail lo" (rows - 1) lo;
          check_int "tail expected" rows expected_lo;
          check_int "tail rows" rows r
      | _ -> Alcotest.fail "tail: wrong code or witness"))

let corrupt_reducer v i f =
  let rs = Array.copy v.I.pv_reducers in
  rs.(i) <- f rs.(i);
  { v with I.pv_reducers = rs }

let test_e012 () =
  with_engine ~domains:4 ~min_rows:1 (fun () ->
      let v = I.par (compile_plan ()) in
      (* the enumeration merge loses chunk order *)
      let bad =
        corrupt_reducer v 0 (fun r ->
            { r with I.r_merge = "unordered-hash-union"; r_order_preserving = false })
      in
      match audit1 "e012" bad with
      | { D.code = D.Unsound_reducer;
          witness =
            Some
              (D.Reducer_unsound
                 { primitive = "enum"; merge = "unordered-hash-union" });
          _
        } ->
          ()
      | _ -> Alcotest.fail "E012: wrong code or witness")

let test_e013 () =
  with_engine ~domains:4 ~min_rows:1 (fun () ->
      let v = I.par (compile_plan ()) in
      (* the count reducer — a total primitive — raises the cancel flag *)
      let bad = corrupt_reducer v 1 (fun r -> { r with I.r_cancelling = true }) in
      match audit1 "e013" bad with
      | { D.code = D.Cancel_drops;
          witness = Some (D.Cancellation { primitive = "count"; merge = "sum" });
          _
        } ->
          ()
      | _ -> Alcotest.fail "E013: wrong code or witness")

let test_e014 () =
  with_engine ~domains:4 ~min_rows:1 (fun () ->
      let v = I.par (compile_plan ()) in
      (* a write site targeting state outside the declared inventory *)
      let rogue =
        { v with
          I.pv_writes =
            Array.append v.I.pv_writes
              [| { I.w_site = "rogue-spill";
                   w_target = "global-scratch";
                   w_owner_only = false } |] }
      in
      (match audit1 "undeclared" rogue with
      | { D.code = D.Undeclared_write;
          witness =
            Some
              (D.Shared_write
                 { site = "rogue-spill";
                   target = "global-scratch";
                   declared = false;
                   owner_only = false;
                   kind = "undeclared" });
          _
        } ->
          ()
      | _ -> Alcotest.fail "E014 undeclared: wrong code or witness");
      (* a cross-chunk store into chunk-local state *)
      let ws = Array.copy v.I.pv_writes in
      Array.iteri
        (fun i (w : I.write_view) ->
          if w.I.w_site = "enum-solution-buffer" then
            ws.(i) <- { w with I.w_owner_only = false })
        ws;
      (match audit1 "cross-chunk" { v with I.pv_writes = ws } with
      | { D.code = D.Undeclared_write;
          witness =
            Some
              (D.Shared_write
                 { site = "enum-solution-buffer";
                   target = "chunk-buffers";
                   declared = true;
                   owner_only = false;
                   kind = "chunk-local" });
          _
        } ->
          ()
      | _ -> Alcotest.fail "E014 cross-chunk: wrong code or witness"))

let test_e015 () =
  with_engine ~domains:4 ~min_rows:1 (fun () ->
      let v = I.par (compile_plan ()) in
      check_int "one snapshot per domain" 4 (Array.length v.I.pv_snapshots);
      let c, s, l = v.I.pv_snapshots.(0) in
      let snaps = Array.copy v.I.pv_snapshots in
      snaps.(2) <- (c, s, l + 1);
      match audit1 "e015" { v with I.pv_snapshots = snaps } with
      | { D.code = D.Version_skew;
          witness =
            Some
              (D.Skew
                 { domain = 2;
                   compiled;
                   store;
                   live;
                   ref_domain = 0;
                   ref_compiled;
                   ref_store;
                   ref_live });
          _
        } ->
          check_int "skew compiled" c compiled;
          check_int "skew store" s store;
          check_int "skew live" (l + 1) live;
          check_int "ref compiled" c ref_compiled;
          check_int "ref store" s ref_store;
          check_int "ref live" l ref_live
      | _ -> Alcotest.fail "E015: wrong code or witness")

let test_e016 () =
  with_engine ~domains:4 ~min_rows:1 (fun () ->
      let v = I.par (compile_plan ()) in
      let rows = v.I.pv_rows in
      check_bool "chunked" true (Array.length v.I.pv_chunks > 1);
      (* fat chunk: a coverage-clean partition whose second chunk exceeds the
         cap — exactly the single-huge-chunk skew morsels exist to fix *)
      let fat =
        { v with I.pv_morsel_rows = 4; pv_chunks = [| (0, 2); (2, rows) |] }
      in
      (match audit1 "fat" fat with
      | { D.code = D.Morsel_coverage;
          witness =
            Some (D.Morsel { chunk = 1; lo = 2; hi; stride = 2; morsel = 4 });
          _
        } ->
          check_int "fat hi" rows hi
      | _ -> Alcotest.fail "E016 fat: wrong code or witness");
      (* broken stride: a chunk before the last deviates from chunk 0's *)
      (match
         audit1 "stride"
           { v with I.pv_chunks = [| (0, 20); (20, 25); (25, rows) |] }
       with
      | { D.code = D.Morsel_coverage;
          witness =
            Some (D.Morsel { chunk = 1; lo = 20; hi = 25; stride = 20; _ });
          _
        } ->
          ()
      | _ -> Alcotest.fail "E016 stride: wrong code or witness");
      (* overlong tail: the last chunk is wider than the stride *)
      (match
         audit1 "tail" { v with I.pv_chunks = [| (0, 2); (2, 4); (4, rows) |] }
       with
      | { D.code = D.Morsel_coverage;
          witness = Some (D.Morsel { chunk = 2; lo = 4; hi; stride = 2; _ });
          _
        } ->
          check_int "tail hi" rows hi
      | _ -> Alcotest.fail "E016 tail: wrong code or witness");
      (* gated on E011: a broken partition draws coverage, not morsel *)
      match audit1 "gated" { v with I.pv_chunks = [| (0, 2); (3, rows) |] } with
      | { D.code = D.Chunk_coverage; _ } -> ()
      | _ -> Alcotest.fail "E016 gating: expected the E011 finding alone")

(* ---- race sanitizer ------------------------------------------------------ *)

let test_sanitizer_clean () =
  let plan = compile_plan () in
  let seq_count = with_engine ~domains:1 (fun () -> Engine.count_envs plan) in
  let seq_envs = with_engine ~domains:1 (fun () -> envs_of plan) in
  with_engine ~domains:4 ~min_rows:1 ~race:true (fun () ->
      let s0 = P.race_stats () in
      check_int "sanitized count" seq_count (Engine.count_envs plan);
      check_bool "sanitized sat" true (Engine.sat plan);
      check_bool "sanitized order" true (envs_of plan = seq_envs);
      let s1 = P.race_stats () in
      check_bool "regions validated" true (s1.P.rs_regions > s0.P.rs_regions);
      check_bool "accesses logged" true (s1.P.rs_events > s0.P.rs_events);
      check_int "zero races" s0.P.rs_races s1.P.rs_races)

let test_fault_injection_caught () =
  let plan = compile_plan () in
  with_engine ~domains:4 ~min_rows:1 ~race:true ~fault:true (fun () ->
      let s0 = P.race_stats () in
      (match Engine.count_envs plan with
      | _ -> Alcotest.fail "corrupted count reducer not caught"
      | exception Engine.Race_failure _ -> ());
      (match envs_of plan with
      | _ -> Alcotest.fail "corrupted enum reducer not caught"
      | exception Engine.Race_failure _ -> ());
      let s1 = P.race_stats () in
      check_int "both races recorded" (s0.P.rs_races + 2) s1.P.rs_races);
  (* the genuine view declares the seeded cross-chunk store while the fault
     is live, so the static auditor flags it too — E014, same defect *)
  with_engine ~domains:4 ~min_rows:1 ~fault:true (fun () ->
      match Analysis.Par_audit.audit plan with
      | [ { D.code = D.Undeclared_write;
            witness =
              Some
                (D.Shared_write
                   { site = "fault-injection";
                     target = "chunk-counts";
                     declared = true;
                     owner_only = false;
                     kind = "chunk-local" });
            _
          } ] ->
          ()
      | ds ->
          Alcotest.failf "fault injection: expected E014, got %d finding(s)"
            (List.length ds))

(* ---- explain consistency across pool sizes (schema lock) ---------------- *)

let json_keys = function
  | Analysis.Json.Obj fields -> List.map fst fields
  | _ -> []

let test_explain_consistency () =
  let plan = compile_plan () in
  let views =
    List.map
      (fun nd ->
        with_engine ~domains:nd ~min_rows:1 (fun () ->
            (nd, I.par plan, P.decision plan)))
      [ 1; 2; 4; 8 ]
  in
  let _, ref_v, _ = List.hd views in
  List.iter
    (fun (nd, v, decision) ->
      check_int (Printf.sprintf "pool reported at %d" nd) nd v.I.pv_domains;
      check_int "rows invariant across pools" ref_v.I.pv_rows v.I.pv_rows;
      check_bool "atom invariant across pools" true (v.I.pv_atom = ref_v.I.pv_atom);
      check_int "one snapshot per domain" nd (Array.length v.I.pv_snapshots);
      (* the chunks partition [0, rows) at every pool size *)
      let covered =
        Array.fold_left
          (fun expected (lo, hi) ->
            check_int "chunks contiguous" expected lo;
            hi)
          0 v.I.pv_chunks
      in
      check_int "chunks cover the rows" v.I.pv_rows covered;
      if nd = 1 then begin
        check_bool "pool 1 = sequential fallback" true v.I.pv_sequential;
        check_int "pool 1 = one chunk" 1 (Array.length v.I.pv_chunks)
      end
      else check_bool "pool > 1 chunked" true (Array.length v.I.pv_chunks > 1);
      (* view and decision agree — text and JSON render the same data *)
      check_int "decision rows" v.I.pv_rows decision.P.d_rows;
      check_bool "decision atom" true (v.I.pv_atom = decision.P.d_atom);
      check_bool "decision reason" true (v.I.pv_reason = decision.P.d_reason);
      (* the JSON schemas the explain CLI emits, locked *)
      check_bool "par_audit json schema" true
        (json_keys (Analysis.Par_audit.par_json v)
        = [ "domains"; "min-rows"; "morsel-rows"; "atom"; "rows"; "sequential";
            "reason"; "chunks"; "reducers"; "shared"; "writes"; "snapshots" ]);
      check_bool "parallel json schema" true
        (json_keys (Analysis.Cost.parallel_json decision)
        = [ "domains"; "atom"; "rows"; "chunks"; "chunk-rows"; "reason" ]))
    views

(* ---- properties ---------------------------------------------------------- *)

let prop_genuine_clean =
  qtest ~count:100 "genuine par views audit clean (pools 1/2/4)"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let plan = Engine.compile db (Cq.Query.body q) ~init:Mapping.empty in
      List.for_all
        (fun nd ->
          with_engine ~domains:nd ~min_rows:1 (fun () ->
              Analysis.Par_audit.audit plan = []))
        [ 1; 2; 4 ])

let prop_sanitized_agree =
  qtest ~count:60 "sanitizer-on parallel answers = sequential, zero races"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let reference = Cq.Eval.answers db q in
      let races0 = (P.race_stats ()).P.rs_races in
      List.for_all
        (fun nd ->
          with_engine ~domains:nd ~min_rows:1 ~race:true (fun () ->
              Mapping.Set.equal (Cq.Eval.answers db q) reference))
        [ 2; 4 ]
      && (P.race_stats ()).P.rs_races = races0)

let suite =
  [ Alcotest.test_case "genuine views audit clean" `Quick test_genuine_clean;
    Alcotest.test_case "E011 coverage gap/overlap/tail" `Quick test_e011;
    Alcotest.test_case "E012 order-unsound reducer" `Quick test_e012;
    Alcotest.test_case "E013 cancellation drops answers" `Quick test_e013;
    Alcotest.test_case "E014 undeclared shared write" `Quick test_e014;
    Alcotest.test_case "E015 cross-domain version skew" `Quick test_e015;
    Alcotest.test_case "E016 morsel coverage" `Quick test_e016;
    Alcotest.test_case "sanitizer: clean parallel runs" `Quick
      test_sanitizer_clean;
    Alcotest.test_case "sanitizer: fault injection caught" `Quick
      test_fault_injection_caught;
    Alcotest.test_case "explain consistency across pools" `Quick
      test_explain_consistency;
    prop_genuine_clean;
    prop_sanitized_agree ]
