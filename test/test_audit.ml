(* The plan auditor (Analysis.Plan_audit), the static cost model
   (Analysis.Cost) and the checked execution mode: every genuine plan audits
   clean, every deliberately corrupted IR view is rejected with the right
   E-code and witness, static bounds dominate measured counts, and the
   instrumented interpreter agrees with the fast path answer-for-answer. *)

open Relational
open Helpers
module D = Analysis.Diagnostic
module I = Engine.Inspect
module Audit = Analysis.Plan_audit

let db3 () = db_of_edges [ (1, 2); (2, 3); (3, 4) ]

let compile_view atoms =
  let db = db3 () in
  Database.add db (Fact.make "U" [ Value.int 1 ]);
  let p = Engine.compile db atoms ~init:Mapping.empty in
  Engine.Inspect.plan p

let codes ds = List.map (fun d -> d.D.code) ds

let check_codes name expected ds =
  Alcotest.(check (list string))
    name
    (List.map D.code_id expected)
    (List.map D.code_id (codes ds))

(* ---- clean plans -------------------------------------------------------- *)

let test_clean () =
  let view = compile_view [ e "x" "y"; e "y" "z"; atom "U" [ v "x" ] ] in
  check_codes "fresh plan audits clean" [] (Audit.audit_view view);
  (* infeasible plan (constant missing from the database): no instructions,
     so only the staleness check applies — and passes *)
  let infeasible = compile_view [ atom "E" [ c 99; v "y" ] ] in
  check_bool "infeasible" false infeasible.I.i_feasible;
  check_codes "infeasible plan audits clean" [] (Audit.audit_view infeasible)

(* ---- one corruption per E-code ----------------------------------------- *)

let corrupt_atom view i f =
  let atoms = Array.copy view.I.i_atoms in
  atoms.(i) <- f atoms.(i);
  { view with I.i_atoms = atoms }

let test_e001 () =
  (* both variables also occur in the second atom, so rewriting one op of the
     first cannot additionally orphan a slot (which would add an E004) *)
  let view = compile_view [ e "x" "y"; e "y" "x" ] in
  let bad =
    corrupt_atom view 0 (fun av ->
        let ops = Array.copy av.I.a_ops in
        ops.(0) <- Engine.Slot 99;
        { av with I.a_ops = ops })
  in
  match Audit.audit_view bad with
  | [ { D.code = D.Uninit_slot_read;
        witness = Some (D.Slot_range { atom = 0; op = 0; slot = 99; env });
        _ } ] ->
      check_int "environment size in witness" (Array.length view.I.i_env) env
  | ds -> Alcotest.failf "expected one E001, got %d: %s" (List.length ds)
            (String.concat "," (List.map (fun d -> D.code_id d.D.code) ds))

let test_e002 () =
  let view = compile_view [ atom "E" [ c 1; v "y" ] ] in
  (* corrupt the Check constant *)
  let bad =
    corrupt_atom view 0 (fun av ->
        let ops = Array.copy av.I.a_ops in
        ops.(0) <- Engine.Check 9999;
        { av with I.a_ops = ops })
  in
  (match Audit.audit_view bad with
  | [ { D.code = D.Interner_range; witness = Some (D.Id_range { id = 9999; pool; _ }); _ } ] ->
      check_int "pool size in witness" view.I.i_pool pool
  | ds -> check_codes "check-op corruption" [ D.Interner_range ] ds);
  (* corrupt an initial binding *)
  let env = Array.copy view.I.i_env in
  env.(0) <- view.I.i_pool + 7;
  check_codes "init-binding corruption" [ D.Interner_range ]
    (Audit.audit_view { view with I.i_env = env })

let test_e003 () =
  let view = compile_view [ e "x" "y" ] in
  let bad = corrupt_atom view 0 (fun av -> { av with I.a_index_arity = 5 }) in
  match Audit.audit_view bad with
  | [ { D.code = D.Plan_arity_mismatch;
        witness = Some (D.Plan_arity { relation = "E"; ops = 2; arity = 2; index = 5; _ });
        _ } ] -> ()
  | ds -> check_codes "index-arity corruption" [ D.Plan_arity_mismatch ] ds

let test_e004 () =
  let view = compile_view [ e "x" "y" ] in
  let bad =
    { view with
      I.i_slots = Array.append view.I.i_slots [| "dead" |];
      I.i_env = Array.append view.I.i_env [| -1 |] }
  in
  match Audit.audit_view bad with
  | [ { D.code = D.Dead_slot;
        witness = Some (D.Dead_slot_of { slot; variable = "dead" }); _ } ] ->
      check_int "dead slot index" (Array.length view.I.i_slots) slot
  | ds -> check_codes "dead-slot corruption" [ D.Dead_slot ] ds

let test_e005 () =
  (* U has 1 row, E has 3: the order must put the U atom first *)
  let view = compile_view [ e "x" "y"; atom "U" [ v "x" ] ] in
  check_bool "compiler orders ascending" true (view.I.i_order = [| 1; 0 |]);
  let bad = { view with I.i_order = [| 0; 1 |] } in
  (match Audit.audit_view bad with
  | [ { D.code = D.Order_inversion;
        witness =
          Some
            (D.Inversion
               { first = 0; rows_first = 3; second = 1; rows_second = 1; _ });
        _ } ] -> ()
  | ds -> check_codes "reversed order" [ D.Order_inversion ] ds);
  check_codes "non-permutation order" [ D.Order_inversion ]
    (Audit.audit_view { view with I.i_order = [| 0; 0 |] })

let test_e005_selectivity () =
  (* F has MORE rows than E (4 > 3), but its checked first position has 4
     distinct values, so the distinct-count discount drives its score to 0 —
     below E's log10 3. The selectivity-aware order puts F first where a
     pure row-count order would put it last. *)
  let db = db3 () in
  List.iter
    (fun i -> Database.add db (Fact.make "F" [ Value.int i; Value.int 0 ]))
    [ 1; 2; 3; 4 ];
  let p =
    Engine.compile db [ e "x" "y"; atom "F" [ c 2; v "z" ] ] ~init:Mapping.empty
  in
  let view = Engine.Inspect.plan p in
  check_bool "selective atom ordered first despite more rows" true
    (view.I.i_order = [| 1; 0 |]);
  check_codes "selectivity order audits clean" [] (Audit.audit_view view);
  match Audit.audit_view { view with I.i_order = [| 0; 1 |] } with
  | [ { D.code = D.Order_inversion;
        witness =
          Some
            (D.Inversion
               { first = 0; rows_first = 3; second = 1; rows_second = 4;
                 score_first; score_second; _ });
        _ } ] ->
      (* the witness carries the scores that justify the inversion: the
         later atom has the smaller key even though it has more rows *)
      check_bool "second score below first" true (score_second < score_first)
  | ds -> check_codes "row-count order trips E005" [ D.Order_inversion ] ds

let test_e006 () =
  let db = db3 () in
  let p = Engine.compile db [ e "x" "y" ] ~init:Mapping.empty in
  check_codes "fresh plan not stale" [] (Audit.audit p);
  Database.add db (Fact.make "E" [ Value.int 7; Value.int 8 ]);
  match Audit.audit p with
  | [ { D.code = D.Stale_plan; witness = Some (D.Stale { compiled; live }); _ } ] ->
      check_bool "live version moved past compiled" true (live > compiled)
  | ds -> check_codes "stale plan" [ D.Stale_plan ] ds

(* ---- cost model sanity -------------------------------------------------- *)

let test_cost_basic () =
  let db = db3 () in
  let atoms = [ e "x" "y"; e "y" "z" ] in
  let cost = Analysis.Cost.analyze db atoms ~free:[ "x"; "z" ] in
  check_int "atoms" 2 cost.Analysis.Cost.natoms;
  check_int "vars" 3 cost.Analysis.Cost.nvars;
  check_bool "path query is acyclic" true cost.Analysis.Cost.acyclic;
  check_bool "acyclic classified polynomial" true
    (cost.Analysis.Cost.growth = Analysis.Cost.Polynomial 1);
  (* 2 length-2 paths (1-2-3, 2-3-4); the bound must dominate the count *)
  check_bool "bound dominates measured" true
    (Analysis.Cost.bound_count cost >= 2);
  (* product bound: 3 * 3 = 9 *)
  check_bool "relation product" true
    (abs_float (cost.Analysis.Cost.product_bound -. log10 9.) < 1e-9)

let test_cost_empty_relation () =
  let db = db3 () in
  let cost = Analysis.Cost.analyze db [ atom "Z" [ v "x" ] ] ~free:[ "x" ] in
  check_bool "empty relation gives -inf bound" true
    (cost.Analysis.Cost.answer_bound = neg_infinity);
  check_int "integer ceiling is zero" 0 (Analysis.Cost.bound_count cost)

let test_tree_class () =
  let chain =
    Wdpt.Pattern_tree.make ~free:[ "x" ]
      (Wdpt.Pattern_tree.Node
         ( [ e "x" "y" ],
           [ Wdpt.Pattern_tree.Node ([ e "y" "z" ], []) ] ))
  in
  (match Analysis.Cost.tree_class chain with
  | Some (k, c) ->
      check_int "chain local treewidth" 1 k;
      check_int "chain interface" 1 c
  | None -> Alcotest.fail "chain tree must classify");
  check_bool "chain polynomial" true
    (match Analysis.Cost.tree_growth chain with
    | Analysis.Cost.Polynomial _ -> true
    | Analysis.Cost.Exponential -> false)

(* ---- qcheck properties -------------------------------------------------- *)

(* (a) every plan compiled from a valid query audits clean *)
let prop_compiled_plans_audit_clean =
  qtest ~count:300 "compiled plans pass the audit with zero diagnostics"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let p = Engine.compile db (Cq.Query.body q) ~init:Mapping.empty in
      Audit.audit p = [])

(* (b) the static bounds dominate the measured counts *)
let prop_bound_dominates =
  qtest ~count:300 "static output bound >= measured answer count"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let body = Cq.Query.body q in
      let free = Cq.Query.head q in
      let cost = Analysis.Cost.analyze db body ~free in
      let homs =
        List.sort_uniq Mapping.compare
          (Cq.Eval.homomorphisms db body ~init:Mapping.empty)
      in
      let answers = Mapping.Set.cardinal (Cq.Eval.answers db q) in
      let dominates measured bound =
        measured = 0 || log10 (float_of_int measured) <= bound +. 1e-9
      in
      dominates (List.length homs) cost.Analysis.Cost.hom_bound
      && dominates answers cost.Analysis.Cost.answer_bound
      && answers <= Analysis.Cost.bound_count cost)

(* (c) checked execution agrees with the fast path, env for env *)
let prop_checked_agrees =
  qtest ~count:200 "checked execution = fast execution (order and content)"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let p = Engine.compile db (Cq.Query.body q) ~init:Mapping.empty in
      let collect () =
        let out = ref [] in
        Engine.iter_envs p (fun env -> out := Array.copy env :: !out);
        List.rev !out
      in
      let was = Engine.checked_enabled () in
      Engine.set_checked false;
      let fast = collect () in
      Engine.set_checked true;
      let checked = collect () in
      Engine.set_checked was;
      List.length fast = List.length checked
      && List.for_all2 (fun a b -> a = b) fast checked)

let suite =
  [ Alcotest.test_case "clean plans audit clean" `Quick test_clean;
    Alcotest.test_case "E001 uninitialized slot read" `Quick test_e001;
    Alcotest.test_case "E002 interner id out of range" `Quick test_e002;
    Alcotest.test_case "E003 plan arity mismatch" `Quick test_e003;
    Alcotest.test_case "E004 dead slot" `Quick test_e004;
    Alcotest.test_case "E005 atom order inversion" `Quick test_e005;
    Alcotest.test_case "E005 is selectivity-aware" `Quick test_e005_selectivity;
    Alcotest.test_case "E006 stale plan cache" `Quick test_e006;
    Alcotest.test_case "cost model basics" `Quick test_cost_basic;
    Alcotest.test_case "cost of empty relation" `Quick test_cost_empty_relation;
    Alcotest.test_case "tree classification" `Quick test_tree_class;
    prop_compiled_plans_audit_clean;
    prop_bound_dominates;
    prop_checked_agrees ]
