(* Translation validation (Analysis.Equiv) and the dataflow analyzer
   (Analysis.Dataflow): every genuine optimization trail verifies with zero
   diagnostics, each corrupted certificate is rejected with the right E-code
   and witness, the optimized engine answers exactly as the unoptimized one,
   and the dataflow facts are sound for every enumerated environment. *)

open Relational
open Helpers
module D = Analysis.Diagnostic
module I = Engine.Inspect
module Equiv = Analysis.Equiv
module Df = Analysis.Dataflow

let db3u () =
  let db = db_of_edges [ (1, 2); (2, 3); (3, 4) ] in
  Database.add db (Fact.make "U" [ Value.int 1 ]);
  db

(* A plan whose pipeline exercises every pass: the init binding x=1 folds the
   x-slot uses to Checks (constant-fold), which makes U(?x) ground and
   matched by the stored U(1) (dead-instruction drop), orphans the x slot
   (dead-slot) and leaves an order for the reorder passes to re-establish. *)
let opt_plan () =
  let db = db3u () in
  let p =
    Engine.compile db
      [ e "x" "y"; e "y" "z"; atom "U" [ v "x" ] ]
      ~init:(mapping [ ("x", 1) ])
  in
  Engine.optimize p (* no-op if compile already optimized (the default) *)

(* The verification inputs of each pass step: before view, after view,
   certificate, and the stored-row probe of the plan the pass ran on. *)
let steps p =
  let stages, final = I.trail p in
  let plans = I.stage_plans p in
  let arr = Array.of_list stages in
  let n = Array.length arr in
  List.mapi
    (fun i plan ->
      let before, cert = arr.(i) in
      let after = if i + 1 < n then fst arr.(i + 1) else final in
      (before, after, cert, fun ~atom ~row -> I.row_matches plan ~atom ~row))
    plans

let find_step name p =
  match
    List.find_opt (fun (_, _, c, _) -> c.Engine.cert_pass = name) (steps p)
  with
  | Some s -> s
  | None -> Alcotest.failf "no %s step in the trail" name

let codes ds = List.map (fun d -> D.code_id d.D.code) ds

(* ---- clean trails ------------------------------------------------------- *)

let test_clean () =
  let p = opt_plan () in
  let r = Equiv.verify_trail p in
  check_bool "trail verifies" true r.Equiv.r_verified;
  check_int "five passes" 5 (List.length r.Equiv.r_steps);
  Alcotest.(check (list string)) "no diagnostics" []
    (codes (Equiv.diagnostics r));
  let accepted, r' = Equiv.accept p in
  check_bool "accept keeps the optimized plan" true (accepted == p);
  check_bool "accept re-verifies" true r'.Equiv.r_verified;
  (* the unoptimized original is still reachable and has no trail *)
  let base = I.base p in
  let base_stages, _ = I.trail base in
  check_int "base plan has an empty trail" 0 (List.length base_stages)

(* The corruption tests below only mean something if the pipeline actually
   transformed this instance; pin the effects down. *)
let test_effects () =
  let p = opt_plan () in
  let all = steps p in
  let count f = List.length (List.filter f all) in
  check_bool "some pass folded" true
    (count (fun (_, _, c, _) -> Array.length c.Engine.cert_folds > 0) > 0);
  check_bool "some pass dropped an atom" true
    (count (fun (_, _, c, _) -> Array.length c.Engine.cert_drops > 0) > 0);
  check_bool "some pass dropped a slot" true
    (count
       (fun (_, _, c, _) ->
         Array.exists (fun t -> t = -1) c.Engine.cert_slot_map)
       > 0);
  check_bool "some pass reorders" true
    (count (fun (_, _, c, _) -> c.Engine.cert_reorders) > 0);
  (* and the optimized plan still runs: same answers as the base plan *)
  let collect q =
    let out = ref [] in
    Engine.iter_envs q (fun env -> out := Array.copy env :: !out);
    List.rev !out
  in
  check_int "optimized and base plans agree"
    (List.length (collect (I.base p)))
    (List.length (collect p))

(* ---- one corruption per E-code ------------------------------------------ *)

let test_e007 () =
  (* constant-fold maps three slots identically; claiming x and y swapped
     renames both slots without justification *)
  let before, after, cert, probe = find_step "constant-fold" (opt_plan ()) in
  let m = Array.copy cert.Engine.cert_slot_map in
  let t = m.(0) in
  m.(0) <- m.(1);
  m.(1) <- t;
  let bad = { cert with Engine.cert_slot_map = m } in
  match Equiv.verify_step ~probe ~before ~after bad with
  | { D.code = D.Slot_renaming;
      witness = Some (D.Renamed { pass = "constant-fold"; slot; variable; _ });
      _ }
    :: _ ->
      check_int "witness names slot 0" 0 slot;
      Alcotest.(check string) "witness names its variable" "x" variable
  | ds -> Alcotest.failf "expected E007 first, got [%s]"
            (String.concat "," (codes ds))

let test_e008 () =
  (* dead-instruction dropped the ground U atom; erase the justification *)
  let before, after, cert, probe = find_step "dead-instruction" (opt_plan ()) in
  check_bool "the pass recorded a drop" true
    (Array.length cert.Engine.cert_drops > 0);
  let bad = { cert with Engine.cert_drops = [||] } in
  match Equiv.verify_step ~probe ~before ~after bad with
  | { D.code = D.Dropped_check;
      witness = Some (D.Dropped { pass = "dead-instruction"; atom; pos = -1; _ });
      _ }
    :: _ ->
      check_int "witness names the dropped atom"
        (fst cert.Engine.cert_drops.(0)) atom
  | ds -> Alcotest.failf "expected E008 first, got [%s]"
            (String.concat "," (codes ds))

let test_e009 () =
  (* a reordering pass must leave the order sorted by the (ground, score)
     key; reversing the after order breaks that *)
  let before, after, cert, probe =
    find_step "selectivity-reorder" (opt_plan ())
  in
  let n = Array.length after.I.i_order in
  check_bool "at least two atoms survive" true (n >= 2);
  let rev = Array.init n (fun i -> after.I.i_order.(n - 1 - i)) in
  let bad_after = { after with I.i_order = rev } in
  (match Equiv.verify_step ~probe ~before ~after:bad_after cert with
  | { D.code = D.Reorder_violation;
      witness = Some (D.Reordered { pass = "selectivity-reorder"; _ });
      _ }
    :: _ -> ()
  | ds -> Alcotest.failf "expected E009 first, got [%s]"
            (String.concat "," (codes ds)));
  (* a non-reordering pass must not touch the order at all *)
  let before, after, cert, probe = find_step "constant-fold" (opt_plan ()) in
  let swapped = Array.copy after.I.i_order in
  let t = swapped.(0) in
  swapped.(0) <- swapped.(1);
  swapped.(1) <- t;
  match
    Equiv.verify_step ~probe ~before ~after:{ after with I.i_order = swapped }
      cert
  with
  | { D.code = D.Reorder_violation;
      witness = Some (D.Reordered { pass = "constant-fold"; _ }); _ }
    :: _ -> ()
  | ds -> Alcotest.failf "expected E009 first, got [%s]"
            (String.concat "," (codes ds))

let test_e010 () =
  let before, after, cert, probe = find_step "constant-fold" (opt_plan ()) in
  let scores = Array.copy cert.Engine.cert_scores in
  scores.(0) <- scores.(0) +. 1.0;
  let bad = { cert with Engine.cert_scores = scores } in
  (match Equiv.verify_step ~probe ~before ~after bad with
  | [ { D.code = D.Cert_mismatch;
        witness = Some (D.Cert { pass = "constant-fold"; field = "scores"; _ });
        _ } ] -> ()
  | ds -> Alcotest.failf "expected exactly one E010, got [%s]"
            (String.concat "," (codes ds)));
  (* a structurally broken map also lands on E010 (and short-circuits) *)
  let bad_map =
    { cert with
      Engine.cert_slot_map = Array.make (Array.length cert.Engine.cert_slot_map) 0 }
  in
  match Equiv.verify_step ~probe ~before ~after bad_map with
  | { D.code = D.Cert_mismatch;
      witness = Some (D.Cert { field = "slot-map"; _ }); _ }
    :: _ -> ()
  | ds -> Alcotest.failf "expected E010 first, got [%s]"
            (String.concat "," (codes ds))

(* ---- dataflow ----------------------------------------------------------- *)

let test_dataflow_basic () =
  let p = opt_plan () in
  let view = I.plan p in
  let df = Df.analyze view in
  check_bool "feasible" false df.Df.infeasible;
  check_bool "all slots bound at exit" true df.Df.all_bound;
  Alcotest.(check (list int)) "optimized plan has no dead slots" []
    df.Df.dead_slots;
  check_int "one step per order position"
    (Array.length view.I.i_order)
    (Array.length df.Df.steps);
  (* the base (unoptimized) plan still carries the init-bound x slot, which
     the fold would orphan: dataflow flags it as dead there after folding,
     but in the base plan every slot is touched *)
  let base_df = Df.analyze (I.plan (I.base p)) in
  Alcotest.(check (list int)) "base plan has no dead slots either" []
    base_df.Df.dead_slots

let test_dataflow_infeasible () =
  (* 9 occurs only in U, so the stored-id range of E's first position
     excludes it: the analyzer proves E(9, ?y) matches nothing *)
  let db = db_of_edges [ (1, 2); (2, 3); (3, 4) ] in
  Database.add db (Fact.make "U" [ Value.int 9 ]);
  let p = Engine.compile db [ atom "E" [ c 9; v "y" ] ] ~init:Mapping.empty in
  let view = I.plan p in
  if view.I.i_feasible then begin
    let df = Df.analyze view in
    check_bool "proved empty" true df.Df.infeasible;
    check_bool "search bound collapses" true
      (df.Df.search_bound = neg_infinity)
  end;
  (* and the engine agrees: nothing is enumerated *)
  let n = ref 0 in
  Engine.iter_envs p (fun _ -> incr n);
  check_int "no solutions" 0 !n

(* ---- qcheck properties -------------------------------------------------- *)

(* (a) the optimized engine enumerates exactly the unoptimized answers *)
let prop_opt_preserves_answers =
  qtest ~count:300 "optimized plans answer exactly like unoptimized ones"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let collect () =
        List.sort_uniq Mapping.compare
          (Cq.Eval.homomorphisms db (Cq.Query.body q) ~init:Mapping.empty)
      in
      let was = Engine.optimize_enabled () in
      Engine.set_optimize false;
      let plain = collect () in
      Engine.set_optimize true;
      let opt = collect () in
      Engine.set_optimize was;
      List.length plain = List.length opt
      && List.for_all2 (fun a b -> Mapping.equal a b) plain opt)

(* (b) every optimization trail translation-validates *)
let prop_trails_verify =
  qtest ~count:300 "every pass certificate verifies on random plans"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let p =
        Engine.optimize
          (Engine.compile db (Cq.Query.body q) ~init:Mapping.empty)
      in
      (Equiv.verify_trail p).Equiv.r_verified)

(* (c) dataflow facts are sound: every enumerated environment lies inside
   them, and the solution count respects the search bound *)
let prop_dataflow_sound =
  qtest ~count:300 "dataflow facts admit every enumerated environment"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      let p = Engine.compile db (Cq.Query.body q) ~init:Mapping.empty in
      let view = Engine.Inspect.plan p in
      let df = Df.analyze view in
      let sound = ref true in
      let count = ref 0 in
      Engine.iter_envs p (fun env ->
          incr count;
          Array.iteri
            (fun s id ->
              if id >= 0 && not (Df.admits (Df.fact_of_slot df s) id) then
                sound := false)
            env);
      !sound
      && (!count = 0 || not df.Df.infeasible)
      && (!count = 0
         || log10 (float_of_int !count) <= df.Df.search_bound +. 1e-9))

let suite =
  [ Alcotest.test_case "clean trails verify" `Quick test_clean;
    Alcotest.test_case "the pipeline transforms the pinned instance" `Quick
      test_effects;
    Alcotest.test_case "E007 unjustified slot renaming" `Quick test_e007;
    Alcotest.test_case "E008 dropped check" `Quick test_e008;
    Alcotest.test_case "E009 reorder violates dependency" `Quick test_e009;
    Alcotest.test_case "E010 certificate/plan mismatch" `Quick test_e010;
    Alcotest.test_case "dataflow on the pinned instance" `Quick
      test_dataflow_basic;
    Alcotest.test_case "dataflow proves emptiness" `Quick
      test_dataflow_infeasible;
    prop_opt_preserves_answers;
    prop_trails_verify;
    prop_dataflow_sound ]
