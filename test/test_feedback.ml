(* The cardinality-feedback auditor (Analysis.Feedback) and the verified
   adaptive re-planning loop: genuine counter views audit clean, every
   deliberately corrupted view is rejected with the right E-code and
   witness (E022-E026), chunk-local counters merge to exactly the
   sequential counts under a parallel pool, adaptation never changes
   answers, and the stats-epoch-keyed calibration cache is evicted on
   epoch bumps. *)

open Relational
open Helpers
module D = Analysis.Diagnostic
module I = Engine.Inspect
module F = Analysis.Feedback

(* every test restores the ambient adaptive configuration (the CI runs one
   leg under WDPT_ENGINE_ADAPT=1 WDPT_ENGINE_DOMAINS=2, so "off" is not a
   safe default to restore to) *)
let with_config ?adapt ?threshold ?min_probed ?domains ?min_rows ?batched ()
    f =
  let adapt0 = Engine.adapt_enabled () in
  let thr0 = Engine.drift_threshold () in
  let mp0 = Engine.drift_min_probed () in
  let dom0 = Engine.Parallel.domains () in
  let mr0 = Engine.Parallel.min_rows () in
  let batched0 = Engine.batched_enabled () in
  Option.iter Engine.set_adapt adapt;
  Option.iter Engine.set_drift_threshold threshold;
  Option.iter Engine.set_drift_min_probed min_probed;
  Option.iter Engine.Parallel.set_domains domains;
  Option.iter Engine.Parallel.set_min_rows min_rows;
  Option.iter Engine.set_batched batched;
  Fun.protect
    ~finally:(fun () ->
      Engine.set_adapt adapt0;
      Engine.set_drift_threshold thr0;
      Engine.set_drift_min_probed mp0;
      Engine.Parallel.set_domains dom0;
      Engine.Parallel.set_min_rows mr0;
      Engine.set_batched batched0)
    f

(* A skewed instance the static cost model underestimates. R's key 1 is hot
   (50 of 70 rows) while the per-key average is 70/21 < 4 rows, so the
   mid-pipeline stage R(1, ?y) — estimated 10^0.52 survivors per context —
   actually yields 10^1.70, a drift of ~1.18 decades. The drift is only
   observable under the batched pipeline (the scalar interpreter re-selects
   atoms per node and routes around the hot key on its own), so the tests
   that need it pin [batched:true]. Statically R orders before S and C;
   once the calibration absorbs the drift the order inverts to S, C, R. *)
let s_rows = 10
let hot = 50
let tail = 20
let c_rows = 30

let skew_db () =
  Database.of_list
    (List.concat
       [ List.init s_rows (fun i -> Fact.make "S" [ Value.int (i + 1) ]);
         List.init hot (fun j -> Fact.make "R" [ Value.int 1; Value.int (j + 1) ]);
         List.init tail
           (fun k -> Fact.make "R" [ Value.int (k + 2); Value.int 0 ]);
         List.init c_rows
           (fun j -> Fact.make "C" [ Value.int (j + 1); Value.int (j + 1) ])
       ])

let skew_atoms =
  [ atom "S" [ v "x" ]; atom "R" [ c 1; v "y" ]; atom "C" [ v "y"; v "z" ] ]

(* compile and run once so the plan carries genuine counters *)
let ran_plan db atoms =
  let p = Engine.compile db atoms ~init:Mapping.empty in
  ignore (Engine.count_envs p);
  p

let codes ds = List.map (fun d -> D.code_id d.D.code) ds

let check_codes name expected ds =
  Alcotest.(check (list string)) name (List.map D.code_id expected) (codes ds)

(* ---- clean genuine views ------------------------------------------------ *)

let test_clean () =
  with_config ~adapt:false ~batched:true () (fun () ->
      let p = ran_plan (db_of_edges [ (1, 2); (2, 3); (3, 4) ]) [ e "x" "y"; e "y" "z" ] in
      check_codes "genuine view audits clean" [] (F.audit p);
      (* a never-run plan has no evidence and audits clean too *)
      let fresh =
        Engine.compile (db_of_edges [ (1, 2) ]) [ e "x" "y" ] ~init:Mapping.empty
      in
      check_codes "fresh plan audits clean" [] (F.audit fresh);
      (* the genuinely skewed instance below the default threshold is also
         clean: drift of ~1.15 decades, threshold 2.0 *)
      let p = ran_plan (skew_db ()) skew_atoms in
      check_codes "sub-threshold skew audits clean" [] (F.audit p))

(* ---- one corruption (or genuine trigger) per E-code --------------------- *)

let corrupt_atom (v : I.feedback_view) i f =
  let atoms = Array.copy v.I.f_atoms in
  atoms.(i) <- f atoms.(i);
  { v with I.f_atoms = atoms }

let test_e022 () =
  (* E022 needs no corruption: lower the threshold below the genuine drift
     of the skewed instance and the auditor fires on the real counters *)
  with_config ~adapt:false ~batched:true ~threshold:0.5 ~min_probed:1 ()
    (fun () ->
      let p = ran_plan (skew_db ()) skew_atoms in
      match F.audit p with
      | [ { D.code = D.Drift;
            witness =
              Some
                (D.Drifted
                   { atom = 1; estimated; observed; threshold; contexts;
                     probed; survived });
            _ } ] ->
          check_int "one context per S row" s_rows contexts;
          check_int "hot rows probed per context" (s_rows * hot) probed;
          check_int "hot rows survived" (s_rows * hot) survived;
          Alcotest.(check (float 1e-9)) "threshold in witness" 0.5 threshold;
          Alcotest.(check (float 1e-6)) "observed = log10(hot)"
            (log10 (float_of_int hot)) observed;
          Alcotest.(check (float 1e-6)) "estimated = log10(rows/dcount)"
            (log10 (float_of_int (hot + tail) /. float_of_int (tail + 1)))
            estimated
      | ds -> Alcotest.failf "expected one E022, got: %s" (String.concat "," (codes ds)))

let test_e023 () =
  with_config ~adapt:false () (fun () ->
      let p = ran_plan (skew_db ()) skew_atoms in
      let view = I.feedback p in
      (* negative counter *)
      let bad = corrupt_atom view 1 (fun fa -> { fa with I.f_contexts = -1 }) in
      (match F.audit_view bad with
      | [ { D.code = D.Counter_coverage;
            witness = Some (D.Counter_of { atom = 1; detail = "negative-counter" });
            _ } ] -> ()
      | ds -> Alcotest.failf "negative counter: got %s" (String.concat "," (codes ds)));
      (* more survivors than probed rows *)
      let bad =
        corrupt_atom view 1 (fun fa ->
            { fa with I.f_survived = fa.I.f_probed + 5 })
      in
      (match F.audit_view bad with
      | [ { D.code = D.Counter_coverage;
            witness =
              Some (D.Counter_of { atom = 1; detail = "survivors-exceed-probes" });
            _ } ] -> ()
      | ds -> Alcotest.failf "survivors: got %s" (String.concat "," (codes ds)));
      (* probes without a probe context *)
      let bad = corrupt_atom view 1 (fun fa -> { fa with I.f_contexts = 0 }) in
      check_codes "probes without context" [ D.Counter_coverage ]
        (F.audit_view bad);
      (* the vector does not cover the instruction list *)
      let bad = corrupt_atom view 1 (fun fa -> { fa with I.f_atom = 7 }) in
      (match F.audit_view bad with
      | [ { D.code = D.Counter_coverage;
            witness = Some (D.Counter_of { atom = 1; detail = "index-mismatch" });
            _ } ] -> ()
      | ds -> Alcotest.failf "index mismatch: got %s" (String.concat "," (codes ds)));
      (* a completed run that never credited the top-level atom's context *)
      let bad =
        corrupt_atom view 0 (fun fa ->
            { fa with I.f_contexts = 0; f_probed = 0; f_survived = 0 })
      in
      (match F.audit_view bad with
      | [ { D.code = D.Counter_coverage;
            witness = Some (D.Counter_of { atom = 0; detail = "missing-top-context" });
            _ } ] -> ()
      | ds -> Alcotest.failf "missing top context: got %s" (String.concat "," (codes ds)));
      (* negative run counter: the vector-level witness uses atom -1 *)
      let bad = { view with I.f_runs = -1 } in
      (match F.audit_view bad with
      | [ { D.code = D.Counter_coverage;
            witness = Some (D.Counter_of { atom = -1; detail = "negative-runs" });
            _ } ] -> ()
      | ds -> Alcotest.failf "negative runs: got %s" (String.concat "," (codes ds))))

let test_e024 () =
  with_config ~adapt:false () (fun () ->
      let p = ran_plan (skew_db ()) skew_atoms in
      let view = I.feedback p in
      (* a CALIBRATED view whose costing epoch predates the store version *)
      let bad =
        corrupt_atom
          { view with I.f_costed_at = view.I.f_store_version - 1 }
          0
          (fun fa -> { fa with I.f_calib = 1.5 })
      in
      (match F.audit_view bad with
      | [ { D.code = D.Stale_epoch; witness = Some (D.Epoch { costed; store; live }); _ } ] ->
          check_int "costed epoch" (view.I.f_store_version - 1) costed;
          check_int "store epoch" view.I.f_store_version store;
          check_int "live epoch" view.I.f_live_version live
      | ds -> Alcotest.failf "expected one E024, got %s" (String.concat "," (codes ds)));
      (* the same stale epoch WITHOUT calibration is the legitimate E006
         note-form story: no finding *)
      let uncalibrated = { view with I.f_costed_at = view.I.f_store_version - 1 } in
      check_codes "uncalibrated stale epoch is exempt" [] (F.audit_view uncalibrated))

let test_e026 () =
  with_config ~adapt:false () (fun () ->
      let p = ran_plan (skew_db ()) skew_atoms in
      let view = I.feedback p in
      (* survivors far above runs x the product of stored row counts, with
         contexts/probed inflated alongside so no E022/E023 fires: only the
         collector-soundness ceiling catches it *)
      let impossible = 10_000_000 in
      let bad =
        corrupt_atom view 0 (fun fa ->
            { fa with
              I.f_contexts = impossible;
              f_probed = impossible;
              f_survived = impossible })
      in
      match F.audit_view bad with
      | [ { D.code = D.Collector_inconsistent;
            witness = Some (D.Collector_of { atom = 0; survived; runs; bound }); _ } ] ->
          check_int "impossible survivors" impossible survived;
          check_int "runs in witness" view.I.f_runs runs;
          check_bool "ceiling below the claim" true
            (log10 (float_of_int impossible) > bound)
      | ds -> Alcotest.failf "expected one E026, got %s" (String.concat "," (codes ds)))

(* ---- E025: swap certificates -------------------------------------------- *)

let test_e025 () =
  with_config ~adapt:false ~batched:true ~threshold:0.5 ~min_probed:1 ()
    (fun () ->
      let db = skew_db () in
      let p = ran_plan db skew_atoms in
      match Engine.replan p with
      | None -> Alcotest.fail "skewed instance must justify a re-plan"
      | Some (p', cert) ->
          (* the genuine certificate re-verifies, and accept_swap adopts *)
          check_codes "genuine swap certificate verifies" []
            (F.verify_swap ~before:(I.plan p) ~after:(I.plan p') cert);
          let adopted, ds = F.accept_swap ~before:p ~after:p' cert in
          check_codes "genuine swap accepted" [] ds;
          check_bool "after-plan adopted" true (adopted == p');
          (* corrupted certificates are rejected and the before-plan kept *)
          let reject name bad field =
            match F.verify_swap ~before:(I.plan p) ~after:(I.plan p') bad with
            | [] -> Alcotest.failf "%s: corrupted certificate verified" name
            | ds ->
                check_bool name true
                  (List.exists
                     (fun d ->
                       d.D.code = D.Unjustified_replan
                       && match d.D.witness with
                          | Some (D.Replan_of w) -> w.field = field
                          | _ -> false)
                     ds);
                let kept, _ = F.accept_swap ~before:p ~after:p' bad in
                check_bool (name ^ " keeps before-plan") true (kept == p)
          in
          reject "wrong epoch" { cert with Engine.sw_epoch = cert.Engine.sw_epoch + 1 } "epoch";
          reject "no evidence" { cert with Engine.sw_runs = 0 } "runs";
          reject "nothing drifted" { cert with Engine.sw_drift = [||] } "drift";
          reject "forged estimate"
            { cert with
              Engine.sw_drift =
                Array.map (fun (i, est, obs) -> (i, est -. 1., obs)) cert.Engine.sw_drift }
            "drift";
          reject "forged calibration"
            { cert with
              Engine.sw_calib =
                Array.map (fun c -> c +. 1.) cert.Engine.sw_calib }
            "calibration";
          reject "truncated calibration" { cert with Engine.sw_calib = [||] } "calibration")

(* ---- parallel merge correctness ----------------------------------------- *)

(* every counter counts a per-live-row property, so the merged chunk-local
   counters of a parallel run must equal the sequential ones exactly *)
let test_parallel_merge () =
  let db =
    Database.of_list
      (List.concat
         [ List.init 300 (fun i -> Fact.make "E" [ Value.int i; Value.int (i + 1) ]);
           List.init 50 (fun i -> Fact.make "E" [ Value.int (i * 7) ; Value.int 1 ]) ])
  in
  let atoms = [ e "x" "y"; e "y" "z" ] in
  let counters domains =
    with_config ~adapt:false ~domains ~min_rows:1 () (fun () ->
        let p = ran_plan db atoms in
        Engine.iter_envs p (fun _ -> ());
        let v = I.feedback p in
        ( v.I.f_runs,
          Array.map
            (fun (fa : I.feedback_atom) ->
              (fa.I.f_contexts, fa.I.f_probed, fa.I.f_survived))
            v.I.f_atoms ))
  in
  let seq_runs, seq = counters 1 in
  let par_runs, par = counters 2 in
  check_int "both configurations complete the same runs" seq_runs par_runs;
  check_bool "run counter is live" true (seq_runs > 0);
  Array.iteri
    (fun i (sc, sp, ss) ->
      let pc, pp, ps = par.(i) in
      check_int (Printf.sprintf "atom %d contexts" i) sc pc;
      check_int (Printf.sprintf "atom %d probed" i) sp pp;
      check_int (Printf.sprintf "atom %d survived" i) ss ps)
    seq

(* ---- the adaptive cache across epochs ------------------------------------ *)

let test_adapt_cache () =
  with_config ~adapt:true ~batched:true ~threshold:0.5 ~min_probed:1 ()
    (fun () ->
      let db = skew_db () in
      let static =
        with_config ~adapt:false () (fun () ->
            let p = Engine.compile db skew_atoms ~init:Mapping.empty in
            Engine.count_envs p)
      in
      (* run 1 collects the evidence and installs the calibration *)
      let p1 = ran_plan db skew_atoms in
      check_int "statically the hot atom R is ordered first" 1
        (I.plan p1).I.i_order.(0);
      check_bool "first run stored a swap certificate" true
        (Engine.cached_swap p1 <> None);
      (* run 2 is served the re-planned plan: calibrated, order inverted,
         same answers *)
      let p2 = Engine.compile db skew_atoms ~init:Mapping.empty in
      let v2 = I.plan p2 in
      check_bool "hot atom calibrated" true (v2.I.i_atoms.(1).I.a_calib > 0.);
      check_int "skew inverted the static order" 0 v2.I.i_order.(0);
      check_int "adaptive answers unchanged" static (Engine.count_envs p2);
      check_codes "re-planned run audits clean" [] (F.audit p2);
      (* a well-calibrated plan does not re-trigger on its own evidence *)
      check_bool "re-plan is idempotent" true (Engine.replan p2 = None);
      (* an epoch bump (Database.add) evicts the entry at the next compile *)
      Database.add db (Fact.make "R" [ Value.int 999; Value.int 999 ]);
      let p3 = Engine.compile db skew_atoms ~init:Mapping.empty in
      check_bool "stale entry evicted on epoch bump" true
        (Engine.cached_swap p3 = None);
      let v3 = I.plan p3 in
      check_bool "post-eviction plan is uncalibrated" true
        (Array.for_all (fun (av : I.atom_view) -> av.I.a_calib = 0.) v3.I.i_atoms);
      (* the loop re-learns at the new epoch... *)
      ignore (Engine.count_envs p3);
      let p4 = Engine.compile db skew_atoms ~init:Mapping.empty in
      check_bool "re-learned at the new epoch" true (Engine.cached_swap p4 <> None);
      (* ...and clear_cache discards the compiled store with its adapt table *)
      Database.clear_cache db;
      let p5 = Engine.compile db skew_atoms ~init:Mapping.empty in
      check_bool "clear_cache drops the calibration cache" true
        (Engine.cached_swap p5 = None))

(* ---- schema stability ---------------------------------------------------- *)

let test_schema () =
  check_int "analysis JSON schema version" 1 Analysis.Json.schema_version;
  (match D.report_json [] with
  | Analysis.Json.Obj (("schema", Analysis.Json.Int 1) :: ("version", Analysis.Json.Int 1) :: _) -> ()
  | _ -> Alcotest.fail "diagnostic reports must lead with the schema version");
  (* the feedback view JSON is keyed for the explain --drift consumer *)
  with_config ~adapt:false () (fun () ->
      let p = ran_plan (skew_db ()) skew_atoms in
      match F.view_json (I.feedback p) with
      | Analysis.Json.Obj fields ->
          List.iter
            (fun k ->
              check_bool (Printf.sprintf "feedback JSON carries %S" k) true
                (List.mem_assoc k fields))
            [ "runs"; "top"; "threshold"; "min-probed"; "costed-at";
              "store-version"; "live-version"; "atoms" ]
      | _ -> Alcotest.fail "feedback view JSON must be an object")

(* ---- properties ---------------------------------------------------------- *)

let prop_genuine_clean =
  qtest ~count:60 "genuine feedback views audit clean"
    QCheck.(pair arbitrary_db arbitrary_cq)
    (fun (db, q) ->
      with_config ~adapt:false () (fun () ->
          let p = Engine.compile db (Cq.Query.body q) ~init:Mapping.empty in
          ignore (Engine.count_envs p);
          Engine.iter_envs p (fun _ -> ());
          F.audit p = []))

let prop_adaptive_answers =
  qtest ~count:60 "adaptive re-planning never changes answers"
    QCheck.(pair arbitrary_db arbitrary_cq)
    (fun (db, q) ->
      (* aggressive thresholds so small random instances re-plan for real *)
      let base =
        with_config ~adapt:false () (fun () -> Cq.Eval.answers db q)
      in
      with_config ~adapt:true ~threshold:0.1 ~min_probed:1 () (fun () ->
          Mapping.Set.equal (Cq.Eval.answers db q) base
          && Mapping.Set.equal (Cq.Eval.answers db q) base))

let suite =
  [ Alcotest.test_case "genuine views are clean" `Quick test_clean;
    Alcotest.test_case "E022 estimate-drift" `Quick test_e022;
    Alcotest.test_case "E023 counter-coverage" `Quick test_e023;
    Alcotest.test_case "E024 stale-stats-epoch" `Quick test_e024;
    Alcotest.test_case "E025 unjustified-replan" `Quick test_e025;
    Alcotest.test_case "E026 inconsistent-collector" `Quick test_e026;
    Alcotest.test_case "parallel counter merge" `Quick test_parallel_merge;
    Alcotest.test_case "adaptive cache epochs" `Quick test_adapt_cache;
    Alcotest.test_case "JSON schema lock" `Quick test_schema;
    prop_genuine_clean;
    prop_adaptive_answers ]
