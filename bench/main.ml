(* Benchmark harness: one experiment per table/figure of the paper.

   The paper is a PODS theory paper; its "evaluation" is the complexity
   classification of Tables 1 and 2 plus the Figure-2 lower bound. Each cell
   becomes an empirical scaling experiment: tractable cells must show
   polynomial growth (small log-log slope in the database size), hardness
   cells must show exponential growth in the instance parameter, and the
   Figure-2 series must show the quadratic-vs-exponential size separation.
   See EXPERIMENTS.md for the paper-vs-measured record.

   Output sections are keyed by the experiment ids of DESIGN.md. A final
   section runs one Bechamel micro-benchmark per table/figure on fixed
   instances. *)

open Relational

(* ---- CLI / recording -------------------------------------------------- *)

let json_out : string option ref = ref None
let smoke = ref false
let only : string option ref = ref (Sys.getenv_opt "WDPT_BENCH_ONLY")

(* (experiment id, point label, median seconds), in run order *)
let records : (string * string * float) list ref = ref []
let record exp_id label seconds = records := (exp_id, label, seconds) :: !records

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path =
  let oc = open_out path in
  let groups =
    (* stable grouping by experiment id, preserving first-seen order *)
    List.fold_left
      (fun acc (exp_id, label, t) ->
        match List.assoc_opt exp_id acc with
        | Some cell ->
            cell := (label, t) :: !cell;
            acc
        | None -> acc @ [ (exp_id, ref [ (label, t) ]) ])
      []
      (List.rev !records)
  in
  Printf.fprintf oc "{\n  \"schema\": %d,\n  \"suite\": \"wdpt-bench\",\n  \"pr\": 10,\n  \"experiments\": {\n"
    Analysis.Json.schema_version;
  let n_groups = List.length groups in
  List.iteri
    (fun gi (exp_id, cell) ->
      Printf.fprintf oc "    \"%s\": [\n" (json_escape exp_id);
      let points = List.rev !cell in
      let n = List.length points in
      List.iteri
        (fun i (label, t) ->
          Printf.fprintf oc "      {\"label\": \"%s\", \"median_ms\": %.6f}%s\n"
            (json_escape label) (t *. 1000.)
            (if i = n - 1 then "" else ","))
        points;
      Printf.fprintf oc "    ]%s\n" (if gi = n_groups - 1 then "" else ","))
    groups;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Format.printf "wrote %d timings to %s@." (List.length !records) path

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* median of three runs; a single run when the first one is already slow *)
let time_it f =
  let first = snd (time_once f) in
  if first > 1.0 then first
  else begin
    let samples = first :: List.init 2 (fun _ -> snd (time_once f)) in
    match List.sort compare samples with
    | [ _; m; _ ] -> m
    | _ -> assert false
  end

let section id title =
  Format.printf "@.==================================================================@.";
  Format.printf "%s  —  %s@." id title;
  Format.printf "==================================================================@."

(* least-squares slope of log t vs log n: the polynomial degree estimate *)
let loglog_slope points =
  let pts =
    List.filter_map
      (fun (n, t) -> if t > 0. then Some (log (float_of_int n), log t) else None)
      points
  in
  let m = float_of_int (List.length pts) in
  if m < 2. then nan
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
    ((m *. sxy) -. (sx *. sy)) /. ((m *. sxx) -. (sx *. sx))
  end

(* successive ratios, for exponential growth *)
let mean_ratio points =
  let rec ratios = function
    | (_, a) :: ((_, b) :: _ as rest) when a > 0. -> (b /. a) :: ratios rest
    | _ :: rest -> ratios rest
    | [] -> []
  in
  let rs = ratios points in
  if rs = [] then nan
  else List.fold_left ( +. ) 0. rs /. float_of_int (List.length rs)

let print_row fmt = Format.printf fmt

(* ---------------------------------------------------------------- *)
(* T1-EVAL-a: Table 1, row EVAL, column ℓ-C(k) ∩ BI(c): polynomial   *)
(* ---------------------------------------------------------------- *)

let t1_eval_tractable () =
  section "T1-EVAL-a" "Table 1 / EVAL on ℓ-TW(1) ∩ BI(1): polynomial in |D| (Theorems 6, 7)";
  let p = Workload.Gen_wdpt.chain_tree ~nodes:5 ~rel:"E" in
  Format.printf "query: chain WDPT, %d nodes, interface %d, locally TW(1): %b@."
    (Wdpt.Pattern_tree.node_count p)
    (Wdpt.Classes.interface p)
    (Wdpt.Classes.locally_in ~width:Tw ~k:1 p);
  print_row "  %8s  %12s  %10s@." "|D|" "time EVAL(ms)" "answer";
  let points =
    List.map
      (fun size ->
        let db = Workload.Gen_db.random_graph_db ~seed:1 ~nodes:(size / 4) ~edges:size in
        (* probe a mapping derived from an actual answer *)
        let h =
          match Wdpt.Semantics.any_maximal_homomorphism db p with
          | Some m -> Mapping.restrict (Wdpt.Pattern_tree.free_set p) m
          | None -> Mapping.empty
        in
        let t = time_it (fun () -> ignore (Wdpt.Eval_tractable.decision db p h)) in
        print_row "  %8d  %12.2f  %10b@." size (t *. 1000.)
          (Wdpt.Eval_tractable.decision db p h);
        record "T1-EVAL-a" (string_of_int size) t;
        (size, t))
      (if !smoke then [ 200; 400 ] else [ 200; 400; 800; 1600; 3200 ])
  in
  print_row "  fitted growth exponent in |D|: %.2f  (paper: polynomial; expect << 3)@."
    (loglog_slope points)

(* ---------------------------------------------------------------- *)
(* T1-EVAL-b: EVAL NP-hard for general / g-C(k) (Prop 3)             *)
(* ---------------------------------------------------------------- *)

let t1_eval_hard () =
  section "T1-EVAL-b"
    "Table 1 / EVAL on g-TW(1) without bounded interface: 3-colorability (Prop 3)";
  Format.printf
    "instances encode 3-colorability of K4-plus-odd-cycles; EVAL must answer@.";
  Format.printf
    "false, which requires refuting every coloring: exponential growth in n.@.";
  print_row "  %4s  %6s  %14s  %16s  %16s@." "n" "edges" "EVAL(ms)" "PARTIAL-EVAL(ms)" "MAX-EVAL(ms)";
  let points = ref [] in
  List.iter
    (fun n ->
      (* a non-3-colorable graph: K4 with a path attached, grown by n *)
      let g =
        let base = Wdpt.Reductions.complete 4 in
        { Wdpt.Reductions.n = 4 + n;
          edges =
            base.Wdpt.Reductions.edges
            @ List.init n (fun i -> (3 + i, 4 + i)) }
      in
      let p, db, h = Wdpt.Reductions.three_col_instance g in
      let t_eval = time_it (fun () -> ignore (Wdpt.Eval_tractable.decision db p h)) in
      let t_part = time_it (fun () -> ignore (Wdpt.Partial_eval.decision db p h)) in
      let t_max = time_it (fun () -> ignore (Wdpt.Max_eval.decision db p h)) in
      print_row "  %4d  %6d  %14.2f  %16.2f  %16.2f@." g.Wdpt.Reductions.n
        (List.length g.Wdpt.Reductions.edges)
        (t_eval *. 1000.) (t_part *. 1000.) (t_max *. 1000.);
      record "T1-EVAL-b" (Printf.sprintf "n=%d" g.Wdpt.Reductions.n) t_eval;
      points := (g.Wdpt.Reductions.n, t_eval) :: !points)
    [ 2; 4; 6; 8 ];
  print_row
    "  EVAL mean growth ratio per step: %.2fx (exponential; PARTIAL/MAX stay flat: Thms 8, 9)@."
    (mean_ratio (List.rev !points))

(* ---------------------------------------------------------------- *)
(* T1-PF: Theorem 4, projection-free EVAL under local tractability    *)
(* ---------------------------------------------------------------- *)

let t1_projection_free () =
  section "T1-PF"
    "Table 1 / Theorem 4: projection-free EVAL is polynomial under local tractability";
  let v = Term.var in
  let e a b = Atom.make "E" [ v a; v b ] in
  let p =
    Wdpt.Pattern_tree.make ~free:[ "x"; "y"; "z"; "w" ]
      (Node ([ e "x" "y" ], [ Node ([ e "y" "z" ], []); Node ([ e "x" "w" ], []) ]))
  in
  print_row "  %8s  %12s@." "|D|" "EVAL(ms)";
  let points =
    List.map
      (fun size ->
        let db = Workload.Gen_db.random_graph_db ~seed:5 ~nodes:(size / 4) ~edges:size in
        let h =
          match Wdpt.Semantics.any_maximal_homomorphism db p with
          | Some m -> m
          | None -> Mapping.empty
        in
        let t = time_it (fun () -> ignore (Wdpt.Eval_projection_free.decision db p h)) in
        print_row "  %8d  %12.3f@." size (t *. 1000.);
        record "T1-PF" (string_of_int size) t;
        (size, t))
      [ 200; 400; 800; 1600; 3200 ]
  in
  print_row "  growth exponent: %.2f (paper: PTIME, Theorem 4)@." (loglog_slope points)

(* ---------------------------------------------------------------- *)
(* T1-HW: Example 5 / Theorem 3 — hypertreewidth beats treewidth      *)
(* ---------------------------------------------------------------- *)

let t1_hw_vs_tw () =
  section "T1-HW"
    "Theorem 3 vs Theorem 2 (Example 5): acyclic evaluation is immune to treewidth";
  Format.printf
    "guarded n-cliques are in HW(1) but have treewidth n-1: the join-forest@.";
  Format.printf
    "(Yannakakis) evaluator stays flat, the tree-decomposition evaluator blows up.@.";
  print_row "  %4s  %6s  %16s  %18s@." "n" "tw" "Yannakakis(ms)" "tree-decomp(ms)";
  List.iter
    (fun n ->
      let q = Workload.Gen_cq.guarded_clique n in
      (* a database with a complete digraph on 2n nodes plus matching guards *)
      let db = Database.create () in
      let vals = List.init (2 * n) (fun i -> Value.int i) in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if not (Relational.Value.equal a b) then
                Database.add db (Fact.make "E" [ a; b ]))
            vals)
        vals;
      Database.add db (Fact.make ("T" ^ string_of_int n) (List.filteri (fun i _ -> i < n) vals));
      let t_y =
        time_it (fun () ->
            match Cq.Yannakakis.satisfiable db q ~init:Mapping.empty with
            | Some b -> ignore b
            | None -> assert false)
      in
      let hg = Cq.Query.hypergraph q in
      let _, td = Hypergraphs.Tree_decomposition.upper_bound hg in
      let t_td =
        if n > 6 then nan
        else time_it (fun () -> ignore (Cq.Decomp_eval.satisfiable ~td db q ~init:Mapping.empty))
      in
      record "T1-HW" (Printf.sprintf "yannakakis n=%d" n) t_y;
      print_row "  %4d  %6d  %16.2f  %18.2f@." n
        (Cq.Query.treewidth q) (t_y *. 1000.) (t_td *. 1000.))
    [ 3; 4; 5; 6; 7 ];
  print_row "  (tree-decomposition column capped at n = 6; it is Θ(|adom|^tw))@."

(* ---------------------------------------------------------------- *)
(* T1-PEVAL / T1-MEVAL: polynomial in |D| under global tractability  *)
(* ---------------------------------------------------------------- *)

let t1_partial_max () =
  section "T1-PEVAL/T1-MEVAL"
    "Table 1 / PARTIAL-EVAL and MAX-EVAL on g-TW(k): polynomial in |D| (Theorems 8, 9)";
  let p = Workload.Gen_wdpt.chain_tree ~nodes:5 ~rel:"E" in
  print_row "  %8s  %14s  %14s@." "|D|" "PARTIAL(ms)" "MAX(ms)";
  let pp_points = ref [] and mm_points = ref [] in
  List.iter
    (fun size ->
      let db = Workload.Gen_db.random_graph_db ~seed:2 ~nodes:(size / 4) ~edges:size in
      let h =
        match Wdpt.Semantics.any_maximal_homomorphism db p with
        | Some m -> Mapping.restrict (Wdpt.Pattern_tree.free_set p) m
        | None -> Mapping.empty
      in
      let h_part = Mapping.restrict (String_set.of_list [ "f0" ]) h in
      let t_p = time_it (fun () -> ignore (Wdpt.Partial_eval.decision db p h_part)) in
      let t_m = time_it (fun () -> ignore (Wdpt.Max_eval.decision db p h)) in
      print_row "  %8d  %14.2f  %14.2f@." size (t_p *. 1000.) (t_m *. 1000.);
      record "T1-PEVAL" (string_of_int size) t_p;
      record "T1-MEVAL" (string_of_int size) t_m;
      pp_points := (size, t_p) :: !pp_points;
      mm_points := (size, t_m) :: !mm_points)
    [ 200; 400; 800; 1600; 3200 ];
  print_row "  growth exponents: PARTIAL %.2f, MAX %.2f (paper: polynomial)@."
    (loglog_slope (List.rev !pp_points))
    (loglog_slope (List.rev !mm_points))

(* ---------------------------------------------------------------- *)
(* T1-SUB: subsumption / subsumption-equivalence                     *)
(* ---------------------------------------------------------------- *)

let t1_subsumption () =
  section "T1-SUB"
    "Table 1 / ⊑ and ≡ₛ: coNP when the right-hand side is globally tractable (Thm 11)";
  Format.printf
    "left-hand side grows (subtree enumeration, the coNP part); the inner@.";
  Format.printf "check stays polynomial because p2 ∈ g-TW(1).@.";
  print_row "  %8s  %10s  %14s  %14s@." "|p1| nodes" "subtrees" "⊑ (ms)" "≡ₛ (ms)";
  let points = ref [] in
  List.iter
    (fun nodes ->
      let p1 = Workload.Gen_wdpt.chain_tree ~nodes ~rel:"E" in
      let p2 = Workload.Gen_wdpt.chain_tree ~nodes ~rel:"E" in
      let t_sub = time_it (fun () -> ignore (Wdpt.Subsumption.subsumes p1 p2)) in
      let t_eq = time_it (fun () -> ignore (Wdpt.Subsumption.equivalent p1 p2)) in
      print_row "  %8d  %10d  %14.2f  %14.2f@." nodes
        (Wdpt.Pattern_tree.subtree_count p1)
        (t_sub *. 1000.) (t_eq *. 1000.);
      points := (nodes, t_sub) :: !points)
    [ 2; 4; 6; 8; 10 ];
  (* chain trees have linearly many subtrees, so this column is polynomial;
     a branching tree shows the exponential subtree count *)
  print_row "  branching left-hand side (exponentially many subtrees):@.";
  List.iter
    (fun depth ->
      let p1 =
        Workload.Gen_wdpt.random ~seed:3 ~depth ~branching:2 ~vars_per_node:2
          ~interface:1 ~free_per_node:1 ~style:Chain ~rel:"E"
      in
      let p2 = Workload.Gen_wdpt.chain_tree ~nodes:3 ~rel:"E" in
      let t_sub = time_it (fun () -> ignore (Wdpt.Subsumption.subsumes p1 p2)) in
      print_row "    depth %d: %6d subtrees, ⊑ %10.2f ms@." depth
        (Wdpt.Pattern_tree.subtree_count p1)
        (t_sub *. 1000.))
    [ 1; 2; 3 ]

(* ---------------------------------------------------------------- *)
(* T2-MEM: WB(k)- vs UWB(k)-membership                                *)
(* ---------------------------------------------------------------- *)

let t2_membership () =
  section "T2-MEM"
    "Table 2 / Membership: WB(k) needs exhaustive search; UWB(k) is per-CQ (Thms 13, 17)";
  print_row "  %10s  %16s  %16s@." "tree nodes" "UWB-member(ms)" "WB-witness(ms)";
  List.iter
    (fun nodes ->
      let p = Workload.Gen_wdpt.chain_tree ~nodes ~rel:"E" in
      let t_uwb = time_it (fun () -> ignore (Wdpt.Union.in_m_uwb ~width:Tw ~k:1 [ p ])) in
      let t_wb =
        time_it (fun () -> ignore (Wdpt.Semantic_opt.wb_witness ~width:Tw ~k:1 p))
      in
      print_row "  %10d  %16.2f  %16.2f@." nodes (t_uwb *. 1000.) (t_wb *. 1000.))
    [ 2; 3; 4; 5 ];
  (* out-of-class inputs: the WB search explores the quotient space *)
  print_row "  out-of-class input (triangle root with optional leaf):@.";
  let v = Term.var in
  let e a b = Atom.make "E" [ v a; v b ] in
  let p_hard =
    Wdpt.Pattern_tree.make ~free:[ "x" ]
      (Node ([ e "x" "y"; e "y" "z"; e "z" "x" ], [ Node ([ e "x" "w" ], []) ]))
  in
  let t_uwb =
    time_it (fun () -> ignore (Wdpt.Union.in_m_uwb ~width:Tw ~k:1 [ p_hard ]))
  in
  let t_wb =
    time_it (fun () -> ignore (Wdpt.Semantic_opt.wb_witness ~width:Tw ~k:1 p_hard))
  in
  print_row "    UWB-member %.2f ms  vs  WB-witness search %.2f ms@."
    (t_uwb *. 1000.) (t_wb *. 1000.)

(* ---------------------------------------------------------------- *)
(* T2-APP: approximation computation                                  *)
(* ---------------------------------------------------------------- *)

let t2_approximation () =
  section "T2-APP"
    "Table 2 / Approximation: UWB(k) per-CQ quotients vs WB(k) candidate search (Thms 14, 18)";
  print_row "  %28s  %10s  %12s  %8s@." "query" "UWB-app(ms)" "WB-app(ms)" "#apps";
  let v = Term.var in
  let e a b = Atom.make "E" [ v a; v b ] in
  let cases =
    [ ("triangle", Wdpt.Pattern_tree.of_cq (Workload.Gen_cq.cycle 3));
      ("C5", Wdpt.Pattern_tree.of_cq (Workload.Gen_cq.cycle 5));
      ( "triangle + optional leaf",
        Wdpt.Pattern_tree.make ~free:[ "x" ]
          (Node ([ e "x" "y"; e "y" "z"; e "z" "x" ], [ Node ([ e "x" "w" ], []) ])) ) ]
  in
  List.iter
    (fun (name, p) ->
      let uapp = ref [] and wapp = ref [] in
      let t_u =
        time_it (fun () -> uapp := Wdpt.Union.uwb_approximation ~width:Tw ~k:1 [ p ])
      in
      let t_w =
        time_it (fun () -> wapp := Wdpt.Approximation.wb_approximations ~width:Tw ~k:1 p)
      in
      print_row "  %28s  %10.2f  %12.2f  %8d@." name (t_u *. 1000.) (t_w *. 1000.)
        (List.length !wapp))
    cases

(* ---------------------------------------------------------------- *)
(* FIG2: the exponential blow-up                                      *)
(* ---------------------------------------------------------------- *)

let fig2 () =
  section "FIG2" "Figure 2 / Theorem 15: approximation size blow-up |p1| = O(n²), |p2| = Ω(2ⁿ)";
  print_row "  %4s  %8s  %8s  %14s@." "n" "|p1|" "|p2|" "|p2| / |p1|";
  List.iter
    (fun n ->
      let p1, p2 = Workload.Hard_instances.figure2 ~n ~k:2 in
      print_row "  %4d  %8d  %8d  %14.2f@." n
        (Wdpt.Pattern_tree.size p1) (Wdpt.Pattern_tree.size p2)
        (float_of_int (Wdpt.Pattern_tree.size p2)
        /. float_of_int (Wdpt.Pattern_tree.size p1)))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  (* semantic checks on a small instance *)
  let p1, p2 = Workload.Hard_instances.figure2 ~n:2 ~k:2 in
  print_row "  checks (n = 2): p2 ⊑ p1: %b;  p2 ∈ WB(2): %b;  p1 ∈ WB(2): %b@."
    (Wdpt.Subsumption.subsumes p2 p1)
    (Wdpt.Classes.in_wb ~width:Tw ~k:2 p2)
    (Wdpt.Classes.in_wb ~width:Tw ~k:2 p1)

(* ---------------------------------------------------------------- *)
(* COR2-FPT: approximation pays off on large databases                *)
(* ---------------------------------------------------------------- *)

let cor2_fpt () =
  section "COR2-FPT"
    "Corollary 2 / Section 5: compute-then-run a witness beats direct evaluation on big D";
  (* a redundant query: 4 parallel 2-paths; the core is a single path *)
  let v = Term.var in
  let e a b = Atom.make "E" [ v a; v b ] in
  let body =
    List.concat_map
      (fun i ->
        let y = "y" ^ string_of_int i in
        [ e "x" y; e y "z" ])
      [ 0; 1; 2; 3 ]
  in
  let q = Cq.Query.make ~head:[ "x" ] ~body in
  let p = Wdpt.Pattern_tree.of_cq q in
  let fpt = ref (Wdpt.Semantic_opt.prepare ~width:Tw ~k:1 p) in
  let t_prepare =
    time_it (fun () -> fpt := Wdpt.Semantic_opt.prepare ~width:Tw ~k:1 p)
  in
  print_row "  witness found: %b (one-time cost %.2f ms)@."
    (Option.is_some (Wdpt.Semantic_opt.used_witness !fpt))
    (t_prepare *. 1000.);
  print_row "  %8s  %14s  %18s@." "|D|" "direct(ms)" "via witness(ms)";
  List.iter
    (fun size ->
      let db = Workload.Gen_db.random_graph_db ~seed:7 ~nodes:(size / 8) ~edges:size in
      let h = Mapping.singleton "x" (Value.int 0) in
      let t_direct = time_it (fun () -> ignore (Wdpt.Semantics.partial_decision db p h)) in
      let t_fpt = time_it (fun () -> ignore (Wdpt.Semantic_opt.partial_decision !fpt db h)) in
      print_row "  %8d  %14.2f  %18.2f@." size (t_direct *. 1000.) (t_fpt *. 1000.))
    [ 100; 200; 400; 800 ]

(* ---------------------------------------------------------------- *)
(* PROP2: the fragment landscape                                      *)
(* ---------------------------------------------------------------- *)

let prop2 () =
  section "PROP2" "Proposition 2: ℓ-TW(k) ∩ BI(c) ⊆ g-TW(k+2c); g-TW(k) ⊄ BI(c)";
  print_row "  %4s  %14s  %12s@." "m" "g-TW(1)?" "interface";
  List.iter
    (fun m ->
      let p = Workload.Hard_instances.prop2_family ~m in
      print_row "  %4d  %14b  %12d@." m
        (Wdpt.Classes.globally_in ~width:Tw ~k:1 p)
        (Wdpt.Classes.interface p))
    [ 2; 4; 8; 16 ]

(* ---------------------------------------------------------------- *)
(* ENGINE: compiled engine vs the naive Eval path, before/after       *)
(* ---------------------------------------------------------------- *)

let engine_speedup () =
  section "ENGINE"
    "Compiled engine vs naive backtracking (Table-1-shaped primitives, answers cross-checked)";
  Format.printf
    "naive = Cq.Eval.Naive (string-keyed maps, rebuilt candidate lists);@.";
  Format.printf
    "engine = interned values, slot environments, counted indexes.@.";
  Format.printf
    "enum = enumerate all homomorphisms in native form; sat = per-node@.";
  Format.printf
    "satisfiability sweep (EVAL inner loop); proj = projected answers.@.";
  print_row "  %-10s  %8s  %-6s  %12s  %12s  %9s  %7s@." "query" "|D|" "prim"
    "naive(ms)" "engine(ms)" "speedup" "agree";
  let queries =
    [ ("chain3", Workload.Gen_cq.chain 3);
      ("chain4", Workload.Gen_cq.chain 4);
      ("star3", Workload.Gen_cq.star 3) ]
  in
  let sizes = if !smoke then [ 200; 800 ] else [ 800; 1600; 3200 ] in
  let largest = List.fold_left max 0 sizes in
  let worst = ref infinity in
  List.iter
    (fun (name, q) ->
      List.iter
        (fun size ->
          let db =
            Workload.Gen_db.random_graph_db ~seed:11 ~nodes:(size / 4) ~edges:size
          in
          let body = Cq.Query.body q in
          let x0 = List.hd (Cq.Query.head q) in
          let adom = Value.Set.elements (Database.active_domain db) in
          let proj_q = Cq.Query.make ~head:[ x0 ] ~body in
          (* untimed correctness gate: full answer sets must be identical *)
          if
            not
              (Mapping.Set.equal (Cq.Eval.answers db q)
                 (Cq.Eval.Naive.answers db q))
          then failwith ("ENGINE: answer mismatch on " ^ name);
          let row prim t_naive t_engine agree =
            if not agree then
              failwith ("ENGINE: " ^ prim ^ " mismatch on " ^ name);
            let speedup = t_naive /. t_engine in
            if size = largest then worst := Float.min !worst speedup;
            record "ENGINE"
              (Printf.sprintf "%s n=%d %s naive" name size prim)
              t_naive;
            record "ENGINE"
              (Printf.sprintf "%s n=%d %s engine" name size prim)
              t_engine;
            print_row "  %-10s  %8d  %-6s  %12.2f  %12.2f  %8.1fx  %7b@." name
              size prim (t_naive *. 1000.) (t_engine *. 1000.) speedup agree
          in
          (* enum: every homomorphism, each side in its native form —
             slot environments vs string-keyed maps *)
          let n_e = ref 0 and n_n = ref 0 in
          let t_engine =
            time_it (fun () ->
                n_e := 0;
                let p = Engine.compile db body ~init:Mapping.empty in
                Engine.iter_envs p (fun _ -> incr n_e))
          in
          let t_naive =
            time_it (fun () ->
                n_n := 0;
                Cq.Eval.Naive.iter_homomorphisms db body ~init:Mapping.empty
                  (fun _ -> incr n_n))
          in
          row "enum" t_naive t_engine (!n_e = !n_n);
          (* sat: satisfiability with a sink variable (last variable of the
             last atom) bound to each active-domain value — the per-binding
             decision loop of the Table-1 EVAL experiments, where binding a
             leaf/end variable forces a real backward search per call *)
          let sink =
            List.nth body (List.length body - 1)
            |> Atom.vars |> List.rev |> List.hd
          in
          let sat eval =
            List.fold_left
              (fun acc v ->
                if eval db body ~init:(Mapping.singleton sink v) then acc + 1
                else acc)
              0 adom
          in
          let s_e = ref 0 and s_n = ref 0 in
          let t_engine = time_it (fun () -> s_e := sat Cq.Eval.satisfiable) in
          let t_naive =
            time_it (fun () -> s_n := sat Cq.Eval.Naive.satisfiable)
          in
          row "sat" t_naive t_engine (!s_e = !s_n);
          (* proj: distinct answers projected onto one head variable *)
          let p_e = ref Mapping.Set.empty and p_n = ref Mapping.Set.empty in
          let t_engine = time_it (fun () -> p_e := Cq.Eval.answers db proj_q) in
          let t_naive =
            time_it (fun () -> p_n := Cq.Eval.Naive.answers db proj_q)
          in
          row "proj" t_naive t_engine (Mapping.Set.equal !p_e !p_n))
        sizes)
    queries;
  print_row
    "  worst primitive speedup at largest |D|: %.1fx  (acceptance: >= 3x with identical answers)@."
    !worst

(* ---------------------------------------------------------------- *)
(* BATCH: vectorized interpreter vs scalar tuple-at-a-time            *)
(* ---------------------------------------------------------------- *)

let batch_exec () =
  section "BATCH"
    "Vectorized (batched) interpreter vs scalar tuple-at-a-time (answers cross-checked)";
  Format.printf
    "scalar = tuple-at-a-time interpretation of the same compiled plans@.";
  Format.printf
    "(WDPT_ENGINE_BATCH=0); batched = columnar slot arrays over morsel@.";
  Format.printf
    "groups with a survivor bitmask and index probes grouped by key.@.";
  Format.printf
    "enum/sat/proj are the ENGINE primitives; answers must be identical.@.";
  let was_batched = Engine.batched_enabled () in
  let run_batched b f =
    Engine.set_batched b;
    Fun.protect ~finally:(fun () -> Engine.set_batched was_batched) f
  in
  print_row "  %-10s  %8s  %-6s  %12s  %12s  %9s  %7s@." "query" "|D|" "prim"
    "scalar(ms)" "batched(ms)" "speedup" "agree";
  let queries =
    [ ("chain3", Workload.Gen_cq.chain 3);
      ("chain4", Workload.Gen_cq.chain 4);
      ("star3", Workload.Gen_cq.star 3) ]
  in
  let sizes = if !smoke then [ 200; 800 ] else [ 800; 1600; 3200 ] in
  let largest = List.fold_left max 0 sizes in
  let worst_enum = ref infinity in
  List.iter
    (fun (name, q) ->
      List.iter
        (fun size ->
          let db =
            Workload.Gen_db.random_graph_db ~seed:37 ~nodes:(size / 4) ~edges:size
          in
          let body = Cq.Query.body q in
          let x0 = List.hd (Cq.Query.head q) in
          let adom = Value.Set.elements (Database.active_domain db) in
          let proj_q = Cq.Query.make ~head:[ x0 ] ~body in
          let row prim t_scalar t_batched agree =
            if not agree then
              failwith ("BATCH: " ^ prim ^ " mismatch on " ^ name);
            let speedup = t_scalar /. t_batched in
            if size = largest && prim = "enum" then
              worst_enum := Float.min !worst_enum speedup;
            record "BATCH"
              (Printf.sprintf "%s n=%d %s scalar" name size prim)
              t_scalar;
            record "BATCH"
              (Printf.sprintf "%s n=%d %s batched" name size prim)
              t_batched;
            print_row "  %-10s  %8d  %-6s  %12.2f  %12.2f  %8.1fx  %7b@." name
              size prim (t_scalar *. 1000.) (t_batched *. 1000.) speedup agree
          in
          (* enum: every homomorphism; the same compiled plan runs under both
             interpreters (the dispatch happens at execution time) *)
          let plan = Engine.compile db body ~init:Mapping.empty in
          let enum () =
            let n = ref 0 in
            Engine.iter_envs plan (fun _ -> incr n);
            !n
          in
          let n_b = ref 0 and n_s = ref 0 in
          let t_b = run_batched true (fun () -> time_it (fun () -> n_b := enum ())) in
          let t_s = run_batched false (fun () -> time_it (fun () -> n_s := enum ())) in
          row "enum" t_s t_b (!n_b = !n_s);
          (* sat: the per-binding decision loop of the Table-1 EVAL
             experiments — a sink variable bound to each active-domain value *)
          let sink =
            List.nth body (List.length body - 1)
            |> Atom.vars |> List.rev |> List.hd
          in
          let sat () =
            List.fold_left
              (fun acc v ->
                if Cq.Eval.satisfiable db body ~init:(Mapping.singleton sink v)
                then acc + 1
                else acc)
              0 adom
          in
          let s_b = ref 0 and s_s = ref 0 in
          let t_b = run_batched true (fun () -> time_it (fun () -> s_b := sat ())) in
          let t_s = run_batched false (fun () -> time_it (fun () -> s_s := sat ())) in
          row "sat" t_s t_b (!s_b = !s_s);
          (* proj: distinct answers projected onto one head variable *)
          let p_b = ref Mapping.Set.empty and p_s = ref Mapping.Set.empty in
          let t_b =
            run_batched true (fun () ->
                time_it (fun () -> p_b := Cq.Eval.answers db proj_q))
          in
          let t_s =
            run_batched false (fun () ->
                time_it (fun () -> p_s := Cq.Eval.answers db proj_q))
          in
          row "proj" t_s t_b (Mapping.Set.equal !p_b !p_s))
        sizes)
    queries;
  print_row
    "  worst enum speedup at largest |D|: %.1fx  (acceptance: >= 2x with identical answers)@."
    !worst_enum;
  (* morsel-size sweep: group size bounds the columnar footprint, so too-small
     groups pay per-group overhead and huge groups lose cache residency *)
  print_row "  morsel sweep (chain4 enum, |D| = %d, batched):@." largest;
  print_row "  %8s  %12s@." "morsel" "enum(ms)";
  let db =
    Workload.Gen_db.random_graph_db ~seed:37 ~nodes:(largest / 4) ~edges:largest
  in
  let plan =
    Engine.compile db (Cq.Query.body (Workload.Gen_cq.chain 4)) ~init:Mapping.empty
  in
  let g0 = Engine.Parallel.morsel_rows () in
  List.iter
    (fun m ->
      Engine.Parallel.set_morsel_rows m;
      let t =
        Fun.protect
          ~finally:(fun () -> Engine.Parallel.set_morsel_rows g0)
          (fun () ->
            run_batched true (fun () ->
                time_it (fun () ->
                    let n = ref 0 in
                    Engine.iter_envs plan (fun _ -> incr n))))
      in
      print_row "  %8d  %12.2f@." m (t *. 1000.);
      record "BATCH" (Printf.sprintf "morsel=%d enum |D|=%d" m largest) t)
    [ 256; 1024; 4096 ]

(* ---------------------------------------------------------------- *)
(* AUDIT: plan audit is O(plan size); checked-execution overhead      *)
(* ---------------------------------------------------------------- *)

let audit_overhead () =
  section "AUDIT"
    "Plan_audit is O(plan size), not O(data); checked execution overhead vs fast path";
  Format.printf
    "audit must stay flat as |D| grows (it reads per-atom summaries only);@.";
  Format.printf
    "checked enumeration re-verifies every instruction and solution.@.";
  print_row "  %8s  %12s  %14s  %16s  %9s@." "|D|" "audit(ms)"
    "enum-plain(ms)" "enum-checked(ms)" "overhead";
  let q = Workload.Gen_cq.chain 4 in
  let body = Cq.Query.body q in
  let was_checked = Engine.checked_enabled () in
  let audit_points = ref [] in
  List.iter
    (fun size ->
      let db =
        Workload.Gen_db.random_graph_db ~seed:13 ~nodes:(size / 4) ~edges:size
      in
      let p = Engine.compile db body ~init:Mapping.empty in
      let t_audit = time_it (fun () -> ignore (Analysis.Plan_audit.audit p)) in
      let enum () =
        let n = ref 0 in
        Engine.iter_envs p (fun _ -> incr n);
        !n
      in
      Engine.set_checked false;
      let n_plain = ref 0 in
      let t_plain = time_it (fun () -> n_plain := enum ()) in
      Engine.set_checked true;
      let n_checked = ref 0 in
      let t_checked = time_it (fun () -> n_checked := enum ()) in
      Engine.set_checked was_checked;
      if !n_plain <> !n_checked then failwith "AUDIT: checked enum disagrees";
      print_row "  %8d  %12.4f  %14.2f  %16.2f  %8.1fx@." size (t_audit *. 1000.)
        (t_plain *. 1000.) (t_checked *. 1000.)
        (t_checked /. t_plain);
      record "AUDIT" (Printf.sprintf "audit |D|=%d" size) t_audit;
      record "AUDIT" (Printf.sprintf "enum-plain |D|=%d" size) t_plain;
      record "AUDIT" (Printf.sprintf "enum-checked |D|=%d" size) t_checked;
      audit_points := (size, t_audit) :: !audit_points)
    (if !smoke then [ 200; 400 ] else [ 400; 1600; 6400 ]);
  print_row "  audit growth exponent in |D|: %.2f  (acceptance: ~0, O(plan) not O(data))@."
    (loglog_slope (List.rev !audit_points));
  (* audit time against plan size on a fixed database *)
  print_row "  %8s  %12s@." "atoms" "audit(ms)";
  let db = Workload.Gen_db.random_graph_db ~seed:13 ~nodes:100 ~edges:400 in
  List.iter
    (fun n ->
      let body = Cq.Query.body (Workload.Gen_cq.chain n) in
      let p = Engine.compile db body ~init:Mapping.empty in
      let t = time_it (fun () -> ignore (Analysis.Plan_audit.audit p)) in
      print_row "  %8d  %12.4f@." n (t *. 1000.);
      record "AUDIT" (Printf.sprintf "audit atoms=%d" n) t)
    [ 2; 4; 8 ];
  (* static bound vs measured counts on the Table-1 workloads: the Cost
     bound must dominate the measured homomorphism count (soundness), and
     the gap shows how much the statistics know (EXPERIMENTS.md column) *)
  print_row "  static bound vs measured (soundness of Analysis.Cost):@.";
  print_row "  %-26s  %14s  %12s@." "instance" "bound(homs)" "measured";
  let bound_vs_measured name body free db =
    let cost = Analysis.Cost.analyze db body ~free in
    let p = Engine.compile db body ~init:Mapping.empty in
    let n = ref 0 in
    Engine.iter_envs p (fun _ -> incr n);
    let b = cost.Analysis.Cost.hom_bound in
    print_row "  %-26s  %14s  %12d%s@." name
      (if b = neg_infinity then "0" else Printf.sprintf "10^%.2f" b)
      !n
      (if !n = 0 || log10 (float_of_int !n) <= b +. 1e-9 then ""
       else "  VIOLATED");
    record "AUDIT" (Printf.sprintf "bound %s" name) b
  in
  List.iter
    (fun size ->
      let p = Workload.Gen_wdpt.chain_tree ~nodes:5 ~rel:"E" in
      let q = Wdpt.Pattern_tree.q_full p in
      let db =
        Workload.Gen_db.random_graph_db ~seed:1 ~nodes:(size / 4) ~edges:size
      in
      bound_vs_measured
        (Printf.sprintf "T1-EVAL-a chain |D|=%d" size)
        (Cq.Query.body q) (Wdpt.Pattern_tree.free p) db)
    [ 400; 1600 ];
  List.iter
    (fun n ->
      let q = Workload.Gen_cq.guarded_clique n in
      let db = Database.create () in
      let vals = List.init (2 * n) (fun i -> Value.int i) in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if not (Value.equal a b) then
                Database.add db (Fact.make "E" [ a; b ]))
            vals)
        vals;
      Database.add db
        (Fact.make ("T" ^ string_of_int n) (List.filteri (fun i _ -> i < n) vals));
      bound_vs_measured
        (Printf.sprintf "T1-HW guarded clique n=%d" n)
        (Cq.Query.body q) (Cq.Query.head q) db)
    [ 3; 4; 5 ]

(* ---------------------------------------------------------------- *)
(* RESOURCE: batch audit + envelope are O(plan); envelope soundness   *)
(* ---------------------------------------------------------------- *)

let resource_envelope () =
  section "RESOURCE"
    "Batch_audit + Resource envelope are O(plan), not O(data); certified vs measured marks";
  Format.printf
    "the audit and the envelope read view summaries only, so their cost@.";
  Format.printf
    "must stay flat as |D| grows; after a batched run every measured@.";
  Format.printf
    "high-water mark must stay within its certified component (sound),@.";
  Format.printf
    "and the certified/measured ratio shows how tight the envelope is.@.";
  let was_batched = Engine.batched_enabled () in
  let q = Workload.Gen_cq.chain 4 in
  let body = Cq.Query.body q in
  print_row "  %8s  %12s  %14s  %10s  %10s  %10s@." "|D|" "audit(ms)"
    "envelope(ms)" "col-ratio" "dense-ratio" "replay-rat";
  let audit_points = ref [] in
  List.iter
    (fun size ->
      let db =
        Workload.Gen_db.random_graph_db ~seed:29 ~nodes:(size / 4) ~edges:size
      in
      let p = Engine.compile db body ~init:Mapping.empty in
      let t_audit = time_it (fun () -> ignore (Analysis.Batch_audit.audit p)) in
      let t_env = time_it (fun () -> ignore (Analysis.Resource.of_plan p)) in
      (* checked mode arms the per-group replay buffer, so all three
         envelope components see a nonzero measured mark *)
      let was_checked = Engine.checked_enabled () in
      Engine.set_batched true;
      Engine.set_checked true;
      let r =
        Fun.protect
          ~finally:(fun () ->
            Engine.set_batched was_batched;
            Engine.set_checked was_checked)
          (fun () ->
            let r = Analysis.Resource.of_plan p in
            Engine.reset_batch_stats ();
            ignore (Engine.count_envs p);
            Engine.iter_envs p (fun _ -> ());
            r)
      in
      let s = Engine.batch_stats () in
      if Analysis.Batch_audit.check_envelope r s <> [] then
        failwith
          (Printf.sprintf "RESOURCE: envelope violated at |D|=%d" size);
      let ratio certified measured =
        if measured = 0 then nan
        else float_of_int certified /. float_of_int measured
      in
      let rc = ratio r.Analysis.Resource.r_column_words s.Engine.bm_column_words in
      let rd = ratio r.Analysis.Resource.r_dense_words s.Engine.bm_dense_words in
      let rr = ratio r.Analysis.Resource.r_replay_rows s.Engine.bm_replay_rows in
      let pp_ratio ppf x =
        if Float.is_nan x then Format.fprintf ppf "%10s" "n/a"
        else Format.fprintf ppf "%9.1fx" x
      in
      print_row "  %8d  %12.4f  %14.4f  %a  %a  %a@." size (t_audit *. 1000.)
        (t_env *. 1000.) pp_ratio rc pp_ratio rd pp_ratio rr;
      record "RESOURCE" (Printf.sprintf "audit |D|=%d" size) t_audit;
      record "RESOURCE" (Printf.sprintf "envelope |D|=%d" size) t_env;
      if not (Float.is_nan rc) then
        record "RESOURCE" (Printf.sprintf "column-ratio |D|=%d" size) rc;
      if not (Float.is_nan rd) then
        record "RESOURCE" (Printf.sprintf "dense-ratio |D|=%d" size) rd;
      if not (Float.is_nan rr) then
        record "RESOURCE" (Printf.sprintf "replay-ratio |D|=%d" size) rr;
      audit_points := (size, t_audit +. t_env) :: !audit_points)
    (if !smoke then [ 200; 800 ] else [ 400; 1600; 6400 ]);
  print_row
    "  audit+envelope growth exponent in |D|: %.2f  (acceptance: ~0, O(plan) not O(data))@."
    (loglog_slope (List.rev !audit_points));
  (* cost against plan size on a fixed database *)
  print_row "  %8s  %12s  %14s@." "atoms" "audit(ms)" "envelope(ms)";
  let db = Workload.Gen_db.random_graph_db ~seed:29 ~nodes:100 ~edges:400 in
  List.iter
    (fun n ->
      let body = Cq.Query.body (Workload.Gen_cq.chain n) in
      let p = Engine.compile db body ~init:Mapping.empty in
      let t_audit = time_it (fun () -> ignore (Analysis.Batch_audit.audit p)) in
      let t_env = time_it (fun () -> ignore (Analysis.Resource.of_plan p)) in
      print_row "  %8d  %12.4f  %14.4f@." n (t_audit *. 1000.) (t_env *. 1000.);
      record "RESOURCE" (Printf.sprintf "audit atoms=%d" n) t_audit;
      record "RESOURCE" (Printf.sprintf "envelope atoms=%d" n) t_env)
    [ 2; 4; 8 ]

(* ---------------------------------------------------------------- *)
(* OPT: the pass pipeline is O(plan); optimized vs unoptimized        *)
(* ---------------------------------------------------------------- *)

let opt_pipeline () =
  section "OPT"
    "Optimization passes + translation validation are O(plan); opt vs unopt on T1 workloads";
  Format.printf
    "pipeline = the five passes (fold, dead-instruction, dead-slot, hoist,@.";
  Format.printf
    "reorder); verify = Analysis.Equiv re-checking every certificate. Both@.";
  Format.printf
    "read per-atom summaries only, so they must stay flat as |D| grows.@.";
  let was_opt = Engine.optimize_enabled () in
  (* (a) pipeline and verification cost against |D| on a fixed plan shape *)
  let body = Cq.Query.body (Workload.Gen_cq.chain 4) in
  print_row "  %8s  %14s  %14s@." "|D|" "pipeline(ms)" "verify(ms)";
  let pipe_points = ref [] in
  List.iter
    (fun size ->
      let db =
        Workload.Gen_db.random_graph_db ~seed:17 ~nodes:(size / 4) ~edges:size
      in
      Engine.set_optimize false;
      let base = Engine.compile db body ~init:Mapping.empty in
      Engine.set_optimize true;
      let t_pipe = time_it (fun () -> ignore (Engine.optimize base)) in
      let opt = Engine.optimize base in
      let t_ver = time_it (fun () -> ignore (Analysis.Equiv.verify_trail opt)) in
      if not (Analysis.Equiv.verify_trail opt).Analysis.Equiv.r_verified then
        failwith "OPT: certificate trail rejected";
      print_row "  %8d  %14.4f  %14.4f@." size (t_pipe *. 1000.) (t_ver *. 1000.);
      record "OPT" (Printf.sprintf "pipeline |D|=%d" size) t_pipe;
      record "OPT" (Printf.sprintf "verify |D|=%d" size) t_ver;
      pipe_points := (size, t_pipe) :: !pipe_points)
    (if !smoke then [ 200; 400 ] else [ 400; 1600; 6400 ]);
  print_row
    "  pipeline growth exponent in |D|: %.2f  (acceptance: ~0, O(plan) not O(data))@."
    (loglog_slope (List.rev !pipe_points));
  (* (b) end-to-end enumeration, pipeline off vs on, answers cross-checked.
     The workloads are the ones the passes exist for: bodies with redundant
     duplicate atoms (dead-instruction), and initial bindings that fold to
     checks, empty ground guards and a stale static order (fold + drop +
     reorder) — the Table-1 EVAL inner loop binds variables exactly like
     this. *)
  print_row "  %-24s  %8s  %12s  %12s  %9s@." "workload" "|D|" "unopt(ms)"
    "opt(ms)" "speedup";
  let chain = Workload.Gen_cq.chain 4 in
  let chain_body = Cq.Query.body chain in
  let sink =
    List.nth chain_body (List.length chain_body - 1)
    |> Atom.vars |> List.rev |> List.hd
  in
  let workloads =
    [ ("chain4 duplicated x2", chain_body @ chain_body,
       fun (_ : Database.t) -> Mapping.empty);
      ("chain4 sink bound", chain_body,
       fun db ->
         match Value.Set.min_elt_opt (Database.active_domain db) with
         | Some v -> Mapping.singleton sink v
         | None -> Mapping.empty) ]
  in
  List.iter
    (fun (name, body, init_of) ->
      List.iter
        (fun size ->
          let db =
            Workload.Gen_db.random_graph_db ~seed:19 ~nodes:(size / 4)
              ~edges:size
          in
          let init = init_of db in
          let enum () =
            let n = ref 0 in
            let p = Engine.compile db body ~init in
            Engine.iter_envs p (fun _ -> incr n);
            !n
          in
          Engine.set_optimize false;
          let n_plain = ref 0 in
          let t_plain = time_it (fun () -> n_plain := enum ()) in
          Engine.set_optimize true;
          let n_opt = ref 0 in
          let t_opt = time_it (fun () -> n_opt := enum ()) in
          if !n_plain <> !n_opt then failwith ("OPT: answer mismatch on " ^ name);
          print_row "  %-24s  %8d  %12.2f  %12.2f  %8.2fx@." name size
            (t_plain *. 1000.) (t_opt *. 1000.)
            (t_plain /. t_opt);
          record "OPT" (Printf.sprintf "%s |D|=%d unopt" name size) t_plain;
          record "OPT" (Printf.sprintf "%s |D|=%d opt" name size) t_opt)
        (if !smoke then [ 200; 800 ] else [ 800; 1600; 3200 ]))
    workloads;
  Engine.set_optimize was_opt

(* ---------------------------------------------------------------- *)
(* PAR: domain-parallel runtime; incremental vs full recompilation    *)
(* ---------------------------------------------------------------- *)

let par_runtime () =
  section "PAR"
    "Domain-parallel enumeration (pools of 1/2/4/8) and incremental compiled databases";
  Format.printf
    "the top-level candidate range is chunked across a Domain pool; answers@.";
  Format.printf
    "are cross-checked against the 1-domain run. Speedup is bounded by the@.";
  Format.printf
    "machine: on a single-core container every pool size measures the same@.";
  Format.printf
    "work plus spawn/merge overhead (parity, not speedup, is the signal).@.";
  let d0 = Engine.Parallel.domains () and m0 = Engine.Parallel.min_rows () in
  let with_pool nd f =
    Engine.Parallel.set_domains nd;
    Engine.Parallel.set_min_rows 1;
    Fun.protect
      ~finally:(fun () ->
        Engine.Parallel.set_domains d0;
        Engine.Parallel.set_min_rows m0)
      f
  in
  let body = Cq.Query.body (Workload.Gen_cq.chain 4) in
  print_row "  %8s  %4s  %12s  %12s  %12s  %9s@." "|D|" "nd" "count(ms)"
    "enum(ms)" "sat(ms)" "agree";
  List.iter
    (fun size ->
      let db =
        Workload.Gen_db.random_graph_db ~seed:23 ~nodes:(size / 4) ~edges:size
      in
      let p = Engine.compile db body ~init:Mapping.empty in
      let reference = with_pool 1 (fun () -> Engine.count_envs p) in
      List.iter
        (fun nd ->
          with_pool nd (fun () ->
              let c = ref 0 in
              let t_count = time_it (fun () -> c := Engine.count_envs p) in
              let n = ref 0 in
              let t_enum =
                time_it (fun () ->
                    n := 0;
                    Engine.iter_envs p (fun _ -> incr n))
              in
              let s = ref false in
              let t_sat = time_it (fun () -> s := Engine.sat p) in
              let agree = !c = reference && !n = reference && !s = (reference > 0) in
              if not agree then failwith "PAR: parallel run disagrees";
              print_row "  %8d  %4d  %12.2f  %12.2f  %12.3f  %9b@." size nd
                (t_count *. 1000.) (t_enum *. 1000.) (t_sat *. 1000.) agree;
              record "PAR" (Printf.sprintf "count |D|=%d nd=%d" size nd) t_count;
              record "PAR" (Printf.sprintf "enum |D|=%d nd=%d" size nd) t_enum;
              record "PAR" (Printf.sprintf "sat |D|=%d nd=%d" size nd) t_sat))
        [ 1; 2; 4; 8 ])
    (if !smoke then [ 200; 800 ] else [ 800; 1600; 3200 ]);
  (* incremental maintenance: with a warm compiled form, Database.add appends
     into the interned tuples and counted index cells in place; the baseline
     drops the cache so the next query recompiles from scratch. Acceptance:
     the in-place extension beats full recompilation by >= 5x. *)
  print_row "  incremental Database.add + re-query vs clear_cache + re-query:@.";
  print_row "  %8s  %16s  %14s  %9s@." "|D|" "incremental(ms)" "rebuild(ms)" "ratio";
  (* the probe is selective (constant-bound first position) so the re-query
     itself is O(matching rows), not O(data): the timed difference is the
     maintenance cost — an O(1) in-place append vs an O(data) recompile *)
  let q1 =
    Cq.Query.make ~head:[ "y" ]
      ~body:[ Atom.make "E" [ Term.const (Value.int 0); Term.var "y" ] ]
  in
  let worst = ref infinity in
  List.iter
    (fun size ->
      let fresh_fact i =
        Fact.make "E" [ Value.int (1_000_000 + i); Value.int (2_000_000 + i) ]
      in
      let db =
        Workload.Gen_db.random_graph_db ~seed:29 ~nodes:(size / 4) ~edges:size
      in
      ignore (Cq.Eval.answers db q1);
      let i = ref 0 in
      let t_inc =
        time_it (fun () ->
            Database.add db (fresh_fact !i);
            incr i;
            ignore (Cq.Eval.answers db q1))
      in
      let t_full =
        time_it (fun () ->
            Database.add db (fresh_fact !i);
            incr i;
            Database.clear_cache db;
            ignore (Cq.Eval.answers db q1))
      in
      let ratio = t_full /. t_inc in
      if size >= 800 then worst := Float.min !worst ratio;
      print_row "  %8d  %16.4f  %14.4f  %8.1fx@." size (t_inc *. 1000.)
        (t_full *. 1000.) ratio;
      record "PAR" (Printf.sprintf "incremental |D|=%d" size) t_inc;
      record "PAR" (Printf.sprintf "rebuild |D|=%d" size) t_full)
    (if !smoke then [ 200; 800 ] else [ 800; 3200; 12800 ]);
  print_row
    "  worst incremental advantage at |D| >= 800: %.1fx  (acceptance: >= 5x)@."
    !worst

(* ---------------------------------------------------------------- *)
(* RACE: data-race sanitizer overhead on the parallel primitives      *)
(* ---------------------------------------------------------------- *)

let race_sanitizer () =
  section "RACE"
    "Race sanitizer (WDPT_ENGINE_TSAN) overhead on parallel count/enum, answers cross-checked";
  Format.printf
    "per-chunk access logs with logical clocks, vector-clock validation at@.";
  Format.printf
    "the join; logging is O(distinct shared locations) per chunk, so the@.";
  Format.printf
    "overhead must stay a flat factor as |D| grows.@.";
  let d0 = Engine.Parallel.domains () and m0 = Engine.Parallel.min_rows () in
  let r0 = Engine.Parallel.race_check_enabled () in
  let with_pool nd race f =
    Engine.Parallel.set_domains nd;
    Engine.Parallel.set_min_rows 1;
    Engine.Parallel.set_race_check race;
    Fun.protect
      ~finally:(fun () ->
        Engine.Parallel.set_domains d0;
        Engine.Parallel.set_min_rows m0;
        Engine.Parallel.set_race_check r0)
      f
  in
  let body = Cq.Query.body (Workload.Gen_cq.chain 4) in
  print_row "  %8s  %6s  %12s  %12s  %9s  %7s@." "|D|" "prim" "plain(ms)"
    "tsan(ms)" "overhead" "agree";
  List.iter
    (fun size ->
      let db =
        Workload.Gen_db.random_graph_db ~seed:31 ~nodes:(size / 4) ~edges:size
      in
      let p = Engine.compile db body ~init:Mapping.empty in
      let reference = with_pool 1 false (fun () -> Engine.count_envs p) in
      let row prim f =
        let plain = ref 0 and tsan = ref 0 in
        let t_plain = with_pool 2 false (fun () -> time_it (fun () -> plain := f ())) in
        let t_tsan = with_pool 2 true (fun () -> time_it (fun () -> tsan := f ())) in
        let agree = !plain = reference && !tsan = reference in
        if not agree then failwith ("RACE: " ^ prim ^ " disagrees");
        print_row "  %8d  %6s  %12.2f  %12.2f  %8.2fx  %7b@." size prim
          (t_plain *. 1000.) (t_tsan *. 1000.) (t_tsan /. t_plain) agree;
        record "RACE" (Printf.sprintf "%s |D|=%d plain" prim size) t_plain;
        record "RACE" (Printf.sprintf "%s |D|=%d tsan" prim size) t_tsan
      in
      row "count" (fun () -> Engine.count_envs p);
      row "enum" (fun () ->
          let n = ref 0 in
          Engine.iter_envs p (fun _ -> incr n);
          !n))
    (if !smoke then [ 200; 800 ] else [ 800; 1600; 3200 ]);
  let s = Engine.Parallel.race_stats () in
  print_row
    "  sanitizer totals: %d region(s) validated, %d access record(s), %d race(s)  (acceptance: 0 races)@."
    s.Engine.Parallel.rs_regions s.Engine.Parallel.rs_events
    s.Engine.Parallel.rs_races;
  if s.Engine.Parallel.rs_races > 0 then failwith "RACE: sanitizer reported races"

(* ---------------------------------------------------------------- *)
(* DRIFT: adaptive re-optimization pays off on skewed data            *)
(* ---------------------------------------------------------------- *)

let drift_adaptive () =
  section "DRIFT"
    "Cardinality-feedback loop: adaptive re-planning vs static plan on skewed data";
  Format.printf
    "the static cost model prices R(1, ?y) by its average cell size, but key 1@.";
  Format.printf
    "holds almost every row of R; after one run the feedback counters expose@.";
  Format.printf
    "the drift, the plan is re-costed and re-ordered under an E025-checked@.";
  Format.printf
    "certificate, and the hot probe moves behind the selective join. The@.";
  Format.printf
    "feedback audit reads counter summaries only, so it must stay flat in |D|.@.";
  let was_batched = Engine.batched_enabled () in
  let was_adapt = Engine.adapt_enabled () in
  Engine.set_batched true;
  Fun.protect
    ~finally:(fun () ->
      Engine.set_batched was_batched;
      Engine.set_adapt was_adapt)
    (fun () ->
      let atoms =
        [ Atom.make "S" [ Term.var "x" ];
          Atom.make "R" [ Term.const (Value.int 1); Term.var "y" ];
          Atom.make "C" [ Term.var "y"; Term.var "x" ] ]
      in
      (* the skew.wdpt workload scaled by the hot-key population: S and C stay
         fixed, R's key 1 grows, the 200-key tail keeps the average cell small *)
      let build hot =
        let db = Database.create () in
        for i = 1 to 10 do
          Database.add db (Fact.make "S" [ Value.int i ])
        done;
        for j = 1 to hot do
          Database.add db (Fact.make "R" [ Value.int 1; Value.int j ])
        done;
        for k = 2 to 201 do
          Database.add db (Fact.make "R" [ Value.int k; Value.int 0 ])
        done;
        for j = 1 to 300 do
          Database.add db
            (Fact.make "C" [ Value.int j; Value.int (((j - 1) mod 10) + 1) ])
        done;
        db
      in
      print_row "  %8s  %12s  %14s  %12s  %9s  %7s@." "|D|" "static(ms)"
        "adaptive(ms)" "audit(ms)" "speedup" "agree";
      let audit_points = ref [] in
      let worst = ref infinity in
      let sizes = if !smoke then [ 2_000; 8_000 ] else [ 2_000; 8_000; 32_000 ] in
      let largest = List.fold_left max 0 sizes in
      List.iter
        (fun hot ->
          let db = build hot in
          let size = 10 + hot + 200 + 300 in
          Engine.set_adapt false;
          let p_static = Engine.compile db atoms ~init:Mapping.empty in
          let n_s = ref 0 in
          let t_static = time_it (fun () -> n_s := Engine.count_envs p_static) in
          (* adaptive: the first run feeds the counters and installs the
             certified swap in the stats-epoch-keyed cache; the recompile
             picks it up, so the timed runs execute the re-planned order *)
          Engine.set_adapt true;
          Database.clear_cache db;
          let warm = Engine.compile db atoms ~init:Mapping.empty in
          ignore (Engine.count_envs warm);
          let p_adapt = Engine.compile db atoms ~init:Mapping.empty in
          let n_a = ref 0 in
          let t_adapt = time_it (fun () -> n_a := Engine.count_envs p_adapt) in
          let t_audit =
            time_it (fun () -> ignore (Analysis.Feedback.audit p_adapt))
          in
          if Analysis.Feedback.audit p_adapt <> [] then
            failwith "DRIFT: adapted plan fails the feedback audit";
          let agree = !n_s = !n_a in
          if not agree then failwith "DRIFT: adaptive answer count disagrees";
          let speedup = t_static /. t_adapt in
          if hot = largest then worst := Float.min !worst speedup;
          print_row "  %8d  %12.2f  %14.2f  %12.4f  %8.1fx  %7b@." size
            (t_static *. 1000.) (t_adapt *. 1000.) (t_audit *. 1000.) speedup
            agree;
          record "DRIFT" (Printf.sprintf "static |D|=%d" size) t_static;
          record "DRIFT" (Printf.sprintf "adaptive |D|=%d" size) t_adapt;
          record "DRIFT" (Printf.sprintf "audit |D|=%d" size) t_audit;
          audit_points := (size, t_audit) :: !audit_points)
        sizes;
      print_row
        "  adaptive speedup at largest |D|: %.1fx  (acceptance: > 1x with identical answers)@."
        !worst;
      print_row
        "  audit growth exponent in |D|: %.2f  (acceptance: ~0, O(plan) not O(data))@."
        (loglog_slope (List.rev !audit_points)))

(* ---------------------------------------------------------------- *)
(* DELTA: standing-query maintenance vs full re-evaluation            *)
(* ---------------------------------------------------------------- *)

let delta_maintenance () =
  section "DELTA"
    "Incremental answer maintenance: delta refresh vs full re-evaluation per batch";
  Format.printf
    "a standing WDPT (root E(x,y), OPT child U(y,z), free x,z) is registered@.";
  Format.printf
    "once; each 1%%-sized insertion batch is then absorbed by the counting@.";
  Format.printf
    "delta refresh (dirty-rootkey scoped re-runs + per-group frontier@.";
  Format.printf
    "updates), cross-checked every batch against evaluating the post-batch@.";
  Format.printf
    "database from scratch at both semantics levels, and the emitted change@.";
  Format.printf
    "events must replay the before-sets onto the after-sets (E030).@.";
  let p =
    Wdpt.Pattern_tree.make ~free:[ "x"; "z" ]
      (Wdpt.Pattern_tree.Node
         ( [ Atom.make "E" [ Term.var "x"; Term.var "y" ] ],
           [ Wdpt.Pattern_tree.Node
               ([ Atom.make "U" [ Term.var "y"; Term.var "z" ] ], []) ] ))
  in
  (* |D| facts: 90% E edges over |D|/4 nodes, 10% sparse U edges (so most
     root homomorphisms are bare and subsumption frontiers stay busy), plus
     a two-edge gadget E(-1,-2), E(-1,-3) whose x=-1 answer the demotion
     batch later demotes deterministically. *)
  let build size =
    let rng = Random.State.make [| 0xde17a; size |] in
    let nodes = size / 4 in
    let db = Database.create () in
    let n_u = size / 10 in
    for _ = 1 to size - n_u - 2 do
      Database.add db
        (Fact.make "E"
           [ Value.int (Random.State.int rng nodes);
             Value.int (Random.State.int rng nodes) ])
    done;
    for _ = 1 to n_u do
      Database.add db
        (Fact.make "U"
           [ Value.int (Random.State.int rng nodes);
             Value.int (Random.State.int rng nodes) ])
    done;
    Database.add db (Fact.make "E" [ Value.int (-1); Value.int (-2) ]);
    Database.add db (Fact.make "E" [ Value.int (-1); Value.int (-3) ]);
    (db, rng, nodes)
  in
  let batches = 10 in
  print_row "  %8s  %8s  %13s  %12s  %11s  %9s  %8s@." "|D|" "batch"
    "register(ms)" "delta(ms)" "full(ms)" "speedup" "demoted";
  let sizes = if !smoke then [ 800; 3_200 ] else [ 800; 1_600; 3_200 ] in
  let speedup_at_largest = ref nan in
  let largest = List.fold_left max 0 sizes in
  List.iter
    (fun size ->
      let db, rng, nodes = build size in
      let st = ref None in
      let t_register =
        time_once (fun () -> st := Some (Wdpt.Standing.register db p)) |> snd
      in
      let st = Option.get !st in
      let batch_size = max 1 (size / 100) in
      let t_delta = ref 0. and t_full = ref 0. and demoted = ref 0 in
      for batch = 1 to batches do
        let before_eval = Wdpt.Standing.answers st in
        let before_max = Wdpt.Standing.maximal_answers st in
        (* 1% insertions, 90/10 E/U like the base data; batch 2 also plants
           U(-2,-4): {x=-1,z=-4} arrives and demotes the gadget's bare
           {x=-1}, which keeps its support through E(-1,-3) *)
        if batch = 2 then
          Database.add db (Fact.make "U" [ Value.int (-2); Value.int (-4) ]);
        for _ = 1 to batch_size do
          let rel = if Random.State.int rng 10 = 0 then "U" else "E" in
          Database.add db
            (Fact.make rel
               [ Value.int (Random.State.int rng nodes);
                 Value.int (Random.State.int rng nodes) ])
        done;
        let events, dt = time_once (fun () -> Wdpt.Standing.refresh st) in
        t_delta := !t_delta +. dt;
        List.iter
          (fun (e : Wdpt.Standing.event) ->
            match e with Demoted _ -> incr demoted | _ -> ())
          events;
        (* the from-scratch baseline: evaluate a fresh copy of the post-batch
           database (cold engine cache, like a re-run would) *)
        let db' = Database.copy db in
        let (full_eval, full_max), ft =
          time_once (fun () ->
              (Wdpt.Semantics.eval db' p, Wdpt.Semantics.eval_max db' p))
        in
        t_full := !t_full +. ft;
        if not (Mapping.Set.equal (Wdpt.Standing.answers st) full_eval) then
          failwith "DELTA: maintained answers diverge from full re-evaluation";
        if not (Mapping.Set.equal (Wdpt.Standing.maximal_answers st) full_max)
        then failwith "DELTA: maintained frontier diverges from eval_max";
        match
          Analysis.Delta_audit.check_events ~before_eval ~before_max
            ~after_eval:full_eval ~after_max:full_max events
        with
        | [] -> ()
        | _ -> failwith "DELTA: change events fail the E030 replay check"
      done;
      if !demoted = 0 then
        failwith "DELTA: no batch demoted a previously maximal answer";
      let speedup = !t_full /. !t_delta in
      if size = largest then speedup_at_largest := speedup;
      print_row "  %8d  %8d  %13.2f  %12.3f  %11.2f  %8.1fx  %8d@."
        (Database.size db) batch_size (t_register *. 1000.)
        (!t_delta /. float_of_int batches *. 1000.)
        (!t_full /. float_of_int batches *. 1000.)
        speedup !demoted;
      record "DELTA" (Printf.sprintf "register |D|=%d" size) t_register;
      record "DELTA"
        (Printf.sprintf "delta-batch |D|=%d" size)
        (!t_delta /. float_of_int batches);
      record "DELTA"
        (Printf.sprintf "full-batch |D|=%d" size)
        (!t_full /. float_of_int batches))
    sizes;
  print_row
    "  delta speedup at |D|=%d: %.1fx  (acceptance: >= 10x with identical \
     change sets and >= 1 demotion)@."
    largest !speedup_at_largest;
  if !speedup_at_largest < 10. then
    failwith "DELTA: refresh is not 10x faster than full re-evaluation"

(* ---------------------------------------------------------------- *)
(* Bechamel micro-benchmarks: one Test.make per table/figure          *)
(* ---------------------------------------------------------------- *)

let bechamel_suite () =
  section "BECHAMEL" "micro-benchmarks (one per table/figure, fixed small instances)";
  let open Bechamel in
  let chain = Workload.Gen_wdpt.chain_tree ~nodes:4 ~rel:"E" in
  let db = Workload.Gen_db.random_graph_db ~seed:9 ~nodes:40 ~edges:160 in
  let h =
    match Wdpt.Semantics.any_maximal_homomorphism db chain with
    | Some m -> Mapping.restrict (Wdpt.Pattern_tree.free_set chain) m
    | None -> Mapping.empty
  in
  let g3 = Wdpt.Reductions.cycle 5 in
  let p3, db3, h3 = Wdpt.Reductions.three_col_instance g3 in
  let tri = Wdpt.Pattern_tree.of_cq (Workload.Gen_cq.cycle 3) in
  let tests =
    [ Test.make ~name:"table1/eval-tractable"
        (Staged.stage (fun () -> Wdpt.Eval_tractable.decision db chain h));
      Test.make ~name:"table1/eval-hard-3col"
        (Staged.stage (fun () -> Wdpt.Eval_tractable.decision db3 p3 h3));
      Test.make ~name:"table1/partial-eval"
        (Staged.stage (fun () -> Wdpt.Partial_eval.decision db chain h));
      Test.make ~name:"table1/max-eval"
        (Staged.stage (fun () -> Wdpt.Max_eval.decision db chain h));
      Test.make ~name:"table1/subsumption"
        (Staged.stage (fun () -> Wdpt.Subsumption.subsumes chain chain));
      Test.make ~name:"table2/uwb-membership"
        (Staged.stage (fun () -> Wdpt.Union.in_m_uwb ~width:Tw ~k:1 [ chain ]));
      Test.make ~name:"table2/uwb-approximation"
        (Staged.stage (fun () -> Wdpt.Union.uwb_approximation ~width:Tw ~k:1 [ tri ]));
      Test.make ~name:"figure2/construction"
        (Staged.stage (fun () -> Workload.Hard_instances.figure2 ~n:4 ~k:2)) ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 50) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  print_row "  %-28s  %14s@." "benchmark" "ns/run";
  List.iter
    (fun test ->
      Format.print_flush ();
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> print_row "  %-28s  %14.0f@." name est
          | _ -> print_row "  %-28s  %14s@." name "n/a")
        results)
    tests

let usage = "bench [--json OUT] [--smoke] [--only ID] [--domains N] [--min-rows N]"

let () =
  let args =
    [ ("--json", Arg.String (fun s -> json_out := Some s),
       "OUT  write per-experiment median timings as JSON");
      ("--smoke", Arg.Set smoke,
       "  quick subset (t1a + engine + batch + opt + par + race, reduced sizes) for CI");
      ("--only", Arg.String (fun s -> only := Some s),
       "ID  run a single experiment (t1a t1b t1pf t1hw t1pm t1sub t2mem t2app fig2 cor2 prop2 engine batch audit resource opt par race drift delta bechamel)");
      ("--morsel-rows", Arg.Int (fun n ->
           if n < 1 then raise (Arg.Bad "--morsel-rows: morsel size must be >= 1");
           Engine.Parallel.set_morsel_rows n),
       "N  ambient morsel group size for experiments that do not sweep it (>= 1)");
      ("--domains", Arg.Int (fun n ->
           if n < 1 || n > 64 then raise (Arg.Bad "--domains: pool size must be within 1..64");
           Engine.Parallel.set_domains n),
       "N  ambient domain pool size for experiments that do not set their own (1..64)");
      ("--min-rows", Arg.Int (fun n ->
           if n < 1 then raise (Arg.Bad "--min-rows: threshold must be >= 1");
           Engine.Parallel.set_min_rows n),
       "N  ambient parallel-region row threshold (>= 1)") ]
  in
  Arg.parse args (fun s -> raise (Arg.Bad ("unexpected argument " ^ s))) usage;
  (* an unknown --only must fail loudly (a typo silently running nothing
     looks like a passing benchmark), listing what is available *)
  let experiments =
    [ "t1a"; "t1b"; "t1pf"; "t1hw"; "t1pm"; "t1sub"; "t2mem"; "t2app"; "fig2";
      "cor2"; "prop2"; "engine"; "batch"; "audit"; "resource"; "opt"; "par";
      "race"; "drift"; "delta"; "bechamel" ]
  in
  (match !only with
  | Some s when not (List.mem s experiments) ->
      Printf.eprintf
        "bench: unknown experiment %S for --only; available: %s\n" s
        (String.concat " " experiments);
      exit 2
  | _ -> ());
  Format.printf "WDPT reproduction benchmarks (Barceló & Pichler, PODS 2015)@.";
  let want name =
    if !smoke then
      name = "t1a" || name = "engine" || name = "batch" || name = "resource"
      || name = "opt" || name = "par" || name = "race" || name = "drift"
      || name = "delta"
    else match !only with None -> true | Some s -> s = name
  in
  if want "t1a" then t1_eval_tractable ();
  if want "t1b" then t1_eval_hard ();
  if want "t1pf" then t1_projection_free ();
  if want "t1hw" then t1_hw_vs_tw ();
  if want "t1pm" then t1_partial_max ();
  if want "t1sub" then t1_subsumption ();
  if want "t2mem" then t2_membership ();
  if want "t2app" then t2_approximation ();
  if want "fig2" then fig2 ();
  if want "cor2" then cor2_fpt ();
  if want "prop2" then prop2 ();
  if want "engine" then engine_speedup ();
  if want "batch" then batch_exec ();
  if want "audit" then audit_overhead ();
  if want "resource" then resource_envelope ();
  if want "opt" then opt_pipeline ();
  if want "par" then par_runtime ();
  if want "race" then race_sanitizer ();
  if want "drift" then drift_adaptive ();
  if want "delta" then delta_maintenance ();
  if want "bechamel" then bechamel_suite ();
  (match !json_out with
  | Some path -> write_json path
  | None -> ());
  Format.printf "@.done.@."
