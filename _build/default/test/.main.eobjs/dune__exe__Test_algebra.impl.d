test/test_algebra.ml: Alcotest Helpers List Mapping QCheck Rdf Relational Term Value Wdpt
