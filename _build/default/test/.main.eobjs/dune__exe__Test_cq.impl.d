test/test_cq.ml: Alcotest Cq Database Fact Helpers Hypergraphs List Mapping QCheck Relational String_set Value Workload
