test/test_classes.ml: Alcotest Cq Helpers Hypergraphs List Wdpt Workload
