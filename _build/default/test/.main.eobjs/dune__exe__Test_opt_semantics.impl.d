test/test_opt_semantics.ml: Alcotest Database Fact Helpers Mapping Rdf Relational Term Value Wdpt
