test/helpers.ml: Alcotest Atom Cq Database Fact Format List Mapping QCheck QCheck_alcotest Relational String_set Term Value Wdpt
