test/test_approximation.ml: Alcotest Helpers List Wdpt Workload
