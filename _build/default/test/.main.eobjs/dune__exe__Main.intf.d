test/main.mli:
