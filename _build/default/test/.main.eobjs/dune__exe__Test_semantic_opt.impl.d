test/test_semantic_opt.ml: Alcotest Cq Helpers Mapping Option QCheck Relational Wdpt Workload
