test/test_semantics.ml: Alcotest Cq Helpers List Mapping QCheck Relational String_set Value Wdpt Workload
