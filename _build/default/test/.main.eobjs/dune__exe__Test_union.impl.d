test/test_union.ml: Alcotest Cq Helpers List Mapping QCheck Relational Wdpt Workload
