test/test_projection_free.ml: Alcotest Atom Helpers List Mapping QCheck Relational String_set Wdpt
