test/test_sparql.ml: Alcotest Atom Database Fact Helpers List Mapping QCheck Rdf Relational Result Term Value Wdpt
