test/test_subsumption.ml: Alcotest Cq Helpers List Mapping QCheck Rdf Relational Seq Term Wdpt Workload
