test/test_relational.ml: Alcotest Atom Database Fact Helpers List Mapping Option Relational Result Schema String_set Term Value
