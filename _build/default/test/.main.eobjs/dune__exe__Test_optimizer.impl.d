test/test_optimizer.ml: Alcotest Cq Helpers Mapping QCheck Relational String Wdpt Workload
