test/test_edge_cases.ml: Alcotest Cq Database Fact Helpers Hypergraphs List Mapping Mapping_algebra Option Rdf Relational Schema String_set Term Value Wdpt Workload
