test/test_pattern_tree.ml: Alcotest Cq Helpers List Relational Seq String_set Wdpt
