test/test_syntax.ml: Alcotest Atom Database Fact Helpers List Relational Result Term Value Wdpt
