test/test_paper_claims.ml: Alcotest Cq Helpers Hypergraphs List Mapping QCheck Relational Seq Value Wdpt Workload
