test/test_reductions.ml: Alcotest Helpers QCheck Wdpt
