test/test_hypergraph.ml: Alcotest Format Helpers Hypergraphs List Option Printf QCheck Relational String_set
