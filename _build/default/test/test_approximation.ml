(* WDPT approximation (Section 5.2) and the Lemma-1 normalization. *)

open Helpers
module Pt = Wdpt.Pattern_tree
module App = Wdpt.Approximation
module Sub = Wdpt.Subsumption

let triangle_with_optional () =
  Pt.make ~free:[ "x"; "w" ]
    (Node ([ e "x" "y"; e "y" "z"; e "z" "x" ], [ Node ([ e "x" "w" ], []) ]))

let test_moves_sound () =
  let p = triangle_with_optional () in
  List.iter
    (fun m ->
      match App.apply p m with
      | Some p' -> check_bool "move is ⊑-decreasing" true (Sub.subsumes p' p)
      | None -> ())
    (App.moves p)

let test_approximations_triangle_tree () =
  let p = triangle_with_optional () in
  let apps = App.wb_approximations ~width:Tw ~k:1 p in
  check_bool "found approximations" true (apps <> []);
  List.iter
    (fun a ->
      check_bool "in WB(1)" true (Wdpt.Classes.in_wb ~width:Tw ~k:1 a);
      check_bool "sound" true (Sub.subsumes a p))
    apps

let test_in_class_identity () =
  let p = Workload.Datasets.figure1_wdpt ~free:[ "x"; "y" ] in
  let apps = App.wb_approximations ~width:Tw ~k:1 p in
  check_int "in-class query is its own approximation" 1 (List.length apps);
  check_bool "equivalent" true (Sub.equivalent (List.hd apps) p)

let test_is_approximation () =
  let p = triangle_with_optional () in
  let in_class = Wdpt.Classes.in_wb ~width:Tw ~k:1 in
  match App.wb_approximations ~width:Tw ~k:1 p with
  | a :: _ ->
      check_bool "approximation recognized" true (App.is_approximation ~in_class a p);
      check_bool "p itself not (not in class)" false (App.is_approximation ~in_class p p)
  | [] -> Alcotest.fail "expected an approximation"

let test_normalize_prunes () =
  (* a leaf without free variables is pruned; a chain without free vars is
     merged below the root *)
  let p =
    Pt.make ~free:[ "x" ]
      (Node
         ( [ e "x" "x" ],
           [ Node ([ e "x" "a" ], [ Node ([ e "a" "b" ], []) ]) ] ))
  in
  let n = App.normalize p in
  check_int "all non-free branches pruned" 1 (Pt.node_count n);
  check_bool "still equivalent" true (Sub.equivalent n p)

let test_normalize_keeps_free_paths () =
  let p =
    Pt.make ~free:[ "x"; "b" ]
      (Node
         ( [ e "x" "x" ],
           [ Node ([ e "a" "a" ], [ Node ([ e "a" "b" ], []) ]) ] ))
  in
  let n = App.normalize p in
  (* the middle node has no free variable and a single child: merged *)
  check_int "chain merged" 2 (Pt.node_count n);
  check_bool "equivalent" true (Sub.equivalent n p)

let prop_normalize_equivalent =
  qtest ~count:60 "Lemma-1 normalization preserves ≡ₛ" arbitrary_small_wdpt
    (fun p -> Sub.equivalent (App.normalize p) p)

let prop_candidates_sound =
  qtest ~count:25 "candidates are subsumed and in class" arbitrary_small_wdpt
    (fun p ->
      let in_class = Wdpt.Classes.in_wb ~width:Tw ~k:1 in
      let cands = App.candidates ~in_class p in
      List.for_all (fun c -> in_class c && Sub.subsumes c p) cands)

(* Figure 2 / Theorem 15 *)
let test_figure2_blowup () =
  List.iter
    (fun n ->
      let p1, p2 = Workload.Hard_instances.figure2 ~n ~k:2 in
      check_bool "p1 quadratic" true
        (Pt.size p1 <= 25 * (n + 3) * (n + 3));
      check_bool "p2 exponential" true (Pt.size p2 >= (1 lsl n));
      check_bool "p2 in WB(2)" true (Wdpt.Classes.in_wb ~width:Tw ~k:2 p2);
      check_bool "p1 not in WB(2)" false (Wdpt.Classes.in_wb ~width:Tw ~k:2 p1))
    [ 1; 2; 3; 4 ];
  let p1, p2 = Workload.Hard_instances.figure2 ~n:2 ~k:2 in
  check_bool "p2 ⊑ p1" true (Sub.subsumes p2 p1)

let suite =
  [ Alcotest.test_case "moves are ⊑-decreasing" `Quick test_moves_sound;
    Alcotest.test_case "approximations of triangle tree" `Quick
      test_approximations_triangle_tree;
    Alcotest.test_case "in-class identity" `Quick test_in_class_identity;
    Alcotest.test_case "is_approximation decision" `Quick test_is_approximation;
    Alcotest.test_case "normalization prunes dead branches" `Quick test_normalize_prunes;
    Alcotest.test_case "normalization merges chains" `Quick test_normalize_keeps_free_paths;
    Alcotest.test_case "Figure 2 blow-up" `Quick test_figure2_blowup;
    prop_normalize_equivalent;
    prop_candidates_sound ]
