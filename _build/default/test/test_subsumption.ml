(* Subsumption and subsumption-equivalence (Section 4): knowns plus
   cross-validation of the canonical-database procedure against the semantic
   definition on random databases. *)

open Relational
open Helpers
module Pt = Wdpt.Pattern_tree
module Sub = Wdpt.Subsumption

let test_reflexive () =
  let p = Workload.Datasets.figure1_wdpt ~free:[ "x"; "y"; "z" ] in
  check_bool "p ⊑ p" true (Sub.subsumes p p);
  check_bool "p ≡ₛ p" true (Sub.equivalent p p)

let test_optional_weakening () =
  (* removing an optional branch gives a subsumed query *)
  let p_full = Workload.Datasets.figure1_wdpt ~free:[ "x"; "y"; "z" ] in
  let p_small =
    Pt.make ~free:[ "x"; "y" ]
      (Node
         ( [ Rdf.Triple.pattern_to_atom (v "x", Term.str "recorded_by", v "y");
             Rdf.Triple.pattern_to_atom (v "x", Term.str "published", Term.str "after_2010") ],
           [] ))
  in
  check_bool "smaller ⊑ bigger" true (Sub.subsumes p_small p_full);
  check_bool "bigger not ⊑ smaller" false (Sub.subsumes p_full p_small)

let test_cq_subsumption_is_containment () =
  (* on single-node WDPTs with equal heads, ⊑ coincides with CQ containment *)
  let q4 = Pt.of_cq (Workload.Gen_cq.cycle 4) in
  let q2 = Pt.of_cq (Workload.Gen_cq.cycle 2) in
  (* a 2-cycle carries a closed 4-walk, so C2 ⊑ C4; not conversely *)
  check_bool "C2 ⊑ C4" true (Sub.subsumes q2 q4);
  check_bool "C4 ⊑ C2" false (Sub.subsumes q4 q2);
  let q3 = Pt.of_cq (Workload.Gen_cq.cycle 3) in
  check_bool "C3 ⊑ C2" false (Sub.subsumes q3 q2);
  (* no homomorphism from the odd cycle C3 into C2, so C2 is not ⊑ C3 *)
  check_bool "C2 ⊑ C3" false (Sub.subsumes q2 q3)

let test_figure2 () =
  let p1, p2 = Workload.Hard_instances.figure2 ~n:2 ~k:2 in
  check_bool "p2 ⊑ p1" true (Sub.subsumes p2 p1);
  check_bool "p1 not ⊑ p2" false (Sub.subsumes p1 p2)

let test_max_equivalence_via_prop5 () =
  let p = Workload.Datasets.figure1_wdpt ~free:[ "y"; "z" ] in
  check_bool "≡ₛ = ≡max (Prop 5)" true (Sub.max_equivalent p p)

(* semantic soundness of the decision procedure: if subsumes p1 p2, then on
   every random database every answer of p1 is subsumed by an answer of p2;
   if not subsumes, the canonical database construction itself provides a
   semantic counterexample, which we re-verify *)
let prop_subsumption_semantics =
  qtest ~count:60 "canonical-db subsumption matches semantics"
    (QCheck.triple arbitrary_small_wdpt arbitrary_small_wdpt arbitrary_db)
    (fun (p1, p2, db) ->
      if Sub.subsumes p1 p2 then begin
        let a1 = Wdpt.Semantics.eval db p1 in
        let a2 = Wdpt.Semantics.eval db p2 in
        Mapping.Set.for_all
          (fun h -> Mapping.Set.exists (Mapping.subsumes h) a2)
          a1
      end
      else begin
        (* completeness: some canonical database witnesses the failure *)
        Seq.exists
          (fun s ->
            let q = Pt.q_of_subtree p1 s in
            let cdb, _ = Cq.Query.freeze q in
            let a1 = Wdpt.Semantics.eval cdb p1 in
            let a2 = Wdpt.Semantics.eval cdb p2 in
            Mapping.Set.exists
              (fun h -> not (Mapping.Set.exists (Mapping.subsumes h) a2))
              a1)
          (Pt.subtrees p1)
      end)

let prop_equivalence_preserves_partial_and_max =
  qtest ~count:40 "≡ₛ preserves partial and maximal answers"
    (QCheck.triple arbitrary_small_wdpt arbitrary_small_wdpt arbitrary_db)
    (fun (p1, p2, db) ->
      if not (Sub.equivalent p1 p2) then true
      else begin
        (* same maximal answers (Prop 5) *)
        Mapping.Set.equal
          (Wdpt.Semantics.eval_max db p1)
          (Wdpt.Semantics.eval_max db p2)
      end)

let prop_subsumption_preorder =
  qtest ~count:30 "⊑ is reflexive and transitive"
    (QCheck.triple arbitrary_small_wdpt arbitrary_small_wdpt arbitrary_small_wdpt)
    (fun (p1, p2, p3) ->
      Sub.subsumes p1 p1
      && ((not (Sub.subsumes p1 p2 && Sub.subsumes p2 p3)) || Sub.subsumes p1 p3))

let prop_dropping_branch_subsumed =
  qtest ~count:50 "dropping a leaf yields a ⊑-smaller query" arbitrary_wdpt
    (fun p ->
      let leaves =
        List.filter
          (fun i -> i <> 0 && Pt.children p i = [])
          (Pt.all_nodes p)
      in
      match leaves with
      | [] -> true
      | leaf :: _ -> Sub.subsumes (Pt.drop_leaf p leaf) p)

let suite =
  [ Alcotest.test_case "reflexivity" `Quick test_reflexive;
    prop_subsumption_preorder;
    prop_dropping_branch_subsumed;
    Alcotest.test_case "optional weakening" `Quick test_optional_weakening;
    Alcotest.test_case "CQ subsumption vs containment" `Quick test_cq_subsumption_is_containment;
    Alcotest.test_case "Figure 2 subsumption" `Quick test_figure2;
    Alcotest.test_case "max-equivalence (Prop 5)" `Quick test_max_equivalence_via_prop5;
    prop_subsumption_semantics;
    prop_equivalence_preserves_partial_and_max ]
