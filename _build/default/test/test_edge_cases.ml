(* Edge cases and additional behaviours across all modules, complementing the
   per-module suites. *)

open Relational
open Helpers
module Pt = Wdpt.Pattern_tree

(* ---- relational -------------------------------------------------------- *)

let test_term_and_value () =
  check_bool "as_var" true (Term.as_var (Term.var "x") = Some "x");
  check_bool "as_var const" true (Term.as_var (Term.int 3) = None);
  check_bool "term order var<const" true (Term.compare (Term.var "z") (Term.int 0) < 0);
  check_bool "fresh tags differ" false
    (Value.equal (Value.fresh ~tag:"a" ()) (Value.fresh ~tag:"a" ()));
  check_bool "to_string int" true (Value.to_string (Value.int 7) = "7")

let test_mapping_extras () =
  let h = mapping [ ("x", 1) ] in
  check_bool "term bound" true (Term.equal (Mapping.term "x" h) (Term.int 1));
  check_bool "term unbound" true (Term.equal (Mapping.term "y" h) (Term.var "y"));
  check_bool "of_list later wins" true
    (Mapping.find "x" (mapping [ ("x", 1); ("x", 2) ]) = Some (Value.int 2));
  check_bool "empty maximal" true (Mapping.maximal_elements [] = []);
  check_int "restrict_list" 1
    (Mapping.cardinal (Mapping.restrict_list [ "x"; "zz" ] (mapping [ ("x", 1); ("y", 2) ])));
  check_bool "union incompatible raises" true
    (try
       ignore (Mapping.union (mapping [ ("x", 1) ]) (mapping [ ("x", 2) ]));
       false
     with Invalid_argument _ -> true)

let test_database_extras () =
  let db = db_of_edges [ (1, 2) ] in
  check_int "missing relation" 0 (List.length (Database.facts_of db "ZZZ"));
  let a = atom "E" [ c 1; v "t" ] in
  check_int "constant-guided candidates" 1 (List.length (Database.candidates db a Mapping.empty));
  let db2 = Database.copy db in
  Database.add db2 (Fact.make "E" [ Value.int 9; Value.int 9 ]);
  check_int "copy is independent" 1 (Database.size db);
  check_int "copy grew" 2 (Database.size db2);
  let u = Database.union db db2 in
  check_int "union" 2 (Database.size u);
  check_bool "schema inferred" true (Schema.mem "E" (Database.schema db))

let test_matches_arity_mismatch () =
  let a = atom "E" [ v "x" ] in
  let f = Fact.make "E" [ Value.int 1; Value.int 2 ] in
  check_bool "arity mismatch" true (Mapping.matches_fact Mapping.empty a f = None)

(* ---- relation algebra --------------------------------------------------- *)

let rel vars rows =
  Cq.Relation.make (String_set.of_list vars) (List.map mapping rows)

let test_relation_algebra () =
  let r = rel [ "a"; "b" ] [ [ ("a", 1); ("b", 2) ]; [ ("a", 3); ("b", 4) ] ] in
  let s = rel [ "b"; "c" ] [ [ ("b", 2); ("c", 5) ] ] in
  let j = Cq.Relation.join r s in
  check_int "join rows" 1 (Cq.Relation.cardinal j);
  check_int "join vars" 3 (String_set.cardinal (Cq.Relation.vars j));
  let sj = Cq.Relation.semijoin r s in
  check_int "semijoin rows" 1 (Cq.Relation.cardinal sj);
  check_bool "semijoin subset" true
    (List.for_all
       (fun row -> List.exists (Mapping.equal row) (Cq.Relation.rows r))
       (Cq.Relation.rows sj));
  let p = Cq.Relation.project (String_set.singleton "a") r in
  check_int "project keeps rows" 2 (Cq.Relation.cardinal p);
  check_bool "unit is join identity" true
    (Cq.Relation.cardinal (Cq.Relation.join r Cq.Relation.unit)
     = Cq.Relation.cardinal r);
  let ext = Cq.Relation.extend_all p "z" [ Value.int 0; Value.int 1 ] in
  check_int "extend_all" 4 (Cq.Relation.cardinal ext);
  check_bool "make validates domains" true
    (try
       ignore (Cq.Relation.make (String_set.singleton "a") [ mapping [ ("b", 1) ] ]);
       false
     with Invalid_argument _ -> true);
  (* disjoint join = cross product *)
  let t = rel [ "z" ] [ [ ("z", 7) ]; [ ("z", 8) ] ] in
  check_int "cross product" 4 (Cq.Relation.cardinal (Cq.Relation.join r t))

let test_mapping_algebra () =
  let s1 = Mapping.Set.of_list [ mapping [ ("x", 1) ]; mapping [ ("x", 2) ] ] in
  let s2 = Mapping.Set.of_list [ mapping [ ("x", 1); ("y", 5) ]; mapping [ ("z", 9) ] ] in
  (* join: {x1} joins with both rows of s2 where compatible *)
  let j = Mapping_algebra.join s1 s2 in
  check_int "compatible join" 3 (Mapping.Set.cardinal j);
  let d = Mapping_algebra.diff s1 s2 in
  (* every s1 row is compatible with {z↦9}: diff is empty *)
  check_int "diff" 0 (Mapping.Set.cardinal d);
  let loj = Mapping_algebra.left_outer_join s1 s2 in
  check_bool "loj = join here" true (Mapping.Set.equal loj j)

(* ---- CQ layer ----------------------------------------------------------- *)

let test_query_validation () =
  check_bool "duplicate head" true
    (try
       ignore (Cq.Query.make ~head:[ "x"; "x" ] ~body:[ e "x" "y" ]);
       false
     with Invalid_argument _ -> true);
  check_bool "head not in body" true
    (try
       ignore (Cq.Query.make ~head:[ "q" ] ~body:[ e "x" "y" ]);
       false
     with Invalid_argument _ -> true);
  check_bool "quotient must fix head" true
    (try
       ignore
         (Cq.Query.quotient
            (fun x -> if x = "x" then "y" else x)
            (Cq.Query.make ~head:[ "x" ] ~body:[ e "x" "y" ]));
       false
     with Invalid_argument _ -> true);
  check_bool "rename must be injective" true
    (try
       ignore (Cq.Query.rename (fun _ -> "same") (Cq.Query.boolean [ e "x" "y" ]));
       false
     with Invalid_argument _ -> true);
  (* canonical_key is stable under atom order *)
  let q1 = Cq.Query.boolean [ e "a" "b"; e "b" "c" ] in
  let q2 = Cq.Query.boolean [ e "b" "c"; e "a" "b" ] in
  check_bool "canonical key stable" true
    (Cq.Query.canonical_key q1 = Cq.Query.canonical_key q2)

let test_alpha_renaming_semantics () =
  (* renaming existential variables preserves equivalence; renaming a head
     variable does not (answers are mappings on names) *)
  let q = Cq.Query.make ~head:[ "x" ] ~body:[ e "x" "y" ] in
  let q_exist = Cq.Query.rename (fun v -> if v = "y" then "fresh" else v) q in
  check_bool "existential rename equivalent" true (Cq.Containment.equivalent q q_exist);
  let q_head = Cq.Query.rename (fun v -> if v = "x" then "x2" else v) q in
  check_bool "head rename not equivalent" false (Cq.Containment.equivalent q q_head)

let test_eval_first_and_iter () =
  let db = db_of_edges [ (1, 2); (2, 3) ] in
  check_bool "first hom exists" true
    (Option.is_some (Cq.Eval.first_homomorphism db [ e "a" "b" ] ~init:Mapping.empty));
  check_bool "first hom none" true
    (Cq.Eval.first_homomorphism db [ atom "Z" [ v "a" ] ] ~init:Mapping.empty = None);
  (* iteration visits every hom exactly once *)
  let n = ref 0 in
  Cq.Eval.iter_homomorphisms db [ e "a" "b" ] ~init:Mapping.empty (fun _ -> incr n);
  check_int "two homs" 2 !n

let test_decomp_with_explicit_td () =
  let q = Workload.Gen_cq.cycle 4 in
  let db = db_of_edges [ (1, 2); (2, 1) ] in
  let hg = Cq.Query.hypergraph q in
  match Hypergraphs.Tree_decomposition.at_most hg 2 with
  | None -> Alcotest.fail "C4 has treewidth 2"
  | Some td ->
      check_bool "explicit decomposition used" true
        (Cq.Decomp_eval.satisfiable ~td db q ~init:Mapping.empty);
      check_bool "matches backtracking" true
        (Mapping.Set.equal (Cq.Decomp_eval.answers ~td db q) (Cq.Eval.answers db q))

let test_core_with_constants () =
  let q =
    Cq.Query.boolean [ atom "E" [ v "x"; c 1 ]; atom "E" [ v "y"; c 1 ] ]
  in
  let core = Cq.Core_q.core q in
  check_int "constant-anchored atoms merge" 1 (Cq.Query.size core)

let test_approx_no_candidates () =
  (* all head variables in one wide atom: nothing in TW(1) is contained *)
  let q =
    Cq.Query.make ~head:[ "a"; "b"; "c" ] ~body:[ atom "R" [ v "a"; v "b"; v "c" ] ]
  in
  check_bool "no TW(1) approximation" true (Cq.Approx.tw_approximations ~k:1 q = [])

let test_hw'_approximation () =
  (* guarded clique: HW(1) but not HW'(1); HW'(1)-approximations exist *)
  let q = Workload.Gen_cq.guarded_clique 3 in
  let apps = Cq.Approx.hw'_approximations ~k:1 q in
  check_bool "exists" true (apps <> []);
  List.iter
    (fun a ->
      check_bool "in HW'(1)" true (Cq.Query.in_hw' ~k:1 a);
      check_bool "sound" true (Cq.Containment.contained a q))
    apps

(* ---- pattern trees ------------------------------------------------------ *)

let test_empty_node_patterns () =
  (* nodes with empty atom sets are legal and always match *)
  let p = Pt.make ~free:[ "x" ] (Node ([], [ Node ([ e "x" "x" ], []) ])) in
  let db = db_of_edges [ (5, 5) ] in
  check_int "answers" 1 (Mapping.Set.cardinal (Wdpt.Semantics.eval db p));
  let db2 = db_of_edges [ (1, 2) ] in
  (* root always matches; child cannot: the empty mapping is the answer *)
  Alcotest.check mapping_set_testable "empty-root answer"
    (Mapping.Set.singleton Mapping.empty)
    (Wdpt.Semantics.eval db2 p)

let test_constants_in_wdpt () =
  let p =
    Pt.make ~free:[ "x" ]
      (Node ([ atom "E" [ v "x"; c 2 ] ], [ Node ([ atom "E" [ c 2; v "y" ] ], []) ]))
  in
  let db = db_of_edges [ (1, 2); (2, 3) ] in
  let ans = Wdpt.Semantics.eval db p in
  check_int "constant patterns" 1 (Mapping.Set.cardinal ans);
  check_bool "agrees with tractable" true
    (Wdpt.Eval_tractable.decision db p (mapping [ ("x", 1) ]))

let test_quotient_breaking_wd () =
  (* merging variables from sibling branches breaks well-designedness *)
  let p =
    Pt.make ~free:[]
      (Node ([ e "r" "r" ], [ Node ([ e "a" "a" ], []); Node ([ e "b" "b" ], []) ]))
  in
  check_bool "sibling merge rejected" true
    (Pt.quotient (fun x -> if x = "a" then "b" else x) p = None)

let test_deep_chain_tree () =
  let p = Workload.Gen_wdpt.chain_tree ~nodes:12 ~rel:"E" in
  check_int "twelve nodes" 12 (Pt.node_count p);
  check_int "subtree count linear for chains" 12 (Pt.subtree_count p);
  check_bool "BI(1)" true (Wdpt.Classes.bounded_interface ~c:1 p)

(* ---- semantics ---------------------------------------------------------- *)

let test_empty_database () =
  let p = Workload.Datasets.figure1_wdpt ~free:[ "x"; "y" ] in
  let db = Database.create () in
  check_int "no answers on empty db" 0 (Mapping.Set.cardinal (Wdpt.Semantics.eval db p));
  check_bool "partial false" false (Wdpt.Partial_eval.decision db p Mapping.empty)

let test_max_eval_three_level () =
  (* three answers ordered by ⊑: only the longest survives p_m *)
  let p =
    Pt.make ~free:[ "a"; "b"; "c" ]
      (Node
         ( [ atom "U" [ v "a" ] ],
           [ Node ([ e "a" "b" ], [ Node ([ e "b" "c" ], []) ]) ] ))
  in
  let db =
    Database.of_list
      [ Fact.make "U" [ Value.int 1 ];
        Fact.make "E" [ Value.int 1; Value.int 2 ];
        Fact.make "E" [ Value.int 2; Value.int 3 ] ]
  in
  check_int "p(D) has one (total) answer" 1
    (Mapping.Set.cardinal (Wdpt.Semantics.eval db p));
  check_bool "it is maximal" true
    (Wdpt.Max_eval.decision db p (mapping [ ("a", 1); ("b", 2); ("c", 3) ]));
  check_bool "prefix not in p(D)" false
    (Wdpt.Eval_tractable.decision db p (mapping [ ("a", 1) ]))

(* ---- WDPT containment (undecidable; sound tooling) ---------------------- *)

let test_containment_tools () =
  let p_big = Workload.Datasets.figure1_wdpt ~free:[ "x"; "y"; "z" ] in
  let p_small =
    Pt.make ~free:[ "x"; "y" ]
      (Node
         ( [ Rdf.Triple.pattern_to_atom (v "x", Term.str "recorded_by", v "y");
             Rdf.Triple.pattern_to_atom (v "x", Term.str "published", Term.str "after_2010") ],
           [] ))
  in
  (* p_big's answers bind z when possible: on the canonical db of the full
     tree, p_small's answer doesn't cover it, and indeed sets differ *)
  (match Wdpt.Containment_w.refute p_big p_small with
  | Some db -> check_bool "witness is real" false
      (Wdpt.Containment_w.contained_on db p_big p_small)
  | None -> Alcotest.fail "expected refutation");
  (* reflexive containment is never refuted *)
  check_bool "self containment not refuted" true
    (Wdpt.Containment_w.refute p_big p_big = None)

(* ---- workload determinism ----------------------------------------------- *)

let test_generators_deterministic () =
  let g1 = Wdpt.Reductions.random_graph ~seed:5 ~n:6 ~edge_prob:0.5 in
  let g2 = Wdpt.Reductions.random_graph ~seed:5 ~n:6 ~edge_prob:0.5 in
  check_bool "same seed same graph" true (g1.Wdpt.Reductions.edges = g2.Wdpt.Reductions.edges);
  let d1 = Workload.Gen_db.random ~seed:3 ~schema:[ ("R", 2) ] ~domain:5 ~facts:20 in
  let d2 = Workload.Gen_db.random ~seed:3 ~schema:[ ("R", 2) ] ~domain:5 ~facts:20 in
  check_bool "same seed same db" true
    (Fact.Set.equal
       (Fact.Set.of_list (Database.facts d1))
       (Fact.Set.of_list (Database.facts d2)))

let test_grid_and_chain_dbs () =
  let g = Workload.Gen_db.grid_db ~rel:"E" ~side:3 in
  check_int "grid edges" 12 (Database.size g);
  let ch = Workload.Gen_db.chain_db ~rel:"E" ~length:5 in
  check_int "chain facts" 5 (Database.size ch)

let suite =
  [ Alcotest.test_case "terms and values" `Quick test_term_and_value;
    Alcotest.test_case "mapping extras" `Quick test_mapping_extras;
    Alcotest.test_case "database extras" `Quick test_database_extras;
    Alcotest.test_case "arity mismatch" `Quick test_matches_arity_mismatch;
    Alcotest.test_case "relation algebra" `Quick test_relation_algebra;
    Alcotest.test_case "mapping-set algebra" `Quick test_mapping_algebra;
    Alcotest.test_case "query validation" `Quick test_query_validation;
    Alcotest.test_case "alpha renaming semantics" `Quick test_alpha_renaming_semantics;
    Alcotest.test_case "first/iter homomorphisms" `Quick test_eval_first_and_iter;
    Alcotest.test_case "explicit decomposition" `Quick test_decomp_with_explicit_td;
    Alcotest.test_case "core with constants" `Quick test_core_with_constants;
    Alcotest.test_case "approximation nonexistence" `Quick test_approx_no_candidates;
    Alcotest.test_case "HW'(1) approximations" `Quick test_hw'_approximation;
    Alcotest.test_case "empty node patterns" `Quick test_empty_node_patterns;
    Alcotest.test_case "constants in WDPTs" `Quick test_constants_in_wdpt;
    Alcotest.test_case "quotient breaking wd" `Quick test_quotient_breaking_wd;
    Alcotest.test_case "deep chain tree" `Quick test_deep_chain_tree;
    Alcotest.test_case "empty database" `Quick test_empty_database;
    Alcotest.test_case "three-level max eval" `Quick test_max_eval_three_level;
    Alcotest.test_case "containment tooling" `Quick test_containment_tools;
    Alcotest.test_case "generator determinism" `Quick test_generators_deterministic;
    Alcotest.test_case "grid/chain databases" `Quick test_grid_and_chain_dbs ]
