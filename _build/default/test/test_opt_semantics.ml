(* Corner cases of the optional-matching semantics: blocking across levels,
   branch independence, constraint propagation through shared variables —
   each checked against all three engines and the Theorem 6/7 decision
   procedure. *)

open Relational
open Helpers
module Pt = Wdpt.Pattern_tree

let engines_agree db p expected =
  let a = Wdpt.Semantics.eval db p in
  Alcotest.check mapping_set_testable "procedural" expected a;
  Alcotest.check mapping_set_testable "reference" expected (Wdpt.Semantics.eval_naive db p);
  Alcotest.check mapping_set_testable "algebraic" expected (Wdpt.Algebra_eval.eval db p)

(* grandchild extension must block the shorter answer *)
let test_deep_blocking () =
  let p =
    Pt.make ~free:[ "a"; "c" ]
      (Node
         ( [ atom "R" [ v "a" ] ],
           [ Node ([ e "a" "b" ], [ Node ([ e "b" "c" ], []) ]) ] ))
  in
  let db =
    Database.of_list
      [ Fact.make "R" [ Value.int 1 ];
        Fact.make "E" [ Value.int 1; Value.int 2 ];
        Fact.make "E" [ Value.int 2; Value.int 3 ] ]
  in
  (* the only maximal hom reaches c = 3: the projection {a, c} *)
  engines_agree db p (Mapping.Set.singleton (mapping [ ("a", 1); ("c", 3) ]));
  (* h = {a} alone is not an answer (blocked by the deep extension) *)
  check_bool "blocked" false (Wdpt.Eval_tractable.decision db p (mapping [ ("a", 1) ]));
  (* removing the second edge releases it: now the hom stops at b *)
  let db2 =
    Database.of_list
      [ Fact.make "R" [ Value.int 1 ]; Fact.make "E" [ Value.int 1; Value.int 2 ] ]
  in
  engines_agree db2 p (Mapping.Set.singleton (mapping [ ("a", 1) ]));
  check_bool "released" true (Wdpt.Eval_tractable.decision db2 p (mapping [ ("a", 1) ]))

(* two independent branches: every combination of their availability *)
let test_branch_independence () =
  let p =
    Pt.make ~free:[ "x"; "u"; "w" ]
      (Node
         ( [ atom "R" [ v "x" ] ],
           [ Node ([ atom "S" [ v "x"; v "u" ] ], []);
             Node ([ atom "T" [ v "x"; v "w" ] ], []) ] ))
  in
  let base = [ Fact.make "R" [ Value.int 1 ] ] in
  let s = Fact.make "S" [ Value.int 1; Value.int 7 ] in
  let t = Fact.make "T" [ Value.int 1; Value.int 9 ] in
  engines_agree (Database.of_list base)
    p (Mapping.Set.singleton (mapping [ ("x", 1) ]));
  engines_agree (Database.of_list (s :: base))
    p (Mapping.Set.singleton (mapping [ ("x", 1); ("u", 7) ]));
  engines_agree (Database.of_list (t :: base))
    p (Mapping.Set.singleton (mapping [ ("x", 1); ("w", 9) ]));
  engines_agree (Database.of_list (s :: t :: base))
    p (Mapping.Set.singleton (mapping [ ("x", 1); ("u", 7); ("w", 9) ]))

(* an optional branch that matches for one root image but not another *)
let test_shared_var_filtering () =
  let p =
    Pt.make ~free:[ "x"; "y" ]
      (Node ([ atom "R" [ v "x" ] ], [ Node ([ e "x" "y" ], []) ]))
  in
  let db =
    Database.of_list
      [ Fact.make "R" [ Value.int 1 ];
        Fact.make "R" [ Value.int 2 ];
        Fact.make "E" [ Value.int 1; Value.int 5 ] ]
  in
  engines_agree db p
    (Mapping.Set.of_list [ mapping [ ("x", 1); ("y", 5) ]; mapping [ ("x", 2) ] ])

(* several maximal extensions within one branch: several answers per root *)
let test_multiple_extensions () =
  let p =
    Pt.make ~free:[ "x"; "y" ]
      (Node ([ atom "R" [ v "x" ] ], [ Node ([ e "x" "y" ], []) ]))
  in
  let db =
    Database.of_list
      [ Fact.make "R" [ Value.int 1 ];
        Fact.make "E" [ Value.int 1; Value.int 5 ];
        Fact.make "E" [ Value.int 1; Value.int 6 ] ]
  in
  engines_agree db p
    (Mapping.Set.of_list
       [ mapping [ ("x", 1); ("y", 5) ]; mapping [ ("x", 1); ("y", 6) ] ])

(* the subtle case behind Example 3: a partial answer and its extension can
   both be answers under projection *)
let test_partial_and_extension_coexist () =
  let p =
    Pt.make ~free:[ "y"; "z" ]
      (Node ([ e "x" "y" ], [ Node ([ atom "S" [ v "x"; v "z" ] ], []) ]))
  in
  let db =
    Database.of_list
      [ Fact.make "E" [ Value.int 1; Value.int 9 ];
        Fact.make "E" [ Value.int 2; Value.int 9 ];
        Fact.make "S" [ Value.int 1; Value.int 4 ] ]
  in
  (* x = 1 gives {y↦9, z↦4}; x = 2 gives {y↦9} — both maximal homs, and the
     projections are ⊑-comparable yet both in p(D) *)
  let small = mapping [ ("y", 9) ] in
  let big = mapping [ ("y", 9); ("z", 4) ] in
  engines_agree db p (Mapping.Set.of_list [ small; big ]);
  check_bool "small in p(D)" true (Wdpt.Eval_tractable.decision db p small);
  check_bool "big in p(D)" true (Wdpt.Eval_tractable.decision db p big);
  (* under maximal-mappings semantics only the extension survives *)
  Alcotest.check mapping_set_testable "p_m(D)"
    (Mapping.Set.singleton big)
    (Wdpt.Semantics.eval_max db p);
  check_bool "MAX small" false (Wdpt.Max_eval.decision db p small);
  check_bool "MAX big" true (Wdpt.Max_eval.decision db p big)

(* a variable shared between a node and a *grandchild* must pass through the
   child (well-designedness), and bindings propagate through it *)
let test_variable_threading () =
  let p =
    Pt.make ~free:[ "x"; "z" ]
      (Node
         ( [ atom "R" [ v "x" ] ],
           [ Node ([ e "x" "m" ], [ Node ([ atom "S" [ v "m"; v "x"; v "z" ] ], []) ]) ] ))
  in
  let db =
    Database.of_list
      [ Fact.make "R" [ Value.int 1 ];
        Fact.make "E" [ Value.int 1; Value.int 2 ];
        Fact.make "S" [ Value.int 2; Value.int 1; Value.int 8 ];
        Fact.make "S" [ Value.int 2; Value.int 99; Value.int 0 ] ]
  in
  engines_agree db p (Mapping.Set.singleton (mapping [ ("x", 1); ("z", 8) ]))

(* non-well-designed patterns: the SPARQL algebra still works, and its result
   differs from any maximal-homomorphism reading — kept as a documented
   behavioural contrast *)
let test_non_wd_algebra_contrast () =
  let open Rdf.Sparql in
  let t s p o = (s, p, o) in
  let expr =
    And
      ( Opt
          ( Bgp [ t (v "x") (Term.str "p") (v "y") ],
            Bgp [ t (v "y") (Term.str "q") (v "z") ] ),
        Bgp [ t (v "z") (Term.str "r") (v "w") ] )
  in
  check_bool "not wd" false (is_well_designed expr);
  let g =
    Rdf.Graph.of_triples
      [ Rdf.Triple.make (Value.str "a") (Value.str "p") (Value.str "b");
        Rdf.Triple.make (Value.str "c") (Value.str "r") (Value.str "d") ]
  in
  (* the unbound z of the OPT part is compatible with the AND part: one
     solution with x y z w domains {x,y,z,w} minus the optional part *)
  let sols = Rdf.Algebra.eval_expr g expr in
  check_int "one solution" 1 (Mapping.Set.cardinal sols);
  check_int "partial domain" 4 (Mapping.cardinal (Mapping.Set.choose sols))

let suite =
  [ Alcotest.test_case "deep blocking" `Quick test_deep_blocking;
    Alcotest.test_case "branch independence" `Quick test_branch_independence;
    Alcotest.test_case "shared-variable filtering" `Quick test_shared_var_filtering;
    Alcotest.test_case "multiple extensions" `Quick test_multiple_extensions;
    Alcotest.test_case "partial and extension coexist" `Quick
      test_partial_and_extension_coexist;
    Alcotest.test_case "variable threading" `Quick test_variable_threading;
    Alcotest.test_case "non-well-designed algebra contrast" `Quick
      test_non_wd_algebra_contrast ]
