(* WDPT semantics: the paper's running example, cross-validation of the
   procedural and reference implementations, and of the three tractable
   algorithms (Theorems 6/7, 8, 9) against brute force. *)

open Relational
open Helpers
module Pt = Wdpt.Pattern_tree
module Sem = Wdpt.Semantics

let fig1 free = Workload.Datasets.figure1_wdpt ~free
let db2 () = Workload.Datasets.example2_db ()

let test_example2 () =
  let p = fig1 [ "x"; "y"; "z"; "z'" ] in
  let ans = Sem.eval (db2 ()) p in
  let mu1 =
    Mapping.of_list [ ("x", Value.str "Our_love"); ("y", Value.str "Caribou") ]
  in
  let mu2 =
    Mapping.of_list
      [ ("x", Value.str "Swim"); ("y", Value.str "Caribou"); ("z", Value.str "2") ]
  in
  Alcotest.check mapping_set_testable "Example 2"
    (Mapping.Set.of_list [ mu1; mu2 ])
    ans

let test_example3 () =
  let p = fig1 [ "y"; "z" ] in
  let ans = Sem.eval (db2 ()) p in
  let mu1 = Mapping.of_list [ ("y", Value.str "Caribou") ] in
  let mu2 = Mapping.of_list [ ("y", Value.str "Caribou"); ("z", Value.str "2") ] in
  Alcotest.check mapping_set_testable "Example 3"
    (Mapping.Set.of_list [ mu1; mu2 ])
    ans;
  (* Example 7: maximal-mappings semantics *)
  Alcotest.check mapping_set_testable "Example 7"
    (Mapping.Set.singleton mu2)
    (Sem.eval_max (db2 ()) p)

let test_cq_as_wdpt () =
  (* single-node WDPTs coincide with CQs (Section 2) *)
  let q = Cq.Query.make ~head:[ "x" ] ~body:[ e "x" "y" ] in
  let p = Pt.of_cq q in
  let db = db_of_edges [ (1, 2); (3, 4) ] in
  check_bool "same answers" true
    (Mapping.Set.equal (Sem.eval db p) (Cq.Eval.answers db q))

let test_unmatchable_root () =
  let p = Pt.make ~free:[ "x" ] (Node ([ atom "Z" [ v "x" ] ], [])) in
  let db = db_of_edges [ (1, 2) ] in
  check_int "empty evaluation" 0 (Mapping.Set.cardinal (Sem.eval db p));
  check_bool "EVAL false" false (Wdpt.Eval_tractable.decision db p (mapping [ ("x", 1) ]));
  check_bool "PARTIAL false" false (Wdpt.Partial_eval.decision db p Mapping.empty);
  check_bool "MAX false" false (Wdpt.Max_eval.decision db p Mapping.empty)

let test_empty_mapping_answer () =
  (* root matches but no free variable can be bound: the empty mapping is the
     answer *)
  let p =
    Pt.make ~free:[ "z" ]
      (Node ([ e "x" "y" ], [ Node ([ atom "U" [ v "z" ] ], []) ]))
  in
  let db = db_of_edges [ (1, 2) ] in
  Alcotest.check mapping_set_testable "empty mapping"
    (Mapping.Set.singleton Mapping.empty)
    (Sem.eval db p);
  check_bool "EVAL empty" true (Wdpt.Eval_tractable.decision db p Mapping.empty);
  check_bool "MAX empty" true (Wdpt.Max_eval.decision db p Mapping.empty)

(* brute-force decision helpers *)
let brute_eval db p h = Mapping.Set.mem h (Sem.eval_naive db p)

let brute_partial db p h =
  Mapping.Set.exists (Mapping.subsumes h) (Sem.eval_naive db p)

let brute_max db p h =
  let ans = Sem.eval_naive db p in
  Mapping.Set.mem h ans
  && not (Mapping.Set.exists (fun h' -> Mapping.strictly_subsumes h h') ans)

(* candidate mappings to probe: all answers, their restrictions, plus some
   perturbations *)
let probes db p =
  let ans = Mapping.Set.elements (Sem.eval_naive db p) in
  let restrictions =
    List.concat_map
      (fun h ->
        let dom = String_set.elements (Mapping.domain h) in
        List.map (fun x -> Mapping.restrict (String_set.remove x (Mapping.domain h)) h) dom)
      ans
  in
  let perturbed =
    List.filteri (fun i _ -> i < 3) ans
    |> List.map (fun h ->
           match Mapping.bindings h with
           | (x, _) :: _ -> Mapping.add x (Value.int 999) h
           | [] -> Mapping.singleton "zz" (Value.int 0))
  in
  Mapping.empty :: (ans @ restrictions @ perturbed)

let prop_iterator_matches_list =
  qtest ~count:100 "streaming enumeration = materialized maximal homs"
    (QCheck.pair arbitrary_wdpt arbitrary_db) (fun (p, db) ->
      let streamed = ref [] in
      Sem.iter_maximal_homomorphisms db p (fun h -> streamed := h :: !streamed);
      let a = Mapping.Set.of_list !streamed in
      let b = Mapping.Set.of_list (Sem.maximal_homomorphisms db p) in
      Mapping.Set.equal a b)

let prop_any_maximal_is_maximal =
  qtest ~count:100 "greedy maximal hom is a maximal hom"
    (QCheck.pair arbitrary_small_wdpt arbitrary_db) (fun (p, db) ->
      match Sem.any_maximal_homomorphism db p with
      | None ->
          Cq.Eval.first_homomorphism db (Pt.atoms p 0) ~init:Mapping.empty = None
      | Some m ->
          List.exists (Mapping.equal m) (Sem.maximal_homomorphisms db p))

let prop_procedural_eq_naive =
  qtest ~count:150 "procedural = reference semantics"
    (QCheck.pair arbitrary_wdpt arbitrary_db) (fun (p, db) ->
      Mapping.Set.equal (Sem.eval db p) (Sem.eval_naive db p))

let prop_tractable_eval_correct =
  qtest ~count:100 "Theorem 6/7 EVAL agrees with brute force"
    (QCheck.pair arbitrary_small_wdpt arbitrary_db) (fun (p, db) ->
      List.for_all
        (fun h -> Wdpt.Eval_tractable.decision db p h = brute_eval db p h)
        (probes db p))

let prop_partial_eval_correct =
  qtest ~count:100 "Theorem 8 PARTIAL-EVAL agrees with brute force"
    (QCheck.pair arbitrary_small_wdpt arbitrary_db) (fun (p, db) ->
      List.for_all
        (fun h -> Wdpt.Partial_eval.decision db p h = brute_partial db p h)
        (probes db p))

let prop_max_eval_correct =
  qtest ~count:100 "Theorem 9 MAX-EVAL agrees with brute force"
    (QCheck.pair arbitrary_small_wdpt arbitrary_db) (fun (p, db) ->
      List.for_all
        (fun h -> Wdpt.Max_eval.decision db p h = brute_max db p h)
        (probes db p))

let prop_answers_incomparable_under_max =
  qtest ~count:100 "p_m(D) is an antichain" (QCheck.pair arbitrary_wdpt arbitrary_db)
    (fun (p, db) ->
      let ans = Mapping.Set.elements (Sem.eval_max db p) in
      List.for_all
        (fun h ->
          List.for_all
            (fun h' -> Mapping.equal h h' || not (Mapping.subsumes h h'))
            ans)
        ans)

let prop_projection_free_antichain =
  (* without projection, p(D) itself consists of maximal mappings only *)
  qtest ~count:100 "projection-free evaluation is an antichain"
    (QCheck.pair arbitrary_wdpt arbitrary_db) (fun (p, db) ->
      let pf =
        Pt.make ~free:(String_set.elements (Pt.vars p)) (Pt.to_spec p)
      in
      let ans = Mapping.Set.elements (Sem.eval db pf) in
      List.for_all
        (fun h ->
          List.for_all
            (fun h' -> Mapping.equal h h' || not (Mapping.subsumes h h'))
            ans)
        ans)

let suite =
  [ Alcotest.test_case "Example 2" `Quick test_example2;
    Alcotest.test_case "Examples 3 and 7" `Quick test_example3;
    Alcotest.test_case "CQs as single-node WDPTs" `Quick test_cq_as_wdpt;
    Alcotest.test_case "unmatchable root" `Quick test_unmatchable_root;
    Alcotest.test_case "empty-mapping answer" `Quick test_empty_mapping_answer;
    prop_iterator_matches_list;
    prop_any_maximal_is_maximal;
    prop_procedural_eq_naive;
    prop_tractable_eval_correct;
    prop_partial_eval_correct;
    prop_max_eval_correct;
    prop_answers_incomparable_under_max;
    prop_projection_free_antichain ]
