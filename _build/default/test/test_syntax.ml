(* The generic pattern-tree text syntax and facts format. *)

open Relational
open Helpers
module Pt = Wdpt.Pattern_tree
module Syn = Wdpt.Syntax

let parse_ok src =
  match Syn.parse src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

let test_parse_simple () =
  let p = parse_ok "free (x) { R(?x, ?y) }" in
  check_int "one node" 1 (Pt.node_count p);
  Alcotest.(check (list string)) "free" [ "x" ] (Pt.free p)

let test_parse_tree () =
  let p =
    parse_ok
      {| free (p, q, m)
         { knows(?p, ?q) }
           [ { email(?p, ?m) };
             { phone(?p, ?t), person(?p) } [ { active(?t) } ] ] |}
  in
  check_int "four nodes" 4 (Pt.node_count p);
  check_int "root kids" 2 (List.length (Pt.children p 0));
  check_int "atoms in phone node" 2 (List.length (Pt.atoms p 2))

let test_parse_constants () =
  let p = parse_ok {| free () { R(?x, 42, "hello world", bare) } |} in
  let atom = List.hd (Pt.atoms p 0) in
  check_int "arity" 4 (Atom.arity atom);
  check_bool "int constant" true
    (List.exists (Term.equal (Term.int 42)) (Atom.args atom));
  check_bool "string constant" true
    (List.exists (Term.equal (Term.str "hello world")) (Atom.args atom))

let test_parse_errors () =
  let bad src =
    check_bool src true (Result.is_error (Syn.parse src))
  in
  bad "free (x) { R(?x ?y) }";
  bad "free (x) { R(?x, ?y) ";
  bad "free (zz) { R(?x) }";
  (* not well-designed *)
  bad "free () { R(?x, ?y) } [ { S(?x) } [ { T(?y) } ] ]";
  bad "{ R(?x) }"

let test_roundtrip () =
  let p =
    parse_ok
      {| free (x, z) { R(?x, ?y) } [ { S(?y, ?z) }; { T(?x, 7) } ] |}
  in
  let p2 = parse_ok (Syn.to_string p) in
  check_bool "print/parse roundtrip" true (Pt.equal_syntactic p p2)

let test_facts () =
  (match Syn.parse_fact "knows(ann, bob)" with
  | Ok f ->
      check_bool "fact" true
        (Fact.equal f (Fact.make "knows" [ Value.str "ann"; Value.str "bob" ]))
  | Error e -> Alcotest.failf "fact: %s" e);
  check_bool "variable in fact rejected" true
    (Result.is_error (Syn.parse_fact "knows(?x, bob)"));
  match Syn.parse_database "R(1, 2)\n# comment\n\nS(3)" with
  | Ok db -> check_int "two facts" 2 (Database.size db)
  | Error e -> Alcotest.failf "db: %s" e

let test_union_syntax () =
  match Syn.parse_union "free (x) { R(?x) } UNION free (x) { S(?x, ?y) } union free () { T(1) }" with
  | Error e -> Alcotest.failf "union parse: %s" e
  | Ok u ->
      check_int "three disjuncts" 3 (List.length u);
      check_bool "single parses as union of one" true
        (match Syn.parse_union "free (x) { R(?x) }" with
        | Ok [ _ ] -> true
        | _ -> false);
      check_bool "missing UNION rejected" true
        (Result.is_error (Syn.parse_union "free (x) { R(?x) } free (x) { S(?x) }"))

let prop_pp_parse_roundtrip =
  qtest ~count:100 "pp then parse is the identity" arbitrary_wdpt (fun p ->
      match Syn.parse (Syn.to_string p) with
      | Ok p2 -> Pt.equal_syntactic p p2
      | Error _ -> false)

let suite =
  [ Alcotest.test_case "simple query" `Quick test_parse_simple;
    Alcotest.test_case "tree structure" `Quick test_parse_tree;
    Alcotest.test_case "constants" `Quick test_parse_constants;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "facts format" `Quick test_facts;
    Alcotest.test_case "union syntax" `Quick test_union_syntax;
    prop_pp_parse_roundtrip ]
