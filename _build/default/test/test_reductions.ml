(* Proposition 3: the 3-colorability reduction into EVAL over g-TW(1). *)

open Helpers
module R = Wdpt.Reductions

let test_known_graphs () =
  let check_graph name g expect =
    let p, db, h = R.three_col_instance g in
    check_bool (name ^ " direct") expect (R.three_colorable g);
    check_bool (name ^ " naive semantics") expect (Wdpt.Semantics.decision db p h);
    check_bool (name ^ " tractable-EVAL algorithm") expect
      (Wdpt.Eval_tractable.decision db p h)
  in
  check_graph "C5 (odd cycle)" (R.cycle 5) true;
  check_graph "C4" (R.cycle 4) true;
  check_graph "K3" (R.complete 3) true;
  check_graph "K4" (R.complete 4) false;
  check_graph "single edge" { R.n = 2; edges = [ (0, 1) ] } true

let test_instance_classification () =
  let p, _, _ = R.three_col_instance (R.cycle 4) in
  (* the reduction produces globally tractable WDPTs (g-TW(1), g-HW(1)) *)
  check_bool "g-TW(1)" true (Wdpt.Classes.globally_in ~width:Tw ~k:1 p);
  check_bool "g-HW(1)" true (Wdpt.Classes.globally_in ~width:Hw ~k:1 p);
  (* yet EVAL on it decides 3-colorability: the paper's Prop 3 *)
  check_bool "not locally bounded interface" true (Wdpt.Classes.interface p > 1)

let prop_reduction_agrees =
  qtest ~count:30 "reduction agrees with direct solver"
    (QCheck.make
       QCheck.Gen.(
         let* n = int_range 2 6 in
         let* seed = int_range 0 10000 in
         let* prob = float_range 0.2 0.8 in
         return (R.random_graph ~seed ~n ~edge_prob:prob)))
    (fun g ->
      let p, db, h = R.three_col_instance g in
      R.three_colorable g = Wdpt.Eval_tractable.decision db p h)

let suite =
  [ Alcotest.test_case "known graphs" `Quick test_known_graphs;
    Alcotest.test_case "instance classification" `Quick test_instance_classification;
    prop_reduction_agrees ]
