(* Unit and property tests for the relational substrate. *)

open Relational
open Helpers

let test_value_order () =
  check_bool "int < str" true (Value.compare (Value.int 5) (Value.str "a") < 0);
  check_bool "equal ints" true (Value.equal (Value.int 3) (Value.int 3));
  check_bool "fresh distinct" false
    (Value.equal (Value.fresh ()) (Value.fresh ()))

let test_atom_vars () =
  let a = atom "R" [ v "x"; c 1; v "y"; v "x" ] in
  Alcotest.(check (list string)) "vars in order" [ "x"; "y" ] (Atom.vars a);
  check_int "arity" 4 (Atom.arity a);
  check_bool "not ground" false (Atom.is_ground a);
  let g = Atom.apply ~f:(fun _ -> Term.int 0) a in
  check_bool "ground after apply" true (Atom.is_ground g)

let test_fact_roundtrip () =
  let f = Fact.make "R" [ Value.int 1; Value.str "a" ] in
  let a = Atom.of_fact f in
  check_bool "roundtrip" true (Fact.equal f (Atom.to_fact a))

let test_mapping_basics () =
  let h = mapping [ ("x", 1); ("y", 2) ] in
  let h' = mapping [ ("x", 1); ("y", 2); ("z", 3) ] in
  check_bool "subsumes" true (Mapping.subsumes h h');
  check_bool "not reverse" false (Mapping.subsumes h' h);
  check_bool "strict" true (Mapping.strictly_subsumes h h');
  check_bool "self subsumes" true (Mapping.subsumes h h);
  check_bool "self not strict" false (Mapping.strictly_subsumes h h);
  check_bool "compatible" true (Mapping.compatible h h');
  check_bool "incompatible" false
    (Mapping.compatible h (mapping [ ("x", 9) ]));
  Alcotest.check mapping_testable "union"
    h'
    (Mapping.union h (mapping [ ("z", 3) ]));
  Alcotest.check mapping_testable "restrict"
    (mapping [ ("y", 2) ])
    (Mapping.restrict (String_set.singleton "y") h')

let test_maximal_elements () =
  let h1 = mapping [ ("x", 1) ] in
  let h2 = mapping [ ("x", 1); ("y", 2) ] in
  let h3 = mapping [ ("x", 2) ] in
  let maxes = Mapping.maximal_elements [ h1; h2; h3; h2 ] in
  check_int "two maximal" 2 (List.length maxes);
  check_bool "h2 maximal" true (List.exists (Mapping.equal h2) maxes);
  check_bool "h3 maximal" true (List.exists (Mapping.equal h3) maxes);
  check_bool "h1 dominated" false (List.exists (Mapping.equal h1) maxes)

let test_matches_fact () =
  let a = atom "R" [ v "x"; v "x"; c 3 ] in
  let f_good = Fact.make "R" [ Value.int 7; Value.int 7; Value.int 3 ] in
  let f_bad1 = Fact.make "R" [ Value.int 7; Value.int 8; Value.int 3 ] in
  let f_bad2 = Fact.make "R" [ Value.int 7; Value.int 7; Value.int 4 ] in
  check_bool "diagonal + const ok" true
    (Option.is_some (Mapping.matches_fact Mapping.empty a f_good));
  check_bool "diagonal violated" false
    (Option.is_some (Mapping.matches_fact Mapping.empty a f_bad1));
  check_bool "constant violated" false
    (Option.is_some (Mapping.matches_fact Mapping.empty a f_bad2));
  let init = mapping [ ("x", 9) ] in
  check_bool "init conflicts" false
    (Option.is_some (Mapping.matches_fact init a f_good))

let test_database_indexes () =
  let db = db_of_edges [ (1, 2); (2, 3); (1, 3) ] in
  check_int "size" 3 (Database.size db);
  check_int "facts_of" 3 (List.length (Database.facts_of db "E"));
  check_int "adom" 3 (Value.Set.cardinal (Database.active_domain db));
  (* candidates narrowed by a bound position *)
  let a = e "s" "t" in
  let h = mapping [ ("s", 1) ] in
  check_int "index narrows" 2 (List.length (Database.candidates db a h));
  check_int "matches" 2 (List.length (Database.matches db a h));
  (* idempotent add *)
  Database.add db (Fact.make "E" [ Value.int 1; Value.int 2 ]);
  check_int "idempotent" 3 (Database.size db)

let test_schema () =
  let s = Schema.of_list [ ("E", 2); ("U", 1) ] in
  check_bool "check ok" true (Result.is_ok (Schema.check_atom s (e "a" "b")));
  check_bool "arity bad" true
    (Result.is_error (Schema.check_atom s (atom "E" [ v "a" ])));
  check_bool "unknown rel" true
    (Result.is_error (Schema.check_atom s (atom "W" [ v "a" ])));
  check_bool "infer/union" true (Schema.mem "E" (Schema.union s Schema.empty))

(* properties *)

let prop_subsumption_partial_order =
  qtest "mapping subsumption is a partial order" arbitrary_db (fun db ->
      (* derive mappings from facts *)
      let ms =
        List.filteri (fun i _ -> i < 5) (Database.facts db)
        |> List.map (fun f ->
               Mapping.of_list
                 (List.mapi (fun i x -> ("v" ^ string_of_int i, x)) (Fact.tuple f)))
      in
      List.for_all
        (fun a ->
          Mapping.subsumes a a
          && List.for_all
               (fun b ->
                 (not (Mapping.subsumes a b && Mapping.subsumes b a))
                 || Mapping.equal a b)
               ms)
        ms)

let prop_union_restrict =
  qtest "restrict after union recovers operand" arbitrary_db (fun db ->
      match Database.facts db with
      | f1 :: f2 :: _ when Fact.rel f1 = "E" && Fact.rel f2 = "E" ->
          let a = Mapping.of_list [ ("a", Fact.arg f1 0); ("b", Fact.arg f1 1) ] in
          let b = Mapping.of_list [ ("c", Fact.arg f2 0); ("d", Fact.arg f2 1) ] in
          let u = Mapping.union a b in
          Mapping.equal a (Mapping.restrict (Mapping.domain a) u)
      | _ -> true)

let suite =
  [ Alcotest.test_case "value order and fresh" `Quick test_value_order;
    Alcotest.test_case "atom vars/apply/ground" `Quick test_atom_vars;
    Alcotest.test_case "fact/atom roundtrip" `Quick test_fact_roundtrip;
    Alcotest.test_case "mapping subsumption/union/restrict" `Quick test_mapping_basics;
    Alcotest.test_case "maximal elements" `Quick test_maximal_elements;
    Alcotest.test_case "matches_fact constraints" `Quick test_matches_fact;
    Alcotest.test_case "database indexes" `Quick test_database_indexes;
    Alcotest.test_case "schema validation" `Quick test_schema;
    prop_subsumption_partial_order;
    prop_union_restrict ]
