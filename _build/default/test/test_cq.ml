(* CQ engine: evaluation (both engines), containment, cores, approximations. *)

open Relational
open Helpers

let q_path2 = Cq.Query.make ~head:[ "x" ] ~body:[ e "x" "y"; e "y" "z" ]

let test_eval_basic () =
  let db = db_of_edges [ (1, 2); (2, 3); (3, 1) ] in
  check_int "answers" 3 (Mapping.Set.cardinal (Cq.Eval.answers db q_path2));
  check_bool "decision yes" true (Cq.Eval.decision db q_path2 (mapping [ ("x", 1) ]));
  check_bool "decision needs exact domain" false
    (Cq.Eval.decision db q_path2 (mapping [ ("x", 1); ("y", 2) ]));
  check_bool "decision no" false
    (Cq.Eval.decision db q_path2 (mapping [ ("x", 99) ]))

let test_eval_constants () =
  let db = db_of_edges [ (1, 2); (2, 3) ] in
  let q = Cq.Query.make ~head:[ "x" ] ~body:[ atom "E" [ v "x"; c 3 ] ] in
  check_int "constant filter" 1 (Mapping.Set.cardinal (Cq.Eval.answers db q))

let test_eval_empty_and_ground () =
  let db = db_of_edges [ (1, 2) ] in
  let q_true = Cq.Query.boolean [ atom "E" [ c 1; c 2 ] ] in
  let q_false = Cq.Query.boolean [ atom "E" [ c 2; c 1 ] ] in
  check_int "ground true" 1 (Mapping.Set.cardinal (Cq.Eval.answers db q_true));
  check_int "ground false" 0 (Mapping.Set.cardinal (Cq.Eval.answers db q_false));
  check_int "decomp ground true" 1
    (Mapping.Set.cardinal (Cq.Decomp_eval.answers db q_true));
  check_int "decomp ground false" 0
    (Mapping.Set.cardinal (Cq.Decomp_eval.answers db q_false))

let test_containment () =
  let p1 = Cq.Query.make ~head:[ "x" ] ~body:[ e "x" "y" ] in
  check_bool "path2 <= path1" true (Cq.Containment.contained q_path2 p1);
  check_bool "path1 </= path2" false (Cq.Containment.contained p1 q_path2);
  check_bool "reflexive" true (Cq.Containment.contained q_path2 q_path2);
  (* different heads are incomparable *)
  let p1' = Cq.Query.make ~head:[ "y" ] ~body:[ e "x" "y" ] in
  check_bool "different heads" false (Cq.Containment.contained p1 p1');
  (* subsumption allows head extension *)
  let big = Cq.Query.make ~head:[ "x"; "y" ] ~body:[ e "x" "y" ] in
  check_bool "subsumed with wider head" true (Cq.Containment.subsumed p1 big);
  check_bool "not contained though" false (Cq.Containment.contained p1 big)

(* two parallel directed paths x->.->z: primal graph is a 4-cycle (tw 2) but
   the query folds onto a single path (tw 1) *)
let parallel_paths =
  Cq.Query.boolean [ e "x" "y"; e "y" "z"; e "x" "y2"; e "y2" "z" ]

let single_path = Cq.Query.boolean [ e "x" "y"; e "y" "z" ]

let test_equivalence () =
  check_bool "parallel paths ≡ path" true
    (Cq.Containment.equivalent parallel_paths single_path);
  (* directed C4 is a core: NOT equivalent to C2 *)
  let c4 = Workload.Gen_cq.cycle 4 in
  let c2 = Workload.Gen_cq.cycle 2 in
  check_bool "C2 ⊆ C4" true (Cq.Containment.contained c2 c4);
  check_bool "C4 ⊄ C2" false (Cq.Containment.contained c4 c2);
  let c3 = Workload.Gen_cq.cycle 3 in
  check_bool "C3 not ≡ C2" false (Cq.Containment.equivalent c3 c2)

let test_core () =
  (* triangle + pendant path: core is the triangle *)
  let q =
    Cq.Query.boolean
      [ e "u" "v"; e "v" "w"; e "w" "u"; e "p" "q"; e "q" "r" ]
  in
  let core = Cq.Core_q.core q in
  check_int "core size" 3 (Cq.Query.size core);
  check_bool "core equivalent" true (Cq.Containment.equivalent q core);
  check_bool "core is core" true (Cq.Core_q.is_core core);
  (* head variables are kept *)
  let q2 = Cq.Query.make ~head:[ "p" ] ~body:[ e "p" "q"; e "p" "r" ] in
  let core2 = Cq.Core_q.core q2 in
  check_bool "head kept" true (List.mem "p" (Cq.Query.head core2));
  check_int "pendant merged" 1 (Cq.Query.size core2)

let test_semantic_width () =
  (* parallel paths: treewidth 2 syntactically, but the core is a path *)
  check_bool "parallel paths not syntactically TW(1)" false
    (Cq.Query.in_tw ~k:1 parallel_paths);
  check_bool "parallel paths semantically TW(1)" true
    (Cq.Core_q.equivalent_to_class parallel_paths ~in_class:(Cq.Query.in_tw ~k:1));
  let c3 = Workload.Gen_cq.cycle 3 in
  check_bool "C3 not semantically TW(1)" false
    (Cq.Core_q.equivalent_to_class c3 ~in_class:(Cq.Query.in_tw ~k:1));
  (* directed C4 is a core, so it stays at treewidth 2 semantically *)
  check_bool "C4 is a core" true (Cq.Core_q.is_core (Workload.Gen_cq.cycle 4));
  check_bool "C4 not semantically TW(1)" false
    (Cq.Core_q.equivalent_to_class (Workload.Gen_cq.cycle 4)
       ~in_class:(Cq.Query.in_tw ~k:1))

let test_widths_of_families () =
  check_bool "chain in TW(1)" true (Cq.Query.in_tw ~k:1 (Workload.Gen_cq.chain 5));
  check_bool "clique 4 tw 3" true
    (Cq.Query.treewidth (Workload.Gen_cq.clique 4) = 3);
  (* Example 5: guarded clique is acyclic but of large treewidth *)
  let gc = Workload.Gen_cq.guarded_clique 5 in
  check_bool "guarded clique acyclic" true (Cq.Query.is_acyclic gc);
  check_bool "guarded clique in HW(1)" true (Cq.Query.in_hw ~k:1 gc);
  check_int "guarded clique treewidth" 4 (Cq.Query.treewidth gc);
  (* but not beta: HW'(1) fails since the clique subquery is cyclic *)
  check_bool "guarded clique not in HW'(1)" false (Cq.Query.in_hw' ~k:1 gc)

let test_approximations_triangle () =
  let c3 = Workload.Gen_cq.cycle 3 in
  let apps = Cq.Approx.tw_approximations ~k:1 c3 in
  check_bool "some approximation" true (apps <> []);
  List.iter
    (fun a ->
      check_bool "in class" true (Cq.Query.in_tw ~k:1 a);
      check_bool "sound" true (Cq.Containment.contained a c3))
    apps;
  (* every in-class quotient is dominated by an approximation *)
  let quotients = Cq.Approx.quotients_in_class ~in_class:(Cq.Query.in_tw ~k:1) c3 in
  List.iter
    (fun qq ->
      check_bool "dominated" true
        (List.exists (fun a -> Cq.Containment.contained qq a) apps))
    quotients

let test_approximation_in_class_identity () =
  let chain = Workload.Gen_cq.chain 3 in
  let apps = Cq.Approx.tw_approximations ~k:1 chain in
  check_int "in-class query approximates itself" 1 (List.length apps);
  check_bool "identity" true (Cq.Containment.equivalent (List.hd apps) chain)

let test_substitute_freeze () =
  let q = q_path2 in
  let q' = Cq.Query.substitute (mapping [ ("x", 1) ]) q in
  check_bool "head shrinks" true (Cq.Query.head q' = []);
  let db, frozen = Cq.Query.freeze q in
  check_int "canonical db size" 2 (Database.size db);
  check_int "freeze covers vars" 3 (Mapping.cardinal frozen)

(* properties *)

let test_yannakakis_known () =
  let db = db_of_edges [ (1, 2); (2, 3); (3, 4) ] in
  let q = Workload.Gen_cq.chain 2 in
  (match Cq.Yannakakis.answers db q with
  | None -> Alcotest.fail "chain is acyclic"
  | Some ans ->
      check_bool "agrees with backtracking" true
        (Mapping.Set.equal ans (Cq.Eval.answers db q)));
  (* cyclic queries are refused *)
  check_bool "triangle refused" true
    (Cq.Yannakakis.answers db (Workload.Gen_cq.cycle 3) = None);
  (* instantiation can break the cycle *)
  check_bool "instantiated triangle accepted" true
    (Cq.Yannakakis.satisfiable db (Workload.Gen_cq.cycle 3)
       ~init:(mapping [ ("x0", 1) ])
    <> None)

let test_yannakakis_guarded_clique () =
  (* Example 5: acyclic but of unbounded treewidth; Yannakakis evaluates it
     directly over the guard *)
  let n = 6 in
  let q = Workload.Gen_cq.guarded_clique n in
  let vals = List.init n (fun i -> Value.int i) in
  let db = Database.create () in
  (* a complete digraph plus its guard tuple *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (Value.equal a b) then Database.add db (Fact.make "E" [ a; b ]))
        vals)
    vals;
  Database.add db (Fact.make ("T" ^ string_of_int n) vals);
  (match Cq.Yannakakis.satisfiable db q ~init:Mapping.empty with
  | Some true -> ()
  | _ -> Alcotest.fail "guarded clique should be satisfied");
  (* remove the guard: unsatisfiable *)
  let db2 =
    Database.of_list
      (List.filter (fun f -> Fact.rel f = "E") (Database.facts db))
  in
  match Cq.Yannakakis.satisfiable db2 q ~init:Mapping.empty with
  | Some false -> ()
  | _ -> Alcotest.fail "missing guard should fail"

let test_hyper_eval () =
  (* cycle of 6: hypertreewidth 2; evaluate through a width-2 decomposition *)
  let q = Workload.Gen_cq.cycle 6 in
  let db = db_of_edges [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0); (9, 9) ] in
  (match Hypergraphs.Hypertree.ghw_at_most (Cq.Query.hypergraph q) 2 with
  | None -> Alcotest.fail "C6 has ghw 2"
  | Some htd ->
      check_bool "agrees with backtracking" true
        (Mapping.Set.equal (Cq.Hyper_eval.answers db q ~htd) (Cq.Eval.answers db q));
      check_bool "satisfiable" true
        (Cq.Hyper_eval.satisfiable db q ~htd ~init:Mapping.empty));
  (* auto mode *)
  check_bool "auto finds width 2" true
    (Cq.Hyper_eval.auto db q ~k:2 ~init:Mapping.empty = Some true);
  check_bool "auto refuses width 1" true
    (Cq.Hyper_eval.auto db q ~k:1 ~init:Mapping.empty = None)

let prop_hyper_eval_agrees =
  qtest ~count:80 "hypertree-guided evaluation agrees with backtracking"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      match Hypergraphs.Hypertree.ghw_at_most (Cq.Query.hypergraph q) 2 with
      | None -> true
      | Some htd ->
          Mapping.Set.equal (Cq.Hyper_eval.answers db q ~htd) (Cq.Eval.answers db q))

let prop_yannakakis_agrees =
  qtest ~count:200 "Yannakakis agrees with backtracking on acyclic queries"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      match Cq.Yannakakis.answers db q with
      | None -> true
      | Some ans -> Mapping.Set.equal ans (Cq.Eval.answers db q))

let prop_engines_agree =
  qtest ~count:200 "backtracking and decomposition evaluation agree"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      Mapping.Set.equal (Cq.Eval.answers db q) (Cq.Decomp_eval.answers db q))

let prop_satisfiable_agree =
  qtest ~count:200 "satisfiability agreement"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, db) ->
      Cq.Eval.satisfiable db (Cq.Query.body q) ~init:Mapping.empty
      = Cq.Decomp_eval.satisfiable db q ~init:Mapping.empty)

let prop_containment_sound =
  qtest ~count:100 "containment is sound on random instances"
    (QCheck.triple arbitrary_cq arbitrary_cq arbitrary_db) (fun (q1, q2, db) ->
      if Cq.Containment.contained q1 q2 then
        Mapping.Set.subset (Cq.Eval.answers db q1) (Cq.Eval.answers db q2)
      else true)

let prop_core_equivalent =
  qtest ~count:100 "core is equivalent and no larger" arbitrary_cq (fun q ->
      let core = Cq.Core_q.core q in
      Cq.Containment.equivalent q core && Cq.Query.size core <= Cq.Query.size q)

(* exhaustive validation of the quotient-BFS approximation search: for tiny
   queries, enumerate EVERY variable map fixing the head, keep the in-class
   images, and check that the BFS-produced approximations are exactly the
   ⊆-maximal ones (up to equivalence) *)
let all_quotients q =
  let head = Cq.Query.head_set q in
  let vars = String_set.elements (Cq.Query.vars q) in
  let targets = vars in
  let rec assignments = function
    | [] -> [ [] ]
    | x :: rest ->
        let rests = assignments rest in
        if String_set.mem x head then List.map (fun a -> (x, x) :: a) rests
        else
          List.concat_map
            (fun t -> List.map (fun a -> (x, t) :: a) rests)
            targets
  in
  List.filter_map
    (fun assoc ->
      let f x = List.assoc x assoc in
      try Some (Cq.Query.quotient f q) with Invalid_argument _ -> None)
    (assignments vars)

let prop_approx_complete_on_tiny =
  qtest ~count:40 "BFS approximations = maximal in-class quotients (exhaustive)"
    (QCheck.make
       QCheck.Gen.(
         let var i = "x" ^ string_of_int i in
         let* nvars = int_range 2 4 in
         let* natoms = int_range 2 4 in
         let* atoms =
           list_size (return natoms)
             (let* a = int_range 0 (nvars - 1) in
              let* b = int_range 0 (nvars - 1) in
              return (e (var a) (var b)))
         in
         return (Cq.Query.boolean atoms)))
    (fun q ->
      let in_class = Cq.Query.in_tw ~k:1 in
      let exhaustive = List.filter in_class (all_quotients q) in
      let maximal =
        List.filter
          (fun c ->
            not
              (List.exists
                 (fun c' ->
                   Cq.Containment.contained c c' && not (Cq.Containment.contained c' c))
                 exhaustive))
          exhaustive
      in
      let bfs = Cq.Approx.tw_approximations ~k:1 q in
      (* same set up to equivalence *)
      List.for_all (fun m -> List.exists (Cq.Containment.equivalent m) bfs) maximal
      && List.for_all (fun b -> List.exists (Cq.Containment.equivalent b) maximal) bfs)

let prop_approx_sound_and_in_class =
  qtest ~count:40 "TW(1)-approximations are sound and in class" arbitrary_cq
    (fun q ->
      let apps = Cq.Approx.tw_approximations ~k:1 q in
      List.for_all
        (fun a -> Cq.Query.in_tw ~k:1 a && Cq.Containment.contained a q)
        apps)

let suite =
  [ Alcotest.test_case "basic evaluation" `Quick test_eval_basic;
    Alcotest.test_case "constants" `Quick test_eval_constants;
    Alcotest.test_case "ground atoms" `Quick test_eval_empty_and_ground;
    Alcotest.test_case "containment" `Quick test_containment;
    Alcotest.test_case "equivalence C4/C2" `Quick test_equivalence;
    Alcotest.test_case "cores" `Quick test_core;
    Alcotest.test_case "semantic width via core" `Quick test_semantic_width;
    Alcotest.test_case "width families (Examples 4, 5)" `Quick test_widths_of_families;
    Alcotest.test_case "approximations of a triangle" `Quick test_approximations_triangle;
    Alcotest.test_case "approximation of in-class query" `Quick test_approximation_in_class_identity;
    Alcotest.test_case "substitute and freeze" `Quick test_substitute_freeze;
    Alcotest.test_case "Yannakakis knowns" `Quick test_yannakakis_known;
    Alcotest.test_case "Yannakakis on guarded cliques" `Quick
      test_yannakakis_guarded_clique;
    Alcotest.test_case "hypertree-guided evaluation" `Quick test_hyper_eval;
    prop_hyper_eval_agrees;
    prop_yannakakis_agrees;
    prop_engines_agree;
    prop_satisfiable_agree;
    prop_containment_sound;
    prop_core_equivalent;
    prop_approx_complete_on_tiny;
    prop_approx_sound_and_in_class ]
