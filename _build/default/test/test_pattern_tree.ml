(* Pattern-tree structure: well-designedness, subtrees, transformations. *)

open Relational
open Helpers
module Pt = Wdpt.Pattern_tree

let simple () =
  Pt.make ~free:[ "x"; "z" ]
    (Node
       ( [ e "x" "y" ],
         [ Node ([ e "y" "z" ], []); Node ([ e "x" "w" ], [ Node ([ e "w" "u" ], []) ]) ] ))

let test_well_designed () =
  check_bool "simple ok" true
    (Pt.well_designed_spec
       (Node ([ e "x" "y" ], [ Node ([ e "y" "z" ], []) ])));
  (* y jumps over a node that does not mention it *)
  check_bool "disconnected variable" false
    (Pt.well_designed_spec
       (Node ([ e "x" "y" ], [ Node ([ e "x" "x" ], [ Node ([ e "y" "z" ], []) ]) ])));
  (* same variable in two sibling branches, absent from the root *)
  check_bool "sibling share" false
    (Pt.well_designed_spec
       (Node ([ e "x" "x" ], [ Node ([ e "y" "a" ], []); Node ([ e "y" "b" ], []) ])));
  check_bool "constructor raises" true
    (try
       ignore
         (Pt.make ~free:[]
            (Node ([ e "x" "y" ], [ Node ([ e "x" "x" ], [ Node ([ e "y" "z" ], []) ]) ])));
       false
     with Invalid_argument _ -> true)

let test_free_validation () =
  check_bool "unknown free var rejected" true
    (try
       ignore (Pt.make ~free:[ "nope" ] (Node ([ e "x" "y" ], [])));
       false
     with Invalid_argument _ -> true);
  check_bool "duplicate free rejected" true
    (try
       ignore (Pt.make ~free:[ "x"; "x" ] (Node ([ e "x" "y" ], [])));
       false
     with Invalid_argument _ -> true)

let test_structure () =
  let p = simple () in
  check_int "nodes" 4 (Pt.node_count p);
  check_int "size" 4 (Pt.size p);
  check_int "root" 0 (Pt.root p);
  check_int "root children" 2 (List.length (Pt.children p 0));
  check_bool "projection-free detection" false (Pt.is_projection_free p);
  check_int "vars" 5 (String_set.cardinal (Pt.vars p));
  (* roundtrip through spec *)
  let p2 = Pt.make ~free:(Pt.free p) (Pt.to_spec p) in
  check_bool "spec roundtrip" true (Pt.equal_syntactic p p2)

let test_subtrees () =
  let p = simple () in
  (* subtrees: root alone; root+left; root+right; root+right+grand;
     root+left+right; root+left+right+grand = 6 *)
  check_int "count" 6 (Pt.subtree_count p);
  check_int "enumerated" 6 (List.length (List.of_seq (Pt.subtrees p)));
  Seq.iter
    (fun s ->
      check_bool "contains root" true (List.mem 0 s);
      (* closed under parents *)
      List.iter
        (fun i -> if i <> 0 then check_bool "parent in" true (List.mem (Pt.parent p i) s))
        s)
    (Pt.subtrees p)

let test_subtree_queries () =
  let p = simple () in
  let full = Pt.all_nodes p in
  let q = Pt.q_of_subtree p full in
  check_int "q head = all vars" 5 (List.length (Cq.Query.head q));
  let r = Pt.r_of_subtree p full in
  Alcotest.(check (list string)) "r head = free vars" [ "x"; "z" ] (Cq.Query.head r);
  let r_root = Pt.r_of_subtree p [ 0 ] in
  Alcotest.(check (list string)) "free vars in root only" [ "x" ] (Cq.Query.head r_root)

let test_minimal_maximal_subtree () =
  let p = simple () in
  (match Pt.minimal_subtree_for p (String_set.of_list [ "z" ]) with
  | Some s -> Alcotest.(check (list int)) "minimal for z" [ 0; 1 ] s
  | None -> Alcotest.fail "expected subtree");
  (match Pt.minimal_subtree_for p (String_set.of_list [ "u" ]) with
  | Some s -> Alcotest.(check (list int)) "minimal for u" [ 0; 2; 3 ] s
  | None -> Alcotest.fail "expected subtree");
  check_bool "missing var" true (Pt.minimal_subtree_for p (String_set.singleton "qq") = None);
  (match Pt.maximal_subtree_without p (String_set.of_list [ "x" ]) with
  | Some s ->
      (* node 1 introduces free var z, so only root and branch 2-3 qualify *)
      Alcotest.(check (list int)) "maximal without z" [ 0; 2; 3 ] s
  | None -> Alcotest.fail "expected subtree")

let test_transformations () =
  let p = simple () in
  (* quotient merging w into y is fine (both existential) *)
  (match Pt.quotient (fun s -> if s = "w" then "y" else s) p with
  | Some p' -> check_bool "quotient wd" true (String_set.mem "y" (Pt.node_vars p' 2))
  | None -> Alcotest.fail "quotient should stay well-designed");
  (* drop a leaf *)
  let p_dropped = Pt.drop_leaf p 1 in
  check_int "dropped" 3 (Pt.node_count p_dropped);
  Alcotest.(check (list string)) "free var of dropped node gone" [ "x" ]
    (Pt.free p_dropped);
  check_bool "drop root fails" true
    (try
       ignore (Pt.drop_leaf p 0);
       false
     with Invalid_argument _ -> true);
  check_bool "drop internal fails" true
    (try
       ignore (Pt.drop_leaf p 2);
       false
     with Invalid_argument _ -> true);
  (* collapse node 2 into the root *)
  match Pt.collapse_into_parent p 2 with
  | Some p' ->
      check_int "collapsed nodes" 3 (Pt.node_count p');
      check_int "atoms moved" 2 (List.length (Pt.atoms p' 0))
  | None -> Alcotest.fail "collapse should stay well-designed"

let prop_subtree_count_matches =
  qtest ~count:100 "subtree enumeration matches count" arbitrary_wdpt (fun p ->
      Pt.subtree_count p = Seq.length (Pt.subtrees p))

let prop_minimal_subtree_minimal =
  qtest ~count:100 "minimal subtree contains target vars" arbitrary_wdpt (fun p ->
      let vars = Pt.free_set p in
      if String_set.is_empty vars then true
      else
        match Pt.minimal_subtree_for p vars with
        | None -> false
        | Some s -> String_set.subset vars (Pt.vars_of_subtree p s))

let suite =
  [ Alcotest.test_case "well-designedness" `Quick test_well_designed;
    Alcotest.test_case "free variable validation" `Quick test_free_validation;
    Alcotest.test_case "structure accessors" `Quick test_structure;
    Alcotest.test_case "subtree enumeration" `Quick test_subtrees;
    Alcotest.test_case "subtree queries q/r" `Quick test_subtree_queries;
    Alcotest.test_case "minimal/maximal subtrees" `Quick test_minimal_maximal_subtree;
    Alcotest.test_case "quotient/drop/collapse" `Quick test_transformations;
    prop_subtree_count_matches;
    prop_minimal_subtree_minimal ]
