(* Fragment classes (Section 3) and Proposition 2. *)

open Helpers
module Pt = Wdpt.Pattern_tree
module Cl = Wdpt.Classes

let test_figure1_classification () =
  (* Example 6: the Figure-1 WDPT is in ℓ-TW(1) and BI(2) *)
  let p = Workload.Datasets.figure1_wdpt ~free:[ "x"; "y"; "z"; "z'" ] in
  check_bool "locally TW(1)" true (Cl.locally_in ~width:Tw ~k:1 p);
  check_int "interface 2" 2 (Cl.interface p);
  check_bool "BI(2)" true (Cl.bounded_interface ~c:2 p);
  check_bool "not BI(1)" false (Cl.bounded_interface ~c:1 p);
  check_bool "globally TW(1)" true (Cl.globally_in ~width:Tw ~k:1 p);
  check_bool "WB(1)" true (Cl.in_wb ~width:Tw ~k:1 p)

let test_local_vs_global () =
  (* two triangle-free nodes that build a triangle together: locally TW(1)
     but globally TW(2) *)
  let p =
    Pt.make ~free:[ "x" ]
      (Node ([ e "x" "y"; e "y" "z" ], [ Node ([ e "z" "x" ], []) ]))
  in
  check_bool "locally TW(1)" true (Cl.locally_in ~width:Tw ~k:1 p);
  check_bool "not globally TW(1)" false (Cl.globally_in ~width:Tw ~k:1 p);
  check_bool "globally TW(2)" true (Cl.globally_in ~width:Tw ~k:2 p)

let test_interface_single_node () =
  let p = Pt.of_cq (Workload.Gen_cq.clique 4) in
  check_int "single node interface 0" 0 (Cl.interface p);
  check_bool "clique not locally TW(1)" false (Cl.locally_in ~width:Tw ~k:1 p);
  check_bool "clique locally TW(3)" true (Cl.locally_in ~width:Tw ~k:3 p)

let test_prop2_family () =
  (* g-TW(1) but arbitrarily large interface (Prop 2(2)) *)
  List.iter
    (fun m ->
      let p = Workload.Hard_instances.prop2_family ~m in
      check_bool "globally TW(1)" true (Cl.globally_in ~width:Tw ~k:1 p);
      check_bool "interface grows" true (Cl.interface p >= m - 1))
    [ 3; 5; 7 ]

let test_hw_classes () =
  (* guarded clique: in ℓ-HW(1) but not ℓ-TW(1) *)
  let gc = Workload.Gen_cq.guarded_clique 4 in
  let p = Pt.of_cq gc in
  check_bool "locally HW(1)" true (Cl.locally_in ~width:Hw ~k:1 p);
  check_bool "not locally TW(1)" false (Cl.locally_in ~width:Tw ~k:1 p);
  check_bool "not locally HW'(1)" false (Cl.locally_in ~width:Hw' ~k:1 p);
  check_bool "globally HW(1)" true (Cl.globally_in ~width:Hw ~k:1 p)

let test_wb_rejects_hw () =
  let p = Pt.of_cq (Workload.Gen_cq.chain 3) in
  check_bool "WB with Hw raises" true
    (try
       ignore (Cl.in_wb ~width:Hw ~k:1 p);
       false
     with Invalid_argument _ -> true)

let test_prop2_constructive () =
  let p = Workload.Datasets.figure1_wdpt ~free:[ "x"; "y" ] in
  match Cl.prop2_decomposition ~k:1 p with
  | None -> Alcotest.fail "expected a decomposition"
  | Some td ->
      let hg = Cq.Query.hypergraph (Pt.q_full p) in
      check_bool "valid" true (Hypergraphs.Tree_decomposition.is_valid hg td);
      check_bool "width within k + 2c" true
        (Hypergraphs.Tree_decomposition.width td <= 1 + (2 * Cl.interface p))

let prop_prop2_constructive =
  qtest ~count:100 "constructive Prop 2 decomposition is valid and narrow"
    arbitrary_wdpt (fun p ->
      let rec least pred i = if pred i then i else least pred (i + 1) in
      let k = least (fun k -> Cl.locally_in ~width:Tw ~k p) 1 in
      let c = Cl.interface p in
      match Cl.prop2_decomposition ~k p with
      | None -> false
      | Some td ->
          let hg = Cq.Query.hypergraph (Pt.q_full p) in
          Hypergraphs.Tree_decomposition.is_valid hg td
          && Hypergraphs.Tree_decomposition.width td <= k + (2 * c))

(* Proposition 2(1): ℓ-TW(k) ∩ BI(c) ⊆ g-TW(k + 2c) *)
let prop_inclusion =
  qtest ~count:150 "Prop 2: ℓ-TW(k) ∩ BI(c) ⊆ g-TW(k+2c)" arbitrary_wdpt
    (fun p ->
      (* find the least k and c for this tree, then check global bound *)
      let rec least pred i = if pred i then i else least pred (i + 1) in
      let k = least (fun k -> Cl.locally_in ~width:Tw ~k p) 1 in
      let c = max 1 (Cl.interface p) in
      Cl.globally_in ~width:Tw ~k:(k + (2 * c)) p)

let suite =
  [ Alcotest.test_case "Figure 1 classification (Example 6)" `Quick
      test_figure1_classification;
    Alcotest.test_case "local vs global tractability" `Quick test_local_vs_global;
    Alcotest.test_case "single-node interface" `Quick test_interface_single_node;
    Alcotest.test_case "Prop 2(2) family" `Quick test_prop2_family;
    Alcotest.test_case "HW classes (Example 5)" `Quick test_hw_classes;
    Alcotest.test_case "WB rejects plain HW" `Quick test_wb_rejects_hw;
    Alcotest.test_case "constructive Prop 2" `Quick test_prop2_constructive;
    prop_prop2_constructive;
    prop_inclusion ]
