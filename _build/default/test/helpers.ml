(* Shared test utilities: alcotest testables, qcheck generators. *)

open Relational

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mapping_testable = Alcotest.testable Mapping.pp Mapping.equal

let mapping_set_testable =
  Alcotest.testable
    (fun ppf s ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Mapping.pp)
        (Mapping.Set.elements s))
    Mapping.Set.equal

let v = Term.var
let c i = Term.int i
let atom r args = Atom.make r args
let e a b = Atom.make "E" [ v a; v b ]

let db_of_edges edges =
  Database.of_list
    (List.map (fun (a, b) -> Fact.make "E" [ Value.int a; Value.int b ]) edges)

let mapping l = Mapping.of_list (List.map (fun (x, i) -> (x, Value.int i)) l)

(* ---- qcheck generators ------------------------------------------------- *)

(* a small random database over binary relation E and unary U *)
let gen_db =
  QCheck.Gen.(
    let* nodes = int_range 2 6 in
    let* edge_count = int_range 1 10 in
    let* edges =
      list_size (return edge_count)
        (pair (int_range 0 (nodes - 1)) (int_range 0 (nodes - 1)))
    in
    let* unary_count = int_range 0 4 in
    let* unaries = list_size (return unary_count) (int_range 0 (nodes - 1)) in
    return
      (Database.of_list
         (List.map (fun (a, b) -> Fact.make "E" [ Value.int a; Value.int b ]) edges
         @ List.map (fun a -> Fact.make "U" [ Value.int a ]) unaries)))

let arbitrary_db = QCheck.make ~print:(Format.asprintf "%a" Database.pp) gen_db

(* random Boolean-ish CQ over E/U with a few head vars *)
let gen_cq =
  QCheck.Gen.(
    let* nvars = int_range 1 5 in
    let var i = "x" ^ string_of_int i in
    let* natoms = int_range 1 6 in
    let* atoms =
      list_size (return natoms)
        (let* kind = int_range 0 3 in
         let* a = int_range 0 (nvars - 1) in
         let* b = int_range 0 (nvars - 1) in
         return
           (if kind = 0 then Atom.make "U" [ v (var a) ]
            else Atom.make "E" [ v (var a); v (var b) ]))
    in
    let vars_used =
      List.fold_left
        (fun acc a -> String_set.union acc (Atom.var_set a))
        String_set.empty atoms
      |> String_set.elements
    in
    let* nhead = int_range 0 (min 2 (List.length vars_used)) in
    let head = List.filteri (fun i _ -> i < nhead) vars_used in
    return (Cq.Query.make ~head ~body:atoms))

let arbitrary_cq = QCheck.make ~print:(Format.asprintf "%a" Cq.Query.pp) gen_cq

(* random small WDPT over E/U, well-designed by construction: each node
   shares at most [interface] variables with its parent and introduces fresh
   ones *)
let gen_wdpt_sized ~max_depth ~max_branch ~interface =
  QCheck.Gen.(
    let counter = ref 0 in
    let fresh () =
      incr counter;
      "w" ^ string_of_int !counter
    in
    let rec node depth parent_vars =
      let* n_shared = int_range 0 (min interface (List.length parent_vars)) in
      let shared = List.filteri (fun i _ -> i < n_shared) parent_vars in
      let* n_fresh = int_range 1 2 in
      let fresh_vars = List.init n_fresh (fun _ -> fresh ()) in
      let vars = shared @ fresh_vars in
      let* atoms =
        let pick_var = oneofl vars in
        let* n_atoms = int_range 1 3 in
        list_size (return n_atoms)
          (let* kind = int_range 0 2 in
           let* a = pick_var in
           let* b = pick_var in
           return
             (if kind = 0 then Atom.make "U" [ v a ]
              else Atom.make "E" [ v a; v b ]))
      in
      (* make sure every declared var occurs *)
      let occurring =
        List.fold_left
          (fun acc a -> String_set.union acc (Atom.var_set a))
          String_set.empty atoms
      in
      let atoms =
        atoms
        @ List.filter_map
            (fun x ->
              if String_set.mem x occurring then None
              else Some (Atom.make "U" [ v x ]))
            vars
      in
      let* n_kids = if depth >= max_depth then return 0 else int_range 0 max_branch in
      let* kids = list_size (return n_kids) (node (depth + 1) vars) in
      return (Wdpt.Pattern_tree.Node (atoms, kids))
    in
    let* spec = node 0 [] in
    (* free vars: a random subset of all variables *)
    let rec spec_vars (Wdpt.Pattern_tree.Node (atoms, kids)) =
      List.fold_left
        (fun acc a -> String_set.union acc (Atom.var_set a))
        (List.fold_left
           (fun acc k -> String_set.union acc (spec_vars k))
           String_set.empty kids)
        atoms
    in
    let all = String_set.elements (spec_vars spec) in
    let* mask = list_size (return (List.length all)) bool in
    let free = List.filteri (fun i _ -> List.nth mask i) all in
    return (Wdpt.Pattern_tree.make ~free spec))

let gen_wdpt = gen_wdpt_sized ~max_depth:2 ~max_branch:2 ~interface:2

let arbitrary_wdpt =
  QCheck.make ~print:(Format.asprintf "%a" Wdpt.Pattern_tree.pp) gen_wdpt

(* small trees for the expensive cross-validation properties *)
let arbitrary_small_wdpt =
  QCheck.make
    ~print:(Format.asprintf "%a" Wdpt.Pattern_tree.pp)
    (gen_wdpt_sized ~max_depth:1 ~max_branch:2 ~interface:1)

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)
