(* The SPARQL algebra (Pérez et al. [18]) and the bottom-up algebraic WDPT
   evaluator: three independent semantics implementations must agree on
   well-designed inputs. *)

open Relational
open Helpers
module Pt = Wdpt.Pattern_tree

let graph_of edges =
  Rdf.Graph.of_triples
    (List.map
       (fun (s, p, o) -> Rdf.Triple.make (Value.str s) (Value.str p) (Value.str o))
       edges)

let test_bgp () =
  let g = graph_of [ ("a", "p", "b"); ("b", "p", "c") ] in
  let sols =
    Rdf.Algebra.eval_expr g (Bgp [ (Term.var "x", Term.str "p", Term.var "y") ])
  in
  check_int "two matches" 2 (Mapping.Set.cardinal sols)

let test_opt_semantics () =
  let g = graph_of [ ("a", "p", "b"); ("b", "q", "c") ] in
  let expr =
    Rdf.Sparql.Opt
      ( Rdf.Sparql.Bgp [ (Term.var "x", Term.str "p", Term.var "y") ],
        Rdf.Sparql.Bgp [ (Term.var "y", Term.str "q", Term.var "z") ] )
  in
  let sols = Rdf.Algebra.eval_expr g expr in
  (* a-p-b extends to b-q-c: one total mapping *)
  check_int "one solution" 1 (Mapping.Set.cardinal sols);
  check_int "fully bound" 3 (Mapping.cardinal (Mapping.Set.choose sols));
  (* remove the q triple: the partial mapping survives (left outer join) *)
  let g2 = graph_of [ ("a", "p", "b") ] in
  let sols2 = Rdf.Algebra.eval_expr g2 expr in
  check_int "partial solution" 1 (Mapping.Set.cardinal sols2);
  check_int "only x y bound" 2 (Mapping.cardinal (Mapping.Set.choose sols2))

let test_and_join () =
  let g = graph_of [ ("a", "p", "b"); ("a", "q", "c"); ("d", "p", "e") ] in
  let expr =
    Rdf.Sparql.And
      ( Rdf.Sparql.Bgp [ (Term.var "x", Term.str "p", Term.var "y") ],
        Rdf.Sparql.Bgp [ (Term.var "x", Term.str "q", Term.var "z") ] )
  in
  check_int "join filters" 1 (Mapping.Set.cardinal (Rdf.Algebra.eval_expr g expr))

let test_non_well_designed_still_evaluates () =
  (* the algebra gives meaning even to non-well-designed patterns *)
  let expr =
    Rdf.Sparql.And
      ( Rdf.Sparql.Opt
          ( Rdf.Sparql.Bgp [ (Term.var "x", Term.str "p", Term.var "y") ],
            Rdf.Sparql.Bgp [ (Term.var "x", Term.str "q", Term.var "z") ] ),
        Rdf.Sparql.Bgp [ (Term.var "z", Term.str "r", Term.var "w") ] )
  in
  check_bool "not well-designed" false (Rdf.Sparql.is_well_designed expr);
  let g = graph_of [ ("a", "p", "b"); ("c", "r", "d") ] in
  (* x-p-y matches with z unbound; compatible with any z-r-w binding *)
  check_int "evaluates anyway" 1
    (Mapping.Set.cardinal (Rdf.Algebra.eval_expr g expr))

(* cross-validation: for well-designed queries, the algebra agrees with the
   WDPT semantics after translation *)
let gen_sparql_query =
  QCheck.Gen.(
    let t v = Term.var v in
    let pat s p o = (s, p, o) in
    let* root_rel = oneofl [ "p"; "q" ] in
    let* opt1_rel = oneofl [ "q"; "r" ] in
    let* opt2_rel = oneofl [ "r"; "s" ] in
    let* nested = bool in
    let root = Rdf.Sparql.Bgp [ pat (t "x") (Term.str root_rel) (t "y") ] in
    let o1 = Rdf.Sparql.Bgp [ pat (t "x") (Term.str opt1_rel) (t "z") ] in
    let o2 = Rdf.Sparql.Bgp [ pat (t "y") (Term.str opt2_rel) (t "w") ] in
    let where =
      if nested then Rdf.Sparql.Opt (Rdf.Sparql.Opt (root, o1), o2)
      else Rdf.Sparql.Opt (root, Rdf.Sparql.Opt (o1, o2))
    in
    let* select = oneofl [ None; Some [ "x"; "z" ]; Some [ "y"; "w" ] ] in
    return { Rdf.Sparql.select; where })

let gen_triple_graph =
  QCheck.Gen.(
    let* m = int_range 1 12 in
    let* triples =
      list_size (return m)
        (let* s = int_range 0 4 in
         let* p = oneofl [ "p"; "q"; "r"; "s" ] in
         let* o = int_range 0 4 in
         return
           (Rdf.Triple.make
              (Value.str ("n" ^ string_of_int s))
              (Value.str p)
              (Value.str ("n" ^ string_of_int o))))
    in
    return (Rdf.Graph.of_triples triples))

let prop_algebra_vs_wdpt =
  qtest ~count:200 "SPARQL algebra = WDPT semantics on well-designed queries"
    (QCheck.make
       (QCheck.Gen.pair gen_sparql_query gen_triple_graph))
    (fun (q, g) ->
      if not (Rdf.Sparql.is_well_designed q.Rdf.Sparql.where) then true
      else begin
        let p = Rdf.Sparql.to_pattern_tree q in
        let db = Rdf.Graph.database g in
        Mapping.Set.equal (Rdf.Algebra.eval g q) (Wdpt.Semantics.eval db p)
      end)

let prop_algebra_eval_vs_procedural =
  qtest ~count:150 "bottom-up algebraic evaluator = procedural semantics"
    (QCheck.pair arbitrary_wdpt arbitrary_db) (fun (p, db) ->
      Mapping.Set.equal (Wdpt.Algebra_eval.eval db p) (Wdpt.Semantics.eval db p))

let prop_algebra_solutions_are_max_homs =
  qtest ~count:100 "algebraic solutions = maximal homomorphisms"
    (QCheck.pair arbitrary_small_wdpt arbitrary_db) (fun (p, db) ->
      let a = Wdpt.Algebra_eval.solutions db p in
      let b = Mapping.Set.of_list (Wdpt.Semantics.maximal_homomorphisms db p) in
      Mapping.Set.equal a b)

let suite =
  [ Alcotest.test_case "BGP evaluation" `Quick test_bgp;
    Alcotest.test_case "OPT left outer join" `Quick test_opt_semantics;
    Alcotest.test_case "AND join" `Quick test_and_join;
    Alcotest.test_case "non-well-designed patterns" `Quick
      test_non_well_designed_still_evaluates;
    prop_algebra_vs_wdpt;
    prop_algebra_eval_vs_procedural;
    prop_algebra_solutions_are_max_homs ]
