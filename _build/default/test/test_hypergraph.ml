(* Treewidth, GYO, generalized hypertreewidth, β-acyclicity. *)

open Relational
open Helpers
module H = Hypergraphs.Hypergraph
module Td = Hypergraphs.Tree_decomposition
module Gyo = Hypergraphs.Gyo
module Ht = Hypergraphs.Hypertree
module Beta = Hypergraphs.Beta

let hg edges = H.make ~vertices:[] ~edges

let path n =
  hg (List.init n (fun i -> [ "v" ^ string_of_int i; "v" ^ string_of_int (i + 1) ]))

let cyc n =
  hg
    (List.init n (fun i ->
         [ "v" ^ string_of_int i; "v" ^ string_of_int ((i + 1) mod n) ]))

let clique n =
  let vs = List.init n (fun i -> "v" ^ string_of_int i) in
  hg
    (List.concat_map
       (fun a -> List.filter_map (fun b -> if a < b then Some [ a; b ] else None) vs)
       vs)

let test_known_treewidths () =
  check_int "path" 1 (Td.treewidth (path 6));
  check_int "cycle" 2 (Td.treewidth (cyc 6));
  check_int "K5" 4 (Td.treewidth (clique 5));
  check_int "single vertex" 0 (Td.treewidth (hg [ [ "a" ] ]));
  check_int "empty" (-1) (Td.treewidth (hg []))

let test_grid_treewidth () =
  (* 3x3 grid has treewidth 3 *)
  let edges = ref [] in
  for i = 0 to 2 do
    for j = 0 to 2 do
      let s i j = Printf.sprintf "g%d%d" i j in
      if j < 2 then edges := [ s i j; s i (j + 1) ] :: !edges;
      if i < 2 then edges := [ s i j; s (i + 1) j ] :: !edges
    done
  done;
  check_int "3x3 grid" 3 (Td.treewidth (hg !edges))

let test_decomposition_validity () =
  List.iter
    (fun (name, g, k) ->
      match Td.at_most g k with
      | None -> Alcotest.failf "%s: no decomposition of width %d" name k
      | Some td ->
          check_bool (name ^ " valid") true (Td.is_valid g td);
          check_bool (name ^ " width ok") true (Td.width td <= k))
    [ ("path", path 6, 1); ("cycle", cyc 7, 2); ("K4", clique 4, 3) ];
  check_bool "cycle needs 2" true (Td.at_most (cyc 7) 1 = None);
  check_bool "K5 needs 4" true (Td.at_most (clique 5) 3 = None)

let test_bounds () =
  check_bool "lower <= exact" true (Td.lower_bound (cyc 9) <= 2);
  let ub, td = Td.upper_bound (cyc 9) in
  check_bool "upper >= exact" true (ub >= 2);
  check_bool "heuristic valid" true (Td.is_valid (cyc 9) td)

let test_gyo () =
  check_bool "path acyclic" true (Gyo.is_acyclic (path 5));
  check_bool "cycle not" false (Gyo.is_acyclic (cyc 5));
  check_bool "covered triangle acyclic (alpha)" true
    (Gyo.is_acyclic (hg [ [ "x"; "y" ]; [ "y"; "z" ]; [ "x"; "z" ]; [ "x"; "y"; "z" ] ]));
  (* join forest validity *)
  (match Gyo.join_forest (path 5) with
  | None -> Alcotest.fail "path must have a join forest"
  | Some jf -> check_bool "running intersection" true (Gyo.is_join_forest (path 5) jf));
  (* disconnected: two paths *)
  let two = hg [ [ "a"; "b" ]; [ "c"; "d" ] ] in
  check_bool "disconnected acyclic" true (Gyo.is_acyclic two)

let test_ghw () =
  check_int "acyclic ghw" 1 (Ht.ghw (path 4));
  check_int "cycle ghw" 2 (Ht.ghw (cyc 6));
  (match Ht.ghw_at_most (cyc 6) 2 with
  | None -> Alcotest.fail "cycle must have ghw-2 decomposition"
  | Some h -> check_bool "htd valid" true (Ht.is_valid (cyc 6) h));
  check_bool "cycle not ghw 1" true (Ht.ghw_at_most (cyc 6) 1 = None)

let test_beta () =
  let covered_triangle =
    hg [ [ "x"; "y" ]; [ "y"; "z" ]; [ "x"; "z" ]; [ "x"; "y"; "z" ] ]
  in
  check_bool "covered triangle alpha but not beta" false
    (Beta.is_beta_acyclic covered_triangle);
  check_bool "path beta acyclic" true (Beta.is_beta_acyclic (path 5));
  check_bool "nested chain beta acyclic" true
    (Beta.is_beta_acyclic (hg [ [ "a" ]; [ "a"; "b" ]; [ "a"; "b"; "c" ] ]));
  check_int "beta-hw of covered triangle" 2 (Beta.beta_ghw covered_triangle);
  check_bool "beta monotone vs alpha" true (Beta.beta_ghw_at_most (path 5) 1)

let test_components () =
  let two = hg [ [ "a"; "b" ]; [ "c"; "d" ]; [ "b"; "e" ] ] in
  check_int "components" 2 (List.length (H.components two));
  (* trace semantics: [b; e] leaves its restriction {b} behind *)
  check_int "induced" 2 (H.num_edges (H.induced two (String_set.of_list [ "a"; "b" ])));
  check_int "induced disjoint" 0
    (H.num_edges (H.induced two (String_set.of_list [ "z" ])))

(* properties *)

let gen_graph_hg =
  QCheck.Gen.(
    let* n = int_range 2 7 in
    let* m = int_range 1 10 in
    let* edges =
      list_size (return m)
        (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    in
    return
      (hg
         (List.filter_map
            (fun (a, b) ->
              if a = b then None
              else Some [ "v" ^ string_of_int a; "v" ^ string_of_int b ])
            edges)))

let arbitrary_hg = QCheck.make ~print:(Format.asprintf "%a" H.pp) gen_graph_hg

let prop_exact_between_bounds =
  qtest "lower <= exact <= heuristic upper" arbitrary_hg (fun g ->
      if H.num_edges g = 0 then true
      else begin
        let tw = Td.treewidth g in
        let ub, _ = Td.upper_bound g in
        Td.lower_bound g <= tw && tw <= ub
      end)

let prop_decomposition_valid =
  qtest "exact decomposition is valid" arbitrary_hg (fun g ->
      if H.num_edges g = 0 then true
      else begin
        let tw = Td.treewidth g in
        match Td.at_most g tw with
        | None -> false
        | Some td -> Td.is_valid g td && Td.width td <= tw
      end)

let prop_subgraph_monotone =
  qtest "treewidth monotone under removing edges" arbitrary_hg (fun g ->
      if H.num_edges g <= 1 then true
      else begin
        let sub = H.sub_edges g (fun i -> i > 0) in
        Td.treewidth sub <= Td.treewidth g
      end)

let prop_acyclic_iff_ghw1 =
  qtest "GYO acyclic iff ghw = 1" arbitrary_hg (fun g ->
      if H.num_edges g = 0 then true
      else Gyo.is_acyclic g = Option.is_some (Ht.ghw_at_most g 1))

let suite =
  [ Alcotest.test_case "known treewidths" `Quick test_known_treewidths;
    Alcotest.test_case "3x3 grid treewidth" `Quick test_grid_treewidth;
    Alcotest.test_case "decomposition validity" `Quick test_decomposition_validity;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "GYO" `Quick test_gyo;
    Alcotest.test_case "generalized hypertreewidth" `Quick test_ghw;
    Alcotest.test_case "beta acyclicity" `Quick test_beta;
    Alcotest.test_case "components/induced" `Quick test_components;
    prop_exact_between_bounds;
    prop_decomposition_valid;
    prop_subgraph_monotone;
    prop_acyclic_iff_ghw1 ]
