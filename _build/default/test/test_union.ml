(* Unions of WDPTs (Section 6): evaluation, phi_cq, UWB membership and
   approximation. *)

open Relational
open Helpers
module Pt = Wdpt.Pattern_tree
module U = Wdpt.Union

let test_union_eval () =
  let p1 = Pt.of_cq (Cq.Query.make ~head:[ "x" ] ~body:[ e "x" "y" ]) in
  let p2 = Pt.of_cq (Cq.Query.make ~head:[ "z" ] ~body:[ e "y" "z" ]) in
  let db = db_of_edges [ (1, 2) ] in
  let ans = U.eval db [ p1; p2 ] in
  check_int "union of both" 2 (Mapping.Set.cardinal ans);
  check_bool "decision 1" true (U.decision db [ p1; p2 ] (mapping [ ("x", 1) ]));
  check_bool "decision 2" true (U.decision db [ p1; p2 ] (mapping [ ("z", 2) ]));
  check_bool "decision no" false (U.decision db [ p1; p2 ] (mapping [ ("x", 2) ]))

let test_phi_cq_example8 () =
  (* Example 8: four CQs for the Figure-1 WDPT projected to y z z' *)
  let p = Workload.Datasets.figure1_wdpt ~free:[ "y"; "z"; "z'" ] in
  let cqs = U.phi_cq [ p ] in
  check_int "four subtree CQs" 4 (List.length cqs);
  let heads = List.map (fun q -> List.sort compare (Cq.Query.head q)) cqs in
  let expect = [ [ "y" ]; [ "y"; "z" ]; [ "y"; "z'" ]; [ "y"; "z"; "z'" ] ] in
  List.iter
    (fun h -> check_bool "expected head" true (List.mem h heads))
    expect

let prop_phi_cq_equivalent =
  (* φ ≡ₛ φ_cq (Section 6) — validated semantically on random databases *)
  qtest ~count:50 "phi ≡ₛ phi_cq on random dbs"
    (QCheck.pair arbitrary_small_wdpt arbitrary_db) (fun (p, db) ->
      let u = [ p ] in
      let ucq = List.map Pt.of_cq (U.phi_cq u) in
      let max1 = U.eval_max db u in
      let max2 = U.eval_max db ucq in
      Mapping.Set.equal max1 max2)

let test_reduce_cqs () =
  let q1 = Cq.Query.make ~head:[ "x" ] ~body:[ e "x" "y" ] in
  let q2 = Cq.Query.make ~head:[ "x" ] ~body:[ e "x" "y"; e "y" "z" ] in
  let reduced = U.reduce_cqs [ q1; q2 ] in
  check_int "contained removed" 1 (List.length reduced);
  check_bool "kept the larger" true
    (Cq.Containment.equivalent (List.hd reduced) q1)

let test_uwb_membership () =
  (* a union of a path (in TW(1)) and a foldable square (core is a path):
     in M(UWB(1)) *)
  let path = Pt.of_cq (Cq.Query.boolean [ e "x" "y"; e "y" "z" ]) in
  let foldable =
    Pt.of_cq (Cq.Query.boolean [ e "x" "y"; e "y" "z"; e "x" "y2"; e "y2" "z" ])
  in
  check_bool "in M(UWB(1))" true (U.in_m_uwb ~width:Tw ~k:1 [ path; foldable ]);
  (* a Boolean triangle over E is contained in the Boolean path, so it is
     pruned from φ_cq and the union stays in M(UWB(1)) *)
  let tri = Pt.of_cq (Workload.Gen_cq.cycle 3) in
  check_bool "contained triangle is pruned" true
    (U.in_m_uwb ~width:Tw ~k:1 [ path; tri ]);
  (* a triangle over a fresh relation is not contained in anything: breaks
     membership *)
  let f a b = atom "F" [ v a; v b ] in
  let tri_f = Pt.of_cq (Cq.Query.boolean [ f "x" "y"; f "y" "z"; f "z" "x" ]) in
  check_bool "incomparable triangle breaks membership" false
    (U.in_m_uwb ~width:Tw ~k:1 [ path; tri_f ]);
  (* witness *)
  match U.uwb_witness ~width:Tw ~k:1 [ path; foldable ] with
  | None -> Alcotest.fail "expected witness"
  | Some w ->
      check_bool "witness equivalent" true (U.equivalent w [ path; foldable ]);
      List.iter
        (fun p -> check_bool "witness in WB(1)" true (Wdpt.Classes.in_wb ~width:Tw ~k:1 p))
        w

let test_uwb_approximation () =
  let tri = Pt.of_cq (Workload.Gen_cq.cycle 3) in
  let app = U.uwb_approximation ~width:Tw ~k:1 [ tri ] in
  check_bool "nonempty" true (app <> []);
  check_bool "sound" true (U.subsumes app [ tri ]);
  List.iter
    (fun p -> check_bool "in WB(1)" true (Wdpt.Classes.in_wb ~width:Tw ~k:1 p))
    app;
  check_bool "recognized" true (U.is_uwb_approximation ~width:Tw ~k:1 app [ tri ])

let prop_union_partial_max_consistent =
  qtest ~count:50 "union partial/max decisions vs brute force"
    (QCheck.triple arbitrary_small_wdpt arbitrary_small_wdpt arbitrary_db)
    (fun (p1, p2, db) ->
      let u = [ p1; p2 ] in
      let ans = U.eval db u in
      let maxes = U.eval_max db u in
      Mapping.Set.for_all
        (fun h ->
          U.partial_decision db u (Mapping.restrict (Mapping.domain h) h)
          && U.max_decision db u h = Mapping.Set.mem h maxes)
        ans)

let suite =
  [ Alcotest.test_case "union evaluation" `Quick test_union_eval;
    Alcotest.test_case "phi_cq (Example 8)" `Quick test_phi_cq_example8;
    Alcotest.test_case "reduce_cqs" `Quick test_reduce_cqs;
    Alcotest.test_case "UWB membership (Theorem 17)" `Quick test_uwb_membership;
    Alcotest.test_case "UWB approximation (Theorem 18)" `Quick test_uwb_approximation;
    prop_phi_cq_equivalent;
    prop_union_partial_max_consistent ]
