(* Theorem 4: EVAL for projection-free WDPTs under local tractability. *)

open Relational
open Helpers
module Pt = Wdpt.Pattern_tree
module Epf = Wdpt.Eval_projection_free

let make_pf spec =
  let rec vars (Pt.Node (atoms, kids)) =
    List.fold_left
      (fun acc a -> String_set.union acc (Atom.var_set a))
      (List.fold_left (fun acc k -> String_set.union acc (vars k)) String_set.empty kids)
      atoms
  in
  Pt.make ~free:(String_set.elements (vars spec)) spec

let test_basic () =
  let p = make_pf (Node ([ e "x" "y" ], [ Node ([ e "y" "z" ], []) ])) in
  let db = db_of_edges [ (1, 2); (2, 3); (7, 8) ] in
  (* full answer *)
  check_bool "full" true
    (Epf.decision db p (mapping [ ("x", 1); ("y", 2); ("z", 3) ]));
  (* root-only answer: 7 -> 8 has no continuation *)
  check_bool "root-only maximal" true (Epf.decision db p (mapping [ ("x", 7); ("y", 8) ]));
  (* non-maximal: (1,2) extends to z = 3 *)
  check_bool "non-maximal rejected" false
    (Epf.decision db p (mapping [ ("x", 1); ("y", 2) ]));
  (* wrong values *)
  check_bool "wrong fact" false
    (Epf.decision db p (mapping [ ("x", 1); ("y", 9) ]));
  (* domain not matching any subtree's variable set *)
  check_bool "odd domain" false (Epf.decision db p (mapping [ ("x", 1) ]));
  check_bool "superfluous binding" false
    (Epf.decision db p (mapping [ ("x", 7); ("y", 8); ("q", 1) ]))

let test_rejects_projection () =
  let p = Pt.make ~free:[ "x" ] (Node ([ e "x" "y" ], [])) in
  check_bool "raises" true
    (try
       ignore (Epf.decision (db_of_edges [ (1, 2) ]) p (mapping [ ("x", 1) ]));
       false
     with Invalid_argument _ -> true)

let prop_agrees_with_reference =
  qtest ~count:100 "projection-free algorithm = reference semantics"
    (QCheck.pair arbitrary_small_wdpt arbitrary_db) (fun (p0, db) ->
      (* make the random tree projection-free *)
      let p =
        Pt.make ~free:(String_set.elements (Pt.vars p0)) (Pt.to_spec p0)
      in
      let ans = Wdpt.Semantics.eval_naive db p in
      let probes =
        Mapping.Set.elements ans
        @ (Mapping.Set.elements ans
          |> List.concat_map (fun h ->
                 List.map
                   (fun x -> Mapping.restrict (String_set.remove x (Mapping.domain h)) h)
                   (String_set.elements (Mapping.domain h))))
        @ [ Mapping.empty ]
      in
      List.for_all
        (fun h -> Epf.decision db p h = Mapping.Set.mem h ans)
        probes)

let suite =
  [ Alcotest.test_case "basic decisions" `Quick test_basic;
    Alcotest.test_case "rejects projection" `Quick test_rejects_projection;
    prop_agrees_with_reference ]
