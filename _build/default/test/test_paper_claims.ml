(* One executable check per paper statement (where a statement has runnable
   content). Statements already covered in depth elsewhere get a pointer
   test; the value of this file is the direct paper-to-code index. *)

open Relational
open Helpers
module Pt = Wdpt.Pattern_tree

(* Theorem 2 / Theorem 3: the decomposition-based evaluators are correct
   (their polynomial scaling is measured in bench T1/T1-HW). *)
let thm2_thm3 () =
  let db = db_of_edges [ (1, 2); (2, 3); (3, 1) ] in
  let q_tw = Workload.Gen_cq.cycle 3 in
  check_bool "Thm 2 (TW evaluator)" true
    (Mapping.Set.equal (Cq.Decomp_eval.answers db q_tw) (Cq.Eval.answers db q_tw));
  let q_hw = Workload.Gen_cq.guarded_clique 3 in
  check_bool "Thm 3 (HW evaluator refuses nothing acyclic)" true
    (Cq.Yannakakis.satisfiable db q_hw ~init:Mapping.empty <> None)

(* Theorem 4: projection-free EVAL (dedicated algorithm). *)
let thm4 () =
  let p =
    Pt.make ~free:[ "x"; "y"; "z" ]
      (Node ([ e "x" "y" ], [ Node ([ e "y" "z" ], []) ]))
  in
  let db = db_of_edges [ (1, 2); (2, 3) ] in
  check_bool "Thm 4" true
    (Wdpt.Eval_projection_free.decision db p (mapping [ ("x", 1); ("y", 2); ("z", 3) ]))

(* Theorem 5 / Proposition 1: with projection, local tractability alone does
   not make EVAL or PARTIAL-EVAL easy — witnessed by the Prop 3 instances
   being locally in TW(1). *)
let thm5_prop1 () =
  let p, _, _ = Wdpt.Reductions.three_col_instance (Wdpt.Reductions.cycle 4) in
  check_bool "hard instances are locally TW(1)" true
    (Wdpt.Classes.locally_in ~width:Tw ~k:1 p);
  check_bool "and even globally TW(1)" true
    (Wdpt.Classes.globally_in ~width:Tw ~k:1 p)

(* Theorems 6/7 and Proposition 3 are cross-validated extensively in
   test_semantics and test_reductions; anchor one instance here. *)
let thm6_prop3 () =
  let g = Wdpt.Reductions.complete 4 in
  let p, db, h = Wdpt.Reductions.three_col_instance g in
  check_bool "K4 not 3-colorable via EVAL" false (Wdpt.Eval_tractable.decision db p h)

(* Proposition 2: both directions. *)
let prop2 () =
  let p = Workload.Hard_instances.prop2_family ~m:6 in
  check_bool "g-TW(1) member" true (Wdpt.Classes.globally_in ~width:Tw ~k:1 p);
  check_bool "outside BI(5)" false (Wdpt.Classes.bounded_interface ~c:5 p);
  let fig1 = Workload.Datasets.figure1_wdpt ~free:[ "x" ] in
  match Wdpt.Classes.prop2_decomposition ~k:1 fig1 with
  | Some td ->
      check_bool "constructive inclusion" true
        (Hypergraphs.Tree_decomposition.width td
         <= 1 + (2 * Wdpt.Classes.interface fig1))
  | None -> Alcotest.fail "expected decomposition"

(* Theorems 8/9: partial and maximal evaluation through the globally
   tractable algorithms, on the paper's own running example. *)
let thm8_thm9 () =
  let p = Workload.Datasets.figure1_wdpt ~free:[ "y"; "z" ] in
  let db = Workload.Datasets.example2_db () in
  let mu1 = Mapping.singleton "y" (Value.str "Caribou") in
  let mu2 = Mapping.add "z" (Value.str "2") mu1 in
  check_bool "Thm 8: mu1 partial" true (Wdpt.Partial_eval.decision db p mu1);
  check_bool "Thm 9: mu2 maximal" true (Wdpt.Max_eval.decision db p mu2);
  check_bool "Thm 9: mu1 not maximal" false (Wdpt.Max_eval.decision db p mu1)

(* Proposition 5: ≡ₛ coincides with ≡_max — tested bidirectionally and
   semantically: when ≡ₛ fails, some canonical database separates the
   maximal-mapping evaluations; when it holds, they agree everywhere. *)
let prop5_bidirectional =
  qtest ~count:50 "Prop 5: ≡ₛ iff ≡max (semantic witness on failure)"
    (QCheck.pair arbitrary_small_wdpt arbitrary_small_wdpt) (fun (p1, p2) ->
      let equiv = Wdpt.Subsumption.equivalent p1 p2 in
      let canonical_dbs p =
        List.of_seq
          (Seq.map
             (fun s -> fst (Cq.Query.freeze (Pt.q_of_subtree p s)))
             (Pt.subtrees p))
      in
      let dbs = canonical_dbs p1 @ canonical_dbs p2 in
      let max_equal_on db =
        Mapping.Set.equal (Wdpt.Semantics.eval_max db p1) (Wdpt.Semantics.eval_max db p2)
      in
      if equiv then List.for_all max_equal_on dbs
      else List.exists (fun db -> not (max_equal_on db)) dbs)

(* Theorem 10: containment is undecidable; the library exposes only sound
   tooling. *)
let thm10 () =
  let p = Workload.Datasets.figure1_wdpt ~free:[ "x"; "y" ] in
  check_bool "no refutation for reflexive containment" true
    (Wdpt.Containment_w.refute p p = None)

(* Theorem 11's asymmetry: subsumption cost depends on p2's class only —
   anchored by construction in Subsumption (Partial_eval on p2); here check a
   subsumption where p1 is wildly intractable but p2 is a chain. *)
let thm11_asymmetry () =
  let p1 = Pt.of_cq (Workload.Gen_cq.clique 5) in
  let p2 = Pt.of_cq (Cq.Query.boolean [ e "a" "a" ]) in
  (* K5 contains a self-loop homomorphic image? no: cliques are loop-free *)
  check_bool "clique not subsumed by loop" false (Wdpt.Subsumption.subsumes p1 p2);
  (* a self-loop satisfies the clique query (variables may coincide) *)
  check_bool "loop subsumed by clique" true (Wdpt.Subsumption.subsumes p2 p1)

(* Lemma 1 (first phase) / Theorem 13 via the normalization witness. *)
let lemma1 () =
  let p =
    Pt.make ~free:[ "x" ]
      (Node ([ e "x" "x" ], [ Node ([ e "a" "b" ], [ Node ([ e "b" "c" ], []) ]) ]))
  in
  let n = Wdpt.Approximation.normalize p in
  check_bool "normalized ≡ₛ original" true (Wdpt.Subsumption.equivalent n p);
  check_bool "smaller" true (Pt.node_count n <= Pt.node_count p)

(* Theorem 15 / Figure 2. *)
let thm15 () =
  let p1, p2 = Workload.Hard_instances.figure2 ~n:3 ~k:2 in
  check_bool "p2 ⊑ p1" true (Wdpt.Subsumption.subsumes p2 p1);
  check_bool "p2 in WB(2)" true (Wdpt.Classes.in_wb ~width:Tw ~k:2 p2);
  check_bool "blow-up" true (Pt.size p2 >= 1 lsl 3)

(* Proposition 9: φ ∈ M(UWB(k)) iff φ_cq is equivalent to a union of C(k)
   CQs — both directions on concrete instances. *)
let prop9 () =
  let path = Pt.of_cq (Cq.Query.make ~head:[ "x" ] ~body:[ e "x" "y" ]) in
  (* direction 1: member, and indeed each reduced phi_cq CQ has a TW(1) core *)
  check_bool "member" true (Wdpt.Union.in_m_uwb ~width:Tw ~k:1 [ path ]);
  List.iter
    (fun q ->
      check_bool "core in TW(1)" true (Cq.Query.in_tw ~k:1 (Cq.Core_q.core q)))
    (Wdpt.Union.reduce_cqs (Wdpt.Union.phi_cq [ path ]));
  (* direction 2: non-member has a reduced CQ whose core is not in TW(1) *)
  let f a b = atom "F" [ v a; v b ] in
  let tri = Pt.of_cq (Cq.Query.boolean [ f "x" "y"; f "y" "z"; f "z" "x" ]) in
  check_bool "non-member" false (Wdpt.Union.in_m_uwb ~width:Tw ~k:1 [ path; tri ]);
  check_bool "witnessing CQ exists" true
    (List.exists
       (fun q -> not (Cq.Query.in_tw ~k:1 (Cq.Core_q.core q)))
       (Wdpt.Union.reduce_cqs (Wdpt.Union.phi_cq [ path; tri ])))

(* Theorem 16: union evaluation problems through the per-disjunct tractable
   algorithms agree with the brute-force union semantics. *)
let thm16 =
  qtest ~count:50 "Thm 16: union decisions agree with brute force"
    (QCheck.triple arbitrary_small_wdpt arbitrary_small_wdpt arbitrary_db)
    (fun (p1, p2, db) ->
      let u = [ p1; p2 ] in
      let ans = Wdpt.Union.eval db u in
      Mapping.Set.for_all (fun h -> Wdpt.Union.decision db u h) ans)

(* Theorem 18: the UWB approximation is recognized by its own decision
   procedure and subsumes every other candidate union below φ. *)
let thm18 () =
  let tri = Pt.of_cq (Workload.Gen_cq.cycle 3) in
  let app = Wdpt.Union.uwb_approximation ~width:Tw ~k:1 [ tri ] in
  check_bool "is approximation" true
    (Wdpt.Union.is_uwb_approximation ~width:Tw ~k:1 app [ tri ]);
  (* a strictly weaker union (the fully collapsed self-loop) is not *)
  let loop = Pt.of_cq (Cq.Query.boolean [ e "u" "u" ]) in
  check_bool "loop alone is subsumed by the approximation" true
    (Wdpt.Union.subsumes [ loop ] app)

let suite =
  [ Alcotest.test_case "Theorems 2 and 3" `Quick thm2_thm3;
    Alcotest.test_case "Theorem 4" `Quick thm4;
    Alcotest.test_case "Theorem 5 / Proposition 1" `Quick thm5_prop1;
    Alcotest.test_case "Theorem 6 / Proposition 3" `Quick thm6_prop3;
    Alcotest.test_case "Proposition 2" `Quick prop2;
    Alcotest.test_case "Theorems 8 and 9" `Quick thm8_thm9;
    prop5_bidirectional;
    Alcotest.test_case "Theorem 10 tooling" `Quick thm10;
    Alcotest.test_case "Theorem 11 asymmetry" `Quick thm11_asymmetry;
    Alcotest.test_case "Lemma 1 normalization" `Quick lemma1;
    Alcotest.test_case "Theorem 15 / Figure 2" `Quick thm15;
    Alcotest.test_case "Proposition 9" `Quick prop9;
    thm16;
    Alcotest.test_case "Theorem 18" `Quick thm18 ]
