(* Semantic optimization (Section 5.1): M(WB(k)) witnesses and the FPT
   evaluator of Corollary 2. *)

open Relational
open Helpers
module Pt = Wdpt.Pattern_tree
module So = Wdpt.Semantic_opt

let foldable_square =
  (* syntactically TW(2), semantically TW(1): core is a path *)
  Cq.Query.boolean [ e "x" "y"; e "y" "z"; e "x" "y2"; e "y2" "z" ]

let test_cq_membership () =
  check_bool "foldable square in M(WB(1))" true
    (So.in_m_wb_cq ~width:Tw ~k:1 (Pt.of_cq foldable_square));
  check_bool "triangle not in M(WB(1))" false
    (So.in_m_wb_cq ~width:Tw ~k:1 (Pt.of_cq (Workload.Gen_cq.cycle 3)));
  check_bool "multi-node raises" true
    (try
       ignore
         (So.in_m_wb_cq ~width:Tw ~k:1
            (Pt.make ~free:[] (Node ([ e "a" "b" ], [ Node ([ e "b" "c" ], []) ]))));
       false
     with Invalid_argument _ -> true)

let test_witness_in_class () =
  let p = Workload.Datasets.figure1_wdpt ~free:[ "x"; "y"; "z" ] in
  (match So.wb_witness ~width:Tw ~k:1 p with
  | Some w -> check_bool "in-class query is its own witness" true (Pt.equal_syntactic w p)
  | None -> Alcotest.fail "expected witness");
  (* single-node: exact via core *)
  match So.wb_witness ~width:Tw ~k:1 (Pt.of_cq foldable_square) with
  | Some w ->
      check_bool "witness in WB(1)" true (Wdpt.Classes.in_wb ~width:Tw ~k:1 w);
      check_bool "witness equivalent" true
        (Wdpt.Subsumption.equivalent w (Pt.of_cq foldable_square))
  | None -> Alcotest.fail "expected core witness"

let test_witness_none_for_core_triangle () =
  check_bool "triangle has no WB(1) witness" true
    (So.wb_witness ~width:Tw ~k:1 (Pt.of_cq (Workload.Gen_cq.cycle 3)) = None)

let test_normalized_witness () =
  (* a dead optional branch with a triangle: the normalized tree drops it,
     entering WB(1) *)
  let p =
    Pt.make ~free:[ "x" ]
      (Node
         ( [ e "x" "x" ],
           [ Node ([ e "a" "b" ; e "b" "c"; e "c" "a" ], []) ] ))
  in
  check_bool "not in WB(1) as written" false (Wdpt.Classes.in_wb ~width:Tw ~k:1 p);
  match So.wb_witness ~width:Tw ~k:1 p with
  | Some w ->
      check_bool "witness in class" true (Wdpt.Classes.in_wb ~width:Tw ~k:1 w);
      check_bool "witness ≡ₛ p" true (Wdpt.Subsumption.equivalent w p)
  | None -> Alcotest.fail "expected normalization witness"

let test_fpt_evaluator () =
  let p = Pt.of_cq foldable_square in
  let fpt = So.prepare ~width:Tw ~k:1 p in
  check_bool "witness used" true (Option.is_some (So.used_witness fpt));
  let db = db_of_edges [ (1, 2); (2, 3) ] in
  check_bool "partial eval via witness" true (So.partial_decision fpt db Mapping.empty);
  check_bool "max eval via witness" true (So.max_decision fpt db Mapping.empty);
  let db_empty = db_of_edges [ (1, 1) ] in
  check_bool "satisfied on loop" true (So.partial_decision fpt db_empty Mapping.empty)

let prop_fpt_agrees_with_general =
  qtest ~count:40 "FPT evaluator agrees with the general algorithms"
    (QCheck.pair arbitrary_small_wdpt arbitrary_db) (fun (p, db) ->
      let fpt = So.prepare ~width:Tw ~k:1 p in
      let ans = Wdpt.Semantics.eval_naive db p in
      Mapping.Set.for_all
        (fun h ->
          So.partial_decision fpt db h = Wdpt.Semantics.partial_decision db p h
          && So.max_decision fpt db h = Wdpt.Semantics.max_decision db p h)
        ans)

let suite =
  [ Alcotest.test_case "CQ membership via cores" `Quick test_cq_membership;
    Alcotest.test_case "witness for in-class queries" `Quick test_witness_in_class;
    Alcotest.test_case "no witness for core triangle" `Quick
      test_witness_none_for_core_triangle;
    Alcotest.test_case "witness via normalization" `Quick test_normalized_witness;
    Alcotest.test_case "FPT evaluator (Corollary 2)" `Quick test_fpt_evaluator;
    prop_fpt_agrees_with_general ]
