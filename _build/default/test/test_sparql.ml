(* The SPARQL front-end: parsing, well-designedness, translation, round
   trips, and the triple store. *)

open Relational
open Helpers

let parse_ok src =
  match Rdf.Sparql.parse src with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse error: %s" e

let test_parse_basics () =
  let q = parse_ok "SELECT ?x WHERE { ?x p ?y }" in
  check_bool "select" true (q.Rdf.Sparql.select = Some [ "x" ]);
  let q2 = parse_ok "SELECT * WHERE { ?x p ?y . ?y q 3 }" in
  check_bool "star" true (q2.Rdf.Sparql.select = None);
  check_bool "string literal" true
    (Result.is_ok (Rdf.Sparql.parse {| SELECT * WHERE { ?x p "hello world" } |}));
  check_bool "parse error reported" true
    (Result.is_error (Rdf.Sparql.parse "SELECT WHERE { ?x p ?y }"));
  check_bool "trailing garbage" true
    (Result.is_error (Rdf.Sparql.parse "SELECT * WHERE { ?x p ?y } extra"))

let test_well_designedness () =
  let wd src expect =
    let q = parse_ok src in
    check_bool src expect (Rdf.Sparql.is_well_designed q.Rdf.Sparql.where)
  in
  wd "SELECT * WHERE { { ?x p ?y } OPT { ?x q ?z } }" true;
  (* ?z appears in the optional part and outside, but not in the required
     part: violates well-designedness *)
  wd "SELECT * WHERE { { { ?x p ?y } OPT { ?x q ?z } } AND { ?z r ?w } }" false;
  wd "SELECT * WHERE { { ?x p ?z } OPT { { ?x q ?y } OPT { ?x r ?w } } }" true

let test_normal_form_preserves_semantics () =
  (* AND over OPT is rewritten; semantics preserved on data *)
  let src = "SELECT * WHERE { { { ?x p ?y } OPT { ?x q ?z } } AND { ?x r ?w } }" in
  let q = parse_ok src in
  check_bool "wd" true (Rdf.Sparql.is_well_designed q.Rdf.Sparql.where);
  let p = Rdf.Sparql.to_pattern_tree q in
  (* by construction the tree has the required atoms at the root *)
  check_bool "root has both required atoms" true
    (List.length (Wdpt.Pattern_tree.atoms p 0) = 2)

let test_translation_example1 () =
  let src =
    {| SELECT * WHERE {
         { ?x recorded_by ?y . ?x published after_2010 }
         OPT { ?x NME_rating ?z }
         OPT { ?y formed_in ?w }
       } |}
  in
  let p = Rdf.Sparql.to_pattern_tree (parse_ok src) in
  check_int "three nodes" 3 (Wdpt.Pattern_tree.node_count p);
  check_int "two root atoms" 2 (List.length (Wdpt.Pattern_tree.atoms p 0));
  check_bool "projection-free with *" true (Wdpt.Pattern_tree.is_projection_free p)

let test_roundtrip_eval () =
  let src =
    {| SELECT ?a ?r WHERE { { ?a album_of ?b } OPT { ?a rating ?r } } |}
  in
  let p = Rdf.Sparql.to_pattern_tree (parse_ok src) in
  let p2 = Rdf.Sparql.to_pattern_tree (Rdf.Sparql.of_pattern_tree p) in
  let g =
    Rdf.Graph.of_triples
      [ Rdf.Triple.make (Value.str "a1") (Value.str "album_of") (Value.str "b1");
        Rdf.Triple.make (Value.str "a1") (Value.str "rating") (Value.int 5);
        Rdf.Triple.make (Value.str "a2") (Value.str "album_of") (Value.str "b1") ]
  in
  let db = Rdf.Graph.database g in
  Alcotest.check mapping_set_testable "roundtrip same answers"
    (Wdpt.Semantics.eval db p) (Wdpt.Semantics.eval db p2);
  check_int "two answers" 2 (Mapping.Set.cardinal (Wdpt.Semantics.eval db p))

let test_graph_parsing () =
  let doc = "a p b\nc q 5 .\n# comment\n\n\"has space\" r d" in
  match Rdf.Graph.of_string doc with
  | Error e -> Alcotest.failf "graph parse: %s" e
  | Ok g ->
      check_int "three triples" 3 (Rdf.Graph.size g);
      check_bool "int parsed" true
        (List.exists
           (fun (_, _, o) -> Value.equal o (Value.int 5))
           (Rdf.Graph.triples g));
      check_bool "bad line" true (Result.is_error (Rdf.Graph.of_string "a b"));
      check_bool "variable rejected" true
        (Result.is_error (Rdf.Graph.of_string "?x p b"))

let test_match_pattern () =
  let g =
    Rdf.Graph.of_triples
      [ Rdf.Triple.make (Value.str "s") (Value.str "p") (Value.int 1);
        Rdf.Triple.make (Value.str "s") (Value.str "p") (Value.int 2);
        Rdf.Triple.make (Value.str "t") (Value.str "p") (Value.int 3) ]
  in
  let ms = Rdf.Graph.match_pattern g (Term.str "s", Term.str "p", Term.var "o") in
  check_int "two matches" 2 (List.length ms)

let prop_translation_roundtrip =
  qtest ~count:60 "SPARQL of_pattern_tree/to_pattern_tree round trip"
    (QCheck.pair arbitrary_small_wdpt arbitrary_db) (fun (p0, db) ->
      (* convert a random WDPT into the triple schema first *)
      let to_triples p =
        let rec conv i =
          Wdpt.Pattern_tree.Node
            ( List.map
                (fun a ->
                  match Atom.args a with
                  | [ s; o ] -> Rdf.Triple.pattern_to_atom (s, Term.str (Atom.rel a), o)
                  | [ s ] -> Rdf.Triple.pattern_to_atom (s, Term.str (Atom.rel a), s)
                  | _ -> assert false)
                (Wdpt.Pattern_tree.atoms p i),
              List.map conv (Wdpt.Pattern_tree.children p i) )
        in
        Wdpt.Pattern_tree.make ~free:(Wdpt.Pattern_tree.free p) (conv 0)
      in
      let p = to_triples p0 in
      let p' = Rdf.Sparql.to_pattern_tree (Rdf.Sparql.of_pattern_tree p) in
      (* triple databases from the random db *)
      let tdb =
        Database.of_list
          (List.filter_map
             (fun f ->
               match Fact.tuple f with
               | [ a; b ] -> Some (Rdf.Triple.to_fact (Rdf.Triple.make a (Value.str (Fact.rel f)) b))
               | [ a ] -> Some (Rdf.Triple.to_fact (Rdf.Triple.make a (Value.str (Fact.rel f)) a))
               | _ -> None)
             (Database.facts db))
      in
      Mapping.Set.equal (Wdpt.Semantics.eval tdb p) (Wdpt.Semantics.eval tdb p'))

let suite =
  [ Alcotest.test_case "parser basics" `Quick test_parse_basics;
    Alcotest.test_case "well-designedness" `Quick test_well_designedness;
    Alcotest.test_case "normal form" `Quick test_normal_form_preserves_semantics;
    Alcotest.test_case "Example 1 translation" `Quick test_translation_example1;
    Alcotest.test_case "round-trip evaluation" `Quick test_roundtrip_eval;
    Alcotest.test_case "graph parsing" `Quick test_graph_parsing;
    Alcotest.test_case "pattern matching" `Quick test_match_pattern;
    prop_translation_roundtrip ]
