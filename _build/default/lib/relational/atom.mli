(** Relational atoms [R(v1, ..., vn)] over variables and constants. *)

type t = private {
  rel : string;
  args : Term.t array;
}

val make : string -> Term.t list -> t
val of_array : string -> Term.t array -> t

val rel : t -> string
val args : t -> Term.t list
val arity : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool

(** Variables occurring in the atom, in order of first occurrence. *)
val vars : t -> string list

val var_set : t -> String_set.t

val constants : t -> Value.t list

(** [apply ~f a] replaces every variable [x] by [f x] (a term), leaving
    constants untouched. *)
val apply : f:(string -> Term.t) -> t -> t

val is_ground : t -> bool

(** [to_fact a] converts a ground atom to a fact.
    @raise Invalid_argument if [a] contains a variable. *)
val to_fact : t -> Fact.t

val of_fact : Fact.t -> t

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
