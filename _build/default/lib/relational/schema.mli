(** Relational schemas: relation names with fixed arities. *)

type t

val empty : t

(** [add name arity s] declares a relation.
    @raise Invalid_argument if [name] is declared with a different arity. *)
val add : string -> int -> t -> t

val of_list : (string * int) list -> t
val arity : string -> t -> int option
val mem : string -> t -> bool
val relations : t -> (string * int) list

(** [check_atom s a] verifies that [a] uses a declared relation with the right
    arity. *)
val check_atom : t -> Atom.t -> (unit, string) result

(** Infer a schema from a collection of atoms.
    @raise Invalid_argument on arity conflicts. *)
val infer : Atom.t list -> t

val union : t -> t -> t
val pp : Format.formatter -> t -> unit
