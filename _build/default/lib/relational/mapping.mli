(** Partial mappings [h : X -> U] and the subsumption order [⊑].

    These are the objects the whole paper quantifies over: answers to CQs and
    WDPTs are partial mappings, compared by subsumption ([subsumes]). *)

type t

val empty : t
val is_empty : t -> bool

val singleton : string -> Value.t -> t
val add : string -> Value.t -> t -> t

(** [of_list bs] builds a mapping from bindings; later bindings win. *)
val of_list : (string * Value.t) list -> t

val find : string -> t -> Value.t option
val mem : string -> t -> bool
val bindings : t -> (string * Value.t) list
val domain : t -> String_set.t
val cardinal : t -> int

(** [term x h] is [h(x)] as a term: the bound constant, or [Var x] when
    [x ∉ dom(h)]. *)
val term : string -> t -> Term.t

(** [subsumes h h'] holds iff [h ⊑ h']: [dom(h) ⊆ dom(h')] and they agree on
    [dom(h)]. *)
val subsumes : t -> t -> bool

(** [strictly_subsumes h h'] holds iff [h ⊏ h']. *)
val strictly_subsumes : t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

(** [compatible h h'] holds iff they agree on the intersection of their
    domains (so their union is a mapping). *)
val compatible : t -> t -> bool

(** [union h h'] joins two mappings.
    @raise Invalid_argument if they are not compatible. *)
val union : t -> t -> t

(** [restrict vars h] is [h] restricted to [vars]. *)
val restrict : String_set.t -> t -> t

(** [restrict_list xs h] restricts to the listed variables. *)
val restrict_list : string list -> t -> t

(** [apply_atom h a] substitutes bound variables of [a] by their values. *)
val apply_atom : t -> Atom.t -> Atom.t

(** [matches_fact h a f] checks that atom [a] can be mapped onto fact [f]
    consistently with [h], returning the extension of [h] binding the
    remaining variables of [a]. *)
val matches_fact : t -> Atom.t -> Fact.t -> t option

val pp : Format.formatter -> t -> unit

(** [maximal_elements hs] keeps the mappings of [hs] that are not strictly
    subsumed by another element (deduplicating equal ones). *)
val maximal_elements : t list -> t list

module Set : Set.S with type elt = t
