module M = Map.Make (String)

type t = int M.t

let empty = M.empty

let add name arity s =
  match M.find_opt name s with
  | Some a when a <> arity ->
      invalid_arg
        (Printf.sprintf "Schema.add: %s declared with arities %d and %d" name a arity)
  | _ -> M.add name arity s

let of_list l = List.fold_left (fun s (n, a) -> add n a s) empty l
let arity name s = M.find_opt name s
let mem name s = M.mem name s
let relations s = M.bindings s

let check_atom s a =
  match M.find_opt (Atom.rel a) s with
  | None -> Error (Printf.sprintf "unknown relation %s" (Atom.rel a))
  | Some ar when ar <> Atom.arity a ->
      Error
        (Printf.sprintf "relation %s has arity %d, atom has %d" (Atom.rel a) ar
           (Atom.arity a))
  | Some _ -> Ok ()

let infer atoms =
  List.fold_left (fun s a -> add (Atom.rel a) (Atom.arity a) s) empty atoms

let union a b = M.fold add b a

let pp ppf s =
  let pp_rel ppf (n, a) = Format.fprintf ppf "%s/%d" n a in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_rel)
    (relations s)
