let join a b =
  Mapping.Set.fold
    (fun m1 acc ->
      Mapping.Set.fold
        (fun m2 acc ->
          if Mapping.compatible m1 m2 then Mapping.Set.add (Mapping.union m1 m2) acc
          else acc)
        b acc)
    a Mapping.Set.empty

let diff a b =
  Mapping.Set.filter
    (fun m1 -> not (Mapping.Set.exists (Mapping.compatible m1) b))
    a

let left_outer_join a b = Mapping.Set.union (join a b) (diff a b)
let project vars s = Mapping.Set.map (Mapping.restrict vars) s
