lib/relational/mapping_algebra.ml: Mapping
