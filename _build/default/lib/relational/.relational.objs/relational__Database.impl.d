lib/relational/database.ml: Atom Fact Format Fun Hashtbl List Mapping Schema String Term Value
