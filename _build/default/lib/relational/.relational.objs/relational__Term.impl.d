lib/relational/term.ml: Format Set String Value
