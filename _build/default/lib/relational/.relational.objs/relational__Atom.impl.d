lib/relational/atom.ml: Array Fact Format Hashtbl Int List Set String String_set Term
