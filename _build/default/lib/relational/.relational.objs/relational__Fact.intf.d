lib/relational/fact.mli: Format Set Value
