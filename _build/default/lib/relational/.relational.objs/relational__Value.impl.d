lib/relational/value.ml: Format Hashtbl Int Map Printf Set String
