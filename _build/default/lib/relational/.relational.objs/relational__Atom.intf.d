lib/relational/atom.mli: Fact Format Set String_set Term Value
