lib/relational/mapping_algebra.mli: Mapping String_set
