lib/relational/mapping.mli: Atom Fact Format Set String_set Term Value
