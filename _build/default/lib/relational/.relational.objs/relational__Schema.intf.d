lib/relational/schema.mli: Atom Format
