lib/relational/fact.ml: Array Format Hashtbl Int Set String Value
