lib/relational/term.mli: Format Set Value
