lib/relational/database.mli: Atom Fact Format Mapping Schema Value
