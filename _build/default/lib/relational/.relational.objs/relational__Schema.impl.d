lib/relational/schema.ml: Atom Format List Map Printf String
