lib/relational/string_set.ml: Format Set String
