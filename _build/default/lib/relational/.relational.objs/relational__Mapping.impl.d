lib/relational/mapping.ml: Atom Fact Format List Map Set String String_set Term Value
