type t = {
  rel : string;
  tuple : Value.t array;
}

let make rel tuple = { rel; tuple = Array.of_list tuple }
let of_array rel tuple = { rel; tuple = Array.copy tuple }
let rel f = f.rel
let tuple f = Array.to_list f.tuple
let arg f i = f.tuple.(i)
let arity f = Array.length f.tuple

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c
  else
    let ca = Array.length a.tuple and cb = Array.length b.tuple in
    if ca <> cb then Int.compare ca cb
    else
      let rec go i =
        if i >= ca then 0
        else
          let c = Value.compare a.tuple.(i) b.tuple.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

let equal a b = compare a b = 0

let hash f =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) (Hashtbl.hash f.rel) f.tuple

let pp ppf f =
  Format.fprintf ppf "%s(%a)" f.rel
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Value.pp)
    (Array.to_list f.tuple)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
