(** Facts: ground atoms [R(c1, ..., cn)], the elements of a database. *)

type t = private {
  rel : string;
  tuple : Value.t array;
}

val make : string -> Value.t list -> t
val of_array : string -> Value.t array -> t

val rel : t -> string
val tuple : t -> Value.t list
val arg : t -> int -> Value.t
val arity : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
