(** Terms: variables from [X] or constants from [U]. *)

type t =
  | Var of string
  | Const of Value.t

val compare : t -> t -> int
val equal : t -> t -> bool

val var : string -> t
val const : Value.t -> t
val int : int -> t
val str : string -> t

val is_var : t -> bool

(** [as_var t] is [Some x] when [t] is the variable [x]. *)
val as_var : t -> string option

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
