(** Databases: finite sets of facts, with hash indexes per relation and per
    (relation, position, value) for efficient candidate retrieval during
    homomorphism search. *)

type t

val create : unit -> t
val of_list : Fact.t list -> t
val of_atoms : Atom.t list -> t

(** [add db f] inserts a fact (idempotent). *)
val add : t -> Fact.t -> unit

val mem : t -> Fact.t -> bool
val size : t -> int
val facts : t -> Fact.t list
val facts_of : t -> string -> Fact.t list
val relations : t -> string list
val schema : t -> Schema.t

(** Active domain: every constant occurring in some fact. *)
val active_domain : t -> Value.Set.t

(** [candidates db a h] returns the facts that atom [a] could match under the
    partial mapping [h], using the most selective available index (any
    position of [a] that is a constant or bound by [h]). *)
val candidates : t -> Atom.t -> Mapping.t -> Fact.t list

(** [matches db a h] extends [h] in all ways that map atom [a] into [db]. *)
val matches : t -> Atom.t -> Mapping.t -> Mapping.t list

val copy : t -> t
val union : t -> t -> t
val pp : Format.formatter -> t -> unit
