(** Set-at-a-time algebra on solution mappings: the compatible-union join,
    the "no compatible partner" difference, and the left outer join that
    interprets OPT (Pérez et al. [18]). Unlike {!Relation}, rows may have
    heterogeneous domains, as OPT results do. *)

(** [join a b] = { m1 ∪ m2 | m1 ∈ a, m2 ∈ b, compatible }. *)
val join : Mapping.Set.t -> Mapping.Set.t -> Mapping.Set.t

(** [diff a b] = { m1 ∈ a | no compatible m2 ∈ b }. *)
val diff : Mapping.Set.t -> Mapping.Set.t -> Mapping.Set.t

(** [left_outer_join a b] = join a b ∪ diff a b. *)
val left_outer_join : Mapping.Set.t -> Mapping.Set.t -> Mapping.Set.t

(** [project vars s] restricts every mapping. *)
val project : String_set.t -> Mapping.Set.t -> Mapping.Set.t
