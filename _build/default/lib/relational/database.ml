type key = {
  k_rel : string;
  k_pos : int;
  k_val : Value.t;
}

module Key = struct
  type t = key

  let equal a b =
    String.equal a.k_rel b.k_rel && a.k_pos = b.k_pos && Value.equal a.k_val b.k_val

  let hash a = Hashtbl.hash (a.k_rel, a.k_pos, Value.hash a.k_val)
end

module Idx = Hashtbl.Make (Key)

type t = {
  mutable all : Fact.Set.t;
  by_rel : (string, Fact.t list ref) Hashtbl.t;
  by_pos : Fact.t list ref Idx.t;
  mutable adom : Value.Set.t;
}

let create () =
  { all = Fact.Set.empty;
    by_rel = Hashtbl.create 16;
    by_pos = Idx.create 64;
    adom = Value.Set.empty }

let mem db f = Fact.Set.mem f db.all

let add db f =
  if not (mem db f) then begin
    db.all <- Fact.Set.add f db.all;
    let cell =
      match Hashtbl.find_opt db.by_rel (Fact.rel f) with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add db.by_rel (Fact.rel f) c;
          c
    in
    cell := f :: !cell;
    List.iteri
      (fun i v ->
        let key = { k_rel = Fact.rel f; k_pos = i; k_val = v } in
        let cell =
          match Idx.find_opt db.by_pos key with
          | Some c -> c
          | None ->
              let c = ref [] in
              Idx.add db.by_pos key c;
              c
        in
        cell := f :: !cell;
        db.adom <- Value.Set.add v db.adom)
      (Fact.tuple f)
  end

let of_list fs =
  let db = create () in
  List.iter (add db) fs;
  db

let of_atoms atoms = of_list (List.map Atom.to_fact atoms)
let size db = Fact.Set.cardinal db.all
let facts db = Fact.Set.elements db.all

let facts_of db rel =
  match Hashtbl.find_opt db.by_rel rel with
  | Some c -> !c
  | None -> []

let relations db = Hashtbl.fold (fun r _ acc -> r :: acc) db.by_rel []

let schema db =
  List.fold_left
    (fun s r ->
      match facts_of db r with
      | [] -> s
      | f :: _ -> Schema.add r (Fact.arity f) s)
    Schema.empty (relations db)

let active_domain db = db.adom

let candidates db a h =
  (* Pick the smallest index among the bound positions, defaulting to the
     whole relation. *)
  let bound =
    List.filteri
      (fun _ _ -> true)
      (List.mapi
         (fun i t ->
           match t with
           | Term.Const v -> Some (i, v)
           | Term.Var x -> (
               match Mapping.find x h with
               | Some v -> Some (i, v)
               | None -> None))
         (Atom.args a))
    |> List.filter_map Fun.id
  in
  let whole = facts_of db (Atom.rel a) in
  let best =
    List.fold_left
      (fun acc (i, v) ->
        let key = { k_rel = Atom.rel a; k_pos = i; k_val = v } in
        let l =
          match Idx.find_opt db.by_pos key with
          | Some c -> !c
          | None -> []
        in
        match acc with
        | Some best when List.compare_lengths best l <= 0 -> Some best
        | _ -> Some l)
      None bound
  in
  match best with
  | Some l -> l
  | None -> whole

let matches db a h =
  List.filter_map (Mapping.matches_fact h a) (candidates db a h)

let copy db =
  let db' = create () in
  Fact.Set.iter (add db') db.all;
  db'

let union a b =
  let db = copy a in
  Fact.Set.iter (add db) b.all;
  db

let pp ppf db =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Fact.pp)
    (facts db)
