type t =
  | Var of string
  | Const of Value.t

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Const x, Const y -> Value.compare x y
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let equal a b = compare a b = 0
let var x = Var x
let const v = Const v
let int x = Const (Value.Int x)
let str s = Const (Value.Str s)

let is_var = function
  | Var _ -> true
  | Const _ -> false

let as_var = function
  | Var x -> Some x
  | Const _ -> None

let pp ppf = function
  | Var x -> Format.fprintf ppf "?%s" x
  | Const v -> Value.pp ppf v

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
