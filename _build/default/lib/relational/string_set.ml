(* Sets of variable names, used pervasively. *)
include Set.Make (String)

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_string)
    (elements s)
