type t = {
  rel : string;
  args : Term.t array;
}

let make rel args = { rel; args = Array.of_list args }
let of_array rel args = { rel; args = Array.copy args }
let rel a = a.rel
let args a = Array.to_list a.args
let arity a = Array.length a.args

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c
  else
    let ca = Array.length a.args and cb = Array.length b.args in
    if ca <> cb then Int.compare ca cb
    else
      let rec go i =
        if i >= ca then 0
        else
          let c = Term.compare a.args.(i) b.args.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

let equal a b = compare a b = 0

let vars a =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  Array.iter
    (function
      | Term.Var x ->
          if not (Hashtbl.mem seen x) then begin
            Hashtbl.add seen x ();
            out := x :: !out
          end
      | Term.Const _ -> ())
    a.args;
  List.rev !out

let var_set a = String_set.of_list (vars a)

let constants a =
  Array.to_list a.args
  |> List.filter_map (function
       | Term.Const v -> Some v
       | Term.Var _ -> None)

let apply ~f a =
  let args =
    Array.map
      (function
        | Term.Var x -> f x
        | Term.Const _ as t -> t)
      a.args
  in
  { a with args }

let is_ground a = Array.for_all (fun t -> not (Term.is_var t)) a.args

let to_fact a =
  let tuple =
    Array.map
      (function
        | Term.Const v -> v
        | Term.Var x -> invalid_arg ("Atom.to_fact: variable " ^ x))
      a.args
  in
  Fact.make a.rel (Array.to_list tuple)

let of_fact f =
  { rel = Fact.rel f; args = Array.of_list (List.map Term.const (Fact.tuple f)) }

let pp ppf a =
  Format.fprintf ppf "%s(%a)" a.rel
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Term.pp)
    (Array.to_list a.args)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
