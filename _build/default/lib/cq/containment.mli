(** CQ containment and equivalence (Chandra–Merlin), in the paper's
    partial-mapping semantics: answers are mappings on the free-variable
    names, so [q ⊆ q'] additionally requires the free variables of [q'] to be
    exactly those of [q]. *)

open Relational

(** [homomorphism q q'] searches for a homomorphism from [q] to [q'] fixing
    the shared free variables (i.e. a witness of [q' ⊆ q] when heads agree). *)
val homomorphism : Query.t -> Query.t -> Mapping.t option

(** [contained q q']: does [q(D) ⊆ q'(D)] hold for all [D]? *)
val contained : Query.t -> Query.t -> bool

val equivalent : Query.t -> Query.t -> bool

(** [subsumed q q']: for every database, every answer of [q] is subsumed
    (⊑, Section 2) by an answer of [q']. For CQs with equal heads this
    coincides with containment; with different heads it requires
    [head q ⊆ head q'] plus a homomorphism condition. *)
val subsumed : Query.t -> Query.t -> bool
