lib/cq/decomp_eval.mli: Database Hypergraphs Mapping Query Relational
