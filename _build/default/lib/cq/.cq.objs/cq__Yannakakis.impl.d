lib/cq/yannakakis.ml: Array Atom Database Hypergraphs List Mapping Query Relation Relational String_set
