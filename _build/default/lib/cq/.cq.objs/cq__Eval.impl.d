lib/cq/eval.ml: Database List Mapping Query Relational String_set
