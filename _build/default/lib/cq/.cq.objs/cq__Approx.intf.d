lib/cq/approx.mli: Query
