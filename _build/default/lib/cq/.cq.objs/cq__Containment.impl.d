lib/cq/containment.ml: Eval List Mapping Option Query Relational String_set
