lib/cq/hyper_eval.mli: Database Hypergraphs Mapping Query Relational
