lib/cq/relation.mli: Format Mapping Relational String_set Value
