lib/cq/yannakakis.mli: Database Mapping Query Relational
