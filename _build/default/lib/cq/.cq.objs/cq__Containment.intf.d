lib/cq/containment.mli: Mapping Query Relational
