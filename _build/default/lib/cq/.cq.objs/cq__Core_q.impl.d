lib/cq/core_q.ml: Database Eval Fact Hashtbl List Mapping Option Query Relational String_set Value
