lib/cq/decomp_eval.ml: Array Atom Database Eval Hypergraphs List Mapping Query Relation Relational String_set Value Yannakakis
