lib/cq/relation.ml: Format Hashtbl List Mapping Relational String_set
