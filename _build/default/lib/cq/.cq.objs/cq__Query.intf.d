lib/cq/query.mli: Atom Database Format Hypergraphs Mapping Relational String_set Value
