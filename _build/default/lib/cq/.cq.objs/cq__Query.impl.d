lib/cq/query.ml: Atom Database Format Hashtbl Hypergraphs List Mapping Option Relational String String_set Term Value
