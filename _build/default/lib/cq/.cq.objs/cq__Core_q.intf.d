lib/cq/core_q.mli: Query
