lib/cq/approx.ml: Containment Hashtbl List Query Relational String_set
