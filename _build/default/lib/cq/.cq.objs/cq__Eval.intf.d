lib/cq/eval.mli: Atom Database Mapping Query Relational
