open Relational
module Ht = Hypergraphs.Hypertree

type node = {
  bag : String_set.t;
  guards : String_set.t list;
  mutable atoms : Atom.t list;
  mutable children : int list;
  mutable rel : Relation.t;
}

let prepare db htd atoms =
  let n = Array.length htd.Ht.bags in
  let live =
    List.fold_left (fun acc a -> String_set.union acc (Atom.var_set a)) String_set.empty atoms
  in
  let nodes =
    Array.init n (fun i ->
        { bag = String_set.inter live htd.Ht.bags.(i);
          guards = htd.Ht.guards.(i);
          atoms = [];
          children = [];
          rel = Relation.unit })
  in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    htd.Ht.tree;
  let visited = Array.make n false in
  let rec dfs i =
    visited.(i) <- true;
    List.iter
      (fun j ->
        if not visited.(j) then begin
          nodes.(i).children <- j :: nodes.(i).children;
          dfs j
        end)
      adj.(i)
  in
  if n > 0 then dfs 0;
  Array.iteri
    (fun i v ->
      if not v then begin
        nodes.(0).children <- i :: nodes.(0).children;
        dfs i
      end)
    visited;
  (* assign each atom to a covering node *)
  List.iter
    (fun a ->
      let vs = Atom.var_set a in
      let rec assign i =
        if i >= n then invalid_arg "Hyper_eval: decomposition does not cover an atom"
        else if String_set.subset vs nodes.(i).bag then
          nodes.(i).atoms <- a :: nodes.(i).atoms
        else assign (i + 1)
      in
      assign 0)
    atoms;
  (* guard atoms: for each guard edge, every query atom with that variable
     set; joined with the assigned atoms and projected onto the bag *)
  let atoms_by_varset vs =
    List.filter (fun a -> String_set.equal (Atom.var_set a) vs) atoms
  in
  Array.iter
    (fun node ->
      let guard_atoms = List.concat_map atoms_by_varset node.guards in
      let all = List.sort_uniq Atom.compare (guard_atoms @ node.atoms) in
      let covered =
        List.fold_left (fun acc a -> String_set.union acc (Atom.var_set a)) String_set.empty all
      in
      if not (String_set.subset node.bag covered) then
        invalid_arg "Hyper_eval: bag not covered by its guards";
      let homs = Eval.homomorphisms db all ~init:Mapping.empty in
      node.rel <-
        Relation.make node.bag (List.map (Mapping.restrict node.bag) homs))
    nodes;
  nodes

let rec up_semijoin nodes i =
  List.iter
    (fun c ->
      up_semijoin nodes c;
      nodes.(i).rel <- Relation.semijoin nodes.(i).rel nodes.(c).rel)
    nodes.(i).children

let eval_structure db q ~htd ~init =
  let q = Query.substitute init q in
  let ground, atoms = List.partition Atom.is_ground (Query.body q) in
  if not (List.for_all (fun a -> Database.mem db (Atom.to_fact a)) ground) then None
  else Some (q, prepare db htd atoms)

let satisfiable db q ~htd ~init =
  match eval_structure db q ~htd ~init with
  | None -> false
  | Some (_, nodes) ->
      Array.length nodes = 0
      ||
      (up_semijoin nodes 0;
       not (Relation.is_empty nodes.(0).rel))

let answers db q ~htd =
  match eval_structure db q ~htd ~init:Mapping.empty with
  | None -> Mapping.Set.empty
  | Some (q', nodes) ->
      let head = Query.head_set q' in
      if Array.length nodes = 0 then Mapping.Set.singleton Mapping.empty
      else begin
        up_semijoin nodes 0;
        let rec down i =
          List.iter
            (fun c ->
              nodes.(c).rel <- Relation.semijoin nodes.(c).rel nodes.(i).rel;
              down c)
            nodes.(i).children
        in
        down 0;
        let rec up i =
          let keep = String_set.union nodes.(i).bag head in
          List.fold_left
            (fun acc c -> Relation.project keep (Relation.join acc (up c)))
            nodes.(i).rel nodes.(i).children
        in
        Mapping.Set.of_list (Relation.rows (Relation.project head (up 0)))
      end

let auto db q ~k ~init =
  let q' = Query.substitute init q in
  match Hypergraphs.Hypertree.ghw_at_most (Query.hypergraph q') k with
  | None -> None
  | Some htd -> Some (satisfiable db q' ~htd ~init:Mapping.empty)
