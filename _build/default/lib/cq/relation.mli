(** In-memory relations: sets of mappings over a fixed variable set, with the
    join/semijoin/project algebra used by the Yannakakis-style evaluator. *)

open Relational

type t = private {
  vars : String_set.t;
  rows : Mapping.Set.t;
}

(** @raise Invalid_argument if some row is not defined on exactly [vars]. *)
val make : String_set.t -> Mapping.t list -> t

val vars : t -> String_set.t
val rows : t -> Mapping.t list
val cardinal : t -> int
val is_empty : t -> bool

(** The relation with no variables and one (empty) row: the join unit. *)
val unit : t

(** Natural join (hash join on the shared variables). *)
val join : t -> t -> t

(** [semijoin r s]: rows of [r] that join with some row of [s]. *)
val semijoin : t -> t -> t

val project : String_set.t -> t -> t

(** [extend_all r x values]: cross product with a fresh variable ranging over
    [values] (used for decomposition bags not fully covered by atoms). *)
val extend_all : t -> string -> Value.t list -> t

val pp : Format.formatter -> t -> unit
