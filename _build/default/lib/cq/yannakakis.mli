(** Yannakakis' algorithm over GYO join forests — the classical evaluation
    of acyclic CQs [21], and the LOGCFL witness behind HW(1) (Theorem 3).

    Unlike the tree-decomposition evaluator, bags here are single atoms, so
    queries like Example 5's guarded cliques (acyclic but of unbounded
    treewidth) are evaluated without materializing |adom|^tw bags. *)

open Relational

(** [satisfiable db q ~init]: [Some b] when the query instantiated by [init]
    is acyclic; [None] otherwise. *)
val satisfiable : Database.t -> Query.t -> init:Mapping.t -> bool option

(** [answers db q]: [Some q(D)] when acyclic, [None] otherwise. *)
val answers : Database.t -> Query.t -> Mapping.Set.t option
