open Relational

let homomorphism q q' =
  (* hom from q to q': map body of q into the frozen body of q', requiring
     each free variable of q that is also free in q' to map to itself *)
  let db, frozen = Query.freeze q' in
  let init =
    List.fold_left
      (fun acc x ->
        match Mapping.find x frozen with
        | Some v when List.mem x (Query.head q') -> Mapping.add x v acc
        | _ -> acc)
      Mapping.empty (Query.head q)
  in
  if not (String_set.subset (Query.head_set q) (String_set.of_list (Query.head q')))
  then None
  else
    match Eval.homomorphisms db (Query.body q) ~init with
    | h :: _ -> Some h
    | [] -> None

let contained q q' =
  String_set.equal (Query.head_set q) (Query.head_set q')
  && Option.is_some (homomorphism q' q)

let equivalent q q' = contained q q' && contained q' q

let subsumed q q' =
  (* every answer of q extends to an answer of q': freeze q, evaluate q' over
     the frozen body, and check that the frozen head of q is subsumed by some
     answer. For CQs (single databases of interest: the canonical one) this
     is sound and complete by the same argument as Chandra–Merlin. *)
  let db, frozen = Query.freeze q in
  let target = Mapping.restrict (Query.head_set q) frozen in
  let ans = Eval.answers db q' in
  Mapping.Set.exists (fun h -> Mapping.subsumes target h) ans
