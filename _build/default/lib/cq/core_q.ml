open Relational

(* Search for a proper retraction of q: an endomorphism fixing the head whose
   image omits at least one existential variable.  Working on the frozen body,
   we look, for each candidate variable v, for a homomorphism from body(q)
   into freeze(q) minus every fact mentioning v's frozen constant. *)
let proper_retraction q =
  let db, frozen = Query.freeze q in
  let head = Query.head_set q in
  let init = Mapping.restrict head frozen in
  let back = Hashtbl.create 16 in
  List.iter
    (fun (x, v) -> Hashtbl.replace back v x)
    (Mapping.bindings frozen);
  let var_of_value v = Hashtbl.find back v in
  let exi = String_set.elements (Query.existential_vars q) in
  let avoid v =
    let fv = Option.get (Mapping.find v frozen) in
    let facts =
      List.filter
        (fun f -> not (List.exists (Value.equal fv) (Fact.tuple f)))
        (Database.facts db)
    in
    match Eval.homomorphisms (Database.of_list facts) (Query.body q) ~init with
    | h :: _ ->
        (* translate the frozen-constant image back into a variable map *)
        Some
          (fun x ->
            match Mapping.find x h with
            | Some value -> var_of_value value
            | None -> x)
    | [] -> None
  in
  List.find_map avoid exi

let rec core q =
  match proper_retraction q with
  | None -> q
  | Some f -> core (Query.quotient f q)

let is_core q = Option.is_none (proper_retraction q)
let equivalent_to_class q ~in_class = in_class (core q)
