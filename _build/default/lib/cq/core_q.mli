(** Cores of CQs.

    The core of [q] is the smallest retract of [q]; it is unique up to
    isomorphism and characterizes semantic membership in substructure-closed
    classes: [q] is equivalent to some query in C iff [core q ∈ C]
    (Dalmau–Kolaitis–Vardi [10]), the fact behind Theorem 17. *)

val core : Query.t -> Query.t

(** [is_core q]: no proper retraction exists. *)
val is_core : Query.t -> bool

(** [equivalent_to_class q ~in_class] decides if [q] is equivalent to some CQ
    in the class, which must be closed under substructures (e.g. TW(k),
    HW′(k)). *)
val equivalent_to_class : Query.t -> in_class:(Query.t -> bool) -> bool
