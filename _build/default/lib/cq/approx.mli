(** C(k)-approximations of CQs (Barceló–Libkin–Romero [4]; used by the paper
    in Sections 5–6).

    A C-approximation of [q] is a query [q' ∈ C] maximally contained in [q].
    Quotient lemma: if [q' ⊆ q] with [q' ∈ C] via a homomorphism
    [g : q -> q'], then the atom set [g(q)] is a subset of [q']'s atoms, so
    [q' ⊆ q_{g(q)} ⊆ q] and — C being substructure-closed — [q_{g(q)} ∈ C].
    Hence the maximal in-class *quotients* of [q] are exactly its
    C-approximations, and it suffices to search the quotient lattice. *)

(** [quotients_in_class ~in_class q]: the in-class quotients of [q] found by
    BFS over pairwise variable merges, pruned below in-class nodes (sound
    because deeper quotients are contained in their in-class ancestors).
    [in_class] must be substructure-closed and invariant under variable
    renaming. *)
val quotients_in_class : in_class:(Query.t -> bool) -> Query.t -> Query.t list

(** [approximations ~in_class q]: all C-approximations of [q] up to
    equivalence (the list is empty when no in-class query is contained in
    [q], which can happen when the free variables themselves form a structure
    outside C). *)
val approximations : in_class:(Query.t -> bool) -> Query.t -> Query.t list

(** TW(k)-approximations. *)
val tw_approximations : k:int -> Query.t -> Query.t list

(** HW′(k)-approximations (β-hypertreewidth ≤ k). *)
val hw'_approximations : k:int -> Query.t -> Query.t list
