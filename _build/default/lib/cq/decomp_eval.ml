open Relational
module Td = Hypergraphs.Tree_decomposition

type node = {
  bag : String_set.t;
  mutable atoms : Atom.t list;
  mutable children : int list;
}

(* Build a rooted structure (root 0) from a decomposition; assign each atom to
   one bag covering it. *)
let prepare td atoms =
  let n = Array.length td.Td.bags in
  let nodes =
    Array.map (fun bag -> { bag; atoms = []; children = [] }) td.Td.bags
  in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    td.Td.tree;
  (* root everything at 0; ignore disconnected decomposition parts by
     attaching them below 0 (joins on disjoint vars are cross products) *)
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    visited.(i) <- true;
    order := i :: !order;
    List.iter
      (fun j ->
        if not visited.(j) then begin
          nodes.(i).children <- j :: nodes.(i).children;
          dfs j
        end)
      adj.(i)
  in
  if n > 0 then dfs 0;
  Array.iteri
    (fun i v ->
      if not v then begin
        nodes.(0).children <- i :: nodes.(0).children;
        visited.(i) <- true;
        dfs i
      end)
    visited;
  List.iter
    (fun a ->
      let vs = Atom.var_set a in
      let rec assign i =
        if i >= n then invalid_arg "Decomp_eval: decomposition does not cover an atom"
        else if String_set.subset vs nodes.(i).bag then nodes.(i).atoms <- a :: nodes.(i).atoms
        else assign (i + 1)
      in
      assign 0)
    atoms;
  nodes

let bag_relation db adom node ~init =
  (* join the atoms assigned to this bag by backtracking, then extend
     uncovered bag variables over the active domain *)
  let covered =
    List.fold_left
      (fun acc a -> String_set.union acc (Atom.var_set a))
      String_set.empty node.atoms
  in
  let homs = Eval.homomorphisms db node.atoms ~init in
  let rel =
    Relation.make covered
      (List.map (fun h -> Mapping.restrict covered h) homs)
  in
  String_set.fold
    (fun x r -> if String_set.mem x covered then r else Relation.extend_all r x adom)
    node.bag rel

(* Ground atoms (no variables) are checked eagerly and dropped. *)
let split_ground atoms =
  let ground, rest = List.partition Atom.is_ground atoms in
  (ground, rest)

let td_of_query q =
  snd (Td.upper_bound (Query.hypergraph q))

let eval_structure ?td db q ~init =
  let q = Query.substitute init q in
  let ground, atoms = split_ground (Query.body q) in
  if not (List.for_all (fun a -> Database.mem db (Atom.to_fact a)) ground) then None
  else begin
    let td =
      match td with
      | Some td -> td
      | None -> td_of_query (Query.make ~head:(Query.head q) ~body:atoms)
    in
    (* instantiation can remove variables; trimming bags to live variables
       preserves validity and avoids ranging dead variables over the domain *)
    let live =
      List.fold_left (fun acc a -> String_set.union acc (Atom.var_set a))
        String_set.empty atoms
    in
    let td =
      { td with Td.bags = Array.map (String_set.inter live) td.Td.bags }
    in
    let nodes = prepare td atoms in
    let adom = Value.Set.elements (Database.active_domain db) in
    let rels = Array.map (fun node -> bag_relation db adom node ~init:Mapping.empty) nodes in
    Some (q, nodes, rels)
  end

let rec up_semijoin nodes rels i =
  List.iter
    (fun c ->
      up_semijoin nodes rels c;
      rels.(i) <- Relation.semijoin rels.(i) rels.(c))
    nodes.(i).children

let satisfiable_td ?td db q ~init =
  match eval_structure ?td db q ~init with
  | None -> false
  | Some (_q, nodes, rels) ->
      if Array.length rels = 0 then true
      else begin
        up_semijoin nodes rels 0;
        not (Relation.is_empty rels.(0))
      end

let answers_td ?td db q =
  match eval_structure ?td db q ~init:Mapping.empty with
  | None -> Mapping.Set.empty
  | Some (q', nodes, rels) ->
      let head = Query.head_set q' in
      if Array.length rels = 0 then Mapping.Set.singleton Mapping.empty
      else begin
        (* full reducer *)
        up_semijoin nodes rels 0;
        let rec down i =
          List.iter
            (fun c ->
              rels.(c) <- Relation.semijoin rels.(c) rels.(i);
              down c)
            nodes.(i).children
        in
        down 0;
        (* upward join, projecting to bag ∪ head at each step *)
        let rec up i =
          let keep = String_set.union nodes.(i).bag head in
          List.fold_left
            (fun acc c -> Relation.project keep (Relation.join acc (up c)))
            rels.(i) nodes.(i).children
        in
        let result = Relation.project head (up 0) in
        Mapping.Set.of_list (Relation.rows result)
      end

(* Acyclic (instantiated) queries go to Yannakakis — the HW(1) algorithm;
   the rest to the tree-decomposition evaluator. A supplied decomposition
   forces the latter. *)
let satisfiable ?td db q ~init =
  match td with
  | Some _ -> satisfiable_td ?td db q ~init
  | None -> (
      match Yannakakis.satisfiable db q ~init with
      | Some b -> b
      | None -> satisfiable_td db q ~init)

let answers ?td db q =
  match td with
  | Some _ -> answers_td ?td db q
  | None -> (
      match Yannakakis.answers db q with
      | Some a -> a
      | None -> answers_td db q)

let decision ?td db q h =
  String_set.equal (Mapping.domain h) (Query.head_set q)
  && satisfiable ?td db q ~init:h
