(** Decomposition-based CQ evaluation (the tractable evaluator behind
    Theorems 2, 3, 7, 8, 9 of the paper).

    The decomposition tree is treated as a join tree over materialized bag
    relations: an upward semijoin pass decides satisfiability (Yannakakis);
    for non-Boolean queries a full reducer plus an upward join-project pass
    computes the answer set. For a query of treewidth k the bag relations have
    at most |adom|^(k+1) rows, giving the polynomial bound; on acyclic queries
    the GYO join forest is used directly, so bags are single atoms. *)

open Relational

(** [satisfiable ?td db q ~init]: is [q] (instantiated by [init]) satisfiable
    in [db]? A tree decomposition of the *instantiated* query may be supplied;
    otherwise the heuristic one is computed. *)
val satisfiable : ?td:Hypergraphs.Tree_decomposition.t -> Database.t -> Query.t -> init:Mapping.t -> bool

(** [answers ?td db q]: the evaluation q(D) via full Yannakakis. *)
val answers : ?td:Hypergraphs.Tree_decomposition.t -> Database.t -> Query.t -> Mapping.Set.t

(** [decision db q h]: is [h ∈ q(D)]? *)
val decision : ?td:Hypergraphs.Tree_decomposition.t -> Database.t -> Query.t -> Mapping.t -> bool
