open Relational

type t = {
  head : string list;
  body : Atom.t list;
}

let body_vars body =
  List.fold_left (fun acc a -> String_set.union acc (Atom.var_set a)) String_set.empty body

let make ~head ~body =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun x ->
      if Hashtbl.mem seen x then invalid_arg ("Query.make: duplicate head variable " ^ x);
      Hashtbl.add seen x ())
    head;
  let bv = body_vars body in
  List.iter
    (fun x ->
      if not (String_set.mem x bv) then
        invalid_arg ("Query.make: head variable " ^ x ^ " not in body"))
    head;
  { head; body = List.sort_uniq Atom.compare body }

let boolean body = make ~head:[] ~body
let head q = q.head
let body q = q.body
let head_set q = String_set.of_list q.head
let vars q = body_vars q.body
let existential_vars q = String_set.diff (vars q) (head_set q)

let constants q =
  List.fold_left
    (fun acc a -> List.fold_left (fun acc v -> Value.Set.add v acc) acc (Atom.constants a))
    Value.Set.empty q.body

let size q = List.length q.body

let compare_syntactic a b =
  let c = List.compare String.compare a.head b.head in
  if c <> 0 then c else List.compare Atom.compare a.body b.body

let equal_syntactic a b = compare_syntactic a b = 0

let hypergraph q =
  Hypergraphs.Hypergraph.of_edges (List.map Atom.var_set q.body)

let treewidth q = Hypergraphs.Tree_decomposition.treewidth (hypergraph q)

let in_tw ~k q =
  Option.is_some (Hypergraphs.Tree_decomposition.at_most (hypergraph q) k)

let is_acyclic q = Hypergraphs.Gyo.is_acyclic (hypergraph q)
let in_hw ~k q = Option.is_some (Hypergraphs.Hypertree.ghw_at_most (hypergraph q) k)
let in_hw' ~k q = Hypergraphs.Beta.beta_ghw_at_most (hypergraph q) k

let substitute h q =
  let body = List.map (Mapping.apply_atom h) q.body in
  let head = List.filter (fun x -> not (Mapping.mem x h)) q.head in
  (* substitution can ground a head variable entirely out of the body; such
     queries are rejected by [make], so rebuild carefully: keep only head vars
     still present *)
  let bv = body_vars body in
  let head = List.filter (fun x -> String_set.mem x bv) head in
  make ~head ~body

let rename f q =
  let seen = Hashtbl.create 16 in
  String_set.iter
    (fun x ->
      let y = f x in
      match Hashtbl.find_opt seen y with
      | Some x' when x' <> x -> invalid_arg "Query.rename: not injective"
      | _ -> Hashtbl.replace seen y x)
    (vars q);
  { head = List.map f q.head;
    body = List.sort_uniq Atom.compare (List.map (Atom.apply ~f:(fun x -> Term.var (f x))) q.body) }

let quotient f q =
  List.iter
    (fun x -> if f x <> x then invalid_arg "Query.quotient: head variable not fixed")
    q.head;
  make ~head:q.head
    ~body:(List.map (Atom.apply ~f:(fun x -> Term.var (f x))) q.body)

let freeze q =
  let frozen = Hashtbl.create 16 in
  let freeze_var x =
    match Hashtbl.find_opt frozen x with
    | Some v -> v
    | None ->
        let v = Value.fresh ~tag:x () in
        Hashtbl.add frozen x v;
        v
  in
  let facts =
    List.map
      (fun a -> Atom.to_fact (Atom.apply ~f:(fun x -> Term.const (freeze_var x)) a))
      q.body
  in
  let h =
    String_set.fold (fun x acc -> Mapping.add x (freeze_var x) acc) (vars q) Mapping.empty
  in
  (Database.of_list facts, h)

let pp_raw ppf q =
  Format.fprintf ppf "Ans(%a) <- %a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_string)
    q.head
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Atom.pp)
    q.body

let canonical_key q = Format.asprintf "%a" pp_raw q
let pp = pp_raw
