(** Conjunctive queries [Ans(x̄) <- R1(v̄1), ..., Rm(v̄m)] (Section 2).

    Following the paper, answers are partial mappings (not tuples), so head
    variables are referred to by name; two CQs can only be compared when they
    agree on their free variables. *)

open Relational

type t = private {
  head : string list;  (** free variables x̄ (distinct, occurring in body) *)
  body : Atom.t list;
}

(** @raise Invalid_argument if head variables are not distinct or do not all
    occur in the body. *)
val make : head:string list -> body:Atom.t list -> t

(** A Boolean query [Ans() <- body]. *)
val boolean : Atom.t list -> t

val head : t -> string list
val body : t -> Atom.t list
val head_set : t -> String_set.t

(** All variables of the query. *)
val vars : t -> String_set.t

(** Existentially quantified variables (body vars not in the head). *)
val existential_vars : t -> String_set.t

val constants : t -> Value.Set.t

(** Number of atoms. *)
val size : t -> int

val equal_syntactic : t -> t -> bool
val compare_syntactic : t -> t -> int

(** The hypergraph of the query: vertices are variables, one edge per atom
    (the set of its variables). *)
val hypergraph : t -> Hypergraphs.Hypergraph.t

val treewidth : t -> int
val in_tw : k:int -> t -> bool
val is_acyclic : t -> bool
val in_hw : k:int -> t -> bool

(** [in_hw' ~k q]: every subquery has hypertreewidth <= k (the class HW′(k),
    i.e. β-hypertreewidth <= k). *)
val in_hw' : k:int -> t -> bool

(** [substitute h q] replaces variables bound by [h] with constants, removing
    them from the head. *)
val substitute : Mapping.t -> t -> t

(** [rename f q] renames variables injectively.
    @raise Invalid_argument if [f] identifies two variables. *)
val rename : (string -> string) -> t -> t

(** [quotient f q] applies a (possibly non-injective) variable map, yielding
    the homomorphic image h(q). Head variables must be fixed by [f]. *)
val quotient : (string -> string) -> t -> t

(** Freeze: the canonical database of the body (variables become fresh
    constants) together with the freeze mapping. *)
val freeze : t -> Database.t * Mapping.t

(** Canonical textual form, stable under atom reordering (for memo keys). *)
val canonical_key : t -> string

val pp : Format.formatter -> t -> unit
