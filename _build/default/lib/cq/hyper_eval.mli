(** CQ evaluation guided by a generalized hypertree decomposition — the
    HW(k) evaluation of Theorem 3 for k ≥ 2 (k = 1 is {!Yannakakis}).

    Each decomposition node materializes the join of its ≤ k guard atoms
    projected onto its bag, so the materialization cost is bounded by the
    guards' join sizes instead of |adom|^treewidth; the bag relations then
    form an acyclic instance processed with semijoin passes as usual. *)

open Relational

(** [satisfiable db q ~htd ~init]. The decomposition must be valid for the
    query instantiated by [init] (bags may mention dead variables; they are
    trimmed). *)
val satisfiable :
  Database.t -> Query.t -> htd:Hypergraphs.Hypertree.t -> init:Mapping.t -> bool

(** [answers db q ~htd]. *)
val answers : Database.t -> Query.t -> htd:Hypergraphs.Hypertree.t -> Mapping.Set.t

(** [auto db q ~k ~init]: find a width ≤ k decomposition and evaluate;
    [None] when the query's hypertreewidth exceeds [k]. *)
val auto : Database.t -> Query.t -> k:int -> init:Mapping.t -> bool option
