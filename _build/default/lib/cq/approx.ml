open Relational

let merge_candidates q =
  (* pairs (u, v) meaning "rename u to v"; head variables are never renamed *)
  let head = Query.head_set q in
  let vs = String_set.elements (Query.vars q) in
  let rec pairs = function
    | [] -> []
    | u :: rest ->
        List.filter_map
          (fun v ->
            let u_head = String_set.mem u head and v_head = String_set.mem v head in
            if u_head && v_head then None
            else if u_head then Some (v, u)
            else Some (u, v))
          rest
        @ pairs rest
  in
  pairs vs

let merge q (u, v) =
  Query.quotient (fun x -> if x = u then v else x) q

let quotients_in_class ~in_class q =
  let seen = Hashtbl.create 256 in
  let found = ref [] in
  let rec explore q =
    let key = Query.canonical_key q in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      if in_class q then found := q :: !found
      else List.iter (fun pair -> explore (merge q pair)) (merge_candidates q)
    end
  in
  explore q;
  !found

let approximations ~in_class q =
  let candidates = quotients_in_class ~in_class q in
  (* keep the containment-maximal ones, deduplicating equivalent queries *)
  let maximal =
    List.filter
      (fun c ->
        not
          (List.exists
             (fun c' ->
               Containment.contained c c' && not (Containment.contained c' c))
             candidates))
      candidates
  in
  let rec dedup acc = function
    | [] -> List.rev acc
    | c :: rest ->
        if List.exists (Containment.equivalent c) acc then dedup acc rest
        else dedup (c :: acc) rest
  in
  dedup [] maximal

let tw_approximations ~k q = approximations ~in_class:(Query.in_tw ~k) q
let hw'_approximations ~k q = approximations ~in_class:(Query.in_hw' ~k) q
