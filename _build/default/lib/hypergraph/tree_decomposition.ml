open Relational

type t = {
  bags : String_set.t array;
  tree : (int * int) list;
}

let width td =
  Array.fold_left (fun w b -> max w (String_set.cardinal b - 1)) (-1) td.bags

let is_tree_shaped td =
  (* acyclicity of the bag graph via union-find *)
  let n = Array.length td.bags in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  List.for_all
    (fun (a, b) ->
      let ra = find a and rb = find b in
      if ra = rb then false
      else begin
        parent.(ra) <- rb;
        true
      end)
    td.tree

let is_valid hg td =
  let covers_edges =
    List.for_all
      (fun e -> Array.exists (fun b -> String_set.subset e b) td.bags)
      (Hypergraph.edges hg)
  in
  let covers_vertices =
    String_set.for_all
      (fun v -> Array.exists (String_set.mem v) td.bags)
      (Hypergraph.vertices hg)
  in
  (* connectivity of {bags containing v} in the bag tree, per vertex *)
  let n = Array.length td.bags in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    td.tree;
  let connected v =
    let holds = Array.map (String_set.mem v) td.bags in
    let start = ref (-1) in
    Array.iteri (fun i h -> if h && !start < 0 then start := i) holds;
    if !start < 0 then false
    else begin
      let seen = Array.make n false in
      let rec dfs i =
        seen.(i) <- true;
        List.iter (fun j -> if holds.(j) && not seen.(j) then dfs j) adj.(i)
      in
      dfs !start;
      Array.for_all2 (fun h s -> (not h) || s) holds seen
    end
  in
  covers_edges && covers_vertices && is_tree_shaped td
  && String_set.for_all connected (Hypergraph.vertices hg)

(* ---- elimination orders ---------------------------------------------- *)

module Adj = Map.Make (String)

let initial_adj hg =
  String_set.fold
    (fun v acc -> Adj.add v (Hypergraph.neighbours hg v) acc)
    (Hypergraph.vertices hg) Adj.empty

let eliminate v adj =
  let nv = Adj.find v adj in
  let adj = Adj.remove v adj in
  String_set.fold
    (fun u acc ->
      let nu = Adj.find u acc in
      let nu = String_set.remove v (String_set.union nu (String_set.remove u nv)) in
      Adj.add u nu acc)
    nv adj

let of_elimination_order hg order =
  let n = List.length order in
  let pos = Hashtbl.create n in
  List.iteri (fun i v -> Hashtbl.add pos v i) order;
  let bags = Array.make (max n 1) String_set.empty in
  let adj = ref (initial_adj hg) in
  List.iteri
    (fun i v ->
      let nv = Adj.find v !adj in
      bags.(i) <- String_set.add v nv;
      adj := eliminate v !adj)
    order;
  if n = 0 then { bags = [| String_set.empty |]; tree = [] }
  else begin
    let tree = ref [] in
    List.iteri
      (fun i v ->
        let rest = String_set.remove v bags.(i) in
        if not (String_set.is_empty rest) then begin
          (* connect to the bag of the earliest-eliminated remaining vertex *)
          let j =
            String_set.fold (fun u acc -> min acc (Hashtbl.find pos u)) rest max_int
          in
          tree := (i, j) :: !tree
        end)
      order;
    (* the hypergraph may be disconnected: link every remaining component of
       the bag graph to the last bag so the result is a single tree *)
    let parent = Array.init n Fun.id in
    let rec find i = if parent.(i) = i then i else find parent.(i) in
    List.iter
      (fun (a, b) ->
        let ra = find a and rb = find b in
        if ra <> rb then parent.(ra) <- rb)
      !tree;
    let root = n - 1 in
    for i = 0 to n - 2 do
      let ri = find i and rr = find root in
      if ri <> rr then begin
        parent.(ri) <- rr;
        tree := (i, root) :: !tree
      end
    done;
    { bags; tree = !tree }
  end

let greedy_order score hg =
  let rec go adj acc =
    if Adj.is_empty adj then List.rev acc
    else
      let v, _ =
        Adj.fold
          (fun v nv best ->
            let s = score adj v nv in
            match best with
            | Some (_, s') when s' <= s -> best
            | _ -> Some (v, s))
          adj None
        |> Option.get
      in
      go (eliminate v adj) (v :: acc)
  in
  go (initial_adj hg) []

let fill_in adj _v nv =
  (* number of missing edges among neighbours *)
  let missing = ref 0 in
  let elts = String_set.elements nv in
  let rec pairs = function
    | [] -> ()
    | x :: rest ->
        List.iter
          (fun y -> if not (String_set.mem y (Adj.find x adj)) then incr missing)
          rest;
        pairs rest
  in
  pairs elts;
  !missing

let min_fill_order hg = greedy_order fill_in hg
let min_degree_order hg = greedy_order (fun _ _ nv -> String_set.cardinal nv) hg

let upper_bound hg =
  let td1 = of_elimination_order hg (min_fill_order hg) in
  let td2 = of_elimination_order hg (min_degree_order hg) in
  if width td1 <= width td2 then (width td1, td1) else (width td2, td2)

let lower_bound hg =
  (* degeneracy: iteratively remove a min-degree vertex of the primal graph *)
  let rec go adj best =
    if Adj.is_empty adj then best
    else
      let v, d =
        Adj.fold
          (fun v nv acc ->
            let d = String_set.cardinal nv in
            match acc with
            | Some (_, d') when d' <= d -> acc
            | _ -> Some (v, d))
          adj None
        |> Option.get
      in
      (* plain removal (not elimination) for degeneracy *)
      let nv = Adj.find v adj in
      let adj = Adj.remove v adj in
      let adj =
        String_set.fold
          (fun u acc -> Adj.update u (Option.map (String_set.remove v)) acc)
          nv adj
      in
      go adj (max best d)
  in
  go (initial_adj hg) 0

(* ---- exact branch-and-bound over elimination orders (bitsets) --------- *)

exception Found of string list

let exact_order hg k =
  (* Is treewidth <= k? If so return a witnessing elimination order. *)
  let verts = String_set.elements (Hypergraph.vertices hg) in
  let n = List.length verts in
  if n > 62 then None
  else begin
    let idx = Hashtbl.create n in
    List.iteri (fun i v -> Hashtbl.add idx v i) verts;
    let name = Array.of_list verts in
    let adj0 = Array.make n 0 in
    List.iter
      (fun e ->
        let is = List.map (Hashtbl.find idx) (String_set.elements e) in
        List.iter
          (fun i -> List.iter (fun j -> if i <> j then adj0.(i) <- adj0.(i) lor (1 lsl j)) is)
          is)
      (Hypergraph.edges hg);
    let popcount x =
      let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
      go x 0
    in
    let failed = Hashtbl.create 1024 in
    (* search: remaining = bitmask of not-yet-eliminated; adj = current fill graph
       restricted to remaining *)
    let rec search remaining adj acc =
      if remaining = 0 then raise (Found (List.rev acc))
      else if Hashtbl.mem failed remaining then ()
      else begin
        (* tw <= k iff some elimination order only ever eliminates vertices of
           current degree <= k; the fill graph after eliminating a set is
           order-independent, so memoizing on the remaining mask is sound *)
        for v = 0 to n - 1 do
          if remaining land (1 lsl v) <> 0 then begin
            let nv = adj.(v) land remaining in
            let d = popcount nv in
            if d <= k then begin
              let adj' = Array.copy adj in
              let rest = remaining land lnot (1 lsl v) in
              let ns = ref [] in
              for u = 0 to n - 1 do
                if nv land (1 lsl u) <> 0 then ns := u :: !ns
              done;
              List.iter
                (fun u -> adj'.(u) <- adj'.(u) lor (nv land lnot (1 lsl u)))
                !ns;
              search rest adj' (name.(v) :: acc)
            end
          end
        done;
        Hashtbl.add failed remaining ()
      end
    in
    let all = (1 lsl n) - 1 in
    try
      search all adj0 [];
      None
    with Found order -> Some order
  end

let treewidth hg =
  if Hypergraph.num_vertices hg = 0 then -1
  else begin
    let ub, _ = upper_bound hg in
    let lb = lower_bound hg in
    if Hypergraph.num_vertices hg > 62 then ub
    else begin
      let rec refine k =
        if k >= ub then ub
        else
          match exact_order hg k with
          | Some _ -> k
          | None -> refine (k + 1)
      in
      refine lb
    end
  end

let at_most hg k =
  if Hypergraph.num_vertices hg = 0 then
    Some { bags = [| String_set.empty |]; tree = [] }
  else begin
    let ub, td = upper_bound hg in
    if ub <= k then Some td
    else if lower_bound hg > k then None
    else if Hypergraph.num_vertices hg > 62 then None
    else
      match exact_order hg k with
      | Some order -> Some (of_elimination_order hg order)
      | None -> None
  end

let pp ppf td =
  Array.iteri (fun i b -> Format.fprintf ppf "bag %d: %a@," i String_set.pp b) td.bags;
  Format.fprintf ppf "tree: %a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       (fun ppf (a, b) -> Format.fprintf ppf "%d-%d" a b))
    td.tree
