(** GYO reduction: α-acyclicity test and join-tree construction.

    A hypergraph is α-acyclic iff repeated application of (1) removing vertices
    occurring in a single edge and (2) removing edges contained in other edges
    empties it. α-acyclicity coincides with generalized hypertreewidth 1 (the
    class [HW(1) = AC] of the paper). *)


(** A join forest over the original edge indices: [parents] maps each
    non-root edge index to its parent edge index; [roots] are the roots (one
    per connected component). The join-tree property holds: for any two edges
    sharing a vertex, the path between them carries the shared vertices. *)
type join_forest = {
  parents : (int * int) list;
  roots : int list;
}

val is_acyclic : Hypergraph.t -> bool

(** [join_forest hg] is [Some jf] iff [hg] is α-acyclic. Edges are indexed by
    their position in [Hypergraph.edges hg]. *)
val join_forest : Hypergraph.t -> join_forest option

(** [is_join_forest hg jf] validates the running-intersection property. *)
val is_join_forest : Hypergraph.t -> join_forest -> bool

val pp_join_forest : Format.formatter -> join_forest -> unit
