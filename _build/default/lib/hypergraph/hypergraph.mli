(** Hypergraphs over named vertices, as underlying structures of CQs
    (Section 3.1 of the paper). *)

open Relational

type t

(** [make ~vertices ~edges] builds a hypergraph; vertices mentioned in edges
    are added automatically (so isolated vertices can be listed explicitly). *)
val make : vertices:string list -> edges:string list list -> t

val of_edges : String_set.t list -> t

val vertices : t -> String_set.t
val edges : t -> String_set.t list
val num_vertices : t -> int
val num_edges : t -> int

val is_empty : t -> bool

(** Neighbours of a vertex in the primal graph (co-occurring in some edge),
    excluding the vertex itself. *)
val neighbours : t -> string -> String_set.t

(** Primal (Gaifman) graph as adjacency sets. *)
val primal : t -> (string * String_set.t) list

(** [induced hg vs] restricts every edge to [vs], dropping empty edges. *)
val induced : t -> String_set.t -> t

(** [sub_edges hg sel] keeps the edges whose index satisfies [sel]. *)
val sub_edges : t -> (int -> bool) -> t

(** Connected components of the vertex set (via the primal graph). *)
val components : t -> String_set.t list

(** [components_within hg vs] connected components of the subgraph induced by
    [vs]. *)
val components_within : t -> String_set.t -> String_set.t list

val pp : Format.formatter -> t -> unit
