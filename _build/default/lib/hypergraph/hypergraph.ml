open Relational

type t = {
  verts : String_set.t;
  edges : String_set.t list;
}

let of_edges edges =
  let verts = List.fold_left String_set.union String_set.empty edges in
  { verts; edges }

let make ~vertices ~edges =
  let edges = List.map String_set.of_list edges in
  let verts =
    List.fold_left String_set.union (String_set.of_list vertices) edges
  in
  { verts; edges }

let vertices hg = hg.verts
let edges hg = hg.edges
let num_vertices hg = String_set.cardinal hg.verts
let num_edges hg = List.length hg.edges
let is_empty hg = String_set.is_empty hg.verts

let neighbours hg v =
  List.fold_left
    (fun acc e -> if String_set.mem v e then String_set.union acc e else acc)
    String_set.empty hg.edges
  |> String_set.remove v

let primal hg =
  String_set.elements hg.verts |> List.map (fun v -> (v, neighbours hg v))

let induced hg vs =
  let edges =
    List.filter_map
      (fun e ->
        let e' = String_set.inter e vs in
        if String_set.is_empty e' then None else Some e')
      hg.edges
  in
  { verts = String_set.inter hg.verts vs; edges }

let sub_edges hg sel =
  let edges = List.filteri (fun i _ -> sel i) hg.edges in
  of_edges edges

let components_within hg vs =
  let rec explore frontier seen =
    if String_set.is_empty frontier then seen
    else
      let next =
        String_set.fold
          (fun v acc -> String_set.union acc (String_set.inter (neighbours hg v) vs))
          frontier String_set.empty
      in
      let seen' = String_set.union seen frontier in
      explore (String_set.diff next seen') seen'
  in
  let rec go remaining acc =
    match String_set.choose_opt remaining with
    | None -> List.rev acc
    | Some v ->
        let comp = explore (String_set.singleton v) String_set.empty in
        go (String_set.diff remaining comp) (comp :: acc)
  in
  go vs []

let components hg = components_within hg hg.verts

let pp ppf hg =
  Format.fprintf ppf "@[<v>V = %a@,E = [%a]@]" String_set.pp hg.verts
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") String_set.pp)
    hg.edges
