lib/hypergraph/hypertree.mli: Hypergraph Relational String_set
