lib/hypergraph/hypertree.ml: Array Fun Gyo Hashtbl Hypergraph List Option Relational String String_set Tree_decomposition
