lib/hypergraph/gyo.ml: Array Format Hypergraph List Option Relational String_set
