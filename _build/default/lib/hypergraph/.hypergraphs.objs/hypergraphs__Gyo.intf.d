lib/hypergraph/gyo.mli: Format Hypergraph
