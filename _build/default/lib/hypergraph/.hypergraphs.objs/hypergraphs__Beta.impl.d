lib/hypergraph/beta.ml: Array Hypergraph Hypertree Int List Option Relational String_set
