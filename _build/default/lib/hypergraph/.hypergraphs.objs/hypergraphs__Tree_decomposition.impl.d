lib/hypergraph/tree_decomposition.ml: Array Format Fun Hashtbl Hypergraph List Map Option Relational String String_set
