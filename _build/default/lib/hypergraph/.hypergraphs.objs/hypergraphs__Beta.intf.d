lib/hypergraph/beta.mli: Hypergraph
