lib/hypergraph/hypergraph.ml: Format List Relational String_set
