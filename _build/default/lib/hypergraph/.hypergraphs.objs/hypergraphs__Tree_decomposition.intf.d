lib/hypergraph/tree_decomposition.mli: Format Hypergraph Relational String_set
