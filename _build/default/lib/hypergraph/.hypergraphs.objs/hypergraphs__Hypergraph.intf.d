lib/hypergraph/hypergraph.mli: Format Relational String_set
