(** Tree decompositions and treewidth (Section 3.1).

    Exact treewidth is computed by branch-and-bound over elimination orders
    with memoization (practical for the query sizes WDPTs have, up to ~60
    variables); heuristic (min-fill / min-degree) orders provide upper bounds
    for larger inputs. *)

open Relational

type t = {
  bags : String_set.t array;
  tree : (int * int) list;  (** edges between bag indices; a tree (or forest) *)
}

(** Width = max bag size - 1 (paper's convention); [-1] for the empty
    decomposition. *)
val width : t -> int

(** Full validation: every hyperedge is covered by some bag, every vertex's
    bags form a connected subtree, and [tree] is acyclic. *)
val is_valid : Hypergraph.t -> t -> bool

(** [of_elimination_order hg order] builds the decomposition induced by
    eliminating vertices in [order] (which must enumerate the vertices). *)
val of_elimination_order : Hypergraph.t -> string list -> t

(** Min-fill elimination order (good practical heuristic). *)
val min_fill_order : Hypergraph.t -> string list

(** Min-degree elimination order. *)
val min_degree_order : Hypergraph.t -> string list

(** Heuristic upper bound: best of min-fill and min-degree. *)
val upper_bound : Hypergraph.t -> int * t

(** Degeneracy-based lower bound on treewidth. *)
val lower_bound : Hypergraph.t -> int

(** Exact treewidth. Falls back to the heuristic upper bound beyond 62
    vertices (documented approximation; all paper workloads are smaller). *)
val treewidth : Hypergraph.t -> int

(** [at_most hg k] returns a width-[<= k] decomposition if one exists. Exact
    for <= 62 vertices; for larger graphs a heuristic decomposition is
    returned only when it happens to meet the bound. *)
val at_most : Hypergraph.t -> int -> t option

val pp : Format.formatter -> t -> unit
