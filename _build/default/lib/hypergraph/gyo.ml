open Relational

type join_forest = {
  parents : (int * int) list;
  roots : int list;
}

(* GYO with witness tracking.  Each live edge keeps its original index; when an
   edge becomes contained in another live edge we record the parent link. *)
let reduce hg =
  let edges = Array.of_list (Hypergraph.edges hg) in
  let n = Array.length edges in
  let live = Array.make n true in
  let current = Array.copy edges in
  let parents = ref [] in
  let changed = ref true in
  (* occurrence counts for rule 1 *)
  let occurrences v =
    let c = ref 0 in
    Array.iteri (fun i e -> if live.(i) && String_set.mem v e then incr c) current;
    !c
  in
  while !changed do
    changed := false;
    (* rule 1: drop vertices that occur in exactly one live edge *)
    Array.iteri
      (fun i e ->
        if live.(i) then begin
          let e' = String_set.filter (fun v -> occurrences v > 1) e in
          if not (String_set.equal e e') then begin
            current.(i) <- e';
            changed := true
          end
        end)
      current;
    (* rule 2: drop an edge contained in another live edge *)
    (try
       for i = 0 to n - 1 do
         if live.(i) then
           for j = 0 to n - 1 do
             if j <> i && live.(j) && String_set.subset current.(i) current.(j)
             then begin
               live.(i) <- false;
               parents := (i, j) :: !parents;
               changed := true;
               raise Exit
             end
           done
       done
     with Exit -> ())
  done;
  let remaining = ref [] in
  Array.iteri (fun i l -> if l then remaining := i :: !remaining) live;
  (!remaining, !parents, current)

let join_forest hg =
  if Hypergraph.num_edges hg = 0 then Some { parents = []; roots = [] }
  else begin
    let remaining, parents, current = reduce hg in
    (* acyclic iff every remaining edge has been emptied of shared vertices *)
    let ok = List.for_all (fun i -> String_set.is_empty current.(i)) remaining in
    if ok then Some { parents; roots = remaining } else None
  end

let is_acyclic hg = Option.is_some (join_forest hg)

let is_join_forest hg jf =
  let edges = Array.of_list (Hypergraph.edges hg) in
  let n = Array.length edges in
  if n = 0 then jf.roots = [] && jf.parents = []
  else begin
    let adj = Array.make n [] in
    List.iter
      (fun (a, b) ->
        adj.(a) <- b :: adj.(a);
        adj.(b) <- a :: adj.(b))
      jf.parents;
    (* each vertex's set of edges must induce a connected subforest *)
    String_set.for_all
      (fun v ->
        let holds = Array.map (String_set.mem v) edges in
        let start = ref (-1) in
        Array.iteri (fun i h -> if h && !start < 0 then start := i) holds;
        if !start < 0 then true
        else begin
          let seen = Array.make n false in
          let rec dfs i =
            seen.(i) <- true;
            List.iter (fun j -> if holds.(j) && not seen.(j) then dfs j) adj.(i)
          in
          dfs !start;
          Array.for_all2 (fun h s -> (not h) || s) holds seen
        end)
      (Hypergraph.vertices hg)
  end

let pp_join_forest ppf jf =
  Format.fprintf ppf "roots: %a; parents: %a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    jf.roots
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       (fun ppf (a, b) -> Format.fprintf ppf "%d->%d" a b))
    jf.parents
