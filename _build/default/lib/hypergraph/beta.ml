open Relational

(* A nest point is a vertex whose incident edges form a chain under ⊆.  A
   hypergraph is β-acyclic iff repeatedly removing nest points (and then
   empty edges) eliminates all vertices. *)
let is_beta_acyclic hg =
  let edges = ref (List.filter (fun e -> not (String_set.is_empty e)) (Hypergraph.edges hg)) in
  let verts = ref (Hypergraph.vertices hg) in
  let incident v = List.filter (String_set.mem v) !edges in
  let is_chain es =
    let sorted = List.sort (fun a b -> Int.compare (String_set.cardinal a) (String_set.cardinal b)) es in
    let rec ok = function
      | a :: (b :: _ as rest) -> String_set.subset a b && ok rest
      | [ _ ] | [] -> true
    in
    ok sorted
  in
  let changed = ref true in
  while !changed && not (String_set.is_empty !verts) do
    changed := false;
    match String_set.choose_opt (String_set.filter (fun v -> is_chain (incident v)) !verts) with
    | Some v ->
        verts := String_set.remove v !verts;
        edges :=
          List.filter_map
            (fun e ->
              let e' = String_set.remove v e in
              if String_set.is_empty e' then None else Some e')
            !edges;
        changed := true
    | None -> ()
  done;
  String_set.is_empty !verts

let beta_ghw_at_most hg k =
  if k < 1 then Hypergraph.num_edges hg = 0
  else if k = 1 then is_beta_acyclic hg
  else begin
    let edges = Array.of_list (Hypergraph.edges hg) in
    let m = Array.length edges in
    if m > 20 then
      invalid_arg "Beta.beta_ghw_at_most: too many edges for the exhaustive sweep";
    let ok = ref true in
    let mask = ref 1 in
    while !ok && !mask < 1 lsl m do
      let sub = Hypergraph.sub_edges hg (fun i -> !mask land (1 lsl i) <> 0) in
      if Option.is_none (Hypertree.ghw_at_most sub k) then ok := false;
      incr mask
    done;
    !ok
  end

let beta_ghw hg =
  if Hypergraph.num_edges hg = 0 then 0
  else begin
    let rec go k = if beta_ghw_at_most hg k then k else go (k + 1) in
    go 1
  end
