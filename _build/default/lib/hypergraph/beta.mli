(** β-acyclicity and β-hypertreewidth [HW′(k)] (Section 5).

    [HW′(k)] restricts [HW(k)] to CQs all of whose subqueries have
    hypertreewidth at most [k]; for [k = 1] this is β-acyclicity, which admits
    a polynomial nest-point elimination test (Fagin [11]). For [k >= 2] the
    definition quantifies over all edge subsets; we implement the literal
    sweep (the paper notes that no efficient recognition algorithm is known —
    its upper bounds pay an NP oracle exactly for this test). *)


(** Polynomial β-acyclicity test by nest-point elimination. *)
val is_beta_acyclic : Hypergraph.t -> bool

(** [beta_ghw_at_most hg k] decides whether every subhypergraph (edge subset)
    of [hg] has generalized hypertreewidth <= k. Polynomial for [k = 1];
    exponential sweep otherwise. *)
val beta_ghw_at_most : Hypergraph.t -> int -> bool

(** Exact β-hypertreewidth. *)
val beta_ghw : Hypergraph.t -> int
