(** Generalized hypertree decompositions and (generalized) hypertreewidth
    [HW(k)] (Section 3.1; the paper works with the generalized notion and
    calls it hypertreewidth). *)

open Relational

type t = {
  bags : String_set.t array;       (** [ν] *)
  guards : String_set.t list array; (** [κ]: each bag's covering edges *)
  tree : (int * int) list;
}

val width : t -> int

(** Validates: (bags, tree) is a tree decomposition and every bag is covered
    by the union of its guards. *)
val is_valid : Hypergraph.t -> t -> bool

(** [ghw_at_most hg k] decides generalized hypertreewidth <= k by exact
    separator-based search with memoization. Exponential in the number of
    edges in the worst case (the problem is NP-hard for k >= 2); intended for
    query-sized hypergraphs. [k = 1] is answered by GYO in polynomial time. *)
val ghw_at_most : Hypergraph.t -> int -> t option

(** Exact generalized hypertreewidth (iterates [ghw_at_most]). *)
val ghw : Hypergraph.t -> int
