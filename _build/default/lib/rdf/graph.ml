open Relational

type t = Database.t

let create () = Database.create ()
let add g tr = Database.add g (Triple.to_fact tr)

let of_triples ts =
  let g = create () in
  List.iter (add g) ts;
  g

let size = Database.size
let triples g = List.map Triple.of_fact (Database.facts g)
let database g = g

let match_pattern g pat =
  Database.matches g (Triple.pattern_to_atom pat) Mapping.empty

(* --- tiny line format --------------------------------------------------- *)

let tokenize line =
  let n = String.length line in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match line.[i] with
      | ' ' | '\t' -> go (i + 1) acc
      | '#' -> Ok (List.rev acc)
      | '"' ->
          let rec close j =
            if j >= n then Error "unterminated string"
            else if line.[j] = '"' then Ok j
            else close (j + 1)
          in
          (match close (i + 1) with
          | Error e -> Error e
          | Ok j -> go (j + 1) (String.sub line (i + 1) (j - i - 1) :: acc))
      | _ ->
          let rec word j =
            if j >= n || line.[j] = ' ' || line.[j] = '\t' then j else word (j + 1)
          in
          let j = word i in
          go j (String.sub line i (j - i) :: acc)
  in
  go 0 []

let value_of_token tok =
  if String.length tok > 0 && tok.[0] = '?' then
    Error ("variable " ^ tok ^ " not allowed in data")
  else
    match int_of_string_opt tok with
    | Some i -> Ok (Value.Int i)
    | None -> Ok (Value.Str tok)

let triple_of_line line =
  match tokenize line with
  | Error e -> Error e
  | Ok toks -> (
      let toks = List.filter (fun t -> t <> ".") toks in
      match toks with
      | [ s; p; o ] -> (
          match (value_of_token s, value_of_token p, value_of_token o) with
          | Ok s, Ok p, Ok o -> Ok (Triple.make s p o)
          | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
      | [] -> Error "empty line"
      | _ -> Error ("expected 3 terms: " ^ line))

let of_string doc =
  let g = create () in
  let lines = String.split_on_char '\n' doc in
  let rec go n = function
    | [] -> Ok g
    | line :: rest ->
        let stripped = String.trim line in
        if stripped = "" || stripped.[0] = '#' then go (n + 1) rest
        else
          match triple_of_line stripped with
          | Ok t ->
              add g t;
              go (n + 1) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" n e)
  in
  go 1 lines

let pp ppf g =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Triple.pp)
    (triples g)
