lib/rdf/sparql.ml: Format List Relational String String_set Term Triple Value Wdpt
