lib/rdf/graph.ml: Database Format List Mapping Printf Relational String Triple Value
