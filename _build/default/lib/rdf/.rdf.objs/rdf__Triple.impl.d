lib/rdf/triple.ml: Atom Fact Format Relational Term Value
