lib/rdf/triple.mli: Atom Fact Format Relational Term Value
