lib/rdf/sparql.mli: Format Relational Triple Wdpt
