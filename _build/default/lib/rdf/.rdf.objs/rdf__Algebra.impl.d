lib/rdf/algebra.ml: Cq Graph List Mapping Mapping_algebra Relational Sparql String_set Triple
