lib/rdf/graph.mli: Database Format Mapping Relational Triple
