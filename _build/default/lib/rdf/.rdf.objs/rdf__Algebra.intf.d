lib/rdf/algebra.mli: Graph Mapping Relational Sparql
