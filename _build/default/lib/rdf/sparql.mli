(** The {AND, OPT} fragment of SPARQL (Section 1), with the well-designedness
    condition of Pérez et al. [18], the OPT-normal-form translation to WDPTs
    of Letelier et al. [17], and a small concrete syntax.

    Concrete syntax (algebraic style, as in the paper's Example 1):
    {v
      SELECT ?y ?z WHERE {
        { ?x recorded_by ?y . ?x published "after 2010" }
        OPT { ?x NME_rating ?z }
        OPT { ?y formed_in ?z2 }
      }
    v}
    [.] and [AND] both denote conjunction; [OPT]/[OPTIONAL] is left
    associative with the same precedence, so [a OPT b OPT c] reads
    [(a OPT b) OPT c]; braces group. [SELECT *] keeps every variable
    (projection-free). *)

type expr =
  | Bgp of Triple.pattern list
  | And of expr * expr
  | Opt of expr * expr

type query = {
  select : string list option;  (** [None] = SELECT * *)
  where : expr;
}

val vars_of_expr : expr -> Relational.String_set.t

(** Well-designedness of Pérez et al.: for every subpattern [e1 OPT e2],
    every variable of [e2] occurring outside the subpattern also occurs in
    [e1]. *)
val is_well_designed : expr -> bool

(** OPT normal form: no OPT below an AND. Assumes well-designedness (the
    rewriting [(P1 OPT P2) AND P3 ≡ (P1 AND P3) OPT P2] is only sound
    then). *)
val normal_form : expr -> expr

(** Translation to a WDPT over the {!Triple.relation} schema.
    @raise Invalid_argument if the expression is not well-designed. *)
val to_pattern_tree : query -> Wdpt.Pattern_tree.t

(** Inverse translation (WDPT over the triple schema only).
    @raise Invalid_argument on non-triple atoms. *)
val of_pattern_tree : Wdpt.Pattern_tree.t -> query

(** Parse the concrete syntax. *)
val parse : string -> (query, string) result

(** [parse_and_translate s] — convenience composition. *)
val parse_and_translate : string -> (Wdpt.Pattern_tree.t, string) result

val pp_expr : Format.formatter -> expr -> unit
val pp_query : Format.formatter -> query -> unit
