open Relational

type expr =
  | Bgp of Triple.pattern list
  | And of expr * expr
  | Opt of expr * expr

type query = {
  select : string list option;
  where : expr;
}

let term_vars t =
  match Term.as_var t with
  | Some x -> String_set.singleton x
  | None -> String_set.empty

let pattern_vars (s, p, o) =
  String_set.union (term_vars s) (String_set.union (term_vars p) (term_vars o))

let rec vars_of_expr = function
  | Bgp ps ->
      List.fold_left
        (fun acc p -> String_set.union acc (pattern_vars p))
        String_set.empty ps
  | And (a, b) | Opt (a, b) -> String_set.union (vars_of_expr a) (vars_of_expr b)

let is_well_designed e =
  let rec check e outside =
    match e with
    | Bgp _ -> true
    | And (a, b) ->
        check a (String_set.union outside (vars_of_expr b))
        && check b (String_set.union outside (vars_of_expr a))
    | Opt (a, b) ->
        String_set.subset
          (String_set.inter (vars_of_expr b) outside)
          (vars_of_expr a)
        && check a (String_set.union outside (vars_of_expr b))
        && check b (String_set.union outside (vars_of_expr a))
  in
  check e String_set.empty

let rec normal_form = function
  | Bgp _ as b -> b
  | Opt (a, b) -> Opt (normal_form a, normal_form b)
  | And (a, b) -> (
      match (normal_form a, normal_form b) with
      | Opt (a1, a2), nb -> normal_form (Opt (And (a1, nb), a2))
      | na, Opt (b1, b2) -> normal_form (Opt (And (na, b1), b2))
      | Bgp xs, Bgp ys -> Bgp (xs @ ys)
      | (And _ as na), nb | na, (And _ as nb) ->
          (* normal_form never returns And *)
          ignore (na, nb);
          assert false)

let to_pattern_tree { select; where } =
  if not (is_well_designed where) then
    invalid_arg "Sparql.to_pattern_tree: pattern is not well-designed";
  let rec build e : Wdpt.Pattern_tree.spec =
    match e with
    | Bgp ps -> Node (List.map Triple.pattern_to_atom ps, [])
    | Opt (a, b) ->
        let (Node (atoms, kids)) = build a in
        Node (atoms, kids @ [ build b ])
    | And _ -> assert false (* eliminated by normal_form *)
  in
  let spec = build (normal_form where) in
  let free =
    match select with
    | None -> String_set.elements (vars_of_expr where)
    | Some vs -> vs
  in
  Wdpt.Pattern_tree.make ~free spec

let of_pattern_tree p =
  let patterns_of i =
    List.map
      (fun a ->
        match Triple.atom_to_pattern a with
        | Some pat -> pat
        | None -> invalid_arg "Sparql.of_pattern_tree: non-triple atom")
      (Wdpt.Pattern_tree.atoms p i)
  in
  let rec build i =
    let base = Bgp (patterns_of i) in
    List.fold_left
      (fun acc c -> Opt (acc, build c))
      base (Wdpt.Pattern_tree.children p i)
  in
  { select = Some (Wdpt.Pattern_tree.free p);
    where = build (Wdpt.Pattern_tree.root p) }

(* ---- concrete syntax ---------------------------------------------------- *)

type token =
  | SELECT
  | WHERE
  | STAR
  | OPT_KW
  | AND_KW
  | DOT
  | LBRACE
  | RBRACE
  | VAR of string
  | WORD of string
  | STRING of string
  | INT of int

let tokenize src =
  let n = String.length src in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '{' -> go (i + 1) (LBRACE :: acc)
      | '}' -> go (i + 1) (RBRACE :: acc)
      | '.' -> go (i + 1) (DOT :: acc)
      | '*' -> go (i + 1) (STAR :: acc)
      | '"' ->
          let rec close j =
            if j >= n then Error "unterminated string literal"
            else if src.[j] = '"' then Ok j
            else close (j + 1)
          in
          (match close (i + 1) with
          | Error e -> Error e
          | Ok j -> go (j + 1) (STRING (String.sub src (i + 1) (j - i - 1)) :: acc))
      | '?' ->
          let rec word j =
            if j < n
               && (match src.[j] with
                  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
                  | _ -> false)
            then word (j + 1)
            else j
          in
          let j = word (i + 1) in
          if j = i + 1 then Error "empty variable name"
          else go j (VAR (String.sub src (i + 1) (j - i - 1)) :: acc)
      | _ ->
          let rec word j =
            if j < n
               && (match src.[j] with
                  | ' ' | '\t' | '\n' | '\r' | '{' | '}' | '"' | '?' -> false
                  | '.' -> false
                  | _ -> true)
            then word (j + 1)
            else j
          in
          let j = word i in
          let w = String.sub src i (j - i) in
          let tok =
            match String.uppercase_ascii w with
            | "SELECT" -> SELECT
            | "WHERE" -> WHERE
            | "OPT" | "OPTIONAL" -> OPT_KW
            | "AND" -> AND_KW
            | _ -> (
                match int_of_string_opt w with
                | Some k -> INT k
                | None -> WORD w)
          in
          go j (tok :: acc)
  in
  go 0 []

exception Parse_error of string

let parse src =
  match tokenize src with
  | Error e -> Error e
  | Ok toks -> (
      let toks = ref toks in
      let peek () = match !toks with t :: _ -> Some t | [] -> None in
      let advance () = match !toks with _ :: rest -> toks := rest | [] -> () in
      let expect t name =
        match peek () with
        | Some t' when t' = t -> advance ()
        | _ -> raise (Parse_error ("expected " ^ name))
      in
      let term () =
        match peek () with
        | Some (VAR x) ->
            advance ();
            Term.var x
        | Some (WORD w) ->
            advance ();
            Term.str w
        | Some (STRING s) ->
            advance ();
            Term.str s
        | Some (INT k) ->
            advance ();
            Term.int k
        | _ -> raise (Parse_error "expected a term")
      in
      let triple () =
        let s = term () in
        let p = term () in
        let o = term () in
        (s, p, o)
      in
      (* pattern := primary (('OPT'|'AND'|'.') primary)*  left-assoc *)
      let rec primary () =
        match peek () with
        | Some LBRACE ->
            advance ();
            let e = pattern () in
            expect RBRACE "}";
            e
        | Some (VAR _ | WORD _ | STRING _ | INT _) -> Bgp [ triple () ]
        | _ -> raise (Parse_error "expected a group or a triple")
      and pattern () =
        let rec loop acc =
          match peek () with
          | Some OPT_KW ->
              advance ();
              loop (Opt (acc, primary ()))
          | Some (AND_KW | DOT) ->
              advance ();
              (* trailing dot before '}' is allowed *)
              (match peek () with
              | Some RBRACE | None -> acc
              | _ -> loop (And (acc, primary ())))
          | Some (VAR _ | WORD _ | STRING _ | INT _ | LBRACE) ->
              (* juxtaposition also means AND *)
              loop (And (acc, primary ()))
          | _ -> acc
        in
        loop (primary ())
      in
      try
        expect SELECT "SELECT";
        let select =
          match peek () with
          | Some STAR ->
              advance ();
              None
          | _ ->
              let rec vars acc =
                match peek () with
                | Some (VAR x) ->
                    advance ();
                    vars (x :: acc)
                | _ -> List.rev acc
              in
              let vs = vars [] in
              if vs = [] then raise (Parse_error "expected variables or * after SELECT");
              Some vs
        in
        expect WHERE "WHERE";
        let where = pattern () in
        (match peek () with
        | None -> ()
        | Some _ -> raise (Parse_error "trailing tokens"));
        Ok { select; where }
      with Parse_error e -> Error e)

let parse_and_translate src =
  match parse src with
  | Error e -> Error e
  | Ok q -> (
      try Ok (to_pattern_tree q) with Invalid_argument e -> Error e)

let pp_term ppf t =
  match t with
  | Term.Var x -> Format.fprintf ppf "?%s" x
  | Term.Const (Value.Int k) -> Format.pp_print_int ppf k
  | Term.Const (Value.Str s) ->
      if String.contains s ' ' then Format.fprintf ppf "%S" s
      else Format.pp_print_string ppf s

let rec pp_expr ppf = function
  | Bgp ps ->
      Format.fprintf ppf "{ %a }"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " . ")
           (fun ppf (s, p, o) ->
             Format.fprintf ppf "%a %a %a" pp_term s pp_term p pp_term o))
        ps
  | And (a, b) -> Format.fprintf ppf "{ %a AND %a }" pp_expr a pp_expr b
  | Opt (a, b) -> Format.fprintf ppf "{ %a OPT %a }" pp_expr a pp_expr b

let pp_query ppf { select; where } =
  (match select with
  | None -> Format.fprintf ppf "SELECT * "
  | Some vs ->
      Format.fprintf ppf "SELECT %a "
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
           (fun ppf v -> Format.fprintf ppf "?%s" v))
        vs);
  Format.fprintf ppf "WHERE %a" pp_expr where
