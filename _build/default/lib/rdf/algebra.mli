(** The original SPARQL algebra semantics of Pérez et al. [18] for the
    {AND, OPT} fragment:

    - ⟦BGP⟧ = the mappings with domain vars(BGP) embedding every triple,
    - ⟦P₁ AND P₂⟧ = ⟦P₁⟧ ⋈ ⟦P₂⟧ (compatible unions),
    - ⟦P₁ OPT P₂⟧ = (⟦P₁⟧ ⋈ ⟦P₂⟧) ∪ (⟦P₁⟧ ∖ ⟦P₂⟧).

    For *well-designed* patterns this coincides with the WDPT semantics of
    Definition 2 (the theorem of Letelier et al. [17] that justifies pattern
    trees); the test suite cross-validates the two implementations. Unlike
    the WDPT engine, this evaluator also gives meaning to non-well-designed
    patterns. *)

open Relational

(** All solution mappings of a graph pattern. *)
val eval_expr : Graph.t -> Sparql.expr -> Mapping.Set.t

(** Evaluation of a full query (projection applied). *)
val eval : Graph.t -> Sparql.query -> Mapping.Set.t
