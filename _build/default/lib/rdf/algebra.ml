open Relational

let bgp_eval g patterns =
  let db = Graph.database g in
  let atoms = List.map Triple.pattern_to_atom patterns in
  Mapping.Set.of_list (Cq.Eval.homomorphisms db atoms ~init:Mapping.empty)

let rec eval_expr g = function
  | Sparql.Bgp ps -> bgp_eval g ps
  | Sparql.And (p1, p2) -> Mapping_algebra.join (eval_expr g p1) (eval_expr g p2)
  | Sparql.Opt (p1, p2) ->
      Mapping_algebra.left_outer_join (eval_expr g p1) (eval_expr g p2)

let eval g { Sparql.select; where } =
  let sols = eval_expr g where in
  match select with
  | None -> sols
  | Some vs -> Mapping_algebra.project (String_set.of_list vs) sols
