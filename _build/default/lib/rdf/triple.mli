(** RDF triples: the single ternary relation of "RDF WDPTs" (Section 2).

    The relation name used throughout the RDF layer is {!relation}. *)

open Relational

(** The distinguished ternary relation name. *)
val relation : string

(** A ground triple (subject, predicate, object). *)
type t = Value.t * Value.t * Value.t

val make : Value.t -> Value.t -> Value.t -> t
val to_fact : t -> Fact.t

(** @raise Invalid_argument if the fact is not a triple over {!relation}. *)
val of_fact : Fact.t -> t

(** Triple pattern: terms in the three positions. *)
type pattern = Term.t * Term.t * Term.t

val pattern_to_atom : pattern -> Atom.t
val atom_to_pattern : Atom.t -> pattern option
val pp : Format.formatter -> t -> unit
