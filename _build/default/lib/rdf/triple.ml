open Relational

let relation = "triple"

type t = Value.t * Value.t * Value.t

let make s p o = (s, p, o)
let to_fact (s, p, o) = Fact.make relation [ s; p; o ]

let of_fact f =
  if Fact.rel f <> relation || Fact.arity f <> 3 then
    invalid_arg "Triple.of_fact: not a triple"
  else (Fact.arg f 0, Fact.arg f 1, Fact.arg f 2)

type pattern = Term.t * Term.t * Term.t

let pattern_to_atom (s, p, o) = Atom.make relation [ s; p; o ]

let atom_to_pattern a =
  match Atom.args a with
  | [ s; p; o ] when Atom.rel a = relation -> Some (s, p, o)
  | _ -> None

let pp ppf (s, p, o) =
  Format.fprintf ppf "(%a, %a, %a)" Value.pp s Value.pp p Value.pp o
