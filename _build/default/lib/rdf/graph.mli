(** Triple stores: a thin RDF-flavoured wrapper around {!Relational.Database}
    (which already indexes every (relation, position, value), giving the
    usual S/P/O access paths). *)

open Relational

type t

val create : unit -> t
val add : t -> Triple.t -> unit
val of_triples : Triple.t list -> t
val size : t -> int
val triples : t -> Triple.t list
val database : t -> Database.t

(** [match_pattern g pat] — all bindings of the pattern's variables. *)
val match_pattern : t -> Triple.pattern -> Mapping.t list

(** Parse a whitespace-separated "s p o ." line ("." optional); tokens are
    bare words, ?-prefixed tokens are rejected (no variables in data),
    double-quoted strings may contain spaces, and integers become [Int]. *)
val triple_of_line : string -> (Triple.t, string) result

(** Parse a whole document, one triple per line; '#' starts a comment. *)
val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit
