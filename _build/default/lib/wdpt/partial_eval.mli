(** PARTIAL-EVAL via the Theorem 8 algorithm: find the minimal rooted subtree
    containing dom(h), instantiate its CQ with [h], and decide satisfiability
    with the decomposition-based evaluator. LOGCFL/polynomial for globally
    tractable WDPTs; correct for all WDPTs. *)

open Relational

(** [decision db p h]: is there [h' ∈ p(D)] with [h ⊑ h']? *)
val decision : Database.t -> Pattern_tree.t -> Mapping.t -> bool
