(** WB(k)-approximations of WDPTs (Section 5.2).

    An approximation of [p] is a WDPT [p' ∈ WB(k)] with [p' ⊑ p] such that no
    [p'' ∈ WB(k)] satisfies [p' ⊏ p'' ⊑ p]. Theorem 14 shows approximations
    always exist and may be exponentially larger than [p] (Figure 2 /
    Theorem 15).

    This module implements the constructive search used in practice: starting
    from [p], apply ⊑-decreasing moves — merging two variables (fixing free
    ones), dropping a leaf node, collapsing a node into its parent — each of
    which yields a WDPT subsumed by the previous one; collect the in-class
    results and keep the ⊑-maximal ones. On single-node WDPTs this coincides
    with the complete quotient search for CQ approximations [4]. For general
    WDPTs the paper's Figure 2 shows that optimal approximations can require
    *growing* the tree (copying instantiated atoms into a node), which no
    size-decreasing search reaches; such cases are covered by the explicit
    Figure-2 construction in the workload library and quantified in the
    benchmarks. *)

(** One ⊑-decreasing move applied to a WDPT. *)
type move =
  | Merge of string * string  (** rename first variable to second *)
  | Drop_leaf of int
  | Collapse of int           (** merge node into its parent *)

(** All applicable moves. *)
val moves : Pattern_tree.t -> move list

(** [apply p m] performs the move; [None] if the result would not be
    well-designed. *)
val apply : Pattern_tree.t -> move -> Pattern_tree.t option

(** [candidates ~in_class p]: in-class WDPTs reachable by moves, pruned below
    in-class results (sound for maximality because moves are ⊑-decreasing). *)
val candidates : in_class:(Pattern_tree.t -> bool) -> Pattern_tree.t -> Pattern_tree.t list

(** [approximations ~in_class p]: the ⊑-maximal candidates, deduplicated up
    to ≡ₛ. *)
val approximations :
  in_class:(Pattern_tree.t -> bool) -> Pattern_tree.t -> Pattern_tree.t list

(** [wb_approximations ~width ~k p] with [width ∈ {Tw, Hw'}]. *)
val wb_approximations :
  width:Classes.width -> k:int -> Pattern_tree.t -> Pattern_tree.t list

(** [is_approximation ~in_class p' p]: the WB(k)-APPROXIMATION decision
    problem of Proposition 8, relative to the candidate space: checks
    [p' ∈ class], [p' ⊑ p], and that no candidate strictly between them
    exists. *)
val is_approximation :
  in_class:(Pattern_tree.t -> bool) -> Pattern_tree.t -> Pattern_tree.t -> bool

(** Lemma 1 normalization, first phase: restrict to nodes on paths to
    free-variable-introducing nodes and merge free-variable-less only
    children into their parents. Preserves ≡ₛ. *)
val normalize : Pattern_tree.t -> Pattern_tree.t
