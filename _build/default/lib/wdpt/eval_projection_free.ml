open Relational

let decision db p h =
  if not (Pattern_tree.is_projection_free p) then
    invalid_arg "Eval_projection_free.decision: query has projection";
  let dom = Mapping.domain h in
  (* the covered rooted subtree: nodes reachable from the root through nodes
     whose variables are all bound by h *)
  let covered i = String_set.subset (Pattern_tree.node_vars p i) dom in
  if not (covered (Pattern_tree.root p)) then false
  else begin
    let in_s = Array.make (Pattern_tree.node_count p) false in
    let rec dfs i =
      in_s.(i) <- true;
      List.iter (fun c -> if covered c then dfs c) (Pattern_tree.children p i)
    in
    dfs (Pattern_tree.root p);
    let s = List.filter (fun i -> in_s.(i)) (Pattern_tree.all_nodes p) in
    (* dom(h) must be exactly the variables of the subtree *)
    String_set.equal (Pattern_tree.vars_of_subtree p s) dom
    (* every pattern of the subtree must hold as ground facts *)
    && List.for_all
         (fun i ->
           List.for_all
             (fun a -> Database.mem db (Atom.to_fact (Mapping.apply_atom h a)))
             (Pattern_tree.atoms p i))
         s
    (* maximality: no child hanging off the subtree is matchable *)
    && List.for_all
         (fun i ->
           List.for_all
             (fun c ->
               in_s.(c)
               || not
                    (Cq.Decomp_eval.satisfiable db
                       (Cq.Query.boolean (Pattern_tree.atoms p c))
                       ~init:(Mapping.restrict (Pattern_tree.node_vars p c) h)))
             (Pattern_tree.children p i))
         s
  end
