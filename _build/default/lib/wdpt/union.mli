(** Unions of WDPTs (Section 6): evaluation, the [φ_cq] translation
    (Proposition 9 / Example 8), UWB(k)-membership (Theorem 17) and
    UWB(k)-approximation (Theorem 18). *)

open Relational

type t = Pattern_tree.t list

val eval : Database.t -> t -> Mapping.Set.t
val eval_max : Database.t -> t -> Mapping.Set.t

(** ⋃-EVAL. *)
val decision : Database.t -> t -> Mapping.t -> bool

(** ⋃-PARTIAL-EVAL (via the tractable per-WDPT algorithm). *)
val partial_decision : Database.t -> t -> Mapping.t -> bool

(** ⋃-MAX-EVAL: is [h] in the union's evaluation and maximal within it?
    Implemented via per-WDPT partial-evaluation checks. *)
val max_decision : Database.t -> t -> Mapping.t -> bool

(** [subsumes u1 u2]: [φ ⊑ φ′] for unions. *)
val subsumes : t -> t -> bool

val equivalent : t -> t -> bool

(** [phi_cq u]: the union of CQs [r_{T′}] over all disjuncts and rooted
    subtrees; [φ ≡ₛ φ_cq] (Section 6). Exponential in the trees' sizes. *)
val phi_cq : t -> Cq.Query.t list

(** [reduce_cqs qs]: remove CQs contained in another CQ of the list
    (the [φ_cq^r] of Theorem 17's proof). *)
val reduce_cqs : Cq.Query.t list -> Cq.Query.t list

(** Theorem 17: is [φ ∈ M(UWB(k))]? Exact: checks that every CQ of the
    reduced [φ_cq] is equivalent to one in C(k) (via cores). *)
val in_m_uwb : width:Classes.width -> k:int -> t -> bool

(** Theorem 17(2): when the membership test succeeds, the equivalent union of
    polynomial-size WB(k) WDPTs (here: single-node WDPTs, i.e. the cores). *)
val uwb_witness : width:Classes.width -> k:int -> t -> t option

(** Theorem 18: the UWB(k)-approximation of [φ] — the union of the
    C(k)-approximations of the CQs of [φ_cq], pruned by containment. Unique
    up to ≡ₛ. *)
val uwb_approximation : width:Classes.width -> k:int -> t -> t

(** Proposition 10 decision problem: is [φ'] (a union of WB(k) WDPTs) a
    UWB(k)-approximation of [φ]? *)
val is_uwb_approximation : width:Classes.width -> k:int -> t -> t -> bool
