open Relational

let subsumes p1 p2 =
  let free1 = Pattern_tree.free_set p1 in
  Seq.for_all
    (fun s ->
      let q = Pattern_tree.q_of_subtree p1 s in
      let db, frozen = Cq.Query.freeze q in
      let target =
        Mapping.restrict (String_set.inter free1 (Cq.Query.vars q)) frozen
      in
      Partial_eval.decision db p2 target)
    (Pattern_tree.subtrees p1)

let equivalent p1 p2 = subsumes p1 p2 && subsumes p2 p1
let max_equivalent = equivalent
