open Relational

let contained_on db p1 p2 =
  Mapping.Set.subset (Semantics.eval db p1) (Semantics.eval db p2)

let refute p1 p2 =
  let witness =
    Seq.find_map
      (fun s ->
        let q = Pattern_tree.q_of_subtree p1 s in
        let db, _ = Cq.Query.freeze q in
        if contained_on db p1 p2 then None else Some db)
      (Pattern_tree.subtrees p1)
  in
  witness
