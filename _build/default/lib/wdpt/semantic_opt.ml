
let in_m_wb_cq ~width ~k p =
  if Pattern_tree.node_count p <> 1 then
    invalid_arg "Semantic_opt.in_m_wb_cq: single-node WDPTs only";
  let q = Pattern_tree.r_of_subtree p [ 0 ] in
  Cq.Core_q.equivalent_to_class q ~in_class:(Classes.cq_in_class ~width ~k)

let wb_witness ~width ~k p =
  let in_class = Classes.in_wb ~width ~k in
  if in_class p then Some p
  else begin
    let normalized = Approximation.normalize p in
    if in_class normalized then Some normalized
    else if Pattern_tree.node_count p = 1 then begin
      (* exact via the core: rebuild a single-node witness *)
      let q = Pattern_tree.r_of_subtree p [ 0 ] in
      let c = Cq.Core_q.core q in
      if Classes.cq_in_class ~width ~k c then Some (Pattern_tree.of_cq c) else None
    end
    else begin
      (* search the ⊑-decreasing candidate space for an ≡ₛ witness *)
      let cands = Approximation.candidates ~in_class p in
      List.find_opt (fun c -> Subsumption.equivalent c p) cands
    end
  end

type fpt = {
  query : Pattern_tree.t;
  witness : Pattern_tree.t option;
}

let prepare ~width ~k p = { query = p; witness = wb_witness ~width ~k p }
let used_witness f = f.witness

let partial_decision f db h =
  match f.witness with
  | Some w -> Partial_eval.decision db w h
  | None -> Semantics.partial_decision db f.query h

let max_decision f db h =
  match f.witness with
  | Some w -> Max_eval.decision db w h
  | None -> Semantics.max_decision db f.query h
