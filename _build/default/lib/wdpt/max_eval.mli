(** MAX-EVAL via the Theorem 9 algorithm.

    [h ∈ p_m(D)] iff [h] is a ⊑-maximal element of the projections of *all*
    homomorphisms from [p] to [D] (maximal elements of [p(D)] and of that
    larger set coincide, because every homomorphism extends to a maximal one
    with a ⊒ projection). This reduces MAX-EVAL to globally tractable CQ
    satisfiability checks: one for dom(h) and one per absent free variable. *)

open Relational

(** [decision db p h]: is [h ∈ p_m(D)]? *)
val decision : Database.t -> Pattern_tree.t -> Mapping.t -> bool

(** [in_projection_closure db p h]: is [h] the projection of *some*
    homomorphism from [p] to [db] (condition (a) above)? Used for unions. *)
val in_projection_closure : Database.t -> Pattern_tree.t -> Mapping.t -> bool

(** [extends_strictly db p h]: does some homomorphism of [p] project to a
    strict ⊒-extension of [h] (condition (b) negated)? *)
val extends_strictly : Database.t -> Pattern_tree.t -> Mapping.t -> bool
