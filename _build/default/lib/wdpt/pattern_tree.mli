(** Well-designed pattern trees (Definition 1).

    A WDPT is a rooted tree whose nodes carry sets of relational atoms, with
    the well-designedness condition: the nodes mentioning any given variable
    form a connected subtree. Nodes are indexed [0 .. node_count - 1] with the
    root at index 0 and children appearing after their parents. *)

open Relational

type t

(** Tree-shaped description used to build pattern trees. *)
type spec = Node of Atom.t list * spec list

(** [make ~free spec] builds a WDPT.
    @raise Invalid_argument if the tree is not well-designed, or [free] lists
    a variable not occurring in the tree, or has duplicates. *)
val make : free:string list -> spec -> t

(** A single-node WDPT (a CQ). *)
val of_cq : Cq.Query.t -> t

(** [well_designed_spec spec] checks condition (2) of Definition 1. *)
val well_designed_spec : spec -> bool

val free : t -> string list
val free_set : t -> String_set.t
val node_count : t -> int
val root : t -> int

(** Parent index; [-1] for the root. *)
val parent : t -> int -> int
val children : t -> int -> int list
val atoms : t -> int -> Atom.t list
val node_vars : t -> int -> String_set.t
val vars : t -> String_set.t

(** Total number of atoms, the paper's |p|. *)
val size : t -> int

val is_projection_free : t -> bool

(** [to_spec t] recovers the tree description. *)
val to_spec : t -> spec

(** {2 Rooted subtrees}

    A rooted subtree is a set of node indices containing the root and closed
    under parents; it is represented as a sorted [int list]. *)

(** Lazy enumeration of all rooted subtrees (there are exponentially many). *)
val subtrees : t -> int list Seq.t

val subtree_count : t -> int

(** The full subtree (all nodes). *)
val all_nodes : t -> int list

(** [atoms_of_subtree t s] — the atoms of the nodes of [s]. *)
val atoms_of_subtree : t -> int list -> Atom.t list

(** [vars_of_subtree t s]. *)
val vars_of_subtree : t -> int list -> String_set.t

(** [q_of_subtree t s] is the CQ q_{T'}: all variables of the subtree free
    (Section 2). *)
val q_of_subtree : t -> int list -> Cq.Query.t

(** [r_of_subtree t s] is the CQ r_{T'}: head restricted to the free
    variables of the WDPT occurring in the subtree (Section 6). *)
val r_of_subtree : t -> int list -> Cq.Query.t

(** The CQ of the whole tree with every variable free. *)
val q_full : t -> Cq.Query.t

(** [minimal_subtree_for t vs] is the smallest rooted subtree whose nodes
    mention every variable of [vs], or [None] if some variable does not occur
    in the tree. Unique by well-designedness. *)
val minimal_subtree_for : t -> String_set.t -> int list option

(** [maximal_subtree_without t keep] is the largest rooted subtree whose
    nodes mention no free variable outside [keep]: nodes reachable from the
    root through nodes satisfying the condition. [None] if the root itself
    violates it. *)
val maximal_subtree_without : t -> String_set.t -> int list option

(** {2 Transformations} *)

(** [quotient f t] applies a variable map to every atom ([f] must fix free
    variables); returns [None] if the image violates well-designedness. *)
val quotient : (string -> string) -> t -> t option

(** [drop_leaf t i] removes leaf node [i] (and any free variables that
    disappear with it).
    @raise Invalid_argument if [i] is the root or not a leaf. *)
val drop_leaf : t -> int -> t

(** [collapse_into_parent t i] merges node [i]'s atoms into its parent,
    reattaching [i]'s children to the parent; returns [None] if the result is
    not well-designed (it always is, in fact, but the check is kept cheap and
    safe). *)
val collapse_into_parent : t -> int -> t option

val equal_syntactic : t -> t -> bool
val compare_syntactic : t -> t -> int

(** Stable canonical text (for memoization keys). *)
val canonical_key : t -> string

val pp : Format.formatter -> t -> unit
