(** Bottom-up algebraic evaluation of WDPTs: each subtree's solution set is
    computed independently and combined with the left-outer-join
    interpretation of optional matching,

    ⟦t⟧ = ⟦λ(t)⟧ ⟕ ⟦c₁⟧ ⟕ ... ⟕ ⟦cₙ⟧,

    which coincides with Definition 2 on well-designed trees (the
    correspondence of pattern trees and well-designed {AND, OPT} patterns of
    Letelier et al. [17]). A third, independent implementation of the
    semantics, cross-validated in the test suite against the procedural and
    reference engines. *)

open Relational

(** Solutions of the tree before projection (= the maximal homomorphisms). *)
val solutions : Database.t -> Pattern_tree.t -> Mapping.Set.t

(** The evaluation p(D). *)
val eval : Database.t -> Pattern_tree.t -> Mapping.Set.t

(** p_m(D). *)
val eval_max : Database.t -> Pattern_tree.t -> Mapping.Set.t
