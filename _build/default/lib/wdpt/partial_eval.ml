open Relational

let decision db p h =
  String_set.subset (Mapping.domain h) (Pattern_tree.free_set p)
  &&
  match Pattern_tree.minimal_subtree_for p (Mapping.domain h) with
  | None -> false
  | Some s ->
      let q = Cq.Query.boolean (Pattern_tree.atoms_of_subtree p s) in
      Cq.Decomp_eval.satisfiable db q ~init:h
