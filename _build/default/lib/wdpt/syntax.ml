open Relational

type token =
  | FREE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | VAR of string
  | IDENT of string
  | INT of int
  | STRING of string

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' | '-' | '.' | '@' -> true
  | _ -> false

let tokenize src =
  let n = String.length src in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '#' ->
          let rec eol j = if j >= n || src.[j] = '\n' then j else eol (j + 1) in
          go (eol i) acc
      | '(' -> go (i + 1) (LPAREN :: acc)
      | ')' -> go (i + 1) (RPAREN :: acc)
      | '{' -> go (i + 1) (LBRACE :: acc)
      | '}' -> go (i + 1) (RBRACE :: acc)
      | '[' -> go (i + 1) (LBRACKET :: acc)
      | ']' -> go (i + 1) (RBRACKET :: acc)
      | ',' -> go (i + 1) (COMMA :: acc)
      | ';' -> go (i + 1) (SEMI :: acc)
      | '"' ->
          let rec close j =
            if j >= n then Error "unterminated string literal"
            else if src.[j] = '"' then Ok j
            else close (j + 1)
          in
          (match close (i + 1) with
          | Error e -> Error e
          | Ok j -> go (j + 1) (STRING (String.sub src (i + 1) (j - i - 1)) :: acc))
      | '?' ->
          let rec word j = if j < n && is_ident_char src.[j] then word (j + 1) else j in
          let j = word (i + 1) in
          if j = i + 1 then Error "empty variable name"
          else go j (VAR (String.sub src (i + 1) (j - i - 1)) :: acc)
      | '-' | '0' .. '9' ->
          let rec num j =
            if j < n && (match src.[j] with '0' .. '9' -> true | _ -> false) then
              num (j + 1)
            else j
          in
          let j = num (i + 1) in
          (match int_of_string_opt (String.sub src i (j - i)) with
          | Some k -> go j (INT k :: acc)
          | None -> Error ("bad number at offset " ^ string_of_int i))
      | c when is_ident_char c ->
          let rec word j = if j < n && is_ident_char src.[j] then word (j + 1) else j in
          let j = word i in
          let w = String.sub src i (j - i) in
          let tok = if String.lowercase_ascii w = "free" then FREE else IDENT w in
          go j (tok :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []

exception Parse_error of string

type state = { mutable toks : token list }

let peek st = match st.toks with t :: _ -> Some t | [] -> None
let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st t name =
  match peek st with
  | Some t' when t' = t -> advance st
  | _ -> raise (Parse_error ("expected " ^ name))

let term st =
  match peek st with
  | Some (VAR x) ->
      advance st;
      Term.var x
  | Some (IDENT w) ->
      advance st;
      Term.str w
  | Some (STRING s) ->
      advance st;
      Term.str s
  | Some (INT k) ->
      advance st;
      Term.int k
  | _ -> raise (Parse_error "expected a term")

let rec comma_sep st elem close =
  match peek st with
  | Some t when t = close -> []
  | _ ->
      let x = elem st in
      (match peek st with
      | Some COMMA ->
          advance st;
          x :: comma_sep st elem close
      | _ -> [ x ])

let atom st =
  match peek st with
  | Some (IDENT r) ->
      advance st;
      expect st LPAREN "(";
      let args = comma_sep st term RPAREN in
      expect st RPAREN ")";
      Atom.make r args
  | _ -> raise (Parse_error "expected a relation name")

let rec node st : Pattern_tree.spec =
  expect st LBRACE "{";
  let atoms = comma_sep st atom RBRACE in
  expect st RBRACE "}";
  let kids =
    match peek st with
    | Some LBRACKET ->
        advance st;
        let rec sep () =
          let k = node st in
          match peek st with
          | Some SEMI ->
              advance st;
              k :: sep ()
          | _ -> [ k ]
        in
        let kids = sep () in
        expect st RBRACKET "]";
        kids
    | _ -> []
  in
  Node (atoms, kids)

let var_name st =
  match peek st with
  | Some (IDENT x) ->
      advance st;
      x
  | Some (VAR x) ->
      advance st;
      x
  | _ -> raise (Parse_error "expected a variable name")

let one_wdpt st =
  expect st FREE "free";
  expect st LPAREN "(";
  let free = comma_sep st var_name RPAREN in
  expect st RPAREN ")";
  let spec = node st in
  Pattern_tree.make ~free spec

let parse src =
  match tokenize src with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks } in
      try
        let p = one_wdpt st in
        (match peek st with
        | None -> ()
        | Some _ -> raise (Parse_error "trailing tokens"));
        Ok p
      with
      | Parse_error e -> Error e
      | Invalid_argument e -> Error e)

let parse_union src =
  match tokenize src with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks } in
      try
        let rec go acc =
          let p = one_wdpt st in
          match peek st with
          | Some (IDENT w) when String.uppercase_ascii w = "UNION" ->
              advance st;
              go (p :: acc)
          | None -> List.rev (p :: acc)
          | Some _ -> raise (Parse_error "expected UNION or end of input")
        in
        Ok (go [])
      with
      | Parse_error e -> Error e
      | Invalid_argument e -> Error e)

let parse_fact line =
  match tokenize line with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks } in
      try
        let a = atom st in
        (match peek st with
        | None -> ()
        | Some _ -> raise (Parse_error "trailing tokens"));
        if Atom.is_ground a then Ok (Atom.to_fact a)
        else Error "facts must be ground (no variables)"
      with Parse_error e -> Error e)

let parse_database doc =
  let db = Database.create () in
  let rec go n = function
    | [] -> Ok db
    | line :: rest ->
        let stripped = String.trim line in
        if stripped = "" || stripped.[0] = '#' then go (n + 1) rest
        else
          match parse_fact stripped with
          | Ok f ->
              Database.add db f;
              go (n + 1) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" n e)
  in
  go 1 (String.split_on_char '\n' doc)

let to_string p = Format.asprintf "%a" Pattern_tree.pp p
