(** Containment of WDPTs — undecidable (Theorem 10, after [19]), even under
    local tractability and bounded interface. This module therefore offers
    only what is possible:

    - exact checks relative to a *fixed* database;
    - a sound refutation search over canonical databases: if a counterexample
      is found, containment definitely fails (no [false] answer can be
      trusted as containment holding — hence the option-typed interface);
    - the decidable relaxation, subsumption, lives in {!Subsumption}. *)

open Relational

(** [contained_on db p1 p2]: does [p1(db) ⊆ p2(db)] hold on this database? *)
val contained_on : Database.t -> Pattern_tree.t -> Pattern_tree.t -> bool

(** [refute p1 p2]: search the canonical databases of [p1]'s rooted subtrees
    for a witness database with [p1(D) ⊄ p2(D)]. [Some d] refutes
    containment; [None] is *inconclusive* (containment itself is
    undecidable). *)
val refute : Pattern_tree.t -> Pattern_tree.t -> Database.t option
