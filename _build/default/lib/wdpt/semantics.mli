(** Semantics of WDPTs (Definition 2) and the three evaluation problems of
    Section 3 in their general (unrestricted, hence exponential) form.

    Two independent implementations are provided and cross-validated in the
    test suite: a reference one that literally follows Definition 2, and a
    procedural top-down one (the pt-evaluation of Letelier et al. [17]) that
    exploits well-designedness to extend homomorphisms branch by branch. *)

open Relational

(** All maximal homomorphisms from [p] to [db] (procedural algorithm). *)
val maximal_homomorphisms : Database.t -> Pattern_tree.t -> Mapping.t list

(** Streaming enumeration of the maximal homomorphisms (no duplicate
    suppression: distinct branch extensions can project to equal answers). *)
val iter_maximal_homomorphisms :
  Database.t -> Pattern_tree.t -> (Mapping.t -> unit) -> unit

(** Reference implementation: enumerate rooted subtrees, evaluate their CQs,
    keep the ⊑-maximal mappings. *)
val maximal_homomorphisms_naive : Database.t -> Pattern_tree.t -> Mapping.t list

(** One maximal homomorphism, computed greedily without enumerating the
    answer set ([None] iff the root pattern has no match). *)
val any_maximal_homomorphism : Database.t -> Pattern_tree.t -> Mapping.t option

(** The evaluation p(D): projections of the maximal homomorphisms to the free
    variables. *)
val eval : Database.t -> Pattern_tree.t -> Mapping.Set.t

val eval_naive : Database.t -> Pattern_tree.t -> Mapping.Set.t

(** The maximal-mappings evaluation p_m(D) (Section 3.4): the ⊑-maximal
    elements of p(D). *)
val eval_max : Database.t -> Pattern_tree.t -> Mapping.Set.t

(** EVAL(C): is [h ∈ p(D)]? *)
val decision : Database.t -> Pattern_tree.t -> Mapping.t -> bool

(** PARTIAL-EVAL(C): is there [h' ∈ p(D)] with [h ⊑ h']? *)
val partial_decision : Database.t -> Pattern_tree.t -> Mapping.t -> bool

(** MAX-EVAL(C): is [h ∈ p_m(D)]? *)
val max_decision : Database.t -> Pattern_tree.t -> Mapping.t -> bool
