open Relational

let solutions db p =
  let rec sols node =
    let local =
      Mapping.Set.of_list
        (Cq.Eval.homomorphisms db (Pattern_tree.atoms p node) ~init:Mapping.empty)
    in
    List.fold_left
      (fun acc child -> Mapping_algebra.left_outer_join acc (sols child))
      local (Pattern_tree.children p node)
  in
  sols (Pattern_tree.root p)

let eval db p = Mapping_algebra.project (Pattern_tree.free_set p) (solutions db p)

let eval_max db p =
  Mapping.Set.of_list
    (Mapping.maximal_elements (Mapping.Set.elements (eval db p)))
