lib/wdpt/reductions.mli: Database Mapping Pattern_tree Relational
