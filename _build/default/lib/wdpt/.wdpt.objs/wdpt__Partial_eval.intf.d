lib/wdpt/partial_eval.mli: Database Mapping Pattern_tree Relational
