lib/wdpt/union.ml: Classes Cq Eval_tractable Hashtbl List Mapping Max_eval Partial_eval Pattern_tree Relational Semantics Seq String_set
