lib/wdpt/approximation.ml: Array Classes Hashtbl List Pattern_tree Relational String_set Subsumption
