lib/wdpt/containment_w.mli: Database Pattern_tree Relational
