lib/wdpt/classes.mli: Cq Hypergraphs Pattern_tree
