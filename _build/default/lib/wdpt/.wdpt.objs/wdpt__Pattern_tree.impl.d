lib/wdpt/pattern_tree.ml: Array Atom Cq Format Fun Hashtbl Int List Option Relational Seq String String_set Term
