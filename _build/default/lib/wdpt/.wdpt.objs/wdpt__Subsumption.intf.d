lib/wdpt/subsumption.mli: Pattern_tree
