lib/wdpt/classes.ml: Array Atom Cq Fun Hashtbl Hypergraphs List Option Pattern_tree Relational Seq String_set
