lib/wdpt/optimizer.mli: Database Mapping Pattern_tree Relational
