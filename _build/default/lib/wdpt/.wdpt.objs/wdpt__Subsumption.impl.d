lib/wdpt/subsumption.ml: Cq Mapping Partial_eval Pattern_tree Relational Seq String_set
