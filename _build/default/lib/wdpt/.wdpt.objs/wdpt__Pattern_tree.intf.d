lib/wdpt/pattern_tree.mli: Atom Cq Format Relational Seq String_set
