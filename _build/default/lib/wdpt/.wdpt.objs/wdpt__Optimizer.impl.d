lib/wdpt/optimizer.ml: Approximation Classes Eval_tractable List Mapping Partial_eval Pattern_tree Printf Relational Semantic_opt Semantics
