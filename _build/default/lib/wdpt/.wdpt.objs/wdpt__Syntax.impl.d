lib/wdpt/syntax.ml: Atom Database Format List Pattern_tree Printf Relational String Term
