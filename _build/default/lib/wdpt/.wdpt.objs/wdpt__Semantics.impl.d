lib/wdpt/semantics.ml: Cq List Mapping Option Pattern_tree Relational Seq
