lib/wdpt/max_eval.mli: Database Mapping Pattern_tree Relational
