lib/wdpt/semantic_opt.ml: Approximation Classes Cq List Max_eval Partial_eval Pattern_tree Semantics Subsumption
