lib/wdpt/semantics.mli: Database Mapping Pattern_tree Relational
