lib/wdpt/eval_tractable.mli: Database Mapping Pattern_tree Relational
