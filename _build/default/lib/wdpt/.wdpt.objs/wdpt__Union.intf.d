lib/wdpt/union.mli: Classes Cq Database Mapping Pattern_tree Relational
