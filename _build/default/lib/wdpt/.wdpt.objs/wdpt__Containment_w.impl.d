lib/wdpt/containment_w.ml: Cq Mapping Pattern_tree Relational Semantics Seq
