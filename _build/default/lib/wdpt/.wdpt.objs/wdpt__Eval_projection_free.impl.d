lib/wdpt/eval_projection_free.ml: Array Atom Cq Database List Mapping Pattern_tree Relational String_set
