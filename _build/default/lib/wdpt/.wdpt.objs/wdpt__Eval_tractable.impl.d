lib/wdpt/eval_tractable.ml: Array Atom Cq Database Format Hashtbl List Mapping Pattern_tree Relational String_set
