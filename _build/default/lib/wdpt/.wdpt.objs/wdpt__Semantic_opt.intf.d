lib/wdpt/semantic_opt.mli: Classes Pattern_tree Relational
