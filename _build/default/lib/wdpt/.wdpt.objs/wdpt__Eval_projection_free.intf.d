lib/wdpt/eval_projection_free.mli: Database Mapping Pattern_tree Relational
