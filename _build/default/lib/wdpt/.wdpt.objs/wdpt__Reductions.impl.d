lib/wdpt/reductions.ml: Array Atom Database Fact Fun List Mapping Pattern_tree Printf Random Relational Term Value
