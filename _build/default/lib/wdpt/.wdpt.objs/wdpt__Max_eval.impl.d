lib/wdpt/max_eval.ml: Cq Mapping Pattern_tree Relational String_set
