lib/wdpt/algebra_eval.mli: Database Mapping Pattern_tree Relational
