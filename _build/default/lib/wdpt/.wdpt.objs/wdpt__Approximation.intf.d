lib/wdpt/approximation.mli: Classes Pattern_tree
