lib/wdpt/algebra_eval.ml: Cq List Mapping Mapping_algebra Pattern_tree Relational
