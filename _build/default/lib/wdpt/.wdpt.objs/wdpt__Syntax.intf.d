lib/wdpt/syntax.mli: Database Fact Pattern_tree Relational Union
