(** The syntactic fragments of Section 3: local tractability [ℓ-C], bounded
    interface [BI(c)], global tractability [g-C], and the well-behaved
    classes [WB(k)] of Section 5. *)

(** The two families of tractable CQ classes used throughout the paper. *)
type width =
  | Tw  (** bounded treewidth, TW(k) *)
  | Hw  (** bounded (generalized) hypertreewidth, HW(k) *)
  | Hw' (** bounded β-hypertreewidth, HW′(k) — used for WB(k) *)

(** [locally_in ~width ~k p]: each node's Boolean CQ is in C(k)
    (ℓ-C of Section 3.2). *)
val locally_in : width:width -> k:int -> Pattern_tree.t -> bool

(** [interface p]: the maximum, over nodes [t], of the number of variables
    shared between [λ(t)] and its children (the least [c] with
    [p ∈ BI(c)]; [0] for single-node trees). *)
val interface : Pattern_tree.t -> int

(** [bounded_interface ~c p]: [p ∈ BI(c)]. *)
val bounded_interface : c:int -> Pattern_tree.t -> bool

(** [globally_in ~width ~k p]: every rooted subtree's CQ is in C(k)
    (g-C of Section 3.3). For [Tw] and [Hw'] this reduces to the full tree's
    query (both widths are monotone under substructures); for [Hw] all rooted
    subtrees are swept. *)
val globally_in : width:width -> k:int -> Pattern_tree.t -> bool

(** [in_wb ~width ~k p]: membership in WB(k) = g-TW(k) or g-HW′(k)
    (Section 5; [width] must be [Tw] or [Hw']). *)
val in_wb : width:width -> k:int -> Pattern_tree.t -> bool

(** The CQ-level class C(k) behind [width], for reuse by approximation code. *)
val cq_in_class : width:width -> k:int -> Cq.Query.t -> bool

(** Constructive Proposition 2(1): for [p ∈ ℓ-TW(k) ∩ BI(c)], build a tree
    decomposition of the full-tree query of width ≤ k + 2c by widening each
    node's local decomposition with its (≤ c) parent- and (≤ c)
    child-interface variables and stitching the per-node decompositions along
    the tree. [None] if some node has no width-k decomposition. *)
val prop2_decomposition :
  k:int -> Pattern_tree.t -> Hypergraphs.Tree_decomposition.t option
