(** Semantic optimization: membership in M(WB(k)) (Section 5.1) and the
    fixed-parameter-tractable evaluation it enables (Corollary 2).

    The paper's upper bound (Theorem 13) is a NEXPTIME^NP guess-and-check; as
    documented in DESIGN.md we implement (a) the exact core-based decision for
    single-node WDPTs — [q ∈ M(C(k))] iff [core q ∈ C(k)] — and (b) a
    constructive search over the ≡ₛ-preserving Lemma-1 normalization and the
    ⊑-decreasing candidate space, verifying candidates with the exact ≡ₛ
    test. A [Some _] answer is always correct; [None] means no witness was
    found within the candidate space. *)

(** [wb_witness ~width ~k p]: a WDPT in WB(k) subsumption-equivalent to [p],
    if one is found. For single-node WDPTs the answer is exact. *)
val wb_witness :
  width:Classes.width -> k:int -> Pattern_tree.t -> Pattern_tree.t option

(** [in_m_wb ~width ~k p] for single-node WDPTs (CQs): exact decision via the
    core.
    @raise Invalid_argument on multi-node WDPTs (use [wb_witness]). *)
val in_m_wb_cq : width:Classes.width -> k:int -> Pattern_tree.t -> bool

(** Corollary 2: an evaluator that pays an up-front query-only cost to find a
    WB(k) witness and then answers PARTIAL-EVAL / MAX-EVAL queries in
    polynomial time in the database. Falls back to the general algorithms
    when no witness is found. *)
type fpt

val prepare : width:Classes.width -> k:int -> Pattern_tree.t -> fpt
val used_witness : fpt -> Pattern_tree.t option
val partial_decision : fpt -> Relational.Database.t -> Relational.Mapping.t -> bool
val max_decision : fpt -> Relational.Database.t -> Relational.Mapping.t -> bool
