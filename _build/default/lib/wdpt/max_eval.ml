open Relational

let subtree_satisfiable db p vars ~init =
  match Pattern_tree.minimal_subtree_for p vars with
  | None -> false
  | Some s ->
      let q = Cq.Query.boolean (Pattern_tree.atoms_of_subtree p s) in
      Cq.Decomp_eval.satisfiable db q ~init

(* h is the projection of some homomorphism iff the minimal subtree for
   dom(h) mentions no further free variable and its instantiation is
   satisfiable *)
let in_projection_closure db p h =
  let free = Pattern_tree.free_set p in
  let dom = Mapping.domain h in
  String_set.subset dom free
  &&
  match Pattern_tree.minimal_subtree_for p dom with
  | None -> false
  | Some s ->
      let free_in_s = String_set.inter (Pattern_tree.vars_of_subtree p s) free in
      String_set.subset free_in_s dom
      && Cq.Decomp_eval.satisfiable db
           (Cq.Query.boolean (Pattern_tree.atoms_of_subtree p s))
           ~init:h

let extends_strictly db p h =
  let free = Pattern_tree.free_set p in
  let dom = Mapping.domain h in
  String_set.subset dom free
  && String_set.exists
       (fun y -> subtree_satisfiable db p (String_set.add y dom) ~init:h)
       (String_set.diff free dom)

let decision db p h = in_projection_closure db p h && not (extends_strictly db p h)
