open Relational

type width =
  | Tw
  | Hw
  | Hw'

let cq_in_class ~width ~k q =
  match width with
  | Tw -> Cq.Query.in_tw ~k q
  | Hw -> Cq.Query.in_hw ~k q
  | Hw' -> Cq.Query.in_hw' ~k q

let locally_in ~width ~k p =
  let ok i =
    let atoms = Pattern_tree.atoms p i in
    atoms = [] || cq_in_class ~width ~k (Cq.Query.boolean atoms)
  in
  List.for_all ok (Pattern_tree.all_nodes p)

let interface p =
  let shared i =
    let vi = Pattern_tree.node_vars p i in
    let below =
      List.fold_left
        (fun acc c -> String_set.union acc (Pattern_tree.node_vars p c))
        String_set.empty (Pattern_tree.children p i)
    in
    String_set.cardinal (String_set.inter vi below)
  in
  List.fold_left (fun acc i -> max acc (shared i)) 0 (Pattern_tree.all_nodes p)

let bounded_interface ~c p = interface p <= c

let globally_in ~width ~k p =
  match width with
  | Tw | Hw' ->
      (* treewidth and β-hypertreewidth are monotone under removing atoms, so
         the full tree's CQ dominates every rooted subtree *)
      cq_in_class ~width ~k (Pattern_tree.q_full p)
  | Hw ->
      Seq.for_all
        (fun s -> cq_in_class ~width ~k (Pattern_tree.q_of_subtree p s))
        (Pattern_tree.subtrees p)

let prop2_decomposition ~k p =
  let module Td = Hypergraphs.Tree_decomposition in
  let parent_interface i =
    let par = Pattern_tree.parent p i in
    if par < 0 then String_set.empty
    else String_set.inter (Pattern_tree.node_vars p i) (Pattern_tree.node_vars p par)
  in
  let child_interface i =
    List.fold_left
      (fun acc c ->
        String_set.union acc
          (String_set.inter (Pattern_tree.node_vars p i) (Pattern_tree.node_vars p c)))
      String_set.empty (Pattern_tree.children p i)
  in
  let locals =
    List.map
      (fun i ->
        let atoms = Pattern_tree.atoms p i in
        let hg = Hypergraphs.Hypergraph.of_edges (List.map Atom.var_set atoms) in
        (* isolated interface variables may be missing from tiny local
           decompositions; widening the bags below brings them in *)
        match Td.at_most hg k with
        | Some td when Array.length td.Td.bags > 0 -> Some (i, td)
        | Some _ ->
            Some (i, { Td.bags = [| String_set.empty |]; tree = [] })
        | None -> None)
      (Pattern_tree.all_nodes p)
  in
  if List.exists Option.is_none locals then None
  else begin
    let locals = List.filter_map Fun.id locals in
    (* widen every bag by the node's interfaces *)
    let widened =
      List.map
        (fun (i, td) ->
          let extra = String_set.union (parent_interface i) (child_interface i) in
          (i, { td with Td.bags = Array.map (String_set.union extra) td.Td.bags }))
        locals
    in
    (* global bag array with per-node offsets *)
    let offsets = Hashtbl.create 16 in
    let total =
      List.fold_left
        (fun off (i, td) ->
          Hashtbl.add offsets i off;
          off + Array.length td.Td.bags)
        0 widened
    in
    let bags = Array.make total String_set.empty in
    let edges = ref [] in
    List.iter
      (fun (i, td) ->
        let off = Hashtbl.find offsets i in
        Array.iteri (fun j b -> bags.(off + j) <- b) td.Td.bags;
        List.iter (fun (a, b) -> edges := (off + a, off + b) :: !edges) td.Td.tree;
        (* stitch to the parent's decomposition: both sides' bags all contain
           the shared interface, so any pair of bags preserves connectivity *)
        let par = Pattern_tree.parent p i in
        if par >= 0 then edges := (off, Hashtbl.find offsets par) :: !edges)
      widened;
    Some { Td.bags; tree = !edges }
  end

let in_wb ~width ~k p =
  match width with
  | Tw | Hw' -> globally_in ~width ~k p
  | Hw -> invalid_arg "Classes.in_wb: WB(k) is defined for Tw or Hw' only"
