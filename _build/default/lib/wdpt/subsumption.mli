(** Subsumption and subsumption-equivalence of WDPTs (Section 4).

    Decision procedure (the Π₂^P algorithm of [17], realizing the asymmetric
    coNP bound of Theorem 11): [p₁ ⊑ p₂] iff for *every* rooted subtree [T′]
    of [p₁], the freeze of the free variables of [p₁] occurring in [T′] is a
    partial answer of [p₂] over the canonical database of [q_{T′}].

    Soundness: given [h ∈ p₁(D)] with maximal homomorphism [ĥ] on subtree
    [T′], [ĥ] is a database homomorphism from the canonical database of [T′]
    to [D]; composing it with the witness answer of [p₂] over the canonical
    database and extending maximally yields an answer of [p₂] over [D]
    subsuming [h]. Necessity: instantiate the definition on the canonical
    database itself. Only [p₂]'s global tractability affects the cost of the
    inner check; [p₁] may be arbitrary, and the subtree enumeration of [p₁]
    accounts for the coNP part. *)

(** [subsumes p1 p2]: does [p₁ ⊑ p₂] hold (for every database)? *)
val subsumes : Pattern_tree.t -> Pattern_tree.t -> bool

(** [equivalent p1 p2]: subsumption-equivalence [p₁ ≡ₛ p₂]. *)
val equivalent : Pattern_tree.t -> Pattern_tree.t -> bool

(** [max_equivalent p1 p2]: equivalence under the maximal-mappings semantics
    [≡_max]; coincides with [≡ₛ] by Proposition 5. *)
val max_equivalent : Pattern_tree.t -> Pattern_tree.t -> bool
