(** Concrete textual syntax for WDPTs over arbitrary relational schemas, and
    a facts format for databases. The query syntax is exactly what
    {!Pattern_tree.pp} prints, so parsing and printing round-trip:

    {v
      free (x, y) { R(?x, ?y), S(?x, "some constant", 3) }
        [ { T(?y, ?z) } [ { U(?z) } ];
          { V(?x) } ]
    v}

    [?ident] is a variable, integers and quoted strings are constants, and a
    bare identifier in argument position is a string constant. Facts files
    contain one ground atom per line, e.g. [knows(ann, bob)]; ['#'] starts a
    comment. *)

open Relational

val parse : string -> (Pattern_tree.t, string) result

(** Unions of WDPTs (Section 6): disjuncts separated by the keyword [UNION],
    e.g. [free (x) { R(?x) } UNION free (x) { S(?x, ?y) }]. *)
val parse_union : string -> (Union.t, string) result

(** Parse one ground atom, e.g. [R(1, "x", foo)]. *)
val parse_fact : string -> (Fact.t, string) result

(** Parse a facts document (one fact per line). *)
val parse_database : string -> (Database.t, string) result

(** [to_string p] prints in the parseable syntax. *)
val to_string : Pattern_tree.t -> string
