open Relational

type graph = {
  n : int;
  edges : (int * int) list;
}

let u i = "u" ^ string_of_int i
let xjk j k = Printf.sprintf "x_%d_%d" j k

let three_col_instance g =
  let db =
    Database.of_list
      [ Fact.make "c" [ Value.int 1; Value.int 1 ];
        Fact.make "c" [ Value.int 2; Value.int 2 ];
        Fact.make "c" [ Value.int 3; Value.int 3 ] ]
  in
  let c a b = Atom.make "c" [ a; b ] in
  let root_atoms =
    c (Term.var "x") (Term.var "x")
    :: List.init g.n (fun i -> c (Term.var (u i)) (Term.var (u i)))
  in
  let child j k (v1, v2) =
    Pattern_tree.Node
      ( [ c (Term.var (u v1)) (Term.int k);
          c (Term.var (u v2)) (Term.int k);
          c (Term.var (xjk j k)) (Term.var (xjk j k)) ],
        [] )
  in
  let children =
    List.concat (List.mapi (fun j e -> List.map (fun k -> child j k e) [ 1; 2; 3 ]) g.edges)
  in
  let free =
    "x"
    :: List.concat
         (List.mapi (fun j _ -> List.map (fun k -> xjk j k) [ 1; 2; 3 ]) g.edges)
  in
  let p = Pattern_tree.make ~free (Node (root_atoms, children)) in
  (p, db, Mapping.singleton "x" (Value.int 1))

let three_colorable g =
  let colors = Array.make g.n 0 in
  let ok v col =
    List.for_all
      (fun (a, b) ->
        if a = v && b < v then colors.(b) <> col
        else if b = v && a < v then colors.(a) <> col
        else true)
      g.edges
  in
  let rec go v =
    if v >= g.n then true
    else
      List.exists
        (fun col ->
          ok v col
          && begin
               colors.(v) <- col;
               go (v + 1)
             end)
        [ 1; 2; 3 ]
  in
  go 0

let cycle n =
  { n; edges = List.init n (fun i -> (i, (i + 1) mod n)) }

let complete n =
  { n;
    edges =
      List.concat
        (List.init n (fun i -> List.filter_map (fun j -> if i < j then Some (i, j) else None) (List.init n Fun.id))) }

let random_graph ~seed ~n ~edge_prob =
  let st = Random.State.make [| seed |] in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Random.State.float st 1.0 < edge_prob then edges := (i, j) :: !edges
    done
  done;
  { n; edges = !edges }
