(** Hardness reductions from the paper, used to exhibit the intractable cells
    of Table 1 empirically. *)

open Relational

(** Undirected graphs for the 3-colorability reduction. *)
type graph = {
  n : int;                 (** vertices are 0 .. n-1 *)
  edges : (int * int) list;
}

(** Proposition 3: a WDPT in g-TW(1) ∩ g-HW(1), a fixed 3-fact database and a
    singleton mapping [h] such that [G] is 3-colorable iff [h ∈ p(D)]. *)
val three_col_instance : graph -> Pattern_tree.t * Database.t * Mapping.t

(** Direct backtracking 3-colorability solver, for cross-validation. *)
val three_colorable : graph -> bool

(** Standard hard/easy graph families for the benchmarks. *)
val cycle : int -> graph
val complete : int -> graph

(** [random_graph ~seed ~n ~edge_prob] Erdős–Rényi. *)
val random_graph : seed:int -> n:int -> edge_prob:float -> graph
