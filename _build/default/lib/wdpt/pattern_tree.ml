open Relational

type t = {
  node_atoms : Atom.t list array;
  parents : int array;
  childs : int list array;
  free_vars : string list;
}

type spec = Node of Atom.t list * spec list

let node_vars_of atoms =
  List.fold_left (fun acc a -> String_set.union acc (Atom.var_set a)) String_set.empty atoms

let flatten spec =
  (* breadth-independent preorder flattening: parents before children *)
  let nodes = ref [] and parents = ref [] and count = ref 0 in
  let rec go parent (Node (atoms, kids)) =
    let i = !count in
    incr count;
    nodes := atoms :: !nodes;
    parents := parent :: !parents;
    List.iter (go i) kids
  in
  go (-1) spec;
  let node_atoms = Array.of_list (List.rev !nodes) in
  let parents = Array.of_list (List.rev !parents) in
  let n = Array.length node_atoms in
  let childs = Array.make n [] in
  for i = n - 1 downto 1 do
    childs.(parents.(i)) <- i :: childs.(parents.(i))
  done;
  (node_atoms, parents, childs)

let check_well_designed node_atoms parents =
  (* for each variable, the nodes mentioning it must form a connected
     subgraph of the tree: equivalent to having a unique topmost node such
     that every mentioning node reaches it through mentioning nodes *)
  let n = Array.length node_atoms in
  let vars_at = Array.map node_vars_of node_atoms in
  let all_vars = Array.fold_left String_set.union String_set.empty vars_at in
  String_set.for_all
    (fun y ->
      let mentions = Array.map (String_set.mem y) vars_at in
      (* topmost mentioning node(s): those whose parent does not mention y *)
      let tops = ref [] in
      for i = 0 to n - 1 do
        if mentions.(i) && (parents.(i) < 0 || not mentions.(parents.(i))) then
          tops := i :: !tops
      done;
      List.length !tops <= 1)
    all_vars

let make ~free spec =
  let node_atoms, parents, childs = flatten spec in
  if not (check_well_designed node_atoms parents) then
    invalid_arg "Pattern_tree.make: not well-designed";
  let all_vars = Array.fold_left (fun acc a -> String_set.union acc (node_vars_of a)) String_set.empty node_atoms in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun x ->
      if Hashtbl.mem seen x then invalid_arg ("Pattern_tree.make: duplicate free variable " ^ x);
      Hashtbl.add seen x ();
      if not (String_set.mem x all_vars) then
        invalid_arg ("Pattern_tree.make: free variable " ^ x ^ " not in tree"))
    free;
  { node_atoms; parents; childs; free_vars = free }

let of_cq q =
  make ~free:(Cq.Query.head q) (Node (Cq.Query.body q, []))

let well_designed_spec spec =
  let node_atoms, parents, _ = flatten spec in
  check_well_designed node_atoms parents

let free t = t.free_vars
let free_set t = String_set.of_list t.free_vars
let node_count t = Array.length t.node_atoms
let root _ = 0
let parent t i = t.parents.(i)
let children t i = t.childs.(i)
let atoms t i = t.node_atoms.(i)
let node_vars t i = node_vars_of t.node_atoms.(i)

let vars t =
  Array.fold_left
    (fun acc atoms -> String_set.union acc (node_vars_of atoms))
    String_set.empty t.node_atoms

let size t = Array.fold_left (fun acc atoms -> acc + List.length atoms) 0 t.node_atoms
let is_projection_free t = String_set.equal (free_set t) (vars t)

let to_spec t =
  let rec build i =
    Node (t.node_atoms.(i), List.map build t.childs.(i))
  in
  build 0

(* ---- subtrees ---------------------------------------------------------- *)

let subtrees t =
  (* enumerate subsets containing 0 and closed under parents, lazily: at each
     node of the recursion choose a subset of children to descend into *)
  let rec node_seq i : int list Seq.t =
    (* all subtrees rooted at node i (including i) *)
    let kids = t.childs.(i) in
    let rec combine = function
      | [] -> Seq.return []
      | c :: rest ->
          let rest_seq = combine rest in
          Seq.concat_map
            (fun chosen ->
              Seq.cons chosen
                (Seq.map (fun sub -> sub @ chosen) (node_seq c)))
            rest_seq
    in
    Seq.map (fun chosen -> i :: chosen) (combine kids)
  in
  Seq.map (List.sort Int.compare) (node_seq 0)

let subtree_count t =
  let rec count i =
    List.fold_left (fun acc c -> acc * (1 + count c)) 1 t.childs.(i)
  in
  count 0

let all_nodes t = List.init (node_count t) Fun.id

let atoms_of_subtree t s = List.concat_map (fun i -> t.node_atoms.(i)) s

let vars_of_subtree t s =
  List.fold_left (fun acc i -> String_set.union acc (node_vars t i)) String_set.empty s

let q_of_subtree t s =
  let body = atoms_of_subtree t s in
  Cq.Query.make ~head:(String_set.elements (vars_of_subtree t s)) ~body

let r_of_subtree t s =
  let body = atoms_of_subtree t s in
  let head =
    List.filter (fun x -> String_set.mem x (vars_of_subtree t s)) t.free_vars
  in
  Cq.Query.make ~head ~body

let q_full t = q_of_subtree t (all_nodes t)

let close_under_parents t nodes =
  let inset = Array.make (node_count t) false in
  let rec up i =
    if not inset.(i) then begin
      inset.(i) <- true;
      if t.parents.(i) >= 0 then up t.parents.(i)
    end
  in
  List.iter up nodes;
  let out = ref [] in
  Array.iteri (fun i b -> if b then out := i :: !out) inset;
  List.rev !out

let minimal_subtree_for t vs =
  (* topmost occurrence node of each variable is unique by well-designedness *)
  let n = node_count t in
  let top_of y =
    let rec find i =
      if i >= n then None
      else if String_set.mem y (node_vars t i)
              && (t.parents.(i) < 0 || not (String_set.mem y (node_vars t t.parents.(i))))
      then Some i
      else find (i + 1)
    in
    find 0
  in
  let tops = List.map top_of (String_set.elements vs) in
  if List.exists Option.is_none tops then None
  else Some (close_under_parents t (0 :: List.filter_map Fun.id tops))

let maximal_subtree_without t keep =
  let free = free_set t in
  let ok i =
    String_set.subset (String_set.inter (node_vars t i) free) keep
  in
  if not (ok 0) then None
  else begin
    let out = ref [] in
    let rec dfs i =
      out := i :: !out;
      List.iter (fun c -> if ok c then dfs c) t.childs.(i)
    in
    dfs 0;
    Some (List.sort Int.compare !out)
  end

(* ---- transformations --------------------------------------------------- *)

let rebuild ?free t node_atoms parents =
  let free = Option.value free ~default:t.free_vars in
  let n = Array.length node_atoms in
  let childs = Array.make n [] in
  for i = n - 1 downto 1 do
    childs.(parents.(i)) <- i :: childs.(parents.(i))
  done;
  if check_well_designed node_atoms parents then
    Some { node_atoms; parents; childs; free_vars = free }
  else None

let quotient f t =
  List.iter
    (fun x -> if f x <> x then invalid_arg "Pattern_tree.quotient: free variable moved")
    t.free_vars;
  let node_atoms =
    Array.map
      (List.map (Atom.apply ~f:(fun x -> Term.var (f x))))
      t.node_atoms
  in
  rebuild t node_atoms t.parents

let drop_leaf t i =
  if i = 0 then invalid_arg "Pattern_tree.drop_leaf: root";
  if t.childs.(i) <> [] then invalid_arg "Pattern_tree.drop_leaf: not a leaf";
  let n = node_count t in
  let remap = Array.make n (-1) in
  let j = ref 0 in
  for k = 0 to n - 1 do
    if k <> i then begin
      remap.(k) <- !j;
      incr j
    end
  done;
  let node_atoms = Array.make (n - 1) [] in
  let parents = Array.make (n - 1) (-1) in
  for k = 0 to n - 1 do
    if k <> i then begin
      node_atoms.(remap.(k)) <- t.node_atoms.(k);
      parents.(remap.(k)) <- (if t.parents.(k) < 0 then -1 else remap.(t.parents.(k)))
    end
  done;
  let remaining_vars =
    Array.fold_left (fun acc atoms -> String_set.union acc (node_vars_of atoms)) String_set.empty node_atoms
  in
  let free = List.filter (fun x -> String_set.mem x remaining_vars) t.free_vars in
  match rebuild ~free t node_atoms parents with
  | Some t' -> t'
  | None -> assert false (* dropping a leaf preserves well-designedness *)

let collapse_into_parent t i =
  if i = 0 then invalid_arg "Pattern_tree.collapse_into_parent: root";
  let p = t.parents.(i) in
  let n = node_count t in
  let remap = Array.make n (-1) in
  let j = ref 0 in
  for k = 0 to n - 1 do
    if k <> i then begin
      remap.(k) <- !j;
      incr j
    end
  done;
  let node_atoms = Array.make (n - 1) [] in
  let parents = Array.make (n - 1) (-1) in
  for k = 0 to n - 1 do
    if k <> i then begin
      node_atoms.(remap.(k)) <- t.node_atoms.(k);
      let pk = if t.parents.(k) = i then p else t.parents.(k) in
      parents.(remap.(k)) <- (if pk < 0 then -1 else remap.(pk))
    end
  done;
  node_atoms.(remap.(p)) <-
    List.sort_uniq Atom.compare (t.node_atoms.(i) @ node_atoms.(remap.(p)));
  rebuild t node_atoms parents

let compare_syntactic a b =
  let c = List.compare String.compare a.free_vars b.free_vars in
  if c <> 0 then c
  else
    let c =
      List.compare (List.compare Atom.compare)
        (Array.to_list a.node_atoms) (Array.to_list b.node_atoms)
    in
    if c <> 0 then c
    else List.compare Int.compare (Array.to_list a.parents) (Array.to_list b.parents)

let equal_syntactic a b = compare_syntactic a b = 0

let rec pp_spec ppf (Node (atoms, kids)) =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Atom.pp)
    atoms;
  if kids <> [] then
    Format.fprintf ppf "[@[<hv>%a@]]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_spec)
      kids

let pp ppf t =
  Format.fprintf ppf "@[<hv>free (%a) %a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_string)
    t.free_vars pp_spec (to_spec t)

let canonical_key t = Format.asprintf "%a" pp t
