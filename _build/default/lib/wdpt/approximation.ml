open Relational

type move =
  | Merge of string * string
  | Drop_leaf of int
  | Collapse of int

let moves p =
  let free = Pattern_tree.free_set p in
  let vs = String_set.elements (Pattern_tree.vars p) in
  let occurrences x =
    List.filter
      (fun i -> String_set.mem x (Pattern_tree.node_vars p i))
      (Pattern_tree.all_nodes p)
  in
  (* merging an existential u into a free v is ⊑-decreasing only when it does
     not move v into new nodes: an answer of the quotient binding v at a node
     where the original p does not mention v would not be subsumed *)
  let safe_into_free u v =
    List.for_all (fun i -> List.mem i (occurrences v)) (occurrences u)
  in
  let rec var_pairs = function
    | [] -> []
    | u :: rest ->
        List.filter_map
          (fun v ->
            let u_free = String_set.mem u free and v_free = String_set.mem v free in
            if u_free && v_free then None
            else if u_free then
              if safe_into_free v u then Some (Merge (v, u)) else None
            else if v_free then
              if safe_into_free u v then Some (Merge (u, v)) else None
            else Some (Merge (u, v)))
          rest
        @ var_pairs rest
  in
  let structural =
    List.concat_map
      (fun i ->
        if i = Pattern_tree.root p then []
        else if Pattern_tree.children p i = [] then [ Drop_leaf i; Collapse i ]
        else [ Collapse i ])
      (Pattern_tree.all_nodes p)
  in
  var_pairs vs @ structural

let apply p m =
  match m with
  | Merge (u, v) -> Pattern_tree.quotient (fun x -> if x = u then v else x) p
  | Drop_leaf i -> Some (Pattern_tree.drop_leaf p i)
  | Collapse i -> Pattern_tree.collapse_into_parent p i

let candidates ~in_class p =
  let seen = Hashtbl.create 512 in
  let found = ref [] in
  let rec explore p =
    let key = Pattern_tree.canonical_key p in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      if in_class p then found := p :: !found
      else
        List.iter
          (fun m ->
            match apply p m with
            | Some p' -> explore p'
            | None -> ())
          (moves p)
    end
  in
  explore p;
  !found

let approximations ~in_class p =
  let cands = candidates ~in_class p in
  let maximal =
    List.filter
      (fun c ->
        not
          (List.exists
             (fun c' ->
               Subsumption.subsumes c c' && not (Subsumption.subsumes c' c))
             cands))
      cands
  in
  let rec dedup acc = function
    | [] -> List.rev acc
    | c :: rest ->
        if List.exists (Subsumption.equivalent c) acc then dedup acc rest
        else dedup (c :: acc) rest
  in
  dedup [] maximal

let wb_approximations ~width ~k p =
  approximations ~in_class:(Classes.in_wb ~width ~k) p

let is_approximation ~in_class p' p =
  in_class p'
  && Subsumption.subsumes p' p
  &&
  let cands = candidates ~in_class p in
  not
    (List.exists
       (fun c -> Subsumption.subsumes p' c && not (Subsumption.subsumes c p'))
       cands)

(* ---- Lemma 1 normalization (first phase) ------------------------------- *)

let normalize p =
  let introduces p i =
    let free = Pattern_tree.free_set p in
    let own = String_set.inter (Pattern_tree.node_vars p i) free in
    let par = Pattern_tree.parent p i in
    let inherited =
      if par < 0 then String_set.empty
      else String_set.inter (Pattern_tree.node_vars p par) free
    in
    not (String_set.is_empty (String_set.diff own inherited))
  in
  (* drop leaves that are not on a path to a free-variable-introducing node *)
  let rec prune p =
    let needed = Array.make (Pattern_tree.node_count p) false in
    let rec mark i =
      if not needed.(i) then begin
        needed.(i) <- true;
        let par = Pattern_tree.parent p i in
        if par >= 0 then mark par
      end
    in
    mark (Pattern_tree.root p);
    List.iter (fun i -> if introduces p i then mark i) (Pattern_tree.all_nodes p);
    let droppable =
      List.find_opt
        (fun i ->
          i <> Pattern_tree.root p
          && Pattern_tree.children p i = []
          && not needed.(i))
        (Pattern_tree.all_nodes p)
    in
    match droppable with
    | Some i -> prune (Pattern_tree.drop_leaf p i)
    | None -> p
  in
  (* merge free-variable-less nodes with their only child *)
  let rec merge p =
    let free = Pattern_tree.free_set p in
    let mergeable =
      List.find_opt
        (fun i ->
          let par = Pattern_tree.parent p i in
          (* merging into the root is not ≡ₛ-preserving: it can delete the
             answer arising when only the root pattern matches *)
          par > 0
          && Pattern_tree.children p par = [ i ]
          && String_set.is_empty
               (String_set.inter (Pattern_tree.node_vars p par) free))
        (Pattern_tree.all_nodes p)
    in
    match mergeable with
    | Some i -> (
        match Pattern_tree.collapse_into_parent p i with
        | Some p' -> merge p'
        | None -> p)
    | None -> p
  in
  merge (prune p)
