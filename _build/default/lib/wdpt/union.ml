open Relational

type t = Pattern_tree.t list

let eval db u =
  List.fold_left
    (fun acc p -> Mapping.Set.union acc (Semantics.eval db p))
    Mapping.Set.empty u

let eval_max db u =
  Mapping.Set.of_list
    (Mapping.maximal_elements (Mapping.Set.elements (eval db u)))

let decision db u h = List.exists (fun p -> Eval_tractable.decision db p h) u
let partial_decision db u h = List.exists (fun p -> Partial_eval.decision db p h) u

let max_decision db u h =
  List.exists (fun p -> Max_eval.in_projection_closure db p h) u
  && not (List.exists (fun p -> Max_eval.extends_strictly db p h) u)

let subsumes u1 u2 =
  List.for_all
    (fun p1 ->
      let free1 = Pattern_tree.free_set p1 in
      Seq.for_all
        (fun s ->
          let q = Pattern_tree.q_of_subtree p1 s in
          let db, frozen = Cq.Query.freeze q in
          let target =
            Mapping.restrict (String_set.inter free1 (Cq.Query.vars q)) frozen
          in
          partial_decision db u2 target)
        (Pattern_tree.subtrees p1))
    u1

let equivalent u1 u2 = subsumes u1 u2 && subsumes u2 u1

let phi_cq u =
  let seen = Hashtbl.create 64 in
  List.concat_map
    (fun p ->
      Seq.fold_left
        (fun acc s ->
          let q = Pattern_tree.r_of_subtree p s in
          let key = Cq.Query.canonical_key q in
          if Hashtbl.mem seen key then acc
          else begin
            Hashtbl.add seen key ();
            q :: acc
          end)
        [] (Pattern_tree.subtrees p))
    u

let reduce_cqs qs =
  List.fold_left
    (fun acc q ->
      if List.exists (fun r -> Cq.Containment.contained q r) acc then acc
      else q :: List.filter (fun r -> not (Cq.Containment.contained r q)) acc)
    [] qs

let in_m_uwb ~width ~k u =
  let in_class = Classes.cq_in_class ~width ~k in
  List.for_all
    (fun q -> Cq.Core_q.equivalent_to_class q ~in_class)
    (reduce_cqs (phi_cq u))

let uwb_witness ~width ~k u =
  if in_m_uwb ~width ~k u then
    Some
      (List.map
         (fun q -> Pattern_tree.of_cq (Cq.Core_q.core q))
         (reduce_cqs (phi_cq u)))
  else None

let uwb_approximation ~width ~k u =
  let in_class = Classes.cq_in_class ~width ~k in
  let apps =
    List.concat_map (Cq.Approx.approximations ~in_class) (phi_cq u)
  in
  List.map Pattern_tree.of_cq (reduce_cqs apps)

let is_uwb_approximation ~width ~k u' u =
  List.for_all (Classes.in_wb ~width ~k) u'
  && subsumes u' u
  && subsumes (uwb_approximation ~width ~k u) u'
