(** The polynomial-time EVAL algorithm of Theorems 6 and 7 for WDPTs that are
    locally tractable with bounded interface (ℓ-C(k) ∩ BI(c)).

    Implementation follows the proof sketch of Theorem 6 as a dynamic program
    over the tree. Writing x̄′ for the variables on which the input mapping
    [h] is defined: [T′] is the minimal rooted subtree containing x̄′ and
    [T″] the maximal rooted subtree introducing no free variable outside x̄′.
    For every node and every binding of its (≤ c) interface variables we
    decide whether a local match exists whose children can be completed such
    that (i) nodes of T′ are matched, (ii) nodes of T″ are matched whenever
    matchable, and (iii) no node outside T″ (which would bind a new free
    variable) is matchable. Local matches and projections are computed with
    the decomposition-based CQ evaluator, so the whole procedure is
    polynomial for fixed k and c. *)

open Relational

(** [decision db p h]: is [h ∈ p(D)]? Correct for every WDPT (the fragment
    restriction only governs the running time). *)
val decision : Database.t -> Pattern_tree.t -> Mapping.t -> bool
