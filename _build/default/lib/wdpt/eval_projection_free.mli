(** EVAL for projection-free WDPTs (Theorem 4, after [17]).

    Without projection, [h ∈ p(D)] fixes everything: the candidate subtree is
    exactly the set of nodes whose variables are covered by [dom(h)]; pattern
    checks become ground fact lookups; only the maximality test — no child
    outside the subtree is matchable — needs CQ evaluation, which local
    tractability keeps polynomial. Contrast with the coNP-completeness of the
    general projection-free case (Theorem 1(2)): the hardness lives entirely
    in that blocking test. *)

open Relational

(** [decision db p h]: is [h ∈ p(D)]? Correct for every projection-free
    WDPT; polynomial under local tractability.
    @raise Invalid_argument if [p] is not projection-free. *)
val decision : Database.t -> Pattern_tree.t -> Mapping.t -> bool
