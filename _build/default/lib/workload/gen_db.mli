(** Random and structured database generators for tests and benchmarks. *)

open Relational

(** [random ~seed ~schema ~domain ~facts]: [facts] random facts over the
    given relations, constants drawn uniformly from [0 .. domain-1]. *)
val random :
  seed:int -> schema:(string * int) list -> domain:int -> facts:int -> Database.t

(** [random_graph_db ~seed ~nodes ~edges]: binary relation ["E"] as a random
    directed graph. *)
val random_graph_db : seed:int -> nodes:int -> edges:int -> Database.t

(** [chain_db ~rel ~length]: the path 0 -> 1 -> ... -> length. *)
val chain_db : rel:string -> length:int -> Database.t

(** [grid_db ~rel ~side]: directed grid edges. *)
val grid_db : rel:string -> side:int -> Database.t
