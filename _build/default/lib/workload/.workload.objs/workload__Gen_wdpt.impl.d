lib/workload/gen_wdpt.ml: Atom List Random Relational String Term Wdpt
