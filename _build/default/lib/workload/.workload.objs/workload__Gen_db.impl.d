lib/workload/gen_db.ml: Array Database Fact List Random Relational Value
