lib/workload/datasets.ml: Database Fact Printf Random Rdf Relational Term Value Wdpt
