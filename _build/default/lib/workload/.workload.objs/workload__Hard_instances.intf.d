lib/workload/hard_instances.mli: Wdpt
