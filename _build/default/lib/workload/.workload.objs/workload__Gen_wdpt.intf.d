lib/workload/gen_wdpt.mli: Wdpt
