lib/workload/datasets.mli: Database Rdf Relational Wdpt
