lib/workload/gen_cq.mli: Cq
