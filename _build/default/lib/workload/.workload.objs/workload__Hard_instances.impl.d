lib/workload/hard_instances.ml: Atom List Relational Term Wdpt
