lib/workload/gen_cq.ml: Atom Cq Fun List Random Relational Term
