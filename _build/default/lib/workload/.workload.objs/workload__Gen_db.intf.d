lib/workload/gen_db.mli: Database Relational
