(** Realistic datasets for the examples and benchmarks. *)

open Relational

(** The five-triple database of Example 2 (over {!Rdf.Triple.relation}). *)
val example2_db : unit -> Database.t

(** The Figure-1 WDPT (Example 1), with the given projection. *)
val figure1_wdpt : free:string list -> Wdpt.Pattern_tree.t

(** [music_catalog ~seed ~bands ~records_per_band ~rating_prob ~formed_prob]:
    a synthetic bands-and-records RDF graph in the spirit of Example 1:
    every record has [recorded_by] and [published] triples; ratings and
    formation years are present only with the given probabilities (the
    incompleteness that motivates OPT). *)
val music_catalog :
  seed:int ->
  bands:int ->
  records_per_band:int ->
  rating_prob:float ->
  formed_prob:float ->
  Rdf.Graph.t

(** [social_network ~seed ~people ~avg_friends ~email_prob ~phone_prob ~city_prob]:
    relational (non-RDF) schema with optional profile attributes:
    person/1, knows/2, email/2, phone/2, lives_in/2. *)
val social_network :
  seed:int ->
  people:int ->
  avg_friends:int ->
  email_prob:float ->
  phone_prob:float ->
  city_prob:float ->
  Database.t
