(** Random WDPT generators with controlled fragment membership. *)

(** Shape of each node's local pattern. *)
type node_style =
  | Chain   (** path-shaped local CQ: locally in TW(1) *)
  | Clique of int  (** local clique of the given size: treewidth size-1 *)

(** [random ~seed ~depth ~branching ~vars_per_node ~interface ~free_per_node
    ~style ~rel p] builds a well-designed pattern tree: every node shares at
    most [interface] variables with its parent (hence the tree is in
    BI(interface + shared-by-children)), introduces [vars_per_node] fresh
    variables connected in the given [style], and marks [free_per_node] of
    its fresh variables as free. *)
val random :
  seed:int ->
  depth:int ->
  branching:int ->
  vars_per_node:int ->
  interface:int ->
  free_per_node:int ->
  style:node_style ->
  rel:string ->
  Wdpt.Pattern_tree.t

(** A deterministic ℓ-TW(1) ∩ BI(1) family used by the Table-1 benches:
    a chain-of-nodes WDPT of the given number of nodes, each node a 2-atom
    path over [rel], sharing one variable with its parent, one free variable
    per node. *)
val chain_tree : nodes:int -> rel:string -> Wdpt.Pattern_tree.t
