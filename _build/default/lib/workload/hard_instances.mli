(** The crafted instance families behind the paper's lower bounds. *)

(** [figure2 ~n ~k]: the pair (p₁⁽ⁿ⁾, p₂⁽ⁿ⁾) of Figure 2 / Theorem 15,
    with free variables {x, x₀, ..., xₙ}. [p₁] has a (k+1+n)-clique in its
    root (size O(n² + k²)); [p₂] instantiates the zᵢ's to α₀/α₁ and its
    first leaf carries all 2ⁿ instantiations of e(z₁..zₙ) (size Ω(2ⁿ)).
    Any WB(k)-approximation of p₁ subsuming p₂ must be at least as large as
    p₂. *)
val figure2 : n:int -> k:int -> Wdpt.Pattern_tree.t * Wdpt.Pattern_tree.t

(** A g-TW(k) family that is in no BI(c) (Proposition 2(2)): a two-node tree
    whose root and child share [m] variables, each node a path on the shared
    variables (treewidth 1, interface m). *)
val prop2_family : m:int -> Wdpt.Pattern_tree.t
