open Relational

let random ~seed ~schema ~domain ~facts =
  let st = Random.State.make [| seed |] in
  let db = Database.create () in
  let schema = Array.of_list schema in
  for _ = 1 to facts do
    let rel, arity = schema.(Random.State.int st (Array.length schema)) in
    let tuple = List.init arity (fun _ -> Value.int (Random.State.int st domain)) in
    Database.add db (Fact.make rel tuple)
  done;
  db

let random_graph_db ~seed ~nodes ~edges =
  let st = Random.State.make [| seed |] in
  let db = Database.create () in
  for _ = 1 to edges do
    let a = Random.State.int st nodes and b = Random.State.int st nodes in
    Database.add db (Fact.make "E" [ Value.int a; Value.int b ])
  done;
  db

let chain_db ~rel ~length =
  Database.of_list
    (List.init length (fun i -> Fact.make rel [ Value.int i; Value.int (i + 1) ]))

let grid_db ~rel ~side =
  let db = Database.create () in
  let id i j = Value.int ((i * side) + j) in
  for i = 0 to side - 1 do
    for j = 0 to side - 1 do
      if j + 1 < side then Database.add db (Fact.make rel [ id i j; id i (j + 1) ]);
      if i + 1 < side then Database.add db (Fact.make rel [ id i j; id (i + 1) j ])
    done
  done;
  db
