(** Structured and random CQ generators (Example 4/5 families and random
    queries with controlled width). *)

(** [chain n]: Ans(x0,xn) <- E(x0,x1), ..., E(x_{n-1},x_n) — TW(1). *)
val chain : int -> Cq.Query.t

(** [cycle n]: Boolean n-cycle — TW(2) for n >= 3. *)
val cycle : int -> Cq.Query.t

(** [clique n]: Boolean n-clique over E — TW(n-1) (Example 4). *)
val clique : int -> Cq.Query.t

(** [star n]: Ans(c) <- E(c,x1), ..., E(c,xn) — acyclic. *)
val star : int -> Cq.Query.t

(** [guarded_clique n]: Example 5's θ_n — the n-clique plus a guard atom
    T_n(x1..xn); acyclic (HW(1)) but of treewidth n-1. *)
val guarded_clique : int -> Cq.Query.t

(** [random ~seed ~vars ~atoms ~rel]: random Boolean binary-relation CQ. *)
val random : seed:int -> vars:int -> atoms:int -> rel:string -> Cq.Query.t
