open Relational

type node_style =
  | Chain
  | Clique of int

let random ~seed ~depth ~branching ~vars_per_node ~interface ~free_per_node ~style
    ~rel =
  let st = Random.State.make [| seed |] in
  let counter = ref 0 in
  let fresh_var () =
    incr counter;
    "v" ^ string_of_int !counter
  in
  let free = ref [] in
  let atom a b = Atom.make rel [ Term.var a; Term.var b ] in
  let rec build level parent_vars : Wdpt.Pattern_tree.spec =
    let shared =
      if parent_vars = [] then []
      else begin
        let want = min interface (List.length parent_vars) in
        let shuffled =
          List.map (fun v -> (Random.State.bits st, v)) parent_vars
          |> List.sort compare |> List.map snd
        in
        List.filteri (fun i _ -> i < want) shuffled
      end
    in
    let fresh = List.init (max 1 vars_per_node) (fun _ -> fresh_var ()) in
    List.iteri (fun i v -> if i < free_per_node then free := v :: !free) fresh;
    let vars = shared @ fresh in
    let atoms =
      match style with
      | Chain ->
          let rec link = function
            | a :: (b :: _ as rest) -> atom a b :: link rest
            | [ a ] -> [ atom a a ]
            | [] -> []
          in
          link vars
      | Clique size -> (
          match vars with
          | [ a ] ->
              (* every declared variable must occur in the node's atoms, or
                 passing it to several children breaks well-designedness *)
              [ atom a a ]
          | _ ->
              let clique_vars = List.filteri (fun i _ -> i < size) (vars @ vars) in
              let rec pairs = function
                | [] -> []
                | a :: rest -> List.map (fun b -> atom a b) rest @ pairs rest
              in
              let base =
                match vars with
                | a :: (_ :: _ as rest) -> List.map (atom a) rest
                | [ _ ] | [] -> []
              in
              pairs (List.sort_uniq String.compare clique_vars) @ base)
    in
    let kids =
      if level >= depth then []
      else List.init branching (fun _ -> build (level + 1) vars)
    in
    Node (atoms, kids)
  in
  let spec = build 0 [] in
  Wdpt.Pattern_tree.make ~free:(List.rev !free) spec

let chain_tree ~nodes ~rel =
  let atom a b = Atom.make rel [ Term.var a; Term.var b ] in
  let s i = "s" ^ string_of_int i in
  let f i = "f" ^ string_of_int i in
  let rec build i : Wdpt.Pattern_tree.spec =
    let kids = if i + 1 >= nodes then [] else [ build (i + 1) ] in
    Node ([ atom (s i) (f i); atom (f i) (s (i + 1)) ], kids)
  in
  Wdpt.Pattern_tree.make ~free:(List.init nodes f) (build 0)
