open Relational

let x i = "x" ^ string_of_int i
let e a b = Atom.make "E" [ Term.var a; Term.var b ]

let chain n =
  let body = List.init n (fun i -> e (x i) (x (i + 1))) in
  Cq.Query.make ~head:[ x 0; x n ] ~body

let cycle n =
  let body = List.init n (fun i -> e (x i) (x ((i + 1) mod n))) in
  Cq.Query.boolean body

let clique n =
  let body =
    List.concat
      (List.init n (fun i ->
           List.filter_map
             (fun j -> if i <> j then Some (e (x i) (x j)) else None)
             (List.init n Fun.id)))
  in
  Cq.Query.boolean body

let star n =
  let body = List.init n (fun i -> e "c" (x (i + 1))) in
  Cq.Query.make ~head:[ "c" ] ~body

let guarded_clique n =
  let guard = Atom.make ("T" ^ string_of_int n) (List.init n (fun i -> Term.var (x (i + 1)))) in
  let body =
    guard
    :: List.concat
         (List.init n (fun i ->
              List.filter_map
                (fun j -> if i < j then Some (e (x (i + 1)) (x (j + 1))) else None)
                (List.init n Fun.id)))
  in
  Cq.Query.boolean body

let random ~seed ~vars ~atoms ~rel =
  let st = Random.State.make [| seed |] in
  let body =
    List.init atoms (fun _ ->
        let a = Random.State.int st vars and b = Random.State.int st vars in
        Atom.make rel [ Term.var (x a); Term.var (x b) ])
  in
  Cq.Query.boolean body
