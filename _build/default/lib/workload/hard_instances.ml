open Relational

let v = Term.var
let unary r t = Atom.make r [ t ]
let d a b = Atom.make "d" [ a; b ]

let alpha i = "alpha" ^ string_of_int i
let z i = "z" ^ string_of_int i
let xi i = "x" ^ string_of_int i

let all_pairs vars =
  List.concat_map
    (fun a -> List.filter_map (fun b -> if a <> b then Some (a, b) else None) vars)
    vars

let figure2 ~n ~k =
  let alphas = List.init (k + 1) alpha in
  let zs = List.init n (fun i -> z (i + 1)) in
  let shared_root =
    (unary "a" (v "x") :: List.mapi (fun i al -> unary ("b" ^ string_of_int i) (v al)) alphas)
    @ List.init n (fun i -> unary ("c" ^ string_of_int (i + 1)) (v (alpha 0)))
    @ [ d (v (alpha 0)) (v (alpha 0)); d (v (alpha 1)) (v (alpha 1)) ]
  in
  let p1_root =
    shared_root
    @ List.init n (fun i -> unary ("c" ^ string_of_int (i + 1)) (v (z (i + 1))))
    @ List.map (fun (a, b) -> d (v a) (v b)) (all_pairs (alphas @ zs))
  in
  let p2_root =
    shared_root @ List.map (fun (a, b) -> d (v a) (v b)) (all_pairs alphas)
  in
  let p1_leaf0 =
    Wdpt.Pattern_tree.Node
      ([ unary "a0" (v (xi 0)); Atom.make "e" (List.map v zs) ], [])
  in
  (* every instantiation of e(z1..zn) over {alpha0, alpha1} *)
  let rec tuples m =
    if m = 0 then [ [] ]
    else
      List.concat_map
        (fun rest -> [ v (alpha 0) :: rest; v (alpha 1) :: rest ])
        (tuples (m - 1))
  in
  let p2_leaf0 =
    Wdpt.Pattern_tree.Node
      (unary "a0" (v (xi 0)) :: List.map (Atom.make "e") (tuples n), [])
  in
  let p1_leaf i =
    (* the shared relation b1 forces z_i ↦ α₁ exactly when this leaf is
       included (proof sketch of Theorem 15) *)
    Wdpt.Pattern_tree.Node
      ( [ unary ("a" ^ string_of_int i) (v (xi i));
          unary "b1" (v (z i));
          unary ("c" ^ string_of_int i) (v (alpha 1)) ],
        [] )
  in
  let p2_leaf i =
    Wdpt.Pattern_tree.Node
      ( [ unary ("a" ^ string_of_int i) (v (xi i));
          unary ("c" ^ string_of_int i) (v (alpha 1)) ],
        [] )
  in
  let free = "x" :: List.init (n + 1) xi in
  let p1 =
    Wdpt.Pattern_tree.make ~free
      (Node (p1_root, p1_leaf0 :: List.init n (fun i -> p1_leaf (i + 1))))
  in
  let p2 =
    Wdpt.Pattern_tree.make ~free
      (Node (p2_root, p2_leaf0 :: List.init n (fun i -> p2_leaf (i + 1))))
  in
  (p1, p2)

let prop2_family ~m =
  let w i = "w" ^ string_of_int i in
  let e a b = Atom.make "E" [ v a; v b ] in
  let path = List.init (max 1 (m - 1)) (fun i -> e (w i) (w (i + 1))) in
  Wdpt.Pattern_tree.make ~free:[ w 0 ]
    (Node (path, [ Node (path, []) ]))
