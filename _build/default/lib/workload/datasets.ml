open Relational

let t3 s p o = Rdf.Triple.make (Value.str s) (Value.str p) (Value.str o)

let example2_db () =
  Rdf.Graph.database
    (Rdf.Graph.of_triples
       [ t3 "Our_love" "recorded_by" "Caribou";
         t3 "Our_love" "published" "after_2010";
         t3 "Swim" "recorded_by" "Caribou";
         t3 "Swim" "published" "after_2010";
         t3 "Swim" "NME_rating" "2" ])

let figure1_wdpt ~free =
  let v = Term.var and c = Term.str in
  let tr a b d = Rdf.Triple.pattern_to_atom (a, b, d) in
  Wdpt.Pattern_tree.make ~free
    (Node
       ( [ tr (v "x") (c "recorded_by") (v "y");
           tr (v "x") (c "published") (c "after_2010") ],
         [ Node ([ tr (v "x") (c "NME_rating") (v "z") ], []);
           Node ([ tr (v "y") (c "formed_in") (v "z'") ], []) ] ))

let music_catalog ~seed ~bands ~records_per_band ~rating_prob ~formed_prob =
  let st = Random.State.make [| seed |] in
  let g = Rdf.Graph.create () in
  for b = 0 to bands - 1 do
    let band = Printf.sprintf "band%d" b in
    if Random.State.float st 1.0 < formed_prob then
      Rdf.Graph.add g
        (Rdf.Triple.make (Value.str band) (Value.str "formed_in")
           (Value.int (1960 + Random.State.int st 60)));
    for r = 0 to records_per_band - 1 do
      let record = Printf.sprintf "record%d_%d" b r in
      Rdf.Graph.add g
        (Rdf.Triple.make (Value.str record) (Value.str "recorded_by") (Value.str band));
      let era = if Random.State.bool st then "after_2010" else "before_2010" in
      Rdf.Graph.add g
        (Rdf.Triple.make (Value.str record) (Value.str "published") (Value.str era));
      if Random.State.float st 1.0 < rating_prob then
        Rdf.Graph.add g
          (Rdf.Triple.make (Value.str record) (Value.str "NME_rating")
             (Value.int (1 + Random.State.int st 10)))
    done
  done;
  g

let social_network ~seed ~people ~avg_friends ~email_prob ~phone_prob ~city_prob =
  let st = Random.State.make [| seed |] in
  let db = Database.create () in
  let person i = Value.str (Printf.sprintf "p%d" i) in
  for i = 0 to people - 1 do
    Database.add db (Fact.make "person" [ person i ]);
    for _ = 1 to avg_friends do
      let j = Random.State.int st people in
      if j <> i then Database.add db (Fact.make "knows" [ person i; person j ])
    done;
    if Random.State.float st 1.0 < email_prob then
      Database.add db
        (Fact.make "email" [ person i; Value.str (Printf.sprintf "p%d@example.org" i) ]);
    if Random.State.float st 1.0 < phone_prob then
      Database.add db
        (Fact.make "phone" [ person i; Value.int (600000000 + Random.State.int st 99999999) ]);
    if Random.State.float st 1.0 < city_prob then
      Database.add db
        (Fact.make "lives_in"
           [ person i; Value.str (Printf.sprintf "city%d" (Random.State.int st 20)) ])
  done;
  db
