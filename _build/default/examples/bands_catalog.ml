(* A larger music-catalog scenario: the incompleteness that motivates OPT.

   A synthetic catalog where ratings and formation years are only partially
   recorded. A plain CQ asking for (record, band, rating, year) silently
   drops every record with a missing attribute; the WDPT keeps all records
   and returns whatever optional data exists — the exact motivation of the
   paper's introduction.

   Run with: dune exec examples/bands_catalog.exe *)

open Relational

let () =
  let g =
    Workload.Datasets.music_catalog ~seed:42 ~bands:40 ~records_per_band:5
      ~rating_prob:0.4 ~formed_prob:0.6
  in
  let db = Rdf.Graph.database g in
  Format.printf "catalog: %d triples@." (Database.size db);

  (* The Figure-1 query, as SPARQL concrete syntax. *)
  let src =
    {| SELECT ?x ?y ?z ?w WHERE {
         { ?x recorded_by ?y . ?x published after_2010 }
         OPT { ?x NME_rating ?z }
         OPT { ?y formed_in ?w }
       } |}
  in
  let p =
    match Rdf.Sparql.parse_and_translate src with
    | Ok p -> p
    | Error e -> failwith e
  in

  (* The rigid CQ version: every pattern mandatory. *)
  let rigid =
    Cq.Query.make ~head:[ "x"; "y"; "z"; "w" ]
      ~body:(Wdpt.Pattern_tree.atoms_of_subtree p (Wdpt.Pattern_tree.all_nodes p))
  in

  let wdpt_answers = Wdpt.Semantics.eval db p in
  let cq_answers = Cq.Eval.answers db rigid in
  Format.printf "WDPT answers: %d@." (Mapping.Set.cardinal wdpt_answers);
  Format.printf "CQ answers:   %d (records lost to missing data: %d)@."
    (Mapping.Set.cardinal cq_answers)
    (Mapping.Set.cardinal wdpt_answers - Mapping.Set.cardinal cq_answers);

  (* Show a few answers with partial information. *)
  let partial =
    Mapping.Set.elements wdpt_answers
    |> List.filter (fun h -> Mapping.cardinal h < 4)
  in
  Format.printf "answers with missing optional data: %d; first three:@."
    (List.length partial);
  List.iteri
    (fun i h -> if i < 3 then Format.printf "  %a@." Mapping.pp h)
    partial;

  (* Every CQ answer must appear, extended or equal, among the WDPT answers *)
  let sound =
    Mapping.Set.for_all
      (fun h ->
        Mapping.Set.exists (fun h' -> Mapping.subsumes h h') wdpt_answers)
      cq_answers
  in
  Format.printf "every rigid answer subsumed by a WDPT answer: %b@." sound
