(* The RDF/SPARQL front-end: parse {AND,OPT}-SPARQL, check well-designedness,
   translate to a WDPT, evaluate over a triple store, and go back to SPARQL.

   Run with: dune exec examples/sparql_demo.exe *)

let data =
  {|# a small knowledge graph
tbl album_of radiohead
tbl published 1997
tbl rating 10
kid_a album_of radiohead
kid_a published 2000
in_rainbows album_of radiohead
in_rainbows published 2007
in_rainbows rating 9
radiohead formed_in 1985
blackstar album_of bowie
blackstar published 2016
blackstar rating 10
bowie formed_in 1962
low album_of bowie
low published 1977
|}

let queries =
  [ ( "albums with optional rating",
      {| SELECT ?a ?b ?r WHERE {
           { ?a album_of ?b } OPT { ?a rating ?r }
         } |} );
    ( "albums with rating and optional band year",
      {| SELECT * WHERE {
           { ?a album_of ?b . ?a rating ?r } OPT { ?b formed_in ?y }
         } |} );
    ( "nested optionals (rating, and year only for rated albums)",
      {| SELECT ?a ?r ?y WHERE {
           { ?a album_of ?b } OPT { { ?a rating ?r } OPT { ?a published ?y } }
         } |} );
    ( "NOT well-designed: inner OPT reaches a variable outside its scope",
      {| SELECT ?a ?r ?y WHERE {
           { ?a album_of ?b } OPT { { ?a rating ?r } OPT { ?b formed_in ?y } }
         } |} ) ]

let () =
  let g =
    match Rdf.Graph.of_string data with
    | Ok g -> g
    | Error e -> failwith e
  in
  Format.printf "graph: %d triples@.@." (Rdf.Graph.size g);
  List.iter
    (fun (name, src) ->
      Format.printf "--- %s ---@." name;
      match Rdf.Sparql.parse src with
      | Error e -> Format.printf "parse error: %s@." e
      | Ok q when not (Rdf.Sparql.is_well_designed q.where) ->
          Format.printf "well-designed: false — rejected@.@."
      | Ok q ->
          Format.printf "well-designed: true@.";
          let p = Rdf.Sparql.to_pattern_tree q in
          Format.printf "as WDPT: %a@." Wdpt.Pattern_tree.pp p;
          let ans = Wdpt.Semantics.eval (Rdf.Graph.database g) p in
          Format.printf "answers (%d):@." (Relational.Mapping.Set.cardinal ans);
          List.iter
            (fun h -> Format.printf "  %a@." Relational.Mapping.pp h)
            (Relational.Mapping.Set.elements ans);
          Format.printf "back to SPARQL: %a@.@." Rdf.Sparql.pp_query
            (Rdf.Sparql.of_pattern_tree p))
    queries
