(* WDPTs over an arbitrary relational schema (not RDF): querying a social
   network with incomplete profiles.

   The paper stresses that WDPTs make sense over any relational schema
   (Section 1: "our view is that WDPTs are of interest ... for every
   application that needs to handle semistructured or incomplete data").
   Here the schema is person/1, knows/2, email/2, phone/2, lives_in/2, and
   profile attributes are optional. The query retrieves pairs of
   acquaintances together with whatever contact data is available, and
   demonstrates the tractable-fragment machinery on it.

   Run with: dune exec examples/incomplete_profiles.exe *)

open Relational

let v = Term.var

let () =
  let db =
    Workload.Datasets.social_network ~seed:11 ~people:300 ~avg_friends:3
      ~email_prob:0.5 ~phone_prob:0.3 ~city_prob:0.7
  in
  Format.printf "social network: %d facts@." (Database.size db);

  (* who knows whom; plus optional email of p, phone of p, and city of q *)
  let p =
    Wdpt.Pattern_tree.make ~free:[ "p"; "q"; "e"; "t"; "c" ]
      (Node
         ( [ Atom.make "knows" [ v "p"; v "q" ] ],
           [ Node ([ Atom.make "email" [ v "p"; v "e" ] ], []);
             Node ([ Atom.make "phone" [ v "p"; v "t" ] ], []);
             Node ([ Atom.make "lives_in" [ v "q"; v "c" ] ], []) ] ))
  in

  (* classification: the query sits in the tractable fragment *)
  Format.printf "locally TW(1): %b, interface: %d, globally TW(1): %b@."
    (Wdpt.Classes.locally_in ~width:Tw ~k:1 p)
    (Wdpt.Classes.interface p)
    (Wdpt.Classes.globally_in ~width:Tw ~k:1 p);

  let answers = Wdpt.Semantics.eval db p in
  Format.printf "answers: %d@." (Mapping.Set.cardinal answers);
  let complete, partial =
    Mapping.Set.partition (fun h -> Mapping.cardinal h = 5) answers
  in
  Format.printf "  fully specified: %d, with missing optional data: %d@."
    (Mapping.Set.cardinal complete) (Mapping.Set.cardinal partial);

  (* the three decision problems on a concrete candidate *)
  match Mapping.Set.choose_opt partial with
  | None -> Format.printf "no partial answers in this sample@."
  | Some h ->
      Format.printf "sample partial answer: %a@." Mapping.pp h;
      Format.printf "  EVAL (Thm 7 algorithm): %b@." (Wdpt.Eval_tractable.decision db p h);
      Format.printf "  PARTIAL-EVAL (Thm 8):   %b@." (Wdpt.Partial_eval.decision db p h);
      Format.printf "  MAX-EVAL (Thm 9):       %b@." (Wdpt.Max_eval.decision db p h);
      (* restricting h to p,q must remain a partial answer but (usually) not
         an exact one *)
      let h_pq = Mapping.restrict (String_set.of_list [ "p"; "q" ]) h in
      Format.printf "  restriction %a: PARTIAL=%b EVAL=%b@." Mapping.pp h_pq
        (Wdpt.Partial_eval.decision db p h_pq)
        (Wdpt.Eval_tractable.decision db p h_pq)
