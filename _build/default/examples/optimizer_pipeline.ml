(* End-to-end semantic optimization (Sections 3-5 as a pipeline).

   Three queries over a road/metro network with optional annotations, each
   landing in a different regime:
     1. tractable as written        -> Theorems 6-9 directly,
     2. semantically tractable      -> evaluate through an ≡ₛ witness,
     3. genuinely hard              -> sound WB(1)-approximation.

   Run with: dune exec examples/optimizer_pipeline.exe *)

open Relational

let v = Term.var
let road a b = Atom.make "road" [ v a; v b ]
let poi x n = Atom.make "poi" [ v x; v n ]

let network =
  (* a ring road with a few chords, and partial points-of-interest data *)
  let db = Database.create () in
  let n = 12 in
  for i = 0 to n - 1 do
    Database.add db (Fact.make "road" [ Value.int i; Value.int ((i + 1) mod n) ]);
    Database.add db (Fact.make "road" [ Value.int ((i + 1) mod n); Value.int i ])
  done;
  List.iter
    (fun (a, b) ->
      Database.add db (Fact.make "road" [ Value.int a; Value.int b ]))
    [ (0, 4); (4, 8); (8, 0) ];
  List.iter
    (fun (x, name) ->
      Database.add db (Fact.make "poi" [ Value.int x; Value.str name ]))
    [ (0, "station"); (4, "museum"); (8, "park") ];
  db

let show name p =
  let pl = Wdpt.Optimizer.plan ~k:1 p in
  Format.printf "--- %s ---@." name;
  Format.printf "query: %a@." Wdpt.Pattern_tree.pp p;
  Format.printf "plan:  %s@." (Wdpt.Optimizer.describe pl);
  let ans = Wdpt.Optimizer.eval pl network in
  Format.printf "answers: %d%s@.@."
    (Mapping.Set.cardinal ans)
    (if Wdpt.Optimizer.complete pl then "" else " (sound subset)")

let () =
  (* 1. a 2-hop reachability query with an optional POI label: chain-shaped,
     tractable as written *)
  show "two hops with optional label"
    (Wdpt.Pattern_tree.make ~free:[ "a"; "b"; "n" ]
       (Node ([ road "a" "m"; road "m" "b" ], [ Node ([ poi "b" "n" ], []) ])));

  (* 2. redundant parallel paths: treewidth 2 as written, but the core is a
     single path — the optimizer finds the ≡ₛ witness *)
  show "redundant parallel paths"
    (Wdpt.Pattern_tree.of_cq
       (Cq.Query.make ~head:[ "a" ]
          ~body:[ road "a" "m1"; road "m1" "b"; road "a" "m2"; road "m2" "b" ]));

  (* 3. a directed triangle (a genuine core of treewidth 2): only a sound
     approximation is available at width budget 1 *)
  show "triangular road loop"
    (Wdpt.Pattern_tree.of_cq
       (Cq.Query.make ~head:[ "a" ] ~body:[ road "a" "b"; road "b" "c"; road "c" "a" ]));

  (* compare the approximation's answers against the exact ones *)
  let tri =
    Wdpt.Pattern_tree.of_cq
      (Cq.Query.make ~head:[ "a" ] ~body:[ road "a" "b"; road "b" "c"; road "c" "a" ])
  in
  let pl = Wdpt.Optimizer.plan ~k:1 tri in
  let approx = Wdpt.Optimizer.eval pl network in
  let exact = Wdpt.Semantics.eval network tri in
  Format.printf "triangle: exact %d answers, approximation %d — every approximate answer exact-subsumed: %b@."
    (Mapping.Set.cardinal exact)
    (Mapping.Set.cardinal approx)
    (Mapping.Set.for_all
       (fun h -> Mapping.Set.exists (Mapping.subsumes h) exact)
       approx)
