examples/approximation_demo.ml: Atom Format List Mapping Relational Term Wdpt Workload
