examples/sparql_demo.ml: Format List Rdf Relational Wdpt
