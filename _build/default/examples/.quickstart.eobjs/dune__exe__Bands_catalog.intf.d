examples/bands_catalog.mli:
