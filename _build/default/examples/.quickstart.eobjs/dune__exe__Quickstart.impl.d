examples/quickstart.ml: Cq Database Format List Mapping Relational Value Wdpt Workload
