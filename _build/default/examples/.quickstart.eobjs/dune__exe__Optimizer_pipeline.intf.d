examples/optimizer_pipeline.mli:
