examples/incomplete_profiles.ml: Atom Database Format Mapping Relational String_set Term Wdpt Workload
