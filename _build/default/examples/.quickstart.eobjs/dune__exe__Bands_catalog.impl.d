examples/bands_catalog.ml: Cq Database Format List Mapping Rdf Relational Wdpt Workload
