examples/incomplete_profiles.mli:
