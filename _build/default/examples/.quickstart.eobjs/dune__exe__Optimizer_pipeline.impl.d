examples/optimizer_pipeline.ml: Atom Cq Database Fact Format List Mapping Relational Term Value Wdpt
