examples/approximation_demo.mli:
