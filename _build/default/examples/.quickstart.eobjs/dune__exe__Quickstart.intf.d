examples/quickstart.mli:
