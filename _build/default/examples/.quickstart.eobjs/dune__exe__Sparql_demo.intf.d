examples/sparql_demo.mli:
