(* Quickstart: the paper's running example, end to end.

   Builds the WDPT of Figure 1 (the query of Example 1), evaluates it over
   the database of Example 2, reproduces the projections of Example 3, the
   maximal-mappings semantics of Example 7, and the CQ translation of
   Example 8.

   Run with: dune exec examples/quickstart.exe *)

open Relational

let pp_answers name ans =
  Format.printf "%s = {@[<hov>%a@]}@." name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") Mapping.pp)
    (Mapping.Set.elements ans)

let () =
  (* The database of Example 2. *)
  let db = Workload.Datasets.example2_db () in
  Format.printf "--- database (Example 2) ---@.%a@.@." Database.pp db;

  (* Example 1 / Figure 1: all four variables free. *)
  let p = Workload.Datasets.figure1_wdpt ~free:[ "x"; "y"; "z"; "z'" ] in
  Format.printf "--- WDPT of Figure 1 ---@.%a@.@." Wdpt.Pattern_tree.pp p;
  pp_answers "p(D)   (Example 2)" (Wdpt.Semantics.eval db p);

  (* Example 3: project out x (and z'). *)
  let p_proj = Workload.Datasets.figure1_wdpt ~free:[ "y"; "z" ] in
  pp_answers "p(D)   (Example 3, free y z)" (Wdpt.Semantics.eval db p_proj);

  (* Example 7: maximal-mappings semantics retains only mu2. *)
  pp_answers "p_m(D) (Example 7)" (Wdpt.Semantics.eval_max db p_proj);

  (* The decision problems of Section 3 on mu1. *)
  let mu1 = Mapping.of_list [ ("y", Value.str "Caribou") ] in
  Format.printf "@.EVAL:         mu1' in p(D)?   %b (tractable algorithm: %b)@."
    (Wdpt.Semantics.decision db p_proj mu1)
    (Wdpt.Eval_tractable.decision db p_proj mu1);
  Format.printf "PARTIAL-EVAL: extendable?      %b@."
    (Wdpt.Partial_eval.decision db p_proj mu1);
  Format.printf "MAX-EVAL:     maximal?         %b@." (Wdpt.Max_eval.decision db p_proj mu1);

  (* Fragment classification (Example 6). *)
  Format.printf "@.--- classification (Example 6) ---@.";
  Format.printf "locally in TW(1): %b@." (Wdpt.Classes.locally_in ~width:Tw ~k:1 p);
  Format.printf "interface:        %d  (so p in BI(2))@." (Wdpt.Classes.interface p);
  Format.printf "globally in TW(1): %b@." (Wdpt.Classes.globally_in ~width:Tw ~k:1 p);

  (* Example 8: the CQs r_T' of phi_cq, for the projection onto y z z'. *)
  let p8 = Workload.Datasets.figure1_wdpt ~free:[ "y"; "z"; "z'" ] in
  Format.printf "@.--- phi_cq (Example 8) ---@.";
  List.iter
    (fun q -> Format.printf "  %a@." Cq.Query.pp q)
    (Wdpt.Union.phi_cq [ p8 ])
