(* Approximation in action (Sections 5-6).

   A query whose pattern is too "wide" to evaluate efficiently is
   approximated by a WB(1) query; the approximation is sound (subsumed by
   the original) and can be evaluated in polynomial time. We also run the
   UWDPT machinery of Theorem 18 and the Figure-2 blow-up family.

   Run with: dune exec examples/approximation_demo.exe *)

open Relational

let v = Term.var
let e a b = Atom.make "E" [ v a; v b ]

let () =
  (* A WDPT whose root is a directed triangle (treewidth 2) with an optional
     pendant. *)
  let p =
    Wdpt.Pattern_tree.make ~free:[ "x"; "w" ]
      (Node
         ( [ e "x" "y"; e "y" "z"; e "z" "x" ],
           [ Node ([ e "x" "w" ], []) ] ))
  in
  Format.printf "query p = %a@." Wdpt.Pattern_tree.pp p;
  Format.printf "p in WB(1): %b (root triangle has treewidth 2)@.@."
    (Wdpt.Classes.in_wb ~width:Tw ~k:1 p);

  (* WB(1)-approximations via the quotient/drop search. *)
  let apps = Wdpt.Approximation.wb_approximations ~width:Tw ~k:1 p in
  Format.printf "WB(1)-approximations found: %d@." (List.length apps);
  List.iter (fun a -> Format.printf "  %a@." Wdpt.Pattern_tree.pp a) apps;
  (match apps with
  | a :: _ ->
      Format.printf "  soundness (a ⊑ p): %b@.@." (Wdpt.Subsumption.subsumes a p)
  | [] -> ());

  (* Evaluate original vs approximation on a database where they agree /
     differ. *)
  let db = Workload.Gen_db.random_graph_db ~seed:5 ~nodes:30 ~edges:120 in
  (match apps with
  | a :: _ ->
      let exact = Wdpt.Semantics.eval db p in
      let approx = Wdpt.Semantics.eval db a in
      let sound =
        Mapping.Set.for_all
          (fun h -> Mapping.Set.exists (Mapping.subsumes h) exact)
          approx
      in
      Format.printf
        "on a random db: |p(D)| = %d, |approx(D)| = %d, approx answers subsumed by exact: %b@.@."
        (Mapping.Set.cardinal exact)
        (Mapping.Set.cardinal approx)
        sound
  | [] -> ());

  (* Theorem 18: UWDPT approximation of the union {p}. *)
  let uapp = Wdpt.Union.uwb_approximation ~width:Tw ~k:1 [ p ] in
  Format.printf "UWB(1)-approximation of {p}: %d disjunct(s)@." (List.length uapp);
  List.iter (fun q -> Format.printf "  %a@." Wdpt.Pattern_tree.pp q) uapp;

  (* Figure 2: the exponential lower bound on approximation size. *)
  Format.printf "@.Figure-2 family (k = 2): |p1| vs |p2|@.";
  List.iter
    (fun n ->
      let p1, p2 = Workload.Hard_instances.figure2 ~n ~k:2 in
      Format.printf "  n = %d: |p1| = %3d  |p2| = %4d@." n
        (Wdpt.Pattern_tree.size p1) (Wdpt.Pattern_tree.size p2))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]
