(** Translation validation of the engine's optimization passes.

    Every pass of {!Engine.optimize} emits a plain-data certificate
    ({!Engine.cert}); this checker re-derives each claim from the before and
    after IR views in O(plan) and reports anything it cannot justify as an
    E-series diagnostic:

    - [E007 unjustified-slot-renaming] — a mapped slot changes variable name
      or initial binding, a dropped slot is still touched by an instruction,
      or a slot use is rewritten against the slot map;
    - [E008 dropped-check] — a [Check] constant changed, vanished or was
      weakened to a [Slot]; a [Slot → Check] fold has no matching initial
      binding; an atom was dropped without a surviving exact duplicate or a
      probe-confirmed stored-row witness;
    - [E009 reorder-violates-dependency] — a non-reordering pass changed the
      static order, [check-hoist] deviated from the stable ground-first
      partition, or a reordering pass left the order unsorted by the
      (ground, selectivity) key;
    - [E010 certificate-plan-mismatch] — the certificate is structurally
      inconsistent with the plans (map lengths, ranges, injectivity and
      surjectivity; pool, feasibility or version drift; unrecorded or bogus
      folds and drops; claimed scores that do not recompute).

    A rejected trail is not an execution hazard by itself — {!accept} simply
    falls back to the unoptimized original — but it is always an optimizer
    bug, so the diagnostics are errors. *)

(** Verify one pass step. [probe] confirms [Ground_matched] drop claims
    against the stored relation (use
    [Engine.Inspect.row_matches] of the plan the pass ran on); without it
    such drops are conservatively rejected. Diagnostics come back in check
    order; a structurally broken certificate (E010) short-circuits the
    deeper checks. An empty list means the step is justified. *)
val verify_step :
  ?probe:(atom:int -> row:int -> bool) ->
  before:Engine.Inspect.view ->
  after:Engine.Inspect.view ->
  Engine.cert ->
  Diagnostic.t list

type step_report = {
  sr_pass : string;
  sr_cert : Engine.cert;
  sr_before : Engine.Inspect.view;
  sr_after : Engine.Inspect.view;
  sr_diagnostics : Diagnostic.t list;  (** empty = verified *)
}

type report = {
  r_steps : step_report list;  (** in pass order; empty for unoptimized plans *)
  r_verified : bool;  (** every step verified *)
}

(** Verify the whole optimization trail of a plan, with probes supplied
    automatically from the plan's provenance. Unoptimized plans verify
    trivially ([r_steps = []]). *)
val verify_trail : Engine.t -> report

(** All diagnostics of a report, in pass order. *)
val diagnostics : report -> Diagnostic.t list

(** [accept p] returns [p] itself when its trail verifies, and the
    unoptimized original ({!Engine.Inspect.base}) otherwise. *)
val accept : Engine.t -> Engine.t * report

(** One-line summary of a certificate's effects. *)
val cert_summary : Engine.cert -> string

val cert_json : Engine.cert -> Json.t
val report_json : report -> Json.t

(** Multi-line; boxed by the caller. *)
val pp_report : Format.formatter -> report -> unit
