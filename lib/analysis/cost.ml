(* The CQ-level core (bounds from stored statistics) lives in {!Cq.Cost} so
   that Wdpt.Optimizer can consume it without a dependency cycle; this module
   re-exports it under the historical [Analysis.Cost] name and adds the
   WDPT-level tree classification and JSON rendering on top. *)

type growth = Cq.Cost.growth = Polynomial of int | Exponential

type t = Cq.Cost.t = {
  natoms : int;
  nvars : int;
  nfree : int;
  adom : int;
  treewidth : int;
  acyclic : bool;
  ghw_le : int option;
  product_bound : float;
  vardom_bound : float;
  decomp_bound : float option;
  adom_bound : float;
  hom_bound : float;
  answer_bound : float;
  growth : growth;
  drift : float;
}

let analyze = Cq.Cost.analyze
let bound_count = Cq.Cost.bound_count
let recalibrate = Cq.Cost.recalibrate

(* ---- WDPT-level classification ------------------------------------------ *)

let tree_class ?(k_max = 3) ?(c_max = 3) p =
  let rec least_k k =
    if k > k_max then None
    else if Wdpt.Classes.locally_in ~width:Tw ~k p then Some k
    else least_k (k + 1)
  in
  match least_k 1 with
  | None -> None
  | Some k ->
      let c = Wdpt.Classes.interface p in
      if c <= c_max then Some (k, c) else None

let tree_growth ?k_max ?c_max p =
  match tree_class ?k_max ?c_max p with
  | Some (k, c) ->
      (* Proposition 2: p ∈ ℓ-TW(k) ∩ BI(c) admits a width-(k + 2c)
         decomposition of the full-tree query, hence polynomial evaluation. *)
      Polynomial (k + (2 * c) + 1)
  | None -> Exponential

(* ---- rendering ---------------------------------------------------------- *)

let growth_json = function
  | Polynomial d ->
      Json.Obj [ ("shape", Str "polynomial"); ("degree", Int d) ]
  | Exponential -> Json.Obj [ ("shape", Str "exponential") ]

let log_json f = if f = neg_infinity then Json.Null else Json.Float f

let to_json c =
  Json.Obj
    [ ("atoms", Int c.natoms);
      ("variables", Int c.nvars);
      ("free-variables", Int c.nfree);
      ("adom-size", Int c.adom);
      ("treewidth", Int c.treewidth);
      ("acyclic", Bool c.acyclic);
      ( "ghw-at-most",
        match c.ghw_le with Some k -> Json.Int k | None -> Json.Null );
      ( "log10-bounds",
        Obj
          [ ("relation-product", log_json c.product_bound);
            ("variable-domains", log_json c.vardom_bound);
            ( "decomposition",
              match c.decomp_bound with
              | Some b -> log_json b
              | None -> Json.Null );
            ("adom-power", log_json c.adom_bound);
            ("homomorphisms", log_json c.hom_bound);
            ("answers", log_json c.answer_bound) ] );
      ("answer-count-bound", if bound_count c = max_int then Json.Null else Int (bound_count c));
      ("growth", growth_json c.growth) ]

let pp_growth ppf = function
  | Polynomial d -> Format.fprintf ppf "polynomial (degree <= %d)" d
  | Exponential -> Format.fprintf ppf "exponential"

let pp_log ppf f =
  if f = neg_infinity then Format.pp_print_string ppf "0 (10^-inf)"
  else Format.fprintf ppf "10^%.2f" f

let pp ppf c =
  Format.fprintf ppf
    "%d atom(s), %d variable(s) (%d free), active domain %d@,"
    c.natoms c.nvars c.nfree c.adom;
  Format.fprintf ppf "structure: treewidth %d, %s%a@," c.treewidth
    (if c.acyclic then "acyclic" else "cyclic")
    (fun ppf -> function
      | Some k -> Format.fprintf ppf ", ghw <= %d" k
      | None -> ())
    c.ghw_le;
  Format.fprintf ppf "bounds: relation product %a, variable domains %a@,"
    pp_log c.product_bound pp_log c.vardom_bound;
  (match c.decomp_bound with
  | Some b -> Format.fprintf ppf "        decomposition guards %a@," pp_log b
  | None -> ());
  Format.fprintf ppf "        adom power %a => homomorphisms <= %a@,"
    pp_log c.adom_bound pp_log c.hom_bound;
  Format.fprintf ppf "answers <= %a; predicted growth: %a" pp_log
    c.answer_bound pp_growth c.growth

(* ---- runtime partitioning decision ------------------------------------- *)

let parallel_json (d : Engine.Parallel.decision) =
  Json.Obj
    [ ("domains", Int d.d_domains);
      ("atom", (match d.d_atom with None -> Json.Null | Some a -> Int a));
      ("rows", Int d.d_rows);
      ("chunks", Int d.d_chunks);
      ("chunk-rows", Int d.d_chunk_rows);
      ("reason", Str d.d_reason) ]

let pp_parallel ppf (d : Engine.Parallel.decision) =
  Format.fprintf ppf "partitioning: %s" d.d_reason;
  match d.d_atom with
  | None -> ()
  | Some a ->
      Format.fprintf ppf
        "@,  top-level atom %d: %d candidate row(s) -> %d chunk(s) of <= %d \
         row(s)"
        a d.d_rows d.d_chunks d.d_chunk_rows
