(** Cardinality-feedback auditor: static verification of the engine's
    runtime counter view ({!Engine.Inspect.feedback_view}) and of adaptive
    plan-swap certificates ({!Engine.swap_cert}). Diagnostics E022–E026;
    every check is O(plan size), no stored tuple is inspected and no query
    is re-executed.

    - [E022 estimate-drift] (warning) — an atom's observed log10
      selectivity (survivors per probe context) exceeds its calibrated
      estimate by more than the view's threshold, with at least the probe
      floor of evidence. One-sided: overestimates never fire. This is the
      same predicate {!Engine.replan} adapts on, so an E022 finding is
      exactly "the adaptive loop would (or should) re-plan here".
    - [E023 counter-coverage] (error) — the counter vector does not cover
      the plan's instruction list (wrong indices), a counter is negative,
      an atom reports more survivors than probed rows or probes without a
      probe context, or a completed run failed to credit the top-level
      atom's context (checked only while the store is untouched since
      compilation — extension can legitimately move the top choice).
    - [E024 stale-stats-epoch] (error) — a {e calibrated} plan served under
      a store version newer than the stats epoch its calibration was costed
      at: the learned conclusions predate the statistics. Extends the E006
      three-way version story to the feedback cache; uncalibrated plans are
      exempt (their costing epoch is vacuous, extension is the E006 note
      form).
    - [E025 unjustified-replan] (error) — a swap certificate that does not
      re-verify; see {!verify_swap}.
    - [E026 inconsistent-collector] (error) — an atom's survivor count
      exceeds the sound ceiling [runs × Π_a max(1, |R_a|)] derived from
      the stored row counts alone: the collector itself is broken. *)

(** Audit a feedback view (tests corrupt copies of it). Findings in check
    order: E023, E026, E024, E022. *)
val audit_view : Engine.Inspect.feedback_view -> Diagnostic.t list

(** [audit p] = {!audit_view} of [p]'s genuine view; clean on any view the
    engine actually produced. *)
val audit : Engine.t -> Diagnostic.t list

(** Re-verify an adaptive plan swap from its certificate and the
    before/after plan views, trusting neither. Valid iff the certificate is
    costed at the before-plan's store epoch over at least one run; names at
    least one in-range drifted atom whose claimed estimate recomputes from
    the before-view's statistics and calibration and whose drift genuinely
    exceeds {!Engine.drift_threshold}; its calibration vector recomputes
    (before-calibration plus the drift surplus on drifted atoms); and the
    after-plan differs from the before-plan only in calibration (the
    certificate's) and order (sorted by the calibrated key). Empty list =
    valid; every finding is E025. *)
val verify_swap :
  before:Engine.Inspect.view ->
  after:Engine.Inspect.view ->
  Engine.swap_cert ->
  Diagnostic.t list

(** The trust boundary for the adaptive loop: returns [after] when the
    certificate re-verifies, otherwise [before] with the E025 findings
    explaining the rejection. *)
val accept_swap :
  before:Engine.t ->
  after:Engine.t ->
  Engine.swap_cert ->
  Engine.t * Diagnostic.t list

(** The estimate-vs-actual table as JSON (the [explain --drift]
    ["feedback"] key). *)
val view_json : Engine.Inspect.feedback_view -> Json.t

(** The estimate-vs-actual table, one atom per row, drifted atoms marked. *)
val pp_view : Format.formatter -> Engine.Inspect.feedback_view -> unit

(** ["feedback audit: clean"] or the findings, one per line. *)
val pp_report : Format.formatter -> Diagnostic.t list -> unit
