(** Static cost model: worst-case output bounds for a conjunctive body over a
    concrete database, computed from stored statistics only — relation
    cardinalities, per-position distinct counts ({!Database.distinct_count})
    and the active-domain size. No tuple is enumerated.

    Bounds are kept in log10 ([neg_infinity] = provably empty). Four
    independent sound bounds on the number of homomorphisms are combined by
    minimum:

    - the relation product [Π_a |R_a|] (each homomorphism picks one matching
      fact per atom);
    - the variable-domain product [Π_x dom(x)], where [dom(x)] is the least
      distinct-count over the positions [x] occupies;
    - the per-bag guard product over a generalized hypertree decomposition
      ({!Hypergraphs.Hypertree.guard_weight}), searched for width <= 2 on
      small hypergraphs;
    - the trivial [|adom|^nvars].

    The answer bound additionally projects onto the free variables.

    The CQ-level core lives in {!Cq.Cost} (so {!Wdpt.Optimizer} can use it
    for per-instance strategy selection without a dependency cycle); the
    type equations below make the two interchangeable. This module adds the
    WDPT tree classification and JSON rendering. *)

open Relational

type growth = Cq.Cost.growth =
  | Polynomial of int  (** degree bound in the database size *)
  | Exponential  (** saturated regime: width does not beat [|adom|^nvars] *)

type t = Cq.Cost.t = {
  natoms : int;
  nvars : int;
  nfree : int;
  adom : int;
  treewidth : int;
  acyclic : bool;
  ghw_le : int option;  (** least k <= 2 with ghw <= k, when searched *)
  product_bound : float;
  vardom_bound : float;
  decomp_bound : float option;
  adom_bound : float;
  hom_bound : float;
  answer_bound : float;
  growth : growth;
  drift : float;
      (** observed selectivity drift folded in by {!recalibrate};
          [0.] for a purely static analysis *)
}

(** [analyze db atoms ~free]: statistics are read from [db]; [free] names the
    projection variables (answers are projections of homomorphisms, so
    [answer_bound <= hom_bound]). *)
val analyze : Database.t -> Atom.t list -> free:string list -> t

(** The answer bound as an integer ceiling ([max_int] beyond 10^18),
    comparable against a measured answer count. *)
val bound_count : t -> int

(** Re-export of {!Cq.Cost.recalibrate}: fold observed selectivity drift
    (log10 decades, clamped to [>= 0.]) into the report for re-planning. *)
val recalibrate : t -> drift:float -> t

(** Least [(k, c)] with [p ∈ ℓ-TW(k) ∩ BI(c)] within the caps (defaults 3
    and 3), the paper's tractability condition (Theorem 1 / Proposition 2);
    [None] if the tree falls outside the capped fragments. *)
val tree_class : ?k_max:int -> ?c_max:int -> Wdpt.Pattern_tree.t -> (int * int) option

(** [Polynomial (k + 2c + 1)] via {!tree_class} (Proposition 2's width
    [k + 2c] decomposition), else [Exponential]. *)
val tree_growth : ?k_max:int -> ?c_max:int -> Wdpt.Pattern_tree.t -> growth

val growth_json : growth -> Json.t
val to_json : t -> Json.t
val pp_growth : Format.formatter -> growth -> unit
val pp : Format.formatter -> t -> unit

(** {2 Runtime partitioning decision}

    Rendering of {!Engine.Parallel.decision} — how the engine would chunk a
    compiled plan's top-level candidate rows across domains under the current
    configuration — for the [explain] CLI. *)

val parallel_json : Engine.Parallel.decision -> Json.t
val pp_parallel : Format.formatter -> Engine.Parallel.decision -> unit
