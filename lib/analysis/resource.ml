(* Certified resource envelopes for the batched pipeline.

   The envelope mirrors the batched interpreter's allocation discipline
   (engine.ml, iter_envs_batched_slice) component for component:

   - slot columns and parent pointers grow geometrically via ensure/regrow,
     so a buffer's capacity never exceeds twice the widest width it served
     (floor 16, the interior expansion's initial capacity);
   - probe scratch (pcol_scratch) is bounded by the widest level a probing
     stage ever ran over; the composite-key candidate arrays are transient
     per stage invocation (2 pointers-and-counts rows + a permutation);
   - dense probe tables are gated on [max key < 4 * cells + 64] with
     [cells] the counted index's population — exactly the per-position
     distinct count the view snapshots — so the two top arrays cost at most
     2 * (4 * dcount + 64) words per eligible stage;
   - per-stage expansion factors come from Dataflow re-run along the fixed
     stage order (the order the pipeline executes), whose st_rows_max is a
     sound per-environment candidate bound: level widths are products of
     them, and solutions per group never exceed the group width times the
     product over expansion stages.

   Everything saturates at [cap]: an exponential bound must surface as a
   huge envelope the admission gate rejects, not as an overflowed small
   one. *)

module I = Engine.Inspect

let cap = max_int / 16

let sat_add a b = if a >= cap - b then cap else a + b
let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a >= cap / b then cap else a * b

(* capacity bound of a geometrically grown buffer that served width [w] *)
let cap_bound w = sat_mul 2 (max 16 w)

type t = {
  r_batched : bool;
  r_checked : bool;
  r_rows : int;
  r_group_rows : int;
  r_groups : int;
  r_slices : int;
  r_nslots : int;
  r_stage_rows : int array;
  r_peak_rows : int;
  r_column_words : int;
  r_dense_words : int;
  r_replay_rows : int;
  r_buffered_rows : int;
  r_peak_bytes : int;
  r_infeasible : bool;
  r_saturated : bool;
}

let analyze ?checked (v : I.view) (pv : I.par_view) (b : I.batch_view) =
  let checked =
    match checked with Some c -> c | None -> Engine.checked_enabled ()
  in
  let nstages = Array.length b.I.b_stages in
  let nslots = Array.length v.I.i_slots in
  let rows = pv.I.pv_rows in
  let slices = max 1 (min pv.I.pv_domains (Array.length pv.I.pv_chunks)) in
  (* per-stage sound candidate bounds along the fixed order: Dataflow's
     narrowing (and its provably-empty verdicts) must follow the order the
     pipeline executes, so re-run it on a view whose order is the stage
     sequence *)
  let stage_rows =
    if nstages = 0 then [||]
    else
      let fixed = Array.map (fun st -> st.I.bv_atom) b.I.b_stages in
      let df = Dataflow.analyze { v with I.i_order = fixed } in
      Array.map (fun st -> st.Dataflow.st_rows_max) df.Dataflow.steps
  in
  let infeasible =
    (not v.I.i_feasible) || rows = 0
    || Array.exists (fun r -> r = 0) stage_rows
  in
  if nstages = 0 then
    { r_batched = b.I.b_enabled;
      r_checked = checked;
      r_rows = rows;
      r_group_rows = 0;
      r_groups = b.I.b_groups;
      r_slices = slices;
      r_nslots = nslots;
      r_stage_rows = stage_rows;
      r_peak_rows = 0;
      r_column_words = 0;
      r_dense_words = 0;
      r_replay_rows = 0;
      r_buffered_rows = 0;
      r_peak_bytes = 0;
      r_infeasible = infeasible;
      r_saturated = false }
  else begin
    let g = min b.I.b_morsel_rows rows in
    (* a provably-empty stage kills the pipeline, but groups still run (and
       allocate scratch) up to it — clamp its factor to 1 so the envelope
       keeps covering the scratch of the stages that do execute; the
       infeasible flag reports the emptiness separately *)
    let factor k = max 1 stage_rows.(k) in
    (* level widths: stage 0 compacts to at most the group width, every
       interior expansion multiplies by its candidate bound, filters only
       narrow, the final expansion streams (its width is replay-only) *)
    let width = ref g in
    let peak = ref g in
    let column_words = ref 0 in
    let expansion_product = ref 1 in
    let max_ncols = ref 1 in
    let any_composite = ref false in
    let nbinds0 = Array.length b.I.b_stages.(0).I.bv_binds in
    column_words := sat_mul nbinds0 (cap_bound g);
    for k = 1 to nstages - 1 do
      let st = b.I.b_stages.(k) in
      max_ncols := max !max_ncols (Array.length st.I.bv_cols);
      if Array.length st.I.bv_cols >= 2 then any_composite := true;
      if not st.I.bv_filter then begin
        expansion_product := sat_mul !expansion_product (factor k);
        if k < nstages - 1 then begin
          width := sat_mul !width (factor k);
          peak := max !peak !width;
          (* the new level's bind columns plus its parent-pointer array *)
          column_words :=
            sat_add !column_words
              (sat_mul
                 (Array.length st.I.bv_binds + 1)
                 (cap_bound !width))
        end
      end
    done;
    (* probe scratch, candidate scratch, survivor mask, composite arrays *)
    column_words :=
      sat_add !column_words (sat_mul !max_ncols (cap_bound !peak));
    column_words := sat_add !column_words (sat_mul 2 (max 1 g));
    column_words :=
      sat_add !column_words (((sat_mul 2 !peak + 7) / 8) + 1);
    if !any_composite then
      column_words := sat_add !column_words (sat_mul 3 !peak);
    (* dense probe tables: every stage that could clear the gate *)
    let dense_words = ref 0 in
    for k = 1 to nstages - 1 do
      let st = b.I.b_stages.(k) in
      if Array.length st.I.bv_cols = 1 then begin
        let pos, _ = st.I.bv_cols.(0) in
        let av = v.I.i_atoms.(st.I.bv_atom) in
        let dc =
          if pos >= 0 && pos < Array.length av.I.a_dcounts then
            av.I.a_dcounts.(pos)
          else 0
        in
        dense_words :=
          sat_add !dense_words (sat_mul 2 (sat_add (sat_mul 4 dc) 64))
      end
    done;
    (* buffering: checked mode replays one group at a time; a parallel
       enumeration retains every chunk's solutions until the chunk-order
       replay *)
    let replay_rows = sat_mul g !expansion_product in
    let buffered_rows = sat_mul rows !expansion_product in
    let scratch_bytes =
      sat_mul 8 (sat_mul slices (sat_add !column_words !dense_words))
    in
    let buffered_bytes =
      let row_words = nslots + 2 in
      if slices > 1 then sat_mul 8 (sat_mul row_words buffered_rows)
      else if checked then sat_mul 8 (sat_mul row_words replay_rows)
      else 0
    in
    let peak_bytes = sat_add scratch_bytes buffered_bytes in
    let saturated =
      !peak >= cap || !column_words >= cap || !dense_words >= cap
      || replay_rows >= cap || peak_bytes >= cap
    in
    { r_batched = b.I.b_enabled;
      r_checked = checked;
      r_rows = rows;
      r_group_rows = g;
      r_groups = b.I.b_groups;
      r_slices = slices;
      r_nslots = nslots;
      r_stage_rows = stage_rows;
      r_peak_rows = !peak;
      r_column_words = !column_words;
      r_dense_words = !dense_words;
      r_replay_rows = replay_rows;
      r_buffered_rows = buffered_rows;
      r_peak_bytes = peak_bytes;
      r_infeasible = infeasible;
      r_saturated = saturated }
  end

let of_plan p = analyze (I.plan p) (I.par p) (I.batch p)

let admits t ~budget = (not t.r_saturated) && t.r_peak_bytes <= budget

(* ---- rendering --------------------------------------------------------- *)

let to_json t =
  Json.Obj
    [ ("batched", Bool t.r_batched);
      ("checked", Bool t.r_checked);
      ("rows", Int t.r_rows);
      ("group-rows", Int t.r_group_rows);
      ("groups", Int t.r_groups);
      ("slices", Int t.r_slices);
      ("slots", Int t.r_nslots);
      ( "stage-rows",
        List (Array.to_list (Array.map (fun r -> Json.Int r) t.r_stage_rows))
      );
      ("peak-rows", Int t.r_peak_rows);
      ("column-words", Int t.r_column_words);
      ("dense-words", Int t.r_dense_words);
      ("replay-rows", Int t.r_replay_rows);
      ("buffered-rows", Int t.r_buffered_rows);
      ("peak-bytes", Int t.r_peak_bytes);
      ("infeasible", Bool t.r_infeasible);
      ("saturated", Bool t.r_saturated) ]

let pp_bytes ppf n =
  if n >= 1 lsl 30 then
    Format.fprintf ppf "%.1f GiB" (float_of_int n /. float_of_int (1 lsl 30))
  else if n >= 1 lsl 20 then
    Format.fprintf ppf "%.1f MiB" (float_of_int n /. float_of_int (1 lsl 20))
  else if n >= 1 lsl 10 then
    Format.fprintf ppf "%.1f KiB" (float_of_int n /. float_of_int (1 lsl 10))
  else Format.fprintf ppf "%d B" n

let pp ppf t =
  if t.r_infeasible then
    Format.fprintf ppf
      "plan provably empty — certified peak %a (pipeline scratch only, no \
       answer ever buffered)"
      pp_bytes t.r_peak_bytes
  else if t.r_saturated then
    Format.fprintf ppf
      "certified peak UNBOUNDED (saturated) — %d stage(s), peak rows >= \
       %d; any finite --max-mem budget rejects"
      (Array.length t.r_stage_rows)
      t.r_peak_rows
  else begin
    Format.fprintf ppf "certified peak %a across %d slice(s)" pp_bytes
      t.r_peak_bytes t.r_slices;
    Format.fprintf ppf
      "@,  per slice: %d column word(s), %d dense probe-table word(s), peak \
       level width %d row(s)"
      t.r_column_words t.r_dense_words t.r_peak_rows;
    Format.fprintf ppf
      "@,  buffering: <= %d row(s) per group/chunk, <= %d region-wide%s"
      t.r_replay_rows t.r_buffered_rows
      (if t.r_checked then " (checked-mode replay armed)" else "");
    Format.fprintf ppf
      "@,  geometry: %d-row group(s), %d group(s) over %d candidate row(s)"
      t.r_group_rows t.r_groups t.r_rows
  end
