(** A minimal JSON document type and printer for the [lint --json] report.

    Deliberately tiny (the toolchain has no JSON dependency): construction
    and printing only, no parsing. Strings are escaped per RFC 8259; output
    is deterministic (object fields print in the order given). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values render as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Pretty, indented rendering. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Version of the whole machine-readable JSON surface — every top-level
    emitter ([lint]/[explain]/fuzz reports) carries it as a ["schema"] key.
    Bumped when an existing key changes meaning or is removed; purely
    additive keys do not bump it. *)
val schema_version : int
