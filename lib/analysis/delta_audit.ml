open Relational

(* The delta-maintenance auditor: E027–E030.

   Everything here runs on plain data — the dirty-range derivation
   (Engine.Delta.dirty_ranges output), the standing-query view
   (Wdpt.Standing.view) and refresh event streams — so tests can corrupt
   the inputs and prove each code fires. Costs are O(batch × atoms) for
   E027 and O(view) for E028/E029 (frontier checks are quadratic within a
   comparability group, which is part of the view's own invariant). *)

let str pp v = Format.asprintf "%a" pp v
let mstr = str Mapping.pp

(* -- E027: dirty ranges cover every touched probe position -------------- *)

let audit_ranges atoms (b : Engine.Delta.batch) ranges =
  let found = ref [] in
  let covered ai pos v =
    List.exists
      (fun (r : Engine.Delta.dirty_range) ->
        r.dr_atom = ai && r.dr_pos = pos
        && List.exists (Value.equal v) r.dr_values)
      ranges
  in
  List.iteri
    (fun ai a ->
      List.iter
        (fun f ->
          if String.equal (Atom.rel a) (Fact.rel f)
             && Atom.arity a = Fact.arity f then
            List.iteri
              (fun pos v ->
                if not (covered ai pos v) then
                  found :=
                    Diagnostic.make ~witness:(Diagnostic.Dirty_of
                        { atom = ai;
                          pos;
                          value = str Value.pp v;
                          fact = str Fact.pp f })
                      Diagnostic.Delta_dirty
                      (Format.asprintf
                         "batch fact %a touches atom %d position %d but the \
                          dirty range misses value %a"
                         Fact.pp f ai pos Value.pp v)
                    :: !found)
              (Fact.tuple f))
        (b.added @ b.removed))
    atoms;
  List.rev !found

(* -- E028/E029: view invariants ----------------------------------------- *)

let audit_view p (v : Wdpt.Standing.view) =
  let found = ref [] in
  let report ?witness code msg = found := Diagnostic.make ?witness code msg :: !found in
  let root_vars =
    String_set.elements (Wdpt.Pattern_tree.node_vars p (Wdpt.Pattern_tree.root p))
  in
  let free = Wdpt.Pattern_tree.free_set p in
  let root_free =
    List.filter (fun x -> String_set.mem x free) root_vars
  in
  (* E029: stored homs filed under the right rootkey *)
  List.iter
    (fun (rk, homs) ->
      List.iter
        (fun h ->
          let rk' = Mapping.restrict_list root_vars h in
          if not (Mapping.equal rk rk') then
            report
              ~witness:(Diagnostic.Support_of
                  { group = mstr rk;
                    answer = mstr h;
                    stored = 0;
                    derived = 0;
                    detail = "rootkey-mismatch" })
              Diagnostic.Support_mismatch
              (Format.asprintf
                 "stored homomorphism %a filed under rootkey %a but its root \
                  restriction is %a"
                 Mapping.pp h Mapping.pp rk Mapping.pp rk'))
        homs)
    v.v_rootkeys;
  (* derived supports: project every stored hom, group by root-free-key.
     Keys are mappings, so lookups must go through [Mapping.compare] — a
     polymorphic Hashtbl would hash the balanced-tree representation, which
     is not canonical across construction paths. *)
  let module MM = Map.Make (Mapping) in
  let derived =
    List.fold_left
      (fun acc (rk, homs) ->
        let gk = Mapping.restrict_list root_free rk in
        List.fold_left
          (fun acc h ->
            let a = Mapping.restrict free h in
            MM.update gk
              (fun tbl ->
                let tbl = Option.value ~default:MM.empty tbl in
                Some
                  (MM.update a
                     (function Some n -> Some (n + 1) | None -> Some 1)
                     tbl))
              acc)
          acc homs)
      MM.empty v.v_rootkeys
  in
  let derived_support gk a =
    match MM.find_opt gk derived with
    | None -> 0
    | Some tbl -> Option.value ~default:0 (MM.find_opt a tbl)
  in
  (* E029: stored supports match the derived ones, both directions *)
  List.iter
    (fun (gk, answers, _frontier) ->
      List.iter
        (fun (a, stored) ->
          let d = derived_support gk a in
          if stored <> d then
            report
              ~witness:(Diagnostic.Support_of
                  { group = mstr gk;
                    answer = mstr a;
                    stored;
                    derived = d;
                    detail = "support-count" })
              Diagnostic.Support_mismatch
              (Format.asprintf
                 "answer %a in group %a has stored support %d but %d stored \
                  homomorphisms project to it"
                 Mapping.pp a Mapping.pp gk stored d))
        answers)
    v.v_groups;
  MM.iter
    (fun gk tbl ->
      MM.iter
        (fun a n ->
          let stored =
            match
              List.find_opt (fun (g, _, _) -> Mapping.equal g gk) v.v_groups
            with
            | None -> 0
            | Some (_, answers, _) -> (
                match
                  List.find_opt (fun (a', _) -> Mapping.equal a a') answers
                with
                | Some (_, s) -> s
                | None -> 0)
          in
          if stored = 0 then
            report
              ~witness:(Diagnostic.Support_of
                  { group = mstr gk;
                    answer = mstr a;
                    stored = 0;
                    derived = n;
                    detail = "missing-answer" })
              Diagnostic.Support_mismatch
              (Format.asprintf
                 "%d stored homomorphisms project to %a in group %a but the \
                  group does not list it"
                 n Mapping.pp a Mapping.pp gk))
        tbl)
    derived;
  (* E028: each group's frontier is exactly the ⊑-maximal answers *)
  List.iter
    (fun (gk, answers, frontier) ->
      let answer_list = List.map fst answers in
      let is_answer a = List.exists (Mapping.equal a) answer_list in
      List.iter
        (fun a ->
          if not (is_answer a) then
            report
              ~witness:(Diagnostic.Frontier_of
                  { group = mstr gk;
                    answer = mstr a;
                    against = "";
                    detail = "frontier-not-answer" })
              Diagnostic.Frontier_nonmaximal
              (Format.asprintf
                 "frontier of group %a lists %a, which is not an answer"
                 Mapping.pp gk Mapping.pp a)
          else
            match
              List.find_opt (fun b -> Mapping.strictly_subsumes a b) answer_list
            with
            | Some b ->
                report
                  ~witness:(Diagnostic.Frontier_of
                      { group = mstr gk;
                        answer = mstr a;
                        against = mstr b;
                        detail = "dominated-on-frontier" })
                  Diagnostic.Frontier_nonmaximal
                  (Format.asprintf
                     "frontier answer %a of group %a is strictly subsumed by \
                      answer %a"
                     Mapping.pp a Mapping.pp gk Mapping.pp b)
            | None -> ())
        frontier;
      List.iter
        (fun a ->
          let maximal =
            not
              (List.exists (fun b -> Mapping.strictly_subsumes a b) answer_list)
          in
          if maximal && not (List.exists (Mapping.equal a) frontier) then
            report
              ~witness:(Diagnostic.Frontier_of
                  { group = mstr gk;
                    answer = mstr a;
                    against = "";
                    detail = "missing-from-frontier" })
              Diagnostic.Frontier_nonmaximal
              (Format.asprintf
                 "answer %a of group %a is ⊑-maximal but missing from the \
                  frontier"
                 Mapping.pp a Mapping.pp gk))
        answer_list)
    v.v_groups;
  List.rev !found

let audit t = audit_view (Wdpt.Standing.query t) (Wdpt.Standing.view t)

(* -- E030: events reproduce full re-evaluation -------------------------- *)

let check_events ~before_eval ~before_max ~after_eval ~after_max events =
  let found = ref [] in
  let report answer level detail msg =
    found :=
      Diagnostic.make
        ~witness:(Diagnostic.Event_of { answer = mstr answer; level; detail })
        Diagnostic.Event_mismatch msg
      :: !found
  in
  (* replay the events over the before sets *)
  let ev = ref before_eval and mx = ref before_max in
  List.iter
    (fun (e : Wdpt.Standing.event) ->
      match e with
      | Added { answer; maximal } ->
          if Mapping.Set.mem answer !ev then
            report answer "eval" "added-existing"
              (Format.asprintf "Added event for existing answer %a" Mapping.pp
                 answer);
          ev := Mapping.Set.add answer !ev;
          if maximal then mx := Mapping.Set.add answer !mx
      | Removed { answer; was_maximal } ->
          if not (Mapping.Set.mem answer !ev) then
            report answer "eval" "removed-missing"
              (Format.asprintf "Removed event for unknown answer %a" Mapping.pp
                 answer);
          ev := Mapping.Set.remove answer !ev;
          if was_maximal <> Mapping.Set.mem answer !mx then
            report answer "max" "removed-wrong-flag"
              (Format.asprintf
                 "Removed event flags %a as %smaximal, contradicting the \
                  replayed frontier"
                 Mapping.pp answer
                 (if was_maximal then "" else "non-"));
          mx := Mapping.Set.remove answer !mx
      | Promoted answer ->
          if Mapping.Set.mem answer !mx then
            report answer "max" "promoted-existing"
              (Format.asprintf "Promoted event for frontier answer %a"
                 Mapping.pp answer);
          mx := Mapping.Set.add answer !mx
      | Demoted answer ->
          if not (Mapping.Set.mem answer !mx) then
            report answer "max" "demoted-missing"
              (Format.asprintf "Demoted event for non-frontier answer %a"
                 Mapping.pp answer);
          mx := Mapping.Set.remove answer !mx)
    events;
  let diff level replayed reference =
    Mapping.Set.iter
      (fun a ->
        report a level "replay-extra"
          (Format.asprintf
             "replaying the events yields %a at %s level, full re-evaluation \
              does not"
             Mapping.pp a level))
      (Mapping.Set.diff replayed reference);
    Mapping.Set.iter
      (fun a ->
        report a level "replay-missing"
          (Format.asprintf
             "full re-evaluation yields %a at %s level, replaying the events \
              does not"
             Mapping.pp a level))
      (Mapping.Set.diff reference replayed)
  in
  diff "eval" !ev after_eval;
  diff "max" !mx after_max;
  List.rev !found
