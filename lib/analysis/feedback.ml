(* Cardinality-feedback auditor: static verification of the runtime counter
   view (Engine.Inspect.feedback_view) and of adaptive plan-swap
   certificates (Engine.swap_cert).

   Mirrors Plan_audit / Par_audit / Batch_audit: the auditor runs over the
   plain-data view, not over the runtime, so tests can corrupt a copy and
   watch the right E-code come back — while the genuine view is read from
   the same accumulator the engine commits into, so a clean audit certifies
   what actually ran. Every check is O(plan size); no stored tuple is
   inspected and no query is re-executed.

   The codes:
   - E022 estimate-drift (warning): observed selectivity left the calibrated
     estimate by more than the threshold — the trigger for adaptation;
   - E023 counter-coverage: the counter vector does not cover the plan's
     instruction list, or is internally impossible;
   - E024 stale-stats-epoch: a calibrated plan served under a newer stats
     epoch than its calibration was costed against;
   - E025 unjustified-replan: a swap certificate that does not re-verify;
   - E026 inconsistent-collector: observed counts exceeding the sound
     per-run ceiling — the collector itself is broken. *)

module I = Engine.Inspect

let d ?witness code message = Diagnostic.make ?witness code message

(* numeric slack for recomputed log-domain quantities (same eps Equiv uses
   for certificate score recomputation) *)
let eps = 1e-6

(* The calibrated estimate and the observed log10 selectivity of one counter
   entry. Observation = survivors per probe context; [None] without enough
   evidence (no context, below the probe floor, or zero survivors — a dead
   atom only tells us the estimate was an overestimate, which never forces
   anything). *)
let observed (v : I.feedback_view) (fa : I.feedback_atom) =
  if
    fa.I.f_contexts > 0
    && fa.I.f_probed >= v.I.f_min_probed
    && fa.I.f_survived > 0
  then
    Some (log10 (float_of_int fa.I.f_survived /. float_of_int fa.I.f_contexts))
  else None

let estimated (fa : I.feedback_atom) = fa.I.f_score +. fa.I.f_calib

(* ---- E022: estimate-vs-actual drift ------------------------------------ *)

(* One-sided: only an underestimate (more survivors per context than the
   calibrated score predicted) is drift — an overestimate merely makes the
   static order conservative. The baseline is the CALIBRATED estimate, so a
   freshly adapted plan observing the same distribution audits clean. *)
let check_drift (v : I.feedback_view) acc =
  Array.fold_left
    (fun acc (fa : I.feedback_atom) ->
      match observed v fa with
      | None -> acc
      | Some obs ->
          let est = estimated fa in
          if obs -. est > v.I.f_threshold then
            d
              ~witness:
                (Diagnostic.Drifted
                   { atom = fa.I.f_atom;
                     estimated = est;
                     observed = obs;
                     threshold = v.I.f_threshold;
                     contexts = fa.I.f_contexts;
                     probed = fa.I.f_probed;
                     survived = fa.I.f_survived })
              Diagnostic.Drift
              (Printf.sprintf
                 "atom %d: observed selectivity 10^%.2f exceeds the \
                  calibrated estimate 10^%.2f by more than %.1f decade(s) \
                  (%d survivor(s) over %d context(s), %d row(s) probed)"
                 fa.I.f_atom obs est v.I.f_threshold fa.I.f_survived
                 fa.I.f_contexts fa.I.f_probed)
            :: acc
          else acc)
    acc v.I.f_atoms

(* ---- E023: counter coverage -------------------------------------------- *)

(* The counter vector must cover the plan's instruction list one-to-one
   (entry i counts atom i), every counter must be a genuine count
   (non-negative), and the per-atom stream must nest: an atom cannot have
   more survivors than probed rows, nor probes without a context. A ran
   plan must also have credited its top-level probe context — checked only
   while the store is untouched since compilation, because an incremental
   extension can legitimately move the top-level choice between runs. *)
let check_counters (v : I.feedback_view) acc =
  let acc = ref acc in
  let bad atom detail message =
    acc :=
      d
        ~witness:(Diagnostic.Counter_of { atom; detail })
        Diagnostic.Counter_coverage message
      :: !acc
  in
  Array.iteri
    (fun i (fa : I.feedback_atom) ->
      if fa.I.f_atom <> i then
        bad i "index-mismatch"
          (Printf.sprintf
             "counter entry %d claims atom %d: the vector does not cover \
              the instruction list"
             i fa.I.f_atom)
      else begin
        if fa.I.f_contexts < 0 || fa.I.f_probed < 0 || fa.I.f_survived < 0
        then
          bad i "negative-counter"
            (Printf.sprintf
               "atom %d carries a negative counter (%d context(s), %d \
                probed, %d survived)"
               i fa.I.f_contexts fa.I.f_probed fa.I.f_survived);
        if fa.I.f_survived > fa.I.f_probed then
          bad i "survivors-exceed-probes"
            (Printf.sprintf
               "atom %d reports %d survivor(s) out of only %d probed row(s)"
               i fa.I.f_survived fa.I.f_probed);
        if fa.I.f_probed > 0 && fa.I.f_contexts = 0 then
          bad i "probes-without-context"
            (Printf.sprintf
               "atom %d probed %d row(s) without entering any probe context"
               i fa.I.f_probed)
      end)
    v.I.f_atoms;
  if v.I.f_runs < 0 then
    bad (-1) "negative-runs"
      (Printf.sprintf "%d completed run(s) recorded" v.I.f_runs);
  (match v.I.f_top with
  | Some t
    when v.I.f_runs > 0
         && v.I.f_store_version = v.I.f_compiled_version
         && t >= 0
         && t < Array.length v.I.f_atoms ->
      let fa = v.I.f_atoms.(t) in
      if fa.I.f_contexts < v.I.f_runs then
        bad t "missing-top-context"
          (Printf.sprintf
             "top-level atom %d has %d probe context(s) over %d completed \
              run(s): an executed instruction with no counter"
             t fa.I.f_contexts v.I.f_runs)
  | _ -> ());
  !acc

(* ---- E024: stale stats epoch ------------------------------------------- *)

(* Fires only for calibrated plans: an uncalibrated plan's costing epoch is
   vacuous (nothing was learned), and incremental store extension is the
   legitimate E006 note-form story. A CALIBRATED plan under a newer epoch
   is being served feedback conclusions the current statistics never
   justified. *)
let check_epoch (v : I.feedback_view) acc =
  let calibrated =
    Array.exists (fun (fa : I.feedback_atom) -> fa.I.f_calib <> 0.) v.I.f_atoms
  in
  if calibrated && v.I.f_costed_at < v.I.f_store_version then
    d
      ~witness:
        (Diagnostic.Epoch
           { costed = v.I.f_costed_at;
             store = v.I.f_store_version;
             live = v.I.f_live_version })
      Diagnostic.Stale_epoch
      (Printf.sprintf
         "calibrated plan costed at stats epoch %d is served by a store at \
          version %d (live database at %d): the calibration predates the \
          statistics"
         v.I.f_costed_at v.I.f_store_version v.I.f_live_version)
    :: acc
  else acc

(* ---- E026: collector consistency --------------------------------------- *)

(* A sound ceiling that needs no trust in the collector: one completed run
   explores at most Π_a max(1, |R_a|) search-tree nodes (every node matches
   one stored row per atom on its path), so no atom can report more
   survivors than runs × that product. Stated in log10 so the product stays
   finite; the per-relation row counts come from the stored statistics, not
   from the counters under audit. *)
let check_collector (v : I.feedback_view) acc =
  if v.I.f_runs <= 0 then acc
  else begin
    let product =
      Array.fold_left
        (fun s (fa : I.feedback_atom) ->
          s +. log10 (float_of_int (max 1 fa.I.f_rows)))
        0. v.I.f_atoms
    in
    let bound = log10 (float_of_int v.I.f_runs) +. product in
    Array.fold_left
      (fun acc (fa : I.feedback_atom) ->
        if
          fa.I.f_survived > 0
          && log10 (float_of_int fa.I.f_survived) > bound +. eps
        then
          d
            ~witness:
              (Diagnostic.Collector_of
                 { atom = fa.I.f_atom;
                   survived = fa.I.f_survived;
                   runs = v.I.f_runs;
                   bound })
            Diagnostic.Collector_inconsistent
            (Printf.sprintf
               "atom %d reports %d survivor(s) over %d run(s), above the \
                sound ceiling 10^%.2f from the stored row counts: the \
                collector is broken"
               fa.I.f_atom fa.I.f_survived v.I.f_runs bound)
          :: acc
        else acc)
      acc v.I.f_atoms
  end

(* ---- the view audit ----------------------------------------------------- *)

let audit_view (v : I.feedback_view) =
  List.rev (check_drift v (check_epoch v (check_collector v (check_counters v []))))

let audit p = audit_view (I.feedback p)

(* ---- E025: swap-certificate verification -------------------------------- *)

(* Re-verify an adaptive plan swap from its certificate and the before/after
   plan views, trusting neither the loop that produced it nor the numbers it
   recorded. The certificate is valid iff:
   - it is costed at the before-plan's store epoch, over at least one run;
   - it names at least one drifted atom, each in range, each with its
     claimed estimate recomputing from the before-view's statistics and
     calibration, and each genuinely above the threshold;
   - the full calibration vector recomputes: before-calibration plus the
     per-atom drift surplus for drifted atoms, unchanged elsewhere;
   - the after-plan is the before-plan with ONLY calibration and order
     changed — same atoms, instructions, slots, initial bindings, pool —
     its calibration is the certificate's, and its order is sorted by the
     calibrated key. *)
let verify_swap ~(before : I.view) ~(after : I.view) (cert : Engine.swap_cert)
    =
  let acc = ref [] in
  let fail field detail =
    acc :=
      d
        ~witness:(Diagnostic.Replan_of { field; detail })
        Diagnostic.Unjustified_replan
        (Printf.sprintf "swap certificate rejected (%s): %s" field detail)
      :: !acc
  in
  let n = Array.length before.I.i_atoms in
  if cert.Engine.sw_epoch <> before.I.i_store_version then
    fail "epoch"
      (Printf.sprintf "costed at stats epoch %d, store is at %d"
         cert.Engine.sw_epoch before.I.i_store_version);
  if cert.Engine.sw_runs <= 0 then
    fail "runs"
      (Printf.sprintf "%d run(s) of evidence" cert.Engine.sw_runs);
  if Array.length cert.Engine.sw_calib <> max 1 n then
    fail "calibration"
      (Printf.sprintf "calibration vector has %d entr(ies), plan has %d atom(s)"
         (Array.length cert.Engine.sw_calib) n);
  if Array.length cert.Engine.sw_drift = 0 then
    fail "drift" "no drifted atom: nothing justifies a swap";
  let threshold = Engine.drift_threshold () in
  Array.iter
    (fun (i, est, obs) ->
      if i < 0 || i >= n then
        fail "drift" (Printf.sprintf "drifted atom %d out of range" i)
      else begin
        let av = before.I.i_atoms.(i) in
        let est' =
          Engine.selectivity ~rows:av.I.a_rows ~dcounts:av.I.a_dcounts
            av.I.a_ops
          +. av.I.a_calib
        in
        if Float.abs (est -. est') > eps then
          fail "drift"
            (Printf.sprintf
               "atom %d: claimed estimate %.6f does not recompute (%.6f)" i
               est est');
        if obs -. est <= threshold then
          fail "drift"
            (Printf.sprintf
               "atom %d: drift %.2f is within the %.1f-decade threshold" i
               (obs -. est) threshold)
      end)
    cert.Engine.sw_drift;
  if Array.length cert.Engine.sw_calib = max 1 n && n > 0 then begin
    let expected =
      Array.init n (fun i -> before.I.i_atoms.(i).I.a_calib)
    in
    Array.iter
      (fun (i, est, obs) ->
        if i >= 0 && i < n then expected.(i) <- expected.(i) +. (obs -. est))
      cert.Engine.sw_drift;
    Array.iteri
      (fun i c ->
        if i < n && Float.abs (c -. expected.(i)) > eps then
          fail "calibration"
            (Printf.sprintf
               "atom %d: calibration %.6f does not recompute from the drift \
                evidence (%.6f)"
               i c expected.(i)))
      cert.Engine.sw_calib
  end;
  (* structural identity: the swap may only move calibration and order *)
  if Array.length after.I.i_atoms <> n then
    fail "structure"
      (Printf.sprintf "after-plan has %d atom(s), before has %d"
         (Array.length after.I.i_atoms) n);
  if after.I.i_slots <> before.I.i_slots then
    fail "structure" "slot table changed across the swap";
  if after.I.i_env <> before.I.i_env then
    fail "structure" "initial environment changed across the swap";
  if after.I.i_pool <> before.I.i_pool then
    fail "structure" "interner pool changed across the swap";
  if Array.length after.I.i_atoms = n then begin
    Array.iteri
      (fun i (av : I.atom_view) ->
        let bv = before.I.i_atoms.(i) in
        if
          av.I.a_rel <> bv.I.a_rel
          || av.I.a_ops <> bv.I.a_ops
          || av.I.a_atom <> bv.I.a_atom
        then
          fail "structure"
            (Printf.sprintf "atom %d changed across the swap" i);
        let claimed =
          if i < Array.length cert.Engine.sw_calib then
            cert.Engine.sw_calib.(i)
          else 0.
        in
        if Float.abs (av.I.a_calib -. claimed) > eps then
          fail "calibration"
            (Printf.sprintf
               "atom %d: after-plan calibration %.6f is not the certified \
                %.6f"
               i av.I.a_calib claimed))
      after.I.i_atoms;
    (* the after order must be sorted by the calibrated key *)
    let order = after.I.i_order in
    if Array.length order = n then begin
      let key ai =
        let av = after.I.i_atoms.(ai) in
        let g, s =
          Engine.order_key ~rows:av.I.a_rows ~dcounts:av.I.a_dcounts
            av.I.a_ops
        in
        (g, s +. av.I.a_calib)
      in
      for k = 0 to n - 2 do
        if compare (key order.(k)) (key order.(k + 1)) > 0 then
          fail "order"
            (Printf.sprintf
               "position %d: atom %d precedes a smaller calibrated key"
               k order.(k))
      done
    end
    else fail "order" "after-plan order does not cover the atoms"
  end;
  List.rev !acc

(* [accept_swap] is the trust boundary the engine's adaptive loop goes
   through: the swapped plan is only adopted when its certificate
   re-verifies; otherwise the before-plan is kept and the findings say
   why. *)
let accept_swap ~(before : Engine.t) ~(after : Engine.t) cert =
  match
    verify_swap ~before:(I.plan before) ~after:(I.plan after) cert
  with
  | [] -> (after, [])
  | ds -> (before, ds)

(* ---- rendering (consumed by the explain CLI) ---------------------------- *)

let view_json (v : I.feedback_view) =
  Json.Obj
    [ ("runs", Int v.I.f_runs);
      ("top", (match v.I.f_top with None -> Json.Null | Some t -> Int t));
      ("threshold", Float v.I.f_threshold);
      ("min-probed", Int v.I.f_min_probed);
      ("costed-at", Int v.I.f_costed_at);
      ("compiled-version", Int v.I.f_compiled_version);
      ("store-version", Int v.I.f_store_version);
      ("live-version", Int v.I.f_live_version);
      ( "atoms",
        List
          (Array.to_list
             (Array.map
                (fun (fa : I.feedback_atom) ->
                  Json.Obj
                    [ ("atom", Int fa.I.f_atom);
                      ("contexts", Int fa.I.f_contexts);
                      ("probed", Int fa.I.f_probed);
                      ("survived", Int fa.I.f_survived);
                      ("rows", Int fa.I.f_rows);
                      ("score", Float fa.I.f_score);
                      ("calib", Float fa.I.f_calib);
                      ("estimated", Float (estimated fa));
                      ( "observed",
                        match observed v fa with
                        | Some o -> Json.Float o
                        | None -> Json.Null ) ])
                v.I.f_atoms)) ) ]

let pp_view ppf (v : I.feedback_view) =
  Format.fprintf ppf
    "feedback: %d completed run(s); drift threshold %.1f decade(s), probe \
     floor %d@,"
    v.I.f_runs v.I.f_threshold v.I.f_min_probed;
  Format.fprintf ppf
    "epochs: costed at %d, store at %d, live at %d@," v.I.f_costed_at
    v.I.f_store_version v.I.f_live_version;
  if Array.length v.I.f_atoms = 0 then
    Format.fprintf ppf "no atoms (infeasible or empty plan)"
  else begin
    Format.fprintf ppf
      "  atom  contexts     probed   survived   estimate   observed      drift";
    Array.iter
      (fun (fa : I.feedback_atom) ->
        let est = estimated fa in
        match observed v fa with
        | Some obs ->
            Format.fprintf ppf
              "@,  %4d  %8d %10d %10d   10^%5.2f   10^%5.2f   %+.2f%s"
              fa.I.f_atom fa.I.f_contexts fa.I.f_probed fa.I.f_survived est
              obs (obs -. est)
              (if obs -. est > v.I.f_threshold then "  <- drift" else "")
        | None ->
            Format.fprintf ppf
              "@,  %4d  %8d %10d %10d   10^%5.2f          -          -"
              fa.I.f_atom fa.I.f_contexts fa.I.f_probed fa.I.f_survived est)
      v.I.f_atoms
  end

let pp_report ppf = function
  | [] -> Format.fprintf ppf "feedback audit: clean"
  | ds ->
      Format.fprintf ppf "feedback audit: %d finding(s)@," (List.length ds);
      Format.pp_print_list ~pp_sep:Format.pp_print_cut Diagnostic.pp ppf ds
