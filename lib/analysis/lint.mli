(** The static analyzer: checks a parsed pattern (or SPARQL query) and
    produces structured {!Diagnostic}s.

    The analyzers work on raw tree descriptions ({!Wdpt.Pattern_tree.spec}),
    so ill-formed queries — not well-designed, bad free-variable lists — are
    diagnosed with witnesses instead of being rejected at construction time.
    When the description does build into a {!Wdpt.Pattern_tree.t}, the
    semantic checks (redundant atoms, dead branches, class membership) run
    as well, reusing {!Wdpt.Simplify} and the width machinery of
    {!Wdpt.Classes} / {!Cq.Query}. *)

(** [analyze_spec ?source ~free spec]: all applicable checks. [source] maps
    node/atom indices to spans ({!Wdpt.Syntax.parse_spec} provides one);
    diagnostics carry no spans without it. Structural checks (W001–W003,
    W005) always run; tree-level checks (W004, W006, W007) run when [spec]
    with [free] builds into a valid tree. *)
val analyze_spec :
  ?source:Wdpt.Source_map.t ->
  free:string list ->
  Wdpt.Pattern_tree.spec ->
  Diagnostic.t list

(** [analyze_tree ?source p]: the checks on an already-built (hence
    well-designed) tree: W003–W007. *)
val analyze_tree : ?source:Wdpt.Source_map.t -> Wdpt.Pattern_tree.t -> Diagnostic.t list

(** Lint a query in the relational pattern-tree syntax
    ({!Wdpt.Syntax.parse_spec}). A parse failure yields a single [S001]. *)
val lint_relational : string -> Diagnostic.t list

(** Lint an {AND,OPT}-SPARQL query ({!Rdf.Sparql}). Reports the
    Pérez-et-al. well-designedness violation (W001 with an
    escaping-variable witness) in addition to the tree-level checks on the
    translated description; triple-pattern spans feed diagnostic spans. *)
val lint_sparql : string -> Diagnostic.t list

(** Apply a diagnostic's suggested fix to a tree: rewrite fixes go through
    {!Wdpt.Simplify.apply} (evaluation-preserving), free-variable fixes
    rebuild the tree without the variable. [None] if the diagnostic carries
    no fix or it no longer applies. *)
val apply_fix : Wdpt.Pattern_tree.t -> Diagnostic.t -> Wdpt.Pattern_tree.t option
