(** Delta-maintenance auditor: codes E027–E030.

    Verifies the incremental-evaluation machinery from the outside, on plain
    data: that derived dirty ranges cover every probe position a batch
    touches (E027), that a standing-query view's subsumption frontiers are
    exactly the ⊑-maximal answers of their groups (E028) and its support
    counts recompute from the stored homomorphisms (E029), and that a
    refresh's event stream replays the pre-batch answer sets onto full
    re-evaluation at both semantics levels (E030). All checks are
    O(batch × atoms) or O(view) — never O(database). *)

open Relational

(** [audit_ranges atoms b ranges]: E027. Every value of every batch fact
    unifiable with an atom of [atoms] must appear in that atom's dirty range
    at the fact's position. Pass the output of
    [Engine.Delta.dirty_ranges atoms b] as [ranges] (the check exists so a
    corrupted or hand-rolled derivation is caught). *)
val audit_ranges :
  Atom.t list ->
  Engine.Delta.batch ->
  Engine.Delta.dirty_range list ->
  Diagnostic.t list

(** [audit_view p v]: E028 + E029 over a standing-query view for query [p]:
    rootkey filing, support counts against the stored homomorphisms (both
    directions), and frontier maximality per group. *)
val audit_view : Wdpt.Pattern_tree.t -> Wdpt.Standing.view -> Diagnostic.t list

(** [audit t] = [audit_view (Standing.query t) (Standing.view t)]. *)
val audit : Wdpt.Standing.t -> Diagnostic.t list

(** [check_events ~before_eval ~before_max ~after_eval ~after_max events]:
    E030. Replays [events] over the pre-batch answer sets and diffs the
    result against the post-batch sets (full re-evaluation) at both
    levels; also flags internally inconsistent events (adding an existing
    answer, demoting a non-frontier answer, ...). *)
val check_events :
  before_eval:Mapping.Set.t ->
  before_max:Mapping.Set.t ->
  after_eval:Mapping.Set.t ->
  after_max:Mapping.Set.t ->
  Wdpt.Standing.event list ->
  Diagnostic.t list
