(** Static verification of the batched (vectorized) execution layout
    ({!Engine.Inspect.batch_view}).

    The batch-pipeline auditor checks the soundness conditions the
    vectorized interpreter relies on and reports violations as E-series
    {!Diagnostic}s, each with a machine-checkable witness:

    - [E017 stage-read-before-bind] — a probe column ([bv_cols]) references
      a slot no earlier stage's [bv_binds] wrote and that carries no
      init-bound constant: the probe would chase garbage column values;
    - [E018 column-aliasing] — two stages bind the same slot column, or a
      bind overwrites an init-bound slot (the compiler folds init slots
      into constant checks, so a genuine layout never writes one);
    - [E019 incomplete-position-cover] — a stage's
      [bv_checks ∪ bv_cols ∪ bv_binds ∪ bv_dups] does not cover its stored
      relation's arity: the probe admits tuples the scalar semantics would
      reject at the uncovered position;
    - [E020 filter-stage-binds] — the [bv_filter] flag contradicts the bind
      list: a stage flagged as a mask-only filter that nonetheless binds
      (its writes would be skipped), or a stage claiming new columns that
      binds none — on the final stage that means its streamed output would
      be consumed through the materialized-column read-back path;
    - [E021 unsound-resource-envelope] — a certified {!Resource} envelope
      component smaller than the matching measured
      {!Engine.batch_stats} high-water mark ({!check_envelope}).

    All checks are O(plan). The genuine view is re-derived from the same
    pure stage compiler the batched interpreter runs
    ([Engine.batch_stages]), so a clean audit certifies the layout an
    actual run uses. *)

(** Audit a layout. Diagnostics come back in check order (E017 … E020). A
    view produced by {!Engine.Inspect.batch} on a freshly compiled plan
    audits clean at every pool and morsel size. The plan view supplies the
    init environment (E017/E018 init-bound slots) and per-atom arities
    (E019). *)
val audit_view :
  Engine.Inspect.view -> Engine.Inspect.batch_view -> Diagnostic.t list

(** [audit p = audit_view (Engine.Inspect.plan p) (Engine.Inspect.batch p)]. *)
val audit : Engine.t -> Diagnostic.t list

(** [check_envelope env stats]: one E021 per envelope component a measured
    high-water mark exceeds ([column-words], [probe-table-words],
    [replay-rows]). Empty on every genuine run — the soundness property the
    fuzzer's [--batch-audit-diff] mode holds over random instances. *)
val check_envelope : Resource.t -> Engine.batch_stats -> Diagnostic.t list
