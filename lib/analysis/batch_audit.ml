(* Static verification of the batched execution layout.

   Mirrors Plan_audit/Par_audit: the auditor runs over the inspectable view
   (Engine.Inspect.batch_view), not over the runtime itself, so tests can
   corrupt a copy of the view and watch the right E-code come back — while
   the genuine view is re-derived from the same pure stage compiler the
   vectorized interpreter runs, so a clean audit certifies the layout an
   actual run uses. Every check is O(plan): O(stages * arity) for the
   dataflow and cover walks, O(1) per stage for the role-consistency check,
   O(1) for the envelope comparison. *)

module I = Engine.Inspect

let d ?witness code message = Diagnostic.make ?witness code message

(* E017: a probe column (bv_cols) may only reference a slot some strictly
   earlier stage's bv_binds wrote — init-bound slots have no materialized
   column (the stage compiler folds them into constant checks), so reading
   one chases memory no stage ever filled. The witness names the stage that
   does bind the slot (null if none does), pinning the ordering bug. *)
let check_read_before_bind (v : I.view) (b : I.batch_view) acc =
  let nslots = Array.length v.I.i_slots in
  (* who ever binds each slot, for the witness *)
  let eventual = Array.make (max 1 nslots) (-1) in
  Array.iteri
    (fun k st ->
      Array.iter
        (fun (_, s) ->
          if s >= 0 && s < nslots && eventual.(s) < 0 then eventual.(s) <- k)
        st.I.bv_binds)
    b.I.b_stages;
  let bound = Array.make (max 1 nslots) false in
  let acc = ref acc in
  Array.iteri
    (fun k st ->
      Array.iter
        (fun (pos, s) ->
          if s < 0 || s >= nslots || not bound.(s) then begin
            let binder = if s >= 0 && s < nslots then eventual.(s) else -1 in
            acc :=
              d
                ~witness:
                  (Diagnostic.Read_before_bind
                     { stage = k; atom = st.I.bv_atom; pos; slot = s; binder })
                Diagnostic.Stage_read_before_bind
                (Printf.sprintf
                   "stage %d probes position %d against slot %d's column, \
                    but %s binds it%s"
                   k pos s
                   (if binder < 0 then "no stage"
                    else Printf.sprintf "only stage %d" binder)
                   (if binder < 0 then "" else " — reads must follow binds"))
              :: !acc
          end)
        st.I.bv_cols;
      Array.iter
        (fun (_, s) -> if s >= 0 && s < nslots then bound.(s) <- true)
        st.I.bv_binds)
    b.I.b_stages;
  !acc

(* E018: each slot's column has exactly one writer. A second bind would
   overwrite live values the earlier stage's survivors still read through
   their parent pointers; binding an init-bound slot means the compiler's
   constant folding was bypassed. *)
let check_aliasing (v : I.view) (b : I.batch_view) acc =
  let nslots = Array.length v.I.i_slots in
  let binder = Array.make (max 1 nslots) (-2) in
  Array.iteri (fun s id -> if id >= 0 then binder.(s) <- -1) v.I.i_env;
  let acc = ref acc in
  Array.iteri
    (fun k st ->
      Array.iter
        (fun (_, s) ->
          if s >= 0 && s < nslots then begin
            if binder.(s) >= -1 then begin
              let init = binder.(s) = -1 in
              acc :=
                d
                  ~witness:
                    (Diagnostic.Aliased
                       { slot = s;
                         first_stage = binder.(s);
                         second_stage = k;
                         init })
                  Diagnostic.Column_aliasing
                  (Printf.sprintf
                     "stage %d rebinds slot %d's column, already %s — one \
                      writer per column"
                     k s
                     (if init then "pinned by the initial environment"
                      else Printf.sprintf "written by stage %d" binder.(s)))
                :: !acc
            end
            else binder.(s) <- k
          end)
        st.I.bv_binds)
    b.I.b_stages;
  !acc

(* E019: a stage's roles (constant checks, probe columns, binds, duplicate
   positions) must cover every argument position of its stored relation —
   an uncovered position admits tuples the scalar semantics would reject
   there. *)
let check_position_cover (v : I.view) (b : I.batch_view) acc =
  let natoms = Array.length v.I.i_atoms in
  let acc = ref acc in
  Array.iteri
    (fun k st ->
      if st.I.bv_atom >= 0 && st.I.bv_atom < natoms then begin
        let arity = v.I.i_atoms.(st.I.bv_atom).I.a_arity in
        let covered = Array.make (max 1 arity) false in
        let mark (pos, _) =
          if pos >= 0 && pos < arity then covered.(pos) <- true
        in
        Array.iter mark st.I.bv_checks;
        Array.iter mark st.I.bv_cols;
        Array.iter mark st.I.bv_binds;
        Array.iter mark st.I.bv_dups;
        let n = ref 0 and missing = ref (-1) in
        for pos = arity - 1 downto 0 do
          if covered.(pos) then incr n else missing := pos
        done;
        if !n < arity then
          acc :=
            d
              ~witness:
                (Diagnostic.Cover
                   { stage = k;
                     atom = st.I.bv_atom;
                     arity;
                     covered = !n;
                     missing = !missing })
              Diagnostic.Position_cover
              (Printf.sprintf
                 "stage %d covers %d of atom %d's %d position(s): position \
                  %d has no check, probe, bind or duplicate role"
                 k !n st.I.bv_atom arity !missing)
            :: !acc
      end)
    b.I.b_stages;
  !acc

(* E020: bv_filter must equal (bv_binds = []). A "filter" that binds would
   have its writes skipped by the mask-only path; a binding-shaped stage
   with no binds materializes nothing — on the final stage its streamed
   output would then be consumed through the column read-back path. *)
let check_filter_binds (b : I.batch_view) acc =
  let nstages = Array.length b.I.b_stages in
  let acc = ref acc in
  Array.iteri
    (fun k st ->
      let binds = Array.length st.I.bv_binds in
      if st.I.bv_filter && binds > 0 then
        acc :=
          d
            ~witness:
              (Diagnostic.Filter_bind
                 { stage = k; atom = st.I.bv_atom; binds; streamed = false })
            Diagnostic.Filter_binds
            (Printf.sprintf
               "stage %d is flagged mask-only but binds %d column(s) — the \
                filter path would skip its writes"
               k binds)
          :: !acc
      else if (not st.I.bv_filter) && binds = 0 then begin
        let streamed = k = nstages - 1 in
        acc :=
          d
            ~witness:
              (Diagnostic.Filter_bind
                 { stage = k; atom = st.I.bv_atom; binds = 0; streamed })
            Diagnostic.Filter_binds
            (Printf.sprintf
               "stage %d binds no column yet is not flagged mask-only%s" k
               (if streamed then
                  " — its streamed final output would be read back as a \
                   materialized column"
                else ""))
          :: !acc
      end)
    b.I.b_stages;
  !acc

let audit_view (v : I.view) (b : I.batch_view) =
  []
  |> check_read_before_bind v b
  |> check_aliasing v b
  |> check_position_cover v b
  |> check_filter_binds b
  |> List.rev

let audit p = audit_view (I.plan p) (I.batch p)

(* E021: certified-vs-measured, one finding per violated component. The
   envelope is per slice / per group exactly like the high-water marks
   (peaks of one slice's scratch, one group's replay buffer — never
   cross-domain sums), so domination is a plain <= per component. *)
let check_envelope (r : Resource.t) (s : Engine.batch_stats) =
  let chk component certified measured acc =
    if measured > certified then
      d
        ~witness:(Diagnostic.Envelope { component; certified; measured })
        Diagnostic.Resource_envelope
        (Printf.sprintf
           "measured %s high-water mark %d exceeds the certified envelope \
            %d — the admission bound is unsound for this plan"
           component measured certified)
      :: acc
    else acc
  in
  []
  |> chk "column-words" r.Resource.r_column_words s.Engine.bm_column_words
  |> chk "probe-table-words" r.Resource.r_dense_words s.Engine.bm_dense_words
  |> chk "replay-rows" r.Resource.r_replay_rows s.Engine.bm_replay_rows
  |> List.rev
