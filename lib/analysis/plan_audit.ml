(* Static verification of compiled engine plans.

   The auditor runs over the inspectable IR view (Engine.Inspect.view), not
   over the abstract plan, so tests can corrupt a copy of the view and watch
   the right E-code come back. Every check is O(plan size): nothing here
   touches stored tuples, only the per-atom summary statistics the view
   carries (row counts, arities, pool size). The diagnostics mirror the
   W-series of Lint: stable code, severity, message, machine-checkable
   witness. *)

module I = Engine.Inspect

let d ?witness code message = Diagnostic.make ?witness code message

let pp_atom ppf (av : I.atom_view) =
  Format.fprintf ppf "%a" Relational.Atom.pp av.I.a_atom

(* E001: every Slot instruction must stay inside the initialized environment,
   and the environment must cover the slot table. *)
let check_slots (v : I.view) acc =
  let nenv = Array.length v.i_env in
  let acc =
    if nenv < Array.length v.i_slots then
      d
        ~witness:
          (Diagnostic.Slot_range
             { atom = -1; op = -1; slot = Array.length v.i_slots - 1; env = nenv })
        Diagnostic.Uninit_slot_read
        (Format.asprintf
           "environment has %d slot(s) but the slot table names %d variable(s): \
            reading the last slot is uninitialized"
           nenv (Array.length v.i_slots))
      :: acc
    else acc
  in
  Array.fold_left
    (fun acc (av : I.atom_view) ->
      let acc = ref acc in
      Array.iteri
        (fun oi op ->
          match op with
          | Engine.Slot s when s < 0 || s >= nenv ->
              acc :=
                d
                  ~witness:
                    (Diagnostic.Slot_range
                       { atom = av.I.a_index; op = oi; slot = s; env = nenv })
                  Diagnostic.Uninit_slot_read
                  (Format.asprintf
                     "atom %d (%a) op %d reads slot %d of a %d-slot environment"
                     av.I.a_index pp_atom av oi s nenv)
                :: !acc
          | _ -> ())
        av.I.a_ops;
      !acc)
    acc v.i_atoms

(* E002: interned ids — Check constants and initial bindings — must come from
   the pool. -1 in the initial environment means unbound and is fine. *)
let check_ids (v : I.view) acc =
  let pool = v.i_pool in
  let acc =
    Array.fold_left
      (fun acc (av : I.atom_view) ->
        let acc = ref acc in
        Array.iteri
          (fun oi op ->
            match op with
            | Engine.Check id when id < 0 || id >= pool ->
                acc :=
                  d
                    ~witness:
                      (Diagnostic.Id_range
                         { site = Printf.sprintf "atom %d op %d" av.I.a_index oi;
                           id;
                           pool })
                    Diagnostic.Interner_range
                    (Format.asprintf
                       "atom %d (%a) op %d checks interner id %d; pool has %d"
                       av.I.a_index pp_atom av oi id pool)
                  :: !acc
            | _ -> ())
          av.I.a_ops;
        !acc)
      acc v.i_atoms
  in
  let out = ref acc in
  Array.iteri
    (fun s id ->
      if id < -1 || id >= pool then
        out :=
          d
            ~witness:
              (Diagnostic.Id_range
                 { site = Printf.sprintf "init slot %d" s; id; pool })
            Diagnostic.Interner_range
            (Printf.sprintf "initial binding of slot %d is interner id %d; pool has %d"
               s id pool)
          :: !out)
    v.i_env;
  !out

(* E003: instruction count, stored arity and index count must agree. *)
let check_arities (v : I.view) acc =
  Array.fold_left
    (fun acc (av : I.atom_view) ->
      let ops = Array.length av.I.a_ops in
      if ops <> av.I.a_arity || av.I.a_index_arity <> av.I.a_arity then
        d
          ~witness:
            (Diagnostic.Plan_arity
               { atom = av.I.a_index;
                 relation = av.I.a_rel;
                 ops;
                 arity = av.I.a_arity;
                 index = av.I.a_index_arity })
          Diagnostic.Plan_arity_mismatch
          (Format.asprintf
             "atom %d (%a): %d instruction(s) against relation %s of arity %d \
              with %d per-position index(es)"
             av.I.a_index pp_atom av ops av.I.a_rel av.I.a_arity
             av.I.a_index_arity)
        :: acc
      else acc)
    acc v.i_atoms

(* E004: a slot no instruction touches and no initial binding fills would
   never be written nor read back — dead weight in the environment. *)
let check_dead_slots (v : I.view) acc =
  let n = Array.length v.i_slots in
  let touched = Array.make (max 1 n) false in
  Array.iter
    (fun (av : I.atom_view) ->
      Array.iter
        (function
          | Engine.Slot s when s >= 0 && s < n -> touched.(s) <- true
          | _ -> ())
        av.I.a_ops)
    v.i_atoms;
  let out = ref acc in
  for s = n - 1 downto 0 do
    let init_bound = s < Array.length v.i_env && v.i_env.(s) >= 0 in
    if not (touched.(s) || init_bound) then
      out :=
        d
          ~witness:(Diagnostic.Dead_slot_of { slot = s; variable = v.i_slots.(s) })
          Diagnostic.Dead_slot
          (Printf.sprintf
             "slot %d (variable %s) is never read or written by any instruction"
             s v.i_slots.(s))
        :: !out
  done;
  !out

(* E005: the static order must be a permutation sorted ascending by the
   (ground, selectivity) key — the invariant the compiler establishes and the
   selectivity-reorder pass re-establishes after constant folding. The key is
   recomputed here from the view's row counts and distinct counts, not read
   from anywhere the optimizer wrote. *)
let atom_order_key (av : I.atom_view) =
  (* the feedback calibration shifts the score component: an adapted plan
     is sorted by the calibrated key (zero calibration on fresh plans, so
     this degrades to the pure static key) *)
  let g, s = Engine.order_key ~rows:av.I.a_rows ~dcounts:av.I.a_dcounts av.I.a_ops in
  (g, s +. av.I.a_calib)

let check_order (v : I.view) acc =
  let n = Array.length v.i_atoms in
  let order = v.i_order in
  let valid_perm =
    Array.length order = n
    && begin
         let seen = Array.make (max 1 n) false in
         Array.for_all
           (fun ai ->
             if ai < 0 || ai >= n || seen.(ai) then false
             else begin
               seen.(ai) <- true;
               true
             end)
           order
       end
  in
  if not valid_perm then
    d
      ~witness:
        (Diagnostic.Inversion
           { first = -1;
             rows_first = 0;
             score_first = 0.;
             ground_first = false;
             second = -1;
             rows_second = 0;
             score_second = 0.;
             ground_second = false })
      Diagnostic.Order_inversion
      (Printf.sprintf "static order (%d entries) is not a permutation of the %d atom(s)"
         (Array.length order) n)
    :: acc
  else begin
    let out = ref acc in
    for i = n - 2 downto 0 do
      let a = order.(i) and b = order.(i + 1) in
      let ga, sa = atom_order_key v.i_atoms.(a)
      and gb, sb = atom_order_key v.i_atoms.(b) in
      if compare (ga, sa) (gb, sb) > 0 then
        out :=
          d
            ~witness:
              (Diagnostic.Inversion
                 { first = a;
                   rows_first = v.i_atoms.(a).I.a_rows;
                   score_first = sa;
                   ground_first = ga = 0;
                   second = b;
                   rows_second = v.i_atoms.(b).I.a_rows;
                   score_second = sb;
                   ground_second = gb = 0 })
            Diagnostic.Order_inversion
            (Printf.sprintf
               "static order places atom %d (%s, score %.3f) before atom %d \
                (%s, score %.3f)"
               a
               (if ga = 0 then "ground" else "non-ground")
               sa b
               (if gb = 0 then "ground" else "non-ground")
               sb)
          :: !out
    done;
    !out
  end

(* E006: three-way version discipline. A store that fell behind the live
   database is detached — the plan enumerates against missing facts (error).
   A store ahead of the plan's compile stamp but level with the live database
   was incrementally extended in place: existing rows are untouched and
   candidate sets only grow, so the plan stays sound — reported as a warning
   (its cached static order may no longer be cost-optimal). *)
let check_version (v : I.view) acc =
  if v.i_store_version < v.i_live_version then
    d
      ~witness:
        (Diagnostic.Stale
           { compiled = v.i_store_version; live = v.i_live_version })
      Diagnostic.Stale_plan
      (Printf.sprintf
         "plan compiled against database version %d; the database is at version %d"
         v.i_store_version v.i_live_version)
    :: acc
  else if v.i_compiled_version < v.i_store_version then
    { (d
         ~witness:
           (Diagnostic.Extended
              { compiled = v.i_compiled_version;
                store = v.i_store_version;
                live = v.i_live_version })
         Diagnostic.Stale_plan
         (Printf.sprintf
            "plan compiled at database version %d; its store was incrementally \
             extended to version %d"
            v.i_compiled_version v.i_store_version))
      with
      severity = Diagnostic.Warning
    }
    :: acc
  else acc

let audit_view (v : I.view) =
  let acc = check_version v [] in
  if not v.i_feasible then List.rev acc
    (* an infeasible plan carries no instructions: only staleness applies *)
  else
    List.rev
      (check_order v
         (check_dead_slots v (check_arities v (check_ids v (check_slots v acc)))))

let audit p = audit_view (Engine.Inspect.plan p)

(* ---- rendering (consumed by the explain CLI) --------------------------- *)

let op_json = function
  | Engine.Check id -> Json.Obj [ ("op", Str "check"); ("id", Int id) ]
  | Engine.Slot s -> Json.Obj [ ("op", Str "slot"); ("slot", Int s) ]

let view_json (v : I.view) =
  Json.Obj
    [ ("feasible", Bool v.i_feasible);
      ( "slots",
        List
          (List.mapi
             (fun s x -> Json.Obj [ ("slot", Int s); ("variable", Str x) ])
             (Array.to_list v.i_slots)) );
      ("pool-size", Int v.i_pool);
      ( "init-env",
        List
          (List.filteri (fun s _ -> s < Array.length v.i_slots)
             (Array.to_list v.i_env)
          |> List.mapi (fun s id ->
                 Json.Obj
                   [ ("slot", Int s);
                     ("id", if id < 0 then Json.Null else Int id) ])) );
      ( "atoms",
        List
          (Array.to_list
             (Array.map
                (fun (av : I.atom_view) ->
                  Json.Obj
                    [ ("index", Int av.I.a_index);
                      ("atom", Str (Format.asprintf "%a" pp_atom av));
                      ("relation", Str av.I.a_rel);
                      ("arity", Int av.I.a_arity);
                      ("rows", Int av.I.a_rows);
                      ( "distinct",
                        List
                          (Array.to_list
                             (Array.map (fun c -> Json.Int c) av.I.a_dcounts)) );
                      ( "score",
                        Float
                          (Engine.selectivity ~rows:av.I.a_rows
                             ~dcounts:av.I.a_dcounts av.I.a_ops) );
                      ("ground", Bool (Engine.ground av.I.a_ops));
                      ("calib", Float av.I.a_calib);
                      ("ops", List (Array.to_list (Array.map op_json av.I.a_ops))) ])
                v.i_atoms)) );
      ("order", List (Array.to_list (Array.map (fun i -> Json.Int i) v.i_order)));
      ("compiled-version", Int v.i_compiled_version);
      ("store-version", Int v.i_store_version);
      ("live-version", Int v.i_live_version) ]

let pp_op slots ppf = function
  | Engine.Check id -> Format.fprintf ppf "check#%d" id
  | Engine.Slot s ->
      if s >= 0 && s < Array.length slots then
        Format.fprintf ppf "slot %d (?%s)" s slots.(s)
      else Format.fprintf ppf "slot %d (!)" s

let pp_view ppf (v : I.view) =
  Format.fprintf ppf "feasible: %b; %d slot(s), pool of %d interned value(s)@,"
    v.i_feasible (Array.length v.i_slots) v.i_pool;
  Array.iteri
    (fun s x ->
      let bound = s < Array.length v.i_env && v.i_env.(s) >= 0 in
      Format.fprintf ppf "  slot %d = ?%s%s@," s x
        (if bound then Printf.sprintf " (init id %d)" v.i_env.(s) else ""))
    v.i_slots;
  Array.iteri
    (fun k ai ->
      let av = v.i_atoms.(ai) in
      Format.fprintf ppf "  [%d] %a  %s/%d, %d row(s), score %.3f%s: %a@," k
        pp_atom av av.I.a_rel av.I.a_arity av.I.a_rows
        (Engine.selectivity ~rows:av.I.a_rows ~dcounts:av.I.a_dcounts av.I.a_ops)
        (if Engine.ground av.I.a_ops then ", ground" else "")
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (pp_op v.i_slots))
        (Array.to_list av.I.a_ops))
    v.i_order;
  Format.fprintf ppf "  versions: compiled %d, store %d, live %d"
    v.i_compiled_version v.i_store_version v.i_live_version
