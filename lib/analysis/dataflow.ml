(* Abstract interpretation over the compiled engine IR.

   The analyzer walks the static atom order of a plan view and computes, per
   instruction, what is knowable without touching stored tuples: which slots
   are definitely bound (definite initialization), what interned id each slot
   can hold (a constant/interval lattice seeded from initial bindings and
   narrowed by the per-position stored-id ranges the view carries), which
   slots are live (read by a later instruction or read back at exit), and a
   sound per-atom bound on the candidate rows the matching loop can visit.

   Everything is O(plan size): the only database-derived inputs are the
   per-atom summary statistics (row counts, distinct counts, id ranges)
   already snapshotted into the view. The results feed the optimizer's
   justifications, the [explain --opt] CLI and the soundness properties in
   the test suite (every enumerated environment lies inside the computed
   facts). *)

module I = Engine.Inspect

(* value lattice over interned ids:
   Unbound < Const < Interval < Any, with Never as bottom-of-contradiction *)
type fact =
  | Unbound            (* slot definitely not yet written *)
  | Const of int       (* slot bound, id known exactly *)
  | Interval of { lo : int; hi : int }  (* slot bound, id within [lo, hi] *)
  | Any                (* slot bound, nothing known about the id *)
  | Never              (* contradiction: this program point is unreachable *)

let pp_fact ppf = function
  | Unbound -> Format.fprintf ppf "unbound"
  | Const id -> Format.fprintf ppf "= #%d" id
  | Interval { lo; hi } -> Format.fprintf ppf "in [#%d, #%d]" lo hi
  | Any -> Format.fprintf ppf "bound"
  | Never -> Format.fprintf ppf "never"

(* narrow a bound-side fact by a position's stored range [lo, hi] *)
let narrow fact lo hi =
  if hi < lo then Never  (* the relation stores nothing at this position *)
  else
    match fact with
    | Never -> Never
    | Unbound | Any -> if lo = hi then Const lo else Interval { lo; hi }
    | Const id -> if id < lo || id > hi then Never else Const id
    | Interval { lo = l; hi = h } ->
        let l = max l lo and h = min h hi in
        if h < l then Never else if l = h then Const l else Interval { lo = l; hi = h }

let fact_bound = function
  | Unbound -> false
  | Const _ | Interval _ | Any | Never -> true

(* [admits fact id]: could the slot hold [id]? Soundness: if the analyzer
   says no, no enumerated environment ever binds the slot to [id]. *)
let admits fact id =
  match fact with
  | Unbound | Any -> true
  | Const c -> c = id
  | Interval { lo; hi } -> lo <= id && id <= hi
  | Never -> false

type step = {
  st_atom : int;  (* atom index (into the view's atoms) at this order position *)
  st_bound_before : bool array;  (* per slot: definitely bound on entry *)
  st_facts_before : fact array;
  st_writes : int list;  (* slots this atom definitely binds first *)
  st_rows_max : int;  (* sound candidate-row bound: stored rows, 0 if the
                         atom provably matches nothing *)
  st_rows_est : float;  (* log10 selectivity estimate under current facts *)
}

type t = {
  order : int array;
  steps : step array;  (* one per order position *)
  facts_after : fact array;  (* per slot, at exit *)
  bound_after : bool array;
  live : bool array;  (* read by some instruction, or read back at exit *)
  dead_slots : int list;  (* untouched slots, ascending *)
  all_bound : bool;  (* every slot definitely bound at exit *)
  search_bound : float;  (* log10 of the product of per-atom row bounds *)
  infeasible : bool;  (* some atom provably matches nothing *)
}

let analyze (v : I.view) =
  let nslots = Array.length v.i_slots in
  let facts =
    Array.init nslots (fun s ->
        if s < Array.length v.i_env && v.i_env.(s) >= 0 then Const v.i_env.(s)
        else Unbound)
  in
  let infeasible = ref (not v.i_feasible) in
  let steps =
    Array.map
      (fun ai ->
        let av = v.i_atoms.(ai) in
        let bound_before = Array.map fact_bound facts in
        let facts_before = Array.copy facts in
        let writes = ref [] in
        let empty = ref false in
        let est = ref (log10 (float_of_int (max 1 av.I.a_rows))) in
        if av.I.a_rows = 0 then empty := true;
        Array.iteri
          (fun pos op ->
            let lo, hi =
              if pos < Array.length av.I.a_ranges then av.I.a_ranges.(pos)
              else (0, -1)
            in
            let dcount =
              if pos < Array.length av.I.a_dcounts then av.I.a_dcounts.(pos)
              else 0
            in
            let discount () =
              if dcount > 0 then est := !est -. log10 (float_of_int dcount)
            in
            match op with
            | Engine.Check id ->
                (* the checked constant must be storable at this position *)
                if id < lo || id > hi then empty := true;
                discount ()
            | Engine.Slot s when s >= 0 && s < nslots ->
                let before = facts.(s) in
                if fact_bound before then discount ();
                let after = narrow before lo hi in
                if after = Never then empty := true;
                if not (fact_bound before) then writes := s :: !writes;
                facts.(s) <- (if after = Never then Any else after)
            | Engine.Slot _ -> ()  (* out of range: E001 territory, skip *))
          av.I.a_ops;
        if !empty then infeasible := true;
        { st_atom = ai;
          st_bound_before = bound_before;
          st_facts_before = facts_before;
          st_writes = List.rev !writes;
          st_rows_max = (if !empty then 0 else av.I.a_rows);
          st_rows_est = (if !empty then neg_infinity else !est) })
      v.i_order
  in
  (* backward liveness: a slot is live if some instruction reads or writes it
     (every Slot instruction both filters and binds), or if it is read back
     at exit — i.e. it is not an init-bound pass-through. The complement,
     slots no instruction touches, is exactly what dead-slot elimination may
     drop. *)
  let touched = Array.make (max 1 nslots) false in
  Array.iter
    (fun (av : I.atom_view) ->
      Array.iter
        (function
          | Engine.Slot s when s >= 0 && s < nslots -> touched.(s) <- true
          | _ -> ())
        av.I.a_ops)
    v.i_atoms;
  let live = Array.copy touched in
  let dead_slots = ref [] in
  for s = nslots - 1 downto 0 do
    if not touched.(s) then dead_slots := s :: !dead_slots
  done;
  let bound_after = Array.map fact_bound facts in
  let all_bound = Array.for_all Fun.id bound_after in
  let search_bound =
    Array.fold_left
      (fun acc st ->
        if st.st_rows_max = 0 then neg_infinity
        else acc +. log10 (float_of_int st.st_rows_max))
      0.0 steps
  in
  { order = Array.copy v.i_order;
    steps;
    facts_after = facts;
    bound_after;
    live;
    dead_slots = !dead_slots;
    all_bound;
    search_bound;
    infeasible = !infeasible }

let fact_of_slot t s =
  if s >= 0 && s < Array.length t.facts_after then t.facts_after.(s) else Any

(* ---- rendering --------------------------------------------------------- *)

let fact_json = function
  | Unbound -> Json.Obj [ ("state", Str "unbound") ]
  | Const id -> Json.Obj [ ("state", Str "const"); ("id", Int id) ]
  | Interval { lo; hi } ->
      Json.Obj [ ("state", Str "interval"); ("lo", Int lo); ("hi", Int hi) ]
  | Any -> Json.Obj [ ("state", Str "any") ]
  | Never -> Json.Obj [ ("state", Str "never") ]

let to_json t =
  Json.Obj
    [ ( "steps",
        List
          (Array.to_list
             (Array.map
                (fun st ->
                  Json.Obj
                    [ ("atom", Int st.st_atom);
                      ( "bound-before",
                        Int
                          (Array.fold_left
                             (fun n b -> if b then n + 1 else n)
                             0 st.st_bound_before) );
                      ("writes", List (List.map (fun s -> Json.Int s) st.st_writes));
                      ("rows-max", Int st.st_rows_max);
                      ("rows-est-log10", Float st.st_rows_est) ])
                t.steps)) );
      ( "facts",
        List (Array.to_list (Array.map fact_json t.facts_after)) );
      ("dead-slots", List (List.map (fun s -> Json.Int s) t.dead_slots));
      ("all-bound", Bool t.all_bound);
      ("search-bound-log10", Float t.search_bound);
      ("infeasible", Bool t.infeasible) ]

let pp ppf t =
  Format.fprintf ppf "%d step(s), %s, search bound 10^%.2f%s"
    (Array.length t.steps)
    (if t.all_bound then "all slots bound at exit" else "some slot may stay unbound")
    t.search_bound
    (if t.infeasible then " — PROVABLY EMPTY" else "");
  Array.iteri
    (fun k st ->
      Format.fprintf ppf "@,  [%d] atom %d: %d slot(s) bound on entry, writes {%s}, rows <= %d (est 10^%.2f)"
        k st.st_atom
        (Array.fold_left (fun n b -> if b then n + 1 else n) 0 st.st_bound_before)
        (String.concat "," (List.map string_of_int st.st_writes))
        st.st_rows_max st.st_rows_est)
    t.steps;
  match t.dead_slots with
  | [] -> ()
  | ds ->
      Format.fprintf ppf "@,  dead slot(s): %s"
        (String.concat ", " (List.map string_of_int ds))
