(* Translation validation of optimization-pass certificates.

   The optimizer is untrusted: each pass emits a plain-data certificate (the
   before -> after slot and atom maps plus the facts justifying each rewrite)
   and this module re-derives every claim from the before/after IR views in
   O(plan). A rewrite the checker cannot justify produces an E-series
   diagnostic (E007-E010) and the whole optimized plan is rejected —
   [accept] then falls back to the unoptimized original the plan's
   provenance still carries.

   The only check that needs more than the two views is a Ground_matched
   atom drop ("this all-Check atom is satisfied by stored row r"): views
   deliberately carry no tuples, so the claim is confirmed through an
   O(arity) probe into the before plan (Engine.Inspect.row_matches). With no
   probe available — view-only corruption tests — such drops are
   conservatively rejected. *)

module I = Engine.Inspect

let op_string = function
  | Engine.Check id -> Printf.sprintf "check#%d" id
  | Engine.Slot s -> Printf.sprintf "slot %d" s

let e010 pass field detail =
  Diagnostic.make
    ~witness:(Diagnostic.Cert { pass; field; detail })
    Diagnostic.Cert_mismatch
    (Printf.sprintf "pass %s: certificate %s mismatch: %s" pass field detail)

let e007 pass slot variable target msg =
  Diagnostic.make
    ~witness:(Diagnostic.Renamed { pass; slot; variable; target })
    Diagnostic.Slot_renaming msg

let e008 pass atom pos before after msg =
  Diagnostic.make
    ~witness:(Diagnostic.Dropped { pass; atom; pos; before; after })
    Diagnostic.Dropped_check msg

let e009 pass position atom detail msg =
  Diagnostic.make
    ~witness:(Diagnostic.Reordered { pass; position; atom; detail })
    Diagnostic.Reorder_violation msg

let score_of (av : I.atom_view) =
  Engine.selectivity ~rows:av.I.a_rows ~dcounts:av.I.a_dcounts av.I.a_ops

let close a b =
  (a = neg_infinity && b = neg_infinity) || Float.abs (a -. b) <= 1e-6

(* an injective map from [0, n) into [0, n') hitting every target exactly
   once; -1 entries are drops *)
let check_map pass field map targets acc =
  let hit = Array.make (max 1 targets) 0 in
  let acc = ref acc in
  Array.iteri
    (fun src dst ->
      if dst < -1 || dst >= targets then
        acc :=
          e010 pass field
            (Printf.sprintf "entry %d maps to %d, after plan has %d" src dst
               targets)
          :: !acc
      else if dst >= 0 then hit.(dst) <- hit.(dst) + 1)
    map;
  for dst = 0 to targets - 1 do
    if hit.(dst) <> 1 then
      acc :=
        e010 pass field
          (Printf.sprintf "after entry %d is the image of %d before entries"
             dst hit.(dst))
        :: !acc
  done;
  !acc

(* structural coherence of the certificate with the two views: everything
   that later checks would crash on if it were wrong. Any finding here stops
   verification of this step. *)
let check_structure pass ~(before : I.view) ~(after : I.view)
    (c : Engine.cert) =
  let acc = ref [] in
  if Array.length c.Engine.cert_slot_map <> Array.length before.i_slots then
    acc :=
      e010 pass "slot-map"
        (Printf.sprintf "%d entries, before plan has %d slot(s)"
           (Array.length c.Engine.cert_slot_map)
           (Array.length before.i_slots))
      :: !acc;
  if Array.length c.Engine.cert_atom_map <> Array.length before.i_atoms then
    acc :=
      e010 pass "atom-map"
        (Printf.sprintf "%d entries, before plan has %d atom(s)"
           (Array.length c.Engine.cert_atom_map)
           (Array.length before.i_atoms))
      :: !acc;
  if !acc <> [] then List.rev !acc
  else begin
    let acc =
      check_map pass "slot-map" c.Engine.cert_slot_map
        (Array.length after.i_slots) []
    in
    let acc =
      check_map pass "atom-map" c.Engine.cert_atom_map
        (Array.length after.i_atoms) acc
    in
    let acc = ref acc in
    if before.i_pool <> after.i_pool then
      acc :=
        e010 pass "pool"
          (Printf.sprintf "interner pool changed: %d -> %d" before.i_pool
             after.i_pool)
        :: !acc;
    if before.i_feasible <> after.i_feasible then
      acc :=
        e010 pass "feasible"
          (Printf.sprintf "feasibility changed: %b -> %b" before.i_feasible
             after.i_feasible)
        :: !acc;
    if before.i_compiled_version <> after.i_compiled_version then
      acc :=
        e010 pass "version"
          (Printf.sprintf "compiled version changed: %d -> %d"
             before.i_compiled_version after.i_compiled_version)
        :: !acc;
    if Array.length c.Engine.cert_scores <> Array.length after.i_atoms then
      acc :=
        e010 pass "scores"
          (Printf.sprintf "%d claimed score(s), after plan has %d atom(s)"
             (Array.length c.Engine.cert_scores)
             (Array.length after.i_atoms))
      :: !acc
    else
      Array.iteri
        (fun j claimed ->
          let actual = score_of after.i_atoms.(j) in
          if not (close claimed actual) then
            acc :=
              e010 pass "scores"
                (Printf.sprintf
                   "claimed score %.6f for after atom %d, recomputed %.6f"
                   claimed j actual)
              :: !acc)
        c.Engine.cert_scores;
    List.rev !acc
  end

(* E007: slot identity. A mapped slot must keep its variable name and its
   initial binding; a dropped slot must be touched by no before instruction
   (then dropping it cannot change read-back: init-bound names come from the
   init mapping, untouched unbound slots never hold a value). *)
let check_slots pass ~(before : I.view) ~(after : I.view) (c : Engine.cert)
    acc =
  let env v s = if s < Array.length v.I.i_env then v.I.i_env.(s) else -1 in
  let touched = Array.make (max 1 (Array.length before.i_slots)) false in
  Array.iter
    (fun (av : I.atom_view) ->
      Array.iter
        (function
          | Engine.Slot s when s >= 0 && s < Array.length touched ->
              touched.(s) <- true
          | _ -> ())
        av.I.a_ops)
    before.i_atoms;
  let acc = ref acc in
  Array.iteri
    (fun s t ->
      let x = before.i_slots.(s) in
      if t >= 0 then begin
        if not (String.equal x after.i_slots.(t)) then
          acc :=
            e007 pass s x t
              (Printf.sprintf
                 "slot %d (?%s) mapped to slot %d, which names ?%s" s x t
                 after.i_slots.(t))
            :: !acc;
        if env before s <> env after t then
          acc :=
            e007 pass s x t
              (Printf.sprintf
                 "slot %d (?%s): initial binding changed (%d -> %d) across \
                  the map to slot %d"
                 s x (env before s) (env after t) t)
            :: !acc
      end
      else if touched.(s) then
        acc :=
          e007 pass s x (-1)
            (Printf.sprintf
               "slot %d (?%s) dropped although an instruction still touches it"
               s x)
          :: !acc)
    c.Engine.cert_slot_map;
  !acc

(* E008 (and more E007/E010): instruction preservation. Mapped atoms must
   keep their relation and every instruction modulo the slot map, except a
   Slot -> Check rewrite justified by the before plan's initial binding
   (constant folding). Dropped atoms need a surviving exact duplicate or a
   probe-confirmed stored-row witness. *)
let check_atoms pass ~(before : I.view) ~(after : I.view) ~probe
    (c : Engine.cert) acc =
  let acc = ref acc in
  let fold_listed s id =
    Array.exists (fun (s', id') -> s' = s && id' = id) c.Engine.cert_folds
  in
  (* every listed fold must be real: the slot really carries that binding *)
  Array.iter
    (fun (s, id) ->
      let bound =
        s >= 0
        && s < Array.length before.i_env
        && before.i_env.(s) = id
      in
      if not bound then
        acc :=
          e010 pass "folds"
            (Printf.sprintf
               "claims slot %d folds to id %d, but its initial binding is %d"
               s id
               (if s >= 0 && s < Array.length before.i_env then
                  before.i_env.(s)
                else -1))
          :: !acc)
    c.Engine.cert_folds;
  (* every listed drop must concern an atom the map actually drops *)
  Array.iter
    (fun (i, _) ->
      if
        i < 0
        || i >= Array.length c.Engine.cert_atom_map
        || c.Engine.cert_atom_map.(i) >= 0
      then
        acc :=
          e010 pass "drops"
            (Printf.sprintf "claims atom %d was dropped, but the map keeps it"
               i)
          :: !acc)
    c.Engine.cert_drops;
  Array.iteri
    (fun i j ->
      let bav = before.i_atoms.(i) in
      if j >= 0 then begin
        let aav = after.i_atoms.(j) in
        if
          (not (String.equal bav.I.a_rel aav.I.a_rel))
          || bav.I.a_arity <> aav.I.a_arity
          || bav.I.a_rows <> aav.I.a_rows
        then
          acc :=
            e010 pass "atom-map"
              (Printf.sprintf
                 "atom %d (%s/%d, %d rows) mapped to atom %d (%s/%d, %d rows)"
                 i bav.I.a_rel bav.I.a_arity bav.I.a_rows j aav.I.a_rel
                 aav.I.a_arity aav.I.a_rows)
            :: !acc
        else if Array.length bav.I.a_ops <> Array.length aav.I.a_ops then
          acc :=
            e010 pass "atom-map"
              (Printf.sprintf "atom %d: %d instruction(s) became %d" i
                 (Array.length bav.I.a_ops)
                 (Array.length aav.I.a_ops))
            :: !acc
        else
          Array.iteri
            (fun pos bop ->
              let aop = aav.I.a_ops.(pos) in
              match (bop, aop) with
              | Engine.Check b, Engine.Check a ->
                  if b <> a then
                    acc :=
                      e008 pass i pos (op_string bop) (op_string aop)
                        (Printf.sprintf
                           "atom %d pos %d: check constant changed (#%d -> \
                            #%d)"
                           i pos b a)
                      :: !acc
              | Engine.Slot s, Engine.Slot s' ->
                  let mapped =
                    s >= 0
                    && s < Array.length c.Engine.cert_slot_map
                    && c.Engine.cert_slot_map.(s) = s'
                  in
                  if not mapped then
                    acc :=
                      e007 pass s
                        (if s >= 0 && s < Array.length before.i_slots then
                           before.i_slots.(s)
                         else "?")
                        s'
                        (Printf.sprintf
                           "atom %d pos %d: slot %d rewritten to slot %d \
                            against the slot map"
                           i pos s s')
                      :: !acc
              | Engine.Slot s, Engine.Check id ->
                  let justified =
                    s >= 0
                    && s < Array.length before.i_env
                    && before.i_env.(s) = id
                  in
                  if not justified then
                    acc :=
                      e008 pass i pos (op_string bop) (op_string aop)
                        (Printf.sprintf
                           "atom %d pos %d: slot %d folded to #%d without a \
                            matching initial binding"
                           i pos s id)
                      :: !acc
                  else if not (fold_listed s id) then
                    acc :=
                      e010 pass "folds"
                        (Printf.sprintf
                           "atom %d pos %d folds slot %d to #%d, but the \
                            certificate does not record it"
                           i pos s id)
                      :: !acc
              | Engine.Check id, Engine.Slot s' ->
                  acc :=
                    e008 pass i pos (op_string bop) (op_string aop)
                      (Printf.sprintf
                         "atom %d pos %d: check #%d weakened to slot %d" i pos
                         id s')
                    :: !acc)
            bav.I.a_ops
      end
      else begin
        (* dropped atom: demand a justification and verify it *)
        match
          Array.fold_left
            (fun found (i', why) ->
              match found with Some _ -> found | None -> if i' = i then Some why else None)
            None c.Engine.cert_drops
        with
        | None ->
            acc :=
              e008 pass i (-1)
                (Format.asprintf "%a" Relational.Atom.pp bav.I.a_atom)
                "(dropped)"
                (Printf.sprintf "atom %d dropped without justification" i)
              :: !acc
        | Some (Engine.Duplicate_of k) ->
            let ok =
              k >= 0
              && k < Array.length before.i_atoms
              && k <> i
              && c.Engine.cert_atom_map.(k) >= 0
              &&
              let kav = before.i_atoms.(k) in
              String.equal kav.I.a_rel bav.I.a_rel
              && kav.I.a_arity = bav.I.a_arity
              && kav.I.a_rows = bav.I.a_rows
              && kav.I.a_ops = bav.I.a_ops
            in
            if not ok then
              acc :=
                e008 pass i (-1)
                  (Format.asprintf "%a" Relational.Atom.pp bav.I.a_atom)
                  (Printf.sprintf "(claimed duplicate of atom %d)" k)
                  (Printf.sprintf
                     "atom %d dropped as a duplicate of atom %d, which is \
                      not a surviving exact duplicate"
                     i k)
                :: !acc
        | Some (Engine.Ground_matched row) ->
            let is_ground = Engine.ground bav.I.a_ops in
            let confirmed =
              is_ground
              &&
              match probe with
              | Some f -> f ~atom:i ~row
              | None -> false
            in
            if not confirmed then
              acc :=
                e008 pass i (-1)
                  (Format.asprintf "%a" Relational.Atom.pp bav.I.a_atom)
                  (Printf.sprintf "(claimed matched by stored row %d)" row)
                  (Printf.sprintf
                     "atom %d dropped as ground-matched by row %d, but the \
                      claim %s"
                     i row
                     (if is_ground then
                        "could not be confirmed against the stored relation"
                      else "concerns an atom that still reads slots"))
                :: !acc
      end)
    c.Engine.cert_atom_map;
  !acc

(* E009: order discipline. A non-reordering pass must preserve the static
   order modulo the atom map; check-hoist must be exactly the stable
   ground-first partition of it; any other reordering pass must leave the
   order fully sorted by the (ground, selectivity) key. *)
let check_order pass ~(before : I.view) ~(after : I.view) (c : Engine.cert)
    acc =
  let n = Array.length after.i_atoms in
  let order = after.i_order in
  let acc = ref acc in
  let perm_ok =
    Array.length order = n
    && begin
         let seen = Array.make (max 1 n) false in
         Array.for_all
           (fun ai ->
             if ai < 0 || ai >= n || seen.(ai) then false
             else begin
               seen.(ai) <- true;
               true
             end)
           order
       end
  in
  if not perm_ok then
    acc :=
      e009 pass (-1) (-1) "not-a-permutation"
        (Printf.sprintf
           "after static order (%d entries) is not a permutation of %d atom(s)"
           (Array.length order) n)
      :: !acc
  else begin
    let mapped_before =
      List.filter_map
        (fun ai ->
          if ai >= 0 && ai < Array.length c.Engine.cert_atom_map
             && c.Engine.cert_atom_map.(ai) >= 0
          then Some c.Engine.cert_atom_map.(ai)
          else None)
        (Array.to_list before.i_order)
    in
    let expect expected detail =
      let actual = Array.to_list order in
      if actual <> expected then begin
        (* name the first divergent position *)
        let rec diverge k xs ys =
          match (xs, ys) with
          | x :: xs', y :: ys' -> if x <> y then (k, x) else diverge (k + 1) xs' ys'
          | x :: _, [] -> (k, x)
          | _ -> (k, -1)
        in
        let position, atom = diverge 0 actual expected in
        acc :=
          e009 pass position atom detail
            (Printf.sprintf
               "pass %s: static order diverges at position %d (atom %d): %s"
               pass position atom detail)
          :: !acc
      end
    in
    if not c.Engine.cert_reorders then
      expect mapped_before "non-reordering pass changed the static order"
    else if String.equal pass "check-hoist" then begin
      let g, ng =
        List.partition
          (fun ai -> Engine.ground after.i_atoms.(ai).I.a_ops)
          mapped_before
      in
      expect (g @ ng) "not the stable ground-first partition of the prior order"
    end
    else begin
      (* a full reorder must leave the (ground, selectivity) invariant —
         with the feedback calibration folded into the score component, so
         an adapted plan's reorder pass verifies against the same calibrated
         key the compiler sorted by (zero on fresh plans) *)
      let key ai =
        let av = after.i_atoms.(ai) in
        let g, s =
          Engine.order_key ~rows:av.I.a_rows ~dcounts:av.I.a_dcounts av.I.a_ops
        in
        (g, s +. av.I.a_calib)
      in
      for k = 0 to n - 2 do
        if compare (key order.(k)) (key (order.(k + 1))) > 0 then
          acc :=
            e009 pass k order.(k)
              "order not sorted by the (ground, selectivity) key"
              (Printf.sprintf
                 "pass %s: atom %d at position %d has a larger key than its \
                  successor"
                 pass order.(k) k)
            :: !acc
      done
    end
  end;
  !acc

let verify_step ?probe ~(before : I.view) ~(after : I.view) (c : Engine.cert)
    =
  let pass = c.Engine.cert_pass in
  match check_structure pass ~before ~after c with
  | _ :: _ as structural -> structural
  | [] ->
      List.rev
        (check_order pass ~before ~after c
           (check_atoms pass ~before ~after ~probe c
              (check_slots pass ~before ~after c [])))

(* ---- whole-trail verification and the accept/fallback wrapper ---------- *)

type step_report = {
  sr_pass : string;
  sr_cert : Engine.cert;
  sr_before : I.view;
  sr_after : I.view;
  sr_diagnostics : Diagnostic.t list;
}

type report = { r_steps : step_report list; r_verified : bool }

let verify_trail p =
  let stages, final = I.trail p in
  let plans = I.stage_plans p in
  let rec go stages plans acc =
    match stages with
    | [] -> List.rev acc
    | (before, cert) :: rest ->
        let after = match rest with (v, _) :: _ -> v | [] -> final in
        let probe =
          match plans with
          | q :: _ -> Some (fun ~atom ~row -> I.row_matches q ~atom ~row)
          | [] -> None
        in
        let ds = verify_step ?probe ~before ~after cert in
        let plans = match plans with _ :: t -> t | [] -> [] in
        go rest plans
          ({ sr_pass = cert.Engine.cert_pass;
             sr_cert = cert;
             sr_before = before;
             sr_after = after;
             sr_diagnostics = ds }
          :: acc)
  in
  let steps = go stages plans [] in
  { r_steps = steps;
    r_verified = List.for_all (fun s -> s.sr_diagnostics = []) steps }

let diagnostics r = List.concat_map (fun s -> s.sr_diagnostics) r.r_steps

let accept p =
  let r = verify_trail p in
  if r.r_verified then (p, r) else (I.base p, r)

(* ---- rendering --------------------------------------------------------- *)

let cert_summary (c : Engine.cert) =
  let dropped_slots =
    Array.fold_left (fun n t -> if t < 0 then n + 1 else n) 0 c.Engine.cert_slot_map
  in
  let dropped_atoms =
    Array.fold_left (fun n t -> if t < 0 then n + 1 else n) 0 c.Engine.cert_atom_map
  in
  Printf.sprintf "%d fold(s), %d atom(s) dropped, %d slot(s) dropped%s"
    (Array.length c.Engine.cert_folds)
    dropped_atoms dropped_slots
    (if c.Engine.cert_reorders then ", reorders" else "")

let drop_json (i, why) =
  match why with
  | Engine.Duplicate_of j ->
      Json.Obj
        [ ("atom", Int i); ("reason", Str "duplicate-of"); ("of", Int j) ]
  | Engine.Ground_matched r ->
      Json.Obj
        [ ("atom", Int i); ("reason", Str "ground-matched"); ("row", Int r) ]

let cert_json (c : Engine.cert) =
  let ints a = Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a)) in
  Json.Obj
    [ ("pass", Str c.Engine.cert_pass);
      ("reorders", Bool c.Engine.cert_reorders);
      ("slot-map", ints c.Engine.cert_slot_map);
      ("atom-map", ints c.Engine.cert_atom_map);
      ( "folds",
        List
          (Array.to_list
             (Array.map
                (fun (s, id) ->
                  Json.Obj [ ("slot", Json.Int s); ("id", Json.Int id) ])
                c.Engine.cert_folds)) );
      ("drops", List (Array.to_list (Array.map drop_json c.Engine.cert_drops)));
      ( "scores",
        List
          (Array.to_list
             (Array.map (fun f -> Json.Float f) c.Engine.cert_scores)) ) ]

let report_json r =
  Json.Obj
    [ ("verified", Bool r.r_verified);
      ( "passes",
        List
          (List.map
             (fun s ->
               Json.Obj
                 [ ("pass", Str s.sr_pass);
                   ("verified", Bool (s.sr_diagnostics = []));
                   ("summary", Str (cert_summary s.sr_cert));
                   ("certificate", cert_json s.sr_cert);
                   ( "diagnostics",
                     List (List.map Diagnostic.to_json s.sr_diagnostics) ) ])
             r.r_steps) ) ]

let pp_report ppf r =
  if r.r_steps = [] then Format.fprintf ppf "no optimization trail@,"
  else
    List.iter
      (fun s ->
        match s.sr_diagnostics with
        | [] ->
            Format.fprintf ppf "  %-19s ok: %s@," s.sr_pass
              (cert_summary s.sr_cert)
        | ds ->
            Format.fprintf ppf "  %-19s REJECTED:@," s.sr_pass;
            List.iter
              (fun d -> Format.fprintf ppf "    %a@," Diagnostic.pp d)
              ds)
      r.r_steps;
  Format.fprintf ppf "  verdict: %s"
    (if r.r_verified then "all certificates verified"
     else "rejected — falling back to the unoptimized plan")
