(** Static verification of compiled engine plans ({!Engine.Inspect.view}).

    The auditor checks the structural invariants the compiler is supposed to
    establish and reports violations as E-series {!Diagnostic}s, each with a
    machine-checkable witness:

    - [E001 uninitialized-slot-read] — a [Slot] instruction outside the
      environment, or an environment shorter than the slot table;
    - [E002 interner-id-out-of-range] — a [Check] constant or initial binding
      outside the interner pool;
    - [E003 plan-arity-mismatch] — instruction count, stored relation arity
      and per-position index count disagree;
    - [E004 dead-slot] — a slot no instruction touches and no initial binding
      fills;
    - [E005 atom-order-inversion] — the static atom order is not a
      permutation sorted ascending by the (ground, selectivity) key
      ({!Engine.order_key}: ground atoms first, then ascending
      distinct-count-discounted row estimate);
    - [E006 stale-plan-cache] — compiled database snapshot older than the
      live version counter.

    All checks are O(plan size); no stored tuple is inspected. An infeasible
    plan (a constant that failed to intern) carries no instructions, so only
    the staleness check applies to it. *)

(** Audit a view. Diagnostics come back in check order (E001 … E006), each
    atom in plan order. A plan freshly produced by {!Engine.compile} audits
    clean. *)
val audit_view : Engine.Inspect.view -> Diagnostic.t list

(** [audit p = audit_view (Engine.Inspect.plan p)]. *)
val audit : Engine.t -> Diagnostic.t list

(** JSON rendering of the plan itself (slots, instructions, order, versions)
    for [wdpt explain --format json]. *)
val view_json : Engine.Inspect.view -> Json.t

(** Text rendering of the plan for [wdpt explain]. Multi-line; boxed by the
    caller. *)
val pp_view : Format.formatter -> Engine.Inspect.view -> unit
