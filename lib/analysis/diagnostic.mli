(** Structured findings of the static analyzer ({!Lint}).

    Every diagnostic carries a stable code, a severity, an optional source
    span (when the query came with position information), a human-readable
    message, a machine-checkable witness, and — where one exists — a
    suggested fix. The codes:

    - [S001 parse-error] — the input does not parse (error);
    - [W001 not-well-designed] — Definition 1 connectedness fails, or the
      SPARQL pattern violates the Pérez-et-al. condition (error);
    - [W002 unsafe-free-variable] — a declared free variable is missing from
      the pattern, or declared twice (error);
    - [W003 unsatisfiable] — a relation is used at two different arities, so
      no database over a fixed-arity schema satisfies both uses (warning);
    - [W004 redundant-atom] — an atom whose removal provably preserves the
      semantics ({!Wdpt.Simplify}) (warning);
    - [W005 cartesian-product] — a node joins groups of atoms that share no
      variable beyond those bound by ancestor nodes (warning);
    - [W006 dead-branch] — an OPT branch that binds no new variable and
      therefore never extends any answer (warning);
    - [W007 class-membership] — the least widths placing the query in the
      paper's tractable fragments (hint).

    The E-series codes are findings of the plan auditor ({!Plan_audit}) over
    the compiled engine IR ({!Engine.Inspect.view}):

    - [E001 uninitialized-slot-read] — an instruction references an
      environment slot outside the initialized environment (error);
    - [E002 interner-id-out-of-range] — a [Check] constant or an initial
      binding carries an id outside the interner pool (error);
    - [E003 plan-arity-mismatch] — an atom's instruction count, its
      relation's stored arity and its per-position index count disagree
      (error);
    - [E004 dead-slot] — a slot in the slot table that no instruction reads
      or writes and that carries no initial binding (warning);
    - [E005 atom-order-inversion] — the static atom order contradicts the
      (ground, selectivity) key it was derived from (warning);
    - [E006 stale-plan-cache] — the plan's compiled database snapshot is
      older than the live database's version counter (error).

    The E007–E010 codes are findings of the translation-validation checker
    ({!Equiv}) over optimization-pass certificates:

    - [E007 unjustified-slot-renaming] — the certificate's slot map renames a
      slot to a different variable, changes its initial binding, or drops a
      slot some instruction still touches (error);
    - [E008 dropped-check] — a [Check] constant changed or vanished without a
      fold justification, or an atom was dropped without a surviving
      duplicate or a confirmed stored-row witness (error);
    - [E009 reorder-violates-dependency] — a pass not flagged as reordering
      changed the static order, or a reordering pass broke the (ground,
      selectivity) discipline (error);
    - [E010 certificate-plan-mismatch] — the certificate is structurally
      inconsistent with the before/after plans: wrong map lengths, targets
      out of range, non-injective maps, invented atoms or slots, changed
      pool or feasibility, or claimed scores that do not recompute (error).

    The E011–E015 codes are findings of the concurrency auditor
    ({!Par_audit}) over the parallel execution plan
    ({!Engine.Inspect.par_view}):

    - [E011 chunk-coverage] — the chunk slices do not partition the
      top-level candidate range [0, rows) exactly: a gap, an overlap, a
      negative-width chunk, or a short/long tail (error);
    - [E012 order-unsound-reducer] — a reducer for an order-sensitive
      primitive whose merge is not chunk-order-preserving (error);
    - [E013 cancellation-drops-answers] — a cancelling reducer reachable
      from a primitive that needs every chunk's full answer set
      (enumeration, count) (error);
    - [E014 undeclared-shared-write] — a write site targeting state outside
      the declared inventory, or a cross-chunk write targeting a non-atomic
      (chunk-local) location (error);
    - [E015 cross-domain-version-skew] — domains observing different
      (compiled, store, live) snapshot triples of one shared plan (error);
    - [E016 morsel-coverage] — the morsel geometry of a parallel partition
      is broken: a chunk wider than the configured morsel cap, a non-uniform
      stride before the last chunk, or an overlong tail (error). Generalizes
      E011: coverage says the slices partition the range, E016 says they are
      the fixed-stride morsels the runtime promises (checked only when E011
      is clean).

    The E017–E021 codes are findings of the batch-pipeline auditor
    ({!Batch_audit}) over the vectorized execution plan
    ({!Engine.Inspect.batch_view}) and the certified resource envelope
    ({!Resource}):

    - [E017 stage-read-before-bind] — a probe column references a slot no
      earlier stage bound and that carries no init-time constant, so the
      probe would chase garbage values (error);
    - [E018 column-aliasing] — two stages bind the same slot column, or a
      bind overwrites an init-bound slot: the later writer silently clobbers
      the earlier one's column (error);
    - [E019 incomplete-position-cover] — a stage's checks ∪ probe columns ∪
      binds ∪ duplicate ties do not cover its stored relation's arity, so
      the probe over-matches rows the scalar semantics would reject (error);
    - [E020 filter-stage-binds] — a stage flagged as a pure filter that
      nonetheless binds columns, or a streamed final stage whose output some
      later consumer reads as a materialized column (error);
    - [E021 unsound-resource-envelope] — a certified peak-memory envelope
      component ({!Resource}) smaller than a measured high-water mark, i.e.
      the admission-control bound under-promised (error).

    The E022–E026 codes are findings of the cardinality-feedback auditor
    ({!Feedback}) over the runtime counter view
    ({!Engine.Inspect.feedback_view}) and adaptive swap certificates
    ({!Engine.swap_cert}):

    - [E022 estimate-drift] — an atom's observed log10 selectivity exceeds
      its calibrated estimate by more than the configured threshold
      (warning: the estimates were off, nothing computed wrongly);
    - [E023 counter-coverage] — the counter vector does not cover the
      plan's instruction list, or the counters are internally impossible
      (negative, or more survivors than probes) (error);
    - [E024 stale-stats-epoch] — a plan served under a stats epoch newer
      than the one its calibration was costed against: the feedback that
      justified its order no longer describes the store (error; extends the
      E006 three-way version story to the feedback cache);
    - [E025 unjustified-replan] — an adaptive plan-swap certificate that
      does not re-verify: the calibration does not recompute from the
      drift evidence, the drift evidence is below threshold, or the
      re-sorted order does not follow the calibrated key (error; the
      engine keeps the old plan);
    - [E026 inconsistent-collector] — an observed survivor count exceeding
      the sound per-run ceiling (runs × the stored relation rows reachable
      per context), i.e. the collector itself is broken (error).

    The E027–E030 codes are findings of the delta-maintenance auditor
    ({!Delta_audit}) over standing-query views ([Wdpt.Standing.view]),
    dirty-range derivations ([Engine.Delta.dirty_ranges]) and refresh event
    streams:

    - [E027 delta-dirty-coverage] — a batch fact unifiable with a probed
      atom whose value at some position is missing from that atom's derived
      dirty range: the scoped re-run could skip a touched candidate range
      (error);
    - [E028 frontier-nonmaximal] — a maintained subsumption frontier that
      is not the set of ⊑-maximal answers of its group: a frontier member
      strictly subsumed by another answer, a maximal answer missing from
      the frontier, or a frontier member that is not an answer at all
      (error);
    - [E029 delta-support-mismatch] — an answer's stored support count
      disagrees with the count derived from the stored homomorphisms, a
      stored homomorphism filed under the wrong rootkey, or a partition
      projecting into a group that does not hold it (error);
    - [E030 delta-event-mismatch] — a refresh's emitted change events,
      applied to the pre-batch answer sets, fail to reproduce full
      re-evaluation at one of the two semantics levels (error). *)

open Relational

type severity = Error | Warning | Hint

type code =
  | Parse_error  (** S001 *)
  | Not_well_designed  (** W001 *)
  | Unsafe_free  (** W002 *)
  | Unsatisfiable  (** W003 *)
  | Redundant_atom  (** W004 *)
  | Cartesian_product  (** W005 *)
  | Dead_branch  (** W006 *)
  | Class_membership  (** W007 *)
  | Uninit_slot_read  (** E001 *)
  | Interner_range  (** E002 *)
  | Plan_arity_mismatch  (** E003 *)
  | Dead_slot  (** E004 *)
  | Order_inversion  (** E005 *)
  | Stale_plan  (** E006 *)
  | Slot_renaming  (** E007 *)
  | Dropped_check  (** E008 *)
  | Reorder_violation  (** E009 *)
  | Cert_mismatch  (** E010 *)
  | Chunk_coverage  (** E011 *)
  | Unsound_reducer  (** E012 *)
  | Cancel_drops  (** E013 *)
  | Undeclared_write  (** E014 *)
  | Version_skew  (** E015 *)
  | Morsel_coverage  (** E016 *)
  | Stage_read_before_bind  (** E017 *)
  | Column_aliasing  (** E018 *)
  | Position_cover  (** E019 *)
  | Filter_binds  (** E020 *)
  | Resource_envelope  (** E021 *)
  | Drift  (** E022 *)
  | Counter_coverage  (** E023 *)
  | Stale_epoch  (** E024 *)
  | Unjustified_replan  (** E025 *)
  | Collector_inconsistent  (** E026 *)
  | Delta_dirty  (** E027 *)
  | Frontier_nonmaximal  (** E028 *)
  | Support_mismatch  (** E029 *)
  | Event_mismatch  (** E030 *)

(** ["W001"] *)
val code_id : code -> string

(** ["not-well-designed"] *)
val code_name : code -> string

(** The fixed severity of each code (diagnostics never deviate from it). *)
val code_severity : code -> severity

(** Machine-checkable evidence, one constructor per kind of defect. Node
    indices refer to {!Wdpt.Pattern_tree} preorder numbering. *)
type witness =
  | Disconnected of {
      variable : string;
      top : int;  (** a mentioning node outside [stray]'s subtree *)
      stray : int;  (** a mentioning node whose parent does not mention it *)
      broken_at : int;
          (** [stray]'s parent: on the path between the two, not mentioning *)
    }
  | Escaping of {
      variable : string;
      subpattern : string;  (** the [e1 OPT e2] it escapes, printed *)
    }  (** SPARQL-level Pérez-et-al. violation *)
  | Missing_free of string
  | Duplicate_free of string
  | Arity_clash of {
      relation : string;
      node_a : int;
      arity_a : int;
      node_b : int;
      arity_b : int;
    }
  | Redundant of { node : int; atom : Atom.t; rule : Wdpt.Simplify.reason }
  | Cartesian of {
      node : int;
      components : string list list;
          (** per independent group: its variables not bound by ancestors *)
    }
  | Dead of { node : int }
  | Membership of {
      local_tw : int;  (** least k with p ∈ ℓ-TW(k) *)
      interface : int;  (** least c with p ∈ BI(c) *)
      wb_tw : int;  (** least k with p ∈ WB(k) = g-TW(k) *)
    }
  | Slot_range of { atom : int; op : int; slot : int; env : int }
      (** E001: instruction [op] of [atom] touches [slot], environment has
          [env] slots *)
  | Id_range of { site : string; id : int; pool : int }
      (** E002: [site] ("atom i op j" / "init slot s") carries [id], pool has
          [pool] ids *)
  | Plan_arity of {
      atom : int;
      relation : string;
      ops : int;  (** instruction count *)
      arity : int;  (** stored relation arity *)
      index : int;  (** per-position index count *)
    }  (** E003 *)
  | Dead_slot_of of { slot : int; variable : string }  (** E004 *)
  | Inversion of {
      first : int;  (** plan index of the earlier atom *)
      rows_first : int;
      score_first : float;  (** its selectivity score ({!Engine.selectivity}) *)
      ground_first : bool;
      second : int;  (** plan index of the later atom with the smaller key *)
      rows_second : int;
      score_second : float;
      ground_second : bool;
    }  (** E005 *)
  | Stale of { compiled : int; live : int }
      (** E006 (error form): the plan's compiled store is detached — the live
          database moved past it and the store was not caught up *)
  | Extended of { compiled : int; store : int; live : int }
      (** E006 (note form): the plan was compiled at [compiled] but its store
          was incrementally extended to [store] = [live]; existing rows are
          untouched and candidate sets only grow, so the plan stays sound *)
  | Renamed of {
      pass : string;
      slot : int;  (** before-plan slot *)
      variable : string;  (** its variable name in the before plan *)
      target : int;  (** mapped after-plan slot, [-1] = dropped *)
    }  (** E007 *)
  | Dropped of {
      pass : string;
      atom : int;  (** before-plan atom index *)
      pos : int;  (** instruction position, [-1] = the whole atom *)
      before : string;  (** rendered before state *)
      after : string;  (** rendered after state / drop claim *)
    }  (** E008 *)
  | Reordered of {
      pass : string;
      position : int;  (** index into the after static order *)
      atom : int;  (** after-plan atom at that position *)
      detail : string;
    }  (** E009 *)
  | Cert of { pass : string; field : string; detail : string }  (** E010 *)
  | Coverage of {
      chunk : int;
          (** offending chunk index; the chunk count itself when the
              partition ends short of [rows] *)
      lo : int;
      hi : int;
      expected_lo : int;
          (** where the chunk had to start (the previous chunk's [hi], 0 for
              the first): [lo > expected_lo] is a gap, [lo < expected_lo] an
              overlap *)
      rows : int;  (** the candidate range is [0, rows) *)
    }  (** E011 *)
  | Reducer_unsound of { primitive : string; merge : string }  (** E012 *)
  | Cancellation of { primitive : string; merge : string }  (** E013 *)
  | Shared_write of {
      site : string;
      target : string;
      declared : bool;  (** the target appears in the shared inventory *)
      owner_only : bool;  (** only the owning chunk performs the write *)
      kind : string;
          (** declared kind of the target (["atomic"] / ["chunk-local"]),
              ["undeclared"] when absent *)
    }  (** E014 *)
  | Skew of {
      domain : int;  (** first domain whose triple deviates *)
      compiled : int;
      store : int;
      live : int;
      ref_domain : int;  (** the reference domain (first of the region) *)
      ref_compiled : int;
      ref_store : int;
      ref_live : int;
    }  (** E015 *)
  | Morsel of {
      chunk : int;  (** offending chunk index *)
      lo : int;
      hi : int;
      stride : int;  (** the uniform stride (width of chunk 0) *)
      morsel : int;  (** the configured cap ({!Engine.Parallel.morsel_rows}) *)
    }  (** E016 *)
  | Read_before_bind of {
      stage : int;  (** the reading stage (fixed-order index) *)
      atom : int;  (** its plan atom index *)
      pos : int;  (** the probing position within the atom *)
      slot : int;  (** the slot the probe chases *)
      binder : int;
          (** the stage the view claims bound it, [-1] = init / unbound *)
    }  (** E017 *)
  | Aliased of {
      slot : int;
      first_stage : int;  (** earlier binder, [-1] = bound at init *)
      second_stage : int;  (** the stage that binds it again *)
      init : bool;  (** the clobbered binding is an init-time constant *)
    }  (** E018 *)
  | Cover of {
      stage : int;
      atom : int;
      arity : int;  (** the stored relation's arity *)
      covered : int;  (** positions the stage accounts for *)
      missing : int;  (** first uncovered position *)
    }  (** E019 *)
  | Filter_bind of {
      stage : int;
      atom : int;
      binds : int;  (** how many columns the "filter" binds *)
      streamed : bool;
          (** true: the streamed final stage's output is read as a column *)
    }  (** E020 *)
  | Envelope of {
      component : string;
          (** ["column-words"] / ["probe-table-words"] / ["replay-rows"] *)
      certified : int;  (** the envelope's claimed bound *)
      measured : int;  (** the high-water mark that exceeded it *)
    }  (** E021 *)
  | Drifted of {
      atom : int;  (** plan atom index *)
      estimated : float;  (** calibrated log10 selectivity estimate *)
      observed : float;  (** log10 (survived / contexts) *)
      threshold : float;  (** the threshold in force at audit time *)
      contexts : int;
      probed : int;
      survived : int;
    }  (** E022 *)
  | Counter_of of {
      atom : int;  (** offending atom index, [-1] = the vector itself *)
      detail : string;
    }  (** E023 *)
  | Epoch of {
      costed : int;  (** stats epoch the calibration was costed at *)
      store : int;  (** compiled store version actually serving the plan *)
      live : int;  (** live database version *)
    }  (** E024 *)
  | Replan_of of { field : string; detail : string }  (** E025 *)
  | Collector_of of {
      atom : int;
      survived : int;  (** the impossible observed count *)
      runs : int;
      bound : float;  (** sound log10 ceiling on survivors *)
    }  (** E026 *)
  | Dirty_of of {
      atom : int;  (** index into the probed atom list *)
      pos : int;  (** the uncovered position *)
      value : string;  (** the batch value missing from the range *)
      fact : string;  (** the batch fact that carries it *)
    }  (** E027 *)
  | Frontier_of of {
      group : string;  (** the root-free-key, printed *)
      answer : string;  (** the offending answer *)
      against : string;  (** the answer witnessing the violation *)
      detail : string;
          (** ["dominated-on-frontier"] / ["missing-from-frontier"] /
              ["frontier-not-answer"] *)
    }  (** E028 *)
  | Support_of of {
      group : string;
      answer : string;
      stored : int;  (** the support count the view claims *)
      derived : int;  (** the count recomputed from the stored homs *)
      detail : string;
    }  (** E029 *)
  | Event_of of {
      answer : string;
      level : string;  (** ["eval"] / ["max"] *)
      detail : string;
    }  (** E030 *)

type fix =
  | Apply_rewrite of Wdpt.Simplify.rewrite
      (** consumable by {!Wdpt.Simplify.apply} / {!Wdpt.Optimizer.plan} *)
  | Remove_free of string  (** drop the variable from the free list *)

type t = {
  code : code;
  severity : severity;
  span : Wdpt.Loc.span option;
  message : string;
  witness : witness option;
  fix : fix option;
}

(** [make code message] with the code's fixed severity. *)
val make : ?span:Wdpt.Loc.span -> ?witness:witness -> ?fix:fix -> code -> string -> t

(** [2] if any error, else [1] if any warning, else [0]. *)
val exit_code : t list -> int

(** [count severity ds]. *)
val count : severity -> t list -> int

(** One line: ["W001 error 1:10-1:18: variable ?x ..."]. *)
val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t

(** The full report: [{"diagnostics": [...], "summary": {...},
    "exit-code": n}]. *)
val report_json : t list -> Json.t
