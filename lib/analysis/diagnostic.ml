open Relational
module Loc = Wdpt.Loc

type severity = Error | Warning | Hint

type code =
  | Parse_error
  | Not_well_designed
  | Unsafe_free
  | Unsatisfiable
  | Redundant_atom
  | Cartesian_product
  | Dead_branch
  | Class_membership
  | Uninit_slot_read
  | Interner_range
  | Plan_arity_mismatch
  | Dead_slot
  | Order_inversion
  | Stale_plan
  | Slot_renaming
  | Dropped_check
  | Reorder_violation
  | Cert_mismatch
  | Chunk_coverage
  | Unsound_reducer
  | Cancel_drops
  | Undeclared_write
  | Version_skew
  | Morsel_coverage
  | Stage_read_before_bind
  | Column_aliasing
  | Position_cover
  | Filter_binds
  | Resource_envelope
  | Drift
  | Counter_coverage
  | Stale_epoch
  | Unjustified_replan
  | Collector_inconsistent
  | Delta_dirty
  | Frontier_nonmaximal
  | Support_mismatch
  | Event_mismatch

let code_id = function
  | Parse_error -> "S001"
  | Not_well_designed -> "W001"
  | Unsafe_free -> "W002"
  | Unsatisfiable -> "W003"
  | Redundant_atom -> "W004"
  | Cartesian_product -> "W005"
  | Dead_branch -> "W006"
  | Class_membership -> "W007"
  | Uninit_slot_read -> "E001"
  | Interner_range -> "E002"
  | Plan_arity_mismatch -> "E003"
  | Dead_slot -> "E004"
  | Order_inversion -> "E005"
  | Stale_plan -> "E006"
  | Slot_renaming -> "E007"
  | Dropped_check -> "E008"
  | Reorder_violation -> "E009"
  | Cert_mismatch -> "E010"
  | Chunk_coverage -> "E011"
  | Unsound_reducer -> "E012"
  | Cancel_drops -> "E013"
  | Undeclared_write -> "E014"
  | Version_skew -> "E015"
  | Morsel_coverage -> "E016"
  | Stage_read_before_bind -> "E017"
  | Column_aliasing -> "E018"
  | Position_cover -> "E019"
  | Filter_binds -> "E020"
  | Resource_envelope -> "E021"
  | Drift -> "E022"
  | Counter_coverage -> "E023"
  | Stale_epoch -> "E024"
  | Unjustified_replan -> "E025"
  | Collector_inconsistent -> "E026"
  | Delta_dirty -> "E027"
  | Frontier_nonmaximal -> "E028"
  | Support_mismatch -> "E029"
  | Event_mismatch -> "E030"

let code_name = function
  | Parse_error -> "parse-error"
  | Not_well_designed -> "not-well-designed"
  | Unsafe_free -> "unsafe-free-variable"
  | Unsatisfiable -> "unsatisfiable"
  | Redundant_atom -> "redundant-atom"
  | Cartesian_product -> "cartesian-product"
  | Dead_branch -> "dead-branch"
  | Class_membership -> "class-membership"
  | Uninit_slot_read -> "uninitialized-slot-read"
  | Interner_range -> "interner-id-out-of-range"
  | Plan_arity_mismatch -> "plan-arity-mismatch"
  | Dead_slot -> "dead-slot"
  | Order_inversion -> "atom-order-inversion"
  | Stale_plan -> "stale-plan-cache"
  | Slot_renaming -> "unjustified-slot-renaming"
  | Dropped_check -> "dropped-check"
  | Reorder_violation -> "reorder-violates-dependency"
  | Cert_mismatch -> "certificate-plan-mismatch"
  | Chunk_coverage -> "chunk-coverage"
  | Unsound_reducer -> "order-unsound-reducer"
  | Cancel_drops -> "cancellation-drops-answers"
  | Undeclared_write -> "undeclared-shared-write"
  | Version_skew -> "cross-domain-version-skew"
  | Morsel_coverage -> "morsel-coverage"
  | Stage_read_before_bind -> "stage-read-before-bind"
  | Column_aliasing -> "column-aliasing"
  | Position_cover -> "incomplete-position-cover"
  | Filter_binds -> "filter-stage-binds"
  | Resource_envelope -> "unsound-resource-envelope"
  | Drift -> "estimate-drift"
  | Counter_coverage -> "counter-coverage"
  | Stale_epoch -> "stale-stats-epoch"
  | Unjustified_replan -> "unjustified-replan"
  | Collector_inconsistent -> "inconsistent-collector"
  | Delta_dirty -> "delta-dirty-coverage"
  | Frontier_nonmaximal -> "frontier-nonmaximal"
  | Support_mismatch -> "delta-support-mismatch"
  | Event_mismatch -> "delta-event-mismatch"

let code_severity = function
  | Parse_error | Not_well_designed | Unsafe_free -> Error
  | Unsatisfiable | Redundant_atom | Cartesian_product | Dead_branch -> Warning
  | Class_membership -> Hint
  | Uninit_slot_read | Interner_range | Plan_arity_mismatch | Stale_plan -> Error
  | Dead_slot | Order_inversion -> Warning
  | Slot_renaming | Dropped_check | Reorder_violation | Cert_mismatch -> Error
  | Chunk_coverage | Unsound_reducer | Cancel_drops | Undeclared_write
  | Version_skew | Morsel_coverage ->
      Error
  | Stage_read_before_bind | Column_aliasing | Position_cover | Filter_binds
  | Resource_envelope ->
      Error
  (* drift is evidence the estimates were off, not that anything computed a
     wrong answer — the other four mean the feedback loop itself is broken *)
  | Drift -> Warning
  | Counter_coverage | Stale_epoch | Unjustified_replan
  | Collector_inconsistent ->
      Error
  | Delta_dirty | Frontier_nonmaximal | Support_mismatch | Event_mismatch ->
      Error

type witness =
  | Disconnected of { variable : string; top : int; stray : int; broken_at : int }
  | Escaping of { variable : string; subpattern : string }
  | Missing_free of string
  | Duplicate_free of string
  | Arity_clash of {
      relation : string;
      node_a : int;
      arity_a : int;
      node_b : int;
      arity_b : int;
    }
  | Redundant of { node : int; atom : Atom.t; rule : Wdpt.Simplify.reason }
  | Cartesian of { node : int; components : string list list }
  | Dead of { node : int }
  | Membership of { local_tw : int; interface : int; wb_tw : int }
  | Slot_range of { atom : int; op : int; slot : int; env : int }
  | Id_range of { site : string; id : int; pool : int }
  | Plan_arity of { atom : int; relation : string; ops : int; arity : int; index : int }
  | Dead_slot_of of { slot : int; variable : string }
  | Inversion of {
      first : int;
      rows_first : int;
      score_first : float;
      ground_first : bool;
      second : int;
      rows_second : int;
      score_second : float;
      ground_second : bool;
    }
  | Stale of { compiled : int; live : int }
  | Extended of { compiled : int; store : int; live : int }
  | Renamed of { pass : string; slot : int; variable : string; target : int }
  | Dropped of { pass : string; atom : int; pos : int; before : string; after : string }
  | Reordered of { pass : string; position : int; atom : int; detail : string }
  | Cert of { pass : string; field : string; detail : string }
  | Coverage of { chunk : int; lo : int; hi : int; expected_lo : int; rows : int }
  | Reducer_unsound of { primitive : string; merge : string }
  | Cancellation of { primitive : string; merge : string }
  | Shared_write of {
      site : string;
      target : string;
      declared : bool;
      owner_only : bool;
      kind : string;
    }
  | Skew of {
      domain : int;
      compiled : int;
      store : int;
      live : int;
      ref_domain : int;
      ref_compiled : int;
      ref_store : int;
      ref_live : int;
    }
  | Morsel of { chunk : int; lo : int; hi : int; stride : int; morsel : int }
  | Read_before_bind of { stage : int; atom : int; pos : int; slot : int; binder : int }
  | Aliased of { slot : int; first_stage : int; second_stage : int; init : bool }
  | Cover of { stage : int; atom : int; arity : int; covered : int; missing : int }
  | Filter_bind of { stage : int; atom : int; binds : int; streamed : bool }
  | Envelope of { component : string; certified : int; measured : int }
  | Drifted of {
      atom : int;
      estimated : float;  (* calibrated log10 selectivity estimate *)
      observed : float;  (* log10 (survived / contexts) *)
      threshold : float;
      contexts : int;
      probed : int;
      survived : int;
    }
  | Counter_of of { atom : int; detail : string }
  | Epoch of { costed : int; store : int; live : int }
  | Replan_of of { field : string; detail : string }
  | Collector_of of {
      atom : int;
      survived : int;
      runs : int;
      bound : float;  (* sound log10 ceiling on survivors *)
    }
  | Dirty_of of { atom : int; pos : int; value : string; fact : string }
  | Frontier_of of { group : string; answer : string; against : string; detail : string }
  | Support_of of { group : string; answer : string; stored : int; derived : int; detail : string }
  | Event_of of { answer : string; level : string; detail : string }

type fix =
  | Apply_rewrite of Wdpt.Simplify.rewrite
  | Remove_free of string

type t = {
  code : code;
  severity : severity;
  span : Loc.span option;
  message : string;
  witness : witness option;
  fix : fix option;
}

let make ?span ?witness ?fix code message =
  { code; severity = code_severity code; span; message; witness; fix }

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let exit_code ds =
  if List.exists (fun d -> d.severity = Error) ds then 2
  else if List.exists (fun d -> d.severity = Warning) ds then 1
  else 0

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let pp ppf d =
  match d.span with
  | Some span ->
      Format.fprintf ppf "%s %s %a: %s" (code_id d.code)
        (severity_string d.severity) Loc.pp_span span d.message
  | None ->
      Format.fprintf ppf "%s %s: %s" (code_id d.code)
        (severity_string d.severity) d.message

(* ---- JSON --------------------------------------------------------------- *)

let atom_string a = Format.asprintf "%a" Atom.pp a

let pos_json (p : Loc.pos) = Json.Obj [ ("line", Int p.line); ("col", Int p.col) ]

let span_json (s : Loc.span) =
  Json.Obj [ ("start", pos_json s.start); ("end", pos_json s.stop) ]

let rule_fields (r : Wdpt.Simplify.reason) =
  match r with
  | Duplicate_in_node -> [ ("rule", Json.Str "duplicate-in-node") ]
  | Duplicate_in_ancestor i ->
      [ ("rule", Json.Str "duplicate-in-ancestor"); ("ancestor", Int i) ]
  | Foldable -> [ ("rule", Json.Str "foldable") ]

let witness_json w =
  let kind k fields = Json.Obj (("kind", Json.Str k) :: fields) in
  match w with
  | Disconnected { variable; top; stray; broken_at } ->
      kind "disconnected-variable"
        [ ("variable", Str variable);
          ("nodes", List [ Int top; Int stray ]);
          ("broken-at", Int broken_at) ]
  | Escaping { variable; subpattern } ->
      kind "escaping-variable"
        [ ("variable", Str variable); ("subpattern", Str subpattern) ]
  | Missing_free x -> kind "missing-free-variable" [ ("variable", Str x) ]
  | Duplicate_free x -> kind "duplicate-free-variable" [ ("variable", Str x) ]
  | Arity_clash { relation; node_a; arity_a; node_b; arity_b } ->
      kind "arity-clash"
        [ ("relation", Str relation);
          ( "uses",
            List
              [ Obj [ ("node", Int node_a); ("arity", Int arity_a) ];
                Obj [ ("node", Int node_b); ("arity", Int arity_b) ] ] ) ]
  | Redundant { node; atom; rule } ->
      kind "redundant-atom"
        ([ ("node", Json.Int node); ("atom", Json.Str (atom_string atom)) ]
        @ rule_fields rule)
  | Cartesian { node; components } ->
      kind "cartesian-product"
        [ ("node", Int node);
          ( "components",
            List (List.map (fun c -> Json.List (List.map (fun v -> Json.Str v) c)) components)
          ) ]
  | Dead { node } -> kind "dead-branch" [ ("node", Int node) ]
  | Membership { local_tw; interface; wb_tw } ->
      kind "class-membership"
        [ ("local-tw", Int local_tw); ("interface", Int interface); ("wb-tw", Int wb_tw) ]
  | Slot_range { atom; op; slot; env } ->
      kind "slot-out-of-range"
        [ ("atom", Int atom); ("op", Int op); ("slot", Int slot); ("env-size", Int env) ]
  | Id_range { site; id; pool } ->
      kind "interner-id-out-of-range"
        [ ("site", Str site); ("id", Int id); ("pool-size", Int pool) ]
  | Plan_arity { atom; relation; ops; arity; index } ->
      kind "plan-arity-mismatch"
        [ ("atom", Int atom);
          ("relation", Str relation);
          ("ops", Int ops);
          ("arity", Int arity);
          ("indexes", Int index) ]
  | Dead_slot_of { slot; variable } ->
      kind "dead-slot" [ ("slot", Int slot); ("variable", Str variable) ]
  | Inversion
      { first;
        rows_first;
        score_first;
        ground_first;
        second;
        rows_second;
        score_second;
        ground_second } ->
      kind "atom-order-inversion"
        [ ( "earlier",
            Obj
              [ ("atom", Int first);
                ("rows", Int rows_first);
                ("score", Float score_first);
                ("ground", Bool ground_first) ] );
          ( "later",
            Obj
              [ ("atom", Int second);
                ("rows", Int rows_second);
                ("score", Float score_second);
                ("ground", Bool ground_second) ] ) ]
  | Stale { compiled; live } ->
      kind "stale-plan-cache"
        [ ("compiled-version", Int compiled); ("live-version", Int live) ]
  | Extended { compiled; store; live } ->
      kind "incrementally-extended-plan"
        [ ("compiled-version", Int compiled);
          ("store-version", Int store);
          ("live-version", Int live) ]
  | Renamed { pass; slot; variable; target } ->
      kind "unjustified-slot-renaming"
        [ ("pass", Str pass);
          ("slot", Int slot);
          ("variable", Str variable);
          ("target", if target < 0 then Json.Null else Int target) ]
  | Dropped { pass; atom; pos; before; after } ->
      kind "dropped-check"
        [ ("pass", Str pass);
          ("atom", Int atom);
          ("position", if pos < 0 then Json.Null else Int pos);
          ("before", Str before);
          ("after", Str after) ]
  | Reordered { pass; position; atom; detail } ->
      kind "reorder-violates-dependency"
        [ ("pass", Str pass);
          ("position", Int position);
          ("atom", Int atom);
          ("detail", Str detail) ]
  | Cert { pass; field; detail } ->
      kind "certificate-plan-mismatch"
        [ ("pass", Str pass); ("field", Str field); ("detail", Str detail) ]
  | Coverage { chunk; lo; hi; expected_lo; rows } ->
      kind "chunk-coverage"
        [ ("chunk", Int chunk);
          ("lo", Int lo);
          ("hi", Int hi);
          ("expected-lo", Int expected_lo);
          ("rows", Int rows) ]
  | Reducer_unsound { primitive; merge } ->
      kind "order-unsound-reducer"
        [ ("primitive", Str primitive); ("merge", Str merge) ]
  | Cancellation { primitive; merge } ->
      kind "cancellation-drops-answers"
        [ ("primitive", Str primitive); ("merge", Str merge) ]
  | Shared_write { site; target; declared; owner_only; kind = k } ->
      kind "undeclared-shared-write"
        [ ("site", Str site);
          ("target", Str target);
          ("declared", Bool declared);
          ("owner-only", Bool owner_only);
          ("target-kind", Str k) ]
  | Skew { domain; compiled; store; live; ref_domain; ref_compiled; ref_store;
           ref_live } ->
      kind "cross-domain-version-skew"
        [ ( "domain",
            Obj
              [ ("index", Int domain);
                ("compiled", Int compiled);
                ("store", Int store);
                ("live", Int live) ] );
          ( "reference",
            Obj
              [ ("index", Int ref_domain);
                ("compiled", Int ref_compiled);
                ("store", Int ref_store);
                ("live", Int ref_live) ] ) ]
  | Morsel { chunk; lo; hi; stride; morsel } ->
      kind "morsel-coverage"
        [ ("chunk", Int chunk);
          ("lo", Int lo);
          ("hi", Int hi);
          ("stride", Int stride);
          ("morsel-rows", Int morsel) ]
  | Read_before_bind { stage; atom; pos; slot; binder } ->
      kind "stage-read-before-bind"
        [ ("stage", Int stage);
          ("atom", Int atom);
          ("position", Int pos);
          ("slot", Int slot);
          ("binder", if binder < 0 then Json.Null else Int binder) ]
  | Aliased { slot; first_stage; second_stage; init } ->
      kind "column-aliasing"
        [ ("slot", Int slot);
          ("first-stage", if first_stage < 0 then Json.Null else Int first_stage);
          ("second-stage", Int second_stage);
          ("init-bound", Bool init) ]
  | Cover { stage; atom; arity; covered; missing } ->
      kind "incomplete-position-cover"
        [ ("stage", Int stage);
          ("atom", Int atom);
          ("arity", Int arity);
          ("covered", Int covered);
          ("missing-position", Int missing) ]
  | Filter_bind { stage; atom; binds; streamed } ->
      kind "filter-stage-binds"
        [ ("stage", Int stage);
          ("atom", Int atom);
          ("binds", Int binds);
          ("streamed", Bool streamed) ]
  | Envelope { component; certified; measured } ->
      kind "unsound-resource-envelope"
        [ ("component", Str component);
          ("certified", Int certified);
          ("measured", Int measured) ]
  | Drifted { atom; estimated; observed; threshold; contexts; probed; survived }
    ->
      kind "estimate-drift"
        [ ("atom", Int atom);
          ("estimated", Float estimated);
          ("observed", Float observed);
          ("threshold", Float threshold);
          ("contexts", Int contexts);
          ("probed", Int probed);
          ("survived", Int survived) ]
  | Counter_of { atom; detail } ->
      kind "counter-coverage"
        [ ("atom", if atom < 0 then Json.Null else Int atom);
          ("detail", Str detail) ]
  | Epoch { costed; store; live } ->
      kind "stale-stats-epoch"
        [ ("costed-at", Int costed);
          ("store-version", Int store);
          ("live-version", Int live) ]
  | Replan_of { field; detail } ->
      kind "unjustified-replan" [ ("field", Str field); ("detail", Str detail) ]
  | Collector_of { atom; survived; runs; bound } ->
      kind "inconsistent-collector"
        [ ("atom", Int atom);
          ("survived", Int survived);
          ("runs", Int runs);
          ("log10-bound", Float bound) ]
  | Dirty_of { atom; pos; value; fact } ->
      kind "delta-dirty-coverage"
        [ ("atom", Int atom);
          ("position", Int pos);
          ("value", Str value);
          ("fact", Str fact) ]
  | Frontier_of { group; answer; against; detail } ->
      kind "frontier-nonmaximal"
        [ ("group", Str group);
          ("answer", Str answer);
          ("against", Str against);
          ("detail", Str detail) ]
  | Support_of { group; answer; stored; derived; detail } ->
      kind "delta-support-mismatch"
        [ ("group", Str group);
          ("answer", Str answer);
          ("stored", Int stored);
          ("derived", Int derived);
          ("detail", Str detail) ]
  | Event_of { answer; level; detail } ->
      kind "delta-event-mismatch"
        [ ("answer", Str answer); ("level", Str level); ("detail", Str detail) ]

let fix_json f =
  let kind k fields = Json.Obj (("kind", Json.Str k) :: fields) in
  match f with
  | Apply_rewrite (Wdpt.Simplify.Drop_atom { node; atom; _ }) ->
      kind "drop-atom" [ ("node", Int node); ("atom", Str (atom_string atom)) ]
  | Apply_rewrite (Wdpt.Simplify.Drop_subtree { node }) ->
      kind "drop-subtree" [ ("node", Int node) ]
  | Remove_free x -> kind "remove-free-variable" [ ("variable", Str x) ]

let to_json d =
  let optional name f = function None -> [] | Some v -> [ (name, f v) ] in
  Json.Obj
    ([ ("code", Json.Str (code_id d.code));
       ("name", Json.Str (code_name d.code));
       ("severity", Json.Str (severity_string d.severity)) ]
    @ optional "span" span_json d.span
    @ [ ("message", Json.Str d.message) ]
    @ optional "witness" witness_json d.witness
    @ optional "fix" fix_json d.fix)

let report_json ds =
  Json.Obj
    [ ("schema", Int Json.schema_version);
      ("version", Int 1);
      ("diagnostics", List (List.map to_json ds));
      ( "summary",
        Obj
          [ ("errors", Int (count Error ds));
            ("warnings", Int (count Warning ds));
            ("hints", Int (count Hint ds)) ] );
      ("exit-code", Int (exit_code ds)) ]
