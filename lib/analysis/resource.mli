(** Certified resource envelopes for the batched pipeline — the
    admission-control gate.

    The pass composes the batch geometry ({!Engine.Inspect.batch_view}:
    columns per stage, morsel group width, group count, probe-table gating
    thresholds) with {!Dataflow} per-step candidate-row bounds — re-run
    along the batched pipeline's fixed stage order, not the scalar static
    order, so the per-stage bounds are sound for the order that actually
    executes — into a certified peak-bytes/peak-rows envelope per plan.

    Soundness contract, exercised by tests, [wdpt_fuzz --batch-audit-diff]
    and the RESOURCE bench experiment: after any run of the plan under the
    configuration the envelope was computed for, every
    {!Engine.batch_stats} high-water mark is dominated by the matching
    envelope component ([measured <= certified]); a violation is exactly
    what {!Batch_audit.check_envelope} reports as E021. All arithmetic
    saturates at {!cap} instead of overflowing, so an exponential
    {!Dataflow.t.search_bound} turns into a saturated [r_peak_bytes] that
    any finite [--max-mem] budget rejects.

    O(plan): only view summary statistics are read, never a stored tuple. *)

(** Saturation cap for envelope arithmetic ([max_int / 16]: headroom for the
    final words-to-bytes multiply). *)
val cap : int

type t = {
  r_batched : bool;  (** the batched pipeline is enabled *)
  r_checked : bool;  (** checked mode (per-group replay buffering) is armed *)
  r_rows : int;  (** top-level candidate rows *)
  r_group_rows : int;  (** morsel group width bound (min morsel rows) *)
  r_groups : int;  (** morsel groups over the top-level range *)
  r_slices : int;  (** max concurrently live slices (min domains chunks) *)
  r_nslots : int;  (** environment width, for buffered-row byte costs *)
  r_stage_rows : int array;
      (** per fixed-order stage: sound candidate-row bound (0 = provably
          empty), from {!Dataflow} re-run along the fixed order *)
  r_peak_rows : int;  (** widest materialized level of any one slice *)
  r_column_words : int;
      (** certified columnar scratch words per slice (dominates
          {!Engine.batch_stats.bm_column_words}) *)
  r_dense_words : int;
      (** certified dense probe-table words per slice (dominates
          {!Engine.batch_stats.bm_dense_words}) *)
  r_replay_rows : int;
      (** certified buffered rows per group/chunk (dominates
          {!Engine.batch_stats.bm_replay_rows}) *)
  r_buffered_rows : int;
      (** region-wide enumeration buffering: parallel chunks retain every
          chunk's solutions until the chunk-order replay *)
  r_peak_bytes : int;
      (** the admission number: slices * scratch bytes + buffered-row bytes
          under the current configuration *)
  r_infeasible : bool;  (** some stage provably matches nothing *)
  r_saturated : bool;  (** some product hit {!cap} — treat as unbounded *)
}

(** [analyze ?checked view par_view batch_view]. [checked] defaults to
    [Engine.checked_enabled ()]. The geometry is computed from the would-be
    batch layout even when [b_enabled] is false (the scalar path uses
    strictly less scratch, so the envelope still dominates). *)
val analyze :
  ?checked:bool ->
  Engine.Inspect.view ->
  Engine.Inspect.par_view ->
  Engine.Inspect.batch_view ->
  t

(** [of_plan p] under the ambient engine configuration. *)
val of_plan : Engine.t -> t

(** [admits t ~budget]: the certified peak stays within [budget] bytes (a
    saturated envelope never admits). *)
val admits : t -> budget:int -> bool

val to_json : t -> Json.t

(** Multi-line; boxed by the caller (same convention as {!Dataflow.pp}). *)
val pp : Format.formatter -> t -> unit
