open Relational
module Pt = Wdpt.Pattern_tree
module Source_map = Wdpt.Source_map
module D = Diagnostic

let atom_string a = Format.asprintf "%a" Atom.pp a

(* flatten a spec exactly like Pattern_tree.flatten: preorder, root 0,
   children after parents — Source_map indices rely on this agreement *)
let flatten_spec spec =
  let nodes = ref [] and parents = ref [] and count = ref 0 in
  let rec go parent (Pt.Node (atoms, kids)) =
    let i = !count in
    incr count;
    nodes := atoms :: !nodes;
    parents := parent :: !parents;
    List.iter (go i) kids
  in
  go (-1) spec;
  (Array.of_list (List.rev !nodes), Array.of_list (List.rev !parents))

let vars_of_atoms atoms =
  List.fold_left (fun acc a -> String_set.union acc (Atom.var_set a)) String_set.empty atoms

let atom_index atoms a =
  let rec go i = function
    | [] -> None
    | x :: _ when Atom.equal x a -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 atoms

(* ---- W001: Definition 1 connectedness ----------------------------------- *)

let w001 ~source node_atoms parents =
  let n = Array.length node_atoms in
  let vars_at = Array.map vars_of_atoms node_atoms in
  let all = Array.fold_left String_set.union String_set.empty vars_at in
  String_set.fold
    (fun y acc ->
      let mentions i = String_set.mem y vars_at.(i) in
      (* local roots: mentioning nodes whose parent does not mention y; the
         mentioning nodes form a subtree iff there is exactly one *)
      let local_roots =
        List.filter
          (fun i -> mentions i && (parents.(i) < 0 || not (mentions parents.(i))))
          (List.init n Fun.id)
      in
      match local_roots with
      | top :: stray :: _ ->
          (* top precedes stray in preorder and stray's parent exists (only
             the root has no parent) and does not mention y: the path between
             the two passes through it *)
          let broken_at = parents.(stray) in
          let message =
            Format.sprintf
              "variable ?%s violates Definition 1 connectedness: nodes %d and \
               %d both mention it, but node %d on the path between them does \
               not"
              y top stray broken_at
          in
          D.make
            ?span:(Source_map.best_span source ~node:stray ~atom:None)
            ~witness:(D.Disconnected { variable = y; top; stray; broken_at })
            D.Not_well_designed message
          :: acc
      | _ -> acc)
    all []
  |> List.rev

(* ---- W002: free-variable list ------------------------------------------- *)

let w002 ~free all_vars =
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun x ->
      let dup =
        if Hashtbl.mem seen x then
          [ D.make
              ~witness:(D.Duplicate_free x)
              D.Unsafe_free
              (Format.sprintf "free variable ?%s is declared twice" x) ]
        else begin
          Hashtbl.add seen x ();
          []
        end
      in
      let missing =
        if String_set.mem x all_vars then []
        else
          [ D.make
              ~witness:(D.Missing_free x)
              ~fix:(D.Remove_free x) D.Unsafe_free
              (Format.sprintf
                 "free variable ?%s does not occur in the pattern" x) ]
      in
      dup @ missing)
    free

(* ---- W003: arity clashes ------------------------------------------------ *)

let w003 ~source node_atoms =
  let first_use = Hashtbl.create 8 in
  let reported = Hashtbl.create 8 in
  let out = ref [] in
  Array.iteri
    (fun node atoms ->
      List.iteri
        (fun idx a ->
          let rel = Atom.rel a and arity = Atom.arity a in
          match Hashtbl.find_opt first_use rel with
          | None -> Hashtbl.add first_use rel (node, arity)
          | Some (node_a, arity_a) ->
              if arity <> arity_a && not (Hashtbl.mem reported rel) then begin
                Hashtbl.add reported rel ();
                let message =
                  Format.sprintf
                    "relation %s is used with arity %d (node %d) and arity %d \
                     (node %d): no database over a fixed-arity schema \
                     satisfies both"
                    rel arity_a node_a arity node
                in
                out :=
                  D.make
                    ?span:(Source_map.best_span source ~node ~atom:(Some idx))
                    ~witness:
                      (D.Arity_clash
                         { relation = rel; node_a; arity_a; node_b = node;
                           arity_b = arity })
                    D.Unsatisfiable message
                  :: !out
              end)
        atoms)
    node_atoms;
  List.rev !out

(* ---- W005: cartesian products inside a node ----------------------------- *)

(* components of a node's atoms connected through variables NOT bound by an
   ancestor: atoms over ancestor variables only are pinned selections, not
   cartesian factors, so only components introducing new variables count *)
let cartesian_components ~bound atoms =
  let atoms = Array.of_list atoms in
  let n = Array.length atoms in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let join i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let new_vars i = String_set.diff (Atom.var_set atoms.(i)) bound in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (String_set.is_empty (String_set.inter (new_vars i) (new_vars j)))
      then join i j
    done
  done;
  let comps = Hashtbl.create 8 in
  Array.iteri
    (fun i _ ->
      let nv = new_vars i in
      if not (String_set.is_empty nv) then begin
        let r = find i in
        let cur =
          Option.value ~default:String_set.empty (Hashtbl.find_opt comps r)
        in
        Hashtbl.replace comps r (String_set.union cur nv)
      end)
    atoms;
  Hashtbl.fold (fun _ vs acc -> String_set.elements vs :: acc) comps []
  |> List.sort compare

let w005 ~source node_atoms parents =
  let n = Array.length node_atoms in
  let vars_at = Array.map vars_of_atoms node_atoms in
  (* ancestors precede descendants in preorder, so one forward pass works *)
  let bound = Array.make n String_set.empty in
  for i = 1 to n - 1 do
    let p = parents.(i) in
    bound.(i) <- String_set.union bound.(p) vars_at.(p)
  done;
  List.concat_map
    (fun node ->
      let comps = cartesian_components ~bound:bound.(node) node_atoms.(node) in
      if List.length comps < 2 then []
      else
        let show c = "{?" ^ String.concat ", ?" c ^ "}" in
        let message =
          Format.sprintf
            "node %d joins %d independent groups of atoms (%s share no \
             variable beyond those bound by ancestor nodes): a cartesian \
             product"
            node (List.length comps)
            (String.concat " and " (List.map show comps))
        in
        [ D.make
            ?span:(Source_map.best_span source ~node ~atom:None)
            ~witness:(D.Cartesian { node; components = comps })
            D.Cartesian_product message ])
    (List.init n Fun.id)

(* ---- tree-level checks: W004, W006, W007 -------------------------------- *)

let rule_text node = function
  | Wdpt.Simplify.Duplicate_in_node ->
      Format.sprintf "is repeated in node %d" node
  | Wdpt.Simplify.Duplicate_in_ancestor j ->
      Format.sprintf "of node %d is already required by ancestor node %d" node j
  | Wdpt.Simplify.Foldable ->
      Format.sprintf
        "of node %d is redundant: the node's query is equivalent without it \
         (Chandra–Merlin)"
        node

let w004 ~source p =
  List.map
    (fun (node, atom, rule) ->
      let idx = atom_index (Pt.atoms p node) atom in
      let message =
        Format.sprintf "atom %s %s; dropping it preserves all answers"
          (atom_string atom) (rule_text node rule)
      in
      D.make
        ?span:(Source_map.best_span source ~node ~atom:idx)
        ~witness:(D.Redundant { node; atom; rule })
        ~fix:(D.Apply_rewrite (Wdpt.Simplify.Drop_atom { node; atom; reason = rule }))
        D.Redundant_atom message)
    (Wdpt.Simplify.redundant_atoms p)

let w006 ~source p =
  List.map
    (fun node ->
      let message =
        Format.sprintf
          "node %d introduces no variable beyond its ancestors': the optional \
           branch never extends an answer and can be dropped"
          node
      in
      D.make
        ?span:(Source_map.best_span source ~node ~atom:None)
        ~witness:(D.Dead { node })
        ~fix:(D.Apply_rewrite (Wdpt.Simplify.Drop_subtree { node }))
        D.Dead_branch message)
    (Wdpt.Simplify.dead_branches p)

let cq_treewidth q = if Cq.Query.body q = [] then 0 else Cq.Query.treewidth q

let w007 p =
  let local_tw =
    List.fold_left
      (fun acc i -> max acc (cq_treewidth (Cq.Query.boolean (Pt.atoms p i))))
      0
      (List.init (Pt.node_count p) Fun.id)
  in
  let interface = Wdpt.Classes.interface p in
  (* for treewidth, global membership reduces to the full-tree query
     (Classes.globally_in), so its width is the least k for WB(k) as well *)
  let wb_tw = cq_treewidth (Pt.q_full p) in
  let message =
    Format.sprintf
      "in ℓ-TW(%d) ∩ BI(%d); least k with membership in WB(k) [g-TW] is %d"
      local_tw interface wb_tw
  in
  [ D.make
      ~witness:(D.Membership { local_tw; interface; wb_tw })
      D.Class_membership message ]

(* ---- entry points ------------------------------------------------------- *)

let structural ~source ~free spec =
  let node_atoms, parents = flatten_spec spec in
  let all_vars = Array.fold_left (fun acc a -> String_set.union acc (vars_of_atoms a)) String_set.empty node_atoms in
  w001 ~source node_atoms parents
  @ w002 ~free all_vars
  @ w003 ~source node_atoms
  @ w005 ~source node_atoms parents

let tree_level ~source p = w004 ~source p @ w006 ~source p @ w007 p

let analyze_spec ?(source = Source_map.empty) ~free spec =
  let struct_ds = structural ~source ~free spec in
  if List.exists (fun d -> d.D.severity = D.Error) struct_ds then struct_ds
  else
    match Pt.make ~free spec with
    | p -> struct_ds @ tree_level ~source p
    | exception Invalid_argument _ ->
        (* unreachable: the structural checks mirror [make]'s validation *)
        struct_ds

let analyze_tree ?(source = Source_map.empty) p =
  let node_atoms, parents = flatten_spec (Pt.to_spec p) in
  w003 ~source node_atoms
  @ w005 ~source node_atoms parents
  @ tree_level ~source p

let lint_relational src =
  match Wdpt.Syntax.parse_spec src with
  | Error f ->
      [ D.make
          ?span:(Option.map Wdpt.Loc.at f.Wdpt.Syntax.pos)
          D.Parse_error f.Wdpt.Syntax.message ]
  | Ok { Wdpt.Syntax.free; spec; source } -> analyze_spec ~source ~free spec

(* ---- SPARQL front end --------------------------------------------------- *)

let rec triples_of_expr = function
  | Rdf.Sparql.Bgp ps -> ps
  | Rdf.Sparql.And (a, b) | Rdf.Sparql.Opt (a, b) ->
      triples_of_expr a @ triples_of_expr b

let pattern_mentions x (s, p, o) =
  List.exists (fun t -> Term.as_var t = Some x) [ s; p; o ]

(* reconstruct a Source_map for the translated spec from triple spans: each
   atom of the tree is the translation of some source triple *)
let source_map_of_spec spec spans =
  let span_of_atom a =
    match Rdf.Triple.atom_to_pattern a with
    | None -> None
    | Some pat ->
        Option.map snd (List.find_opt (fun (p, _) -> p = pat) spans)
  in
  let node_atoms, _ = flatten_spec spec in
  let zero = Wdpt.Loc.(at start_pos) in
  let atom_spans =
    Array.map
      (fun atoms ->
        Array.of_list
          (List.map (fun a -> Option.value ~default:zero (span_of_atom a)) atoms))
      node_atoms
  in
  let node_spans =
    Array.map
      (fun spans ->
        if Array.length spans = 0 then zero
        else Array.fold_left Wdpt.Loc.union spans.(0) spans)
      atom_spans
  in
  Source_map.make ~node_spans ~atom_spans

let lint_sparql src =
  match Rdf.Sparql.parse_located src with
  | Error f ->
      [ D.make
          ?span:(Option.map Wdpt.Loc.at f.Wdpt.Syntax.pos)
          D.Parse_error f.Wdpt.Syntax.message ]
  | Ok (q, spans) ->
      let surface =
        match Rdf.Sparql.well_designed_witness q.Rdf.Sparql.where with
        | None -> []
        | Some (x, sub) ->
            let span =
              let inner =
                match sub with Rdf.Sparql.Opt (_, b) -> b | e -> e
              in
              match
                List.find_opt (pattern_mentions x) (triples_of_expr inner)
              with
              | Some pat -> Option.map snd (List.find_opt (fun (p, _) -> p = pat) spans)
              | None -> None
            in
            let message =
              Format.sprintf
                "variable ?%s occurs in an optional part and outside the \
                 enclosing OPT, but not in its mandatory part: the pattern is \
                 not well-designed (Pérez et al.)"
                x
            in
            [ D.make ?span
                ~witness:
                  (D.Escaping
                     { variable = x;
                       subpattern = Format.asprintf "%a" Rdf.Sparql.pp_expr sub })
                D.Not_well_designed message ]
      in
      let free, spec = Rdf.Sparql.to_spec q in
      let source = source_map_of_spec spec spans in
      surface @ analyze_spec ~source ~free spec

let apply_fix p d =
  match d.D.fix with
  | Some (D.Apply_rewrite r) -> Wdpt.Simplify.apply p r
  | Some (D.Remove_free x) -> (
      let free = List.filter (fun y -> not (String.equal x y)) (Pt.free p) in
      match Pt.make ~free (Pt.to_spec p) with
      | p' -> Some p'
      | exception Invalid_argument _ -> None)
  | None -> None
