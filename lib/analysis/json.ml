type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* One number for the whole machine-readable surface (lint/explain/fuzz
   reports): bump it when an existing key changes meaning or goes away;
   additive keys do not bump it. Tests lock the current value. *)
let schema_version = 1

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f ->
      (* JSON has no inf/nan literals; those render as null *)
      if Float.is_finite f then Format.fprintf ppf "%.6g" f
      else Format.pp_print_string ppf "null"
  | Str s -> Format.fprintf ppf "\"%s\"" (escape s)
  | List [] -> Format.pp_print_string ppf "[]"
  | List xs ->
      Format.fprintf ppf "@[<hv 2>[@,%a@;<0 -2>]@]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,") pp)
        xs
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
      Format.fprintf ppf "@[<hv 2>{@,%a@;<0 -2>}@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
           (fun ppf (k, v) -> Format.fprintf ppf "@[<hov 2>\"%s\":@ %a@]" (escape k) pp v))
        fields

let to_string j = Format.asprintf "%a" pp j
