(** Abstract interpretation over the compiled engine IR
    ({!Engine.Inspect.view}).

    One forward pass over the plan's static atom order computes, per
    instruction position: definite initialization (which slots are certainly
    bound), a constant/interval fact per slot on interned ids (seeded from
    initial bindings, narrowed by the stored id range of every position a
    slot flows through), the slots each atom binds first, and a sound bound
    on the candidate rows the matching loop can visit at that atom. A
    liveness summary identifies dead slots (touched by no instruction — what
    dead-slot elimination may drop).

    All of it is O(plan size): only the view's summary statistics (row
    counts, distinct counts, id ranges) are read, never a stored tuple.

    Soundness contracts, exercised by the test suite:
    - if a slot's exit fact does not {!admits} an id, no enumerated
      environment binds the slot to that id;
    - if [infeasible] is set, the plan enumerates nothing;
    - the number of solutions never exceeds [10 ** search_bound];
    - on a feasible plan every slot is bound at exit ([all_bound]). *)

(** Per-slot knowledge at a program point. *)
type fact =
  | Unbound  (** definitely not yet written *)
  | Const of int  (** bound, id known exactly *)
  | Interval of { lo : int; hi : int }  (** bound, id within the range *)
  | Any  (** bound, id unknown *)
  | Never  (** contradiction — the program point is unreachable *)

val pp_fact : Format.formatter -> fact -> unit

(** Could the slot hold interned id [id]? [false] is a proof. *)
val admits : fact -> int -> bool

(** One entry per static-order position. *)
type step = {
  st_atom : int;  (** atom index at this position *)
  st_bound_before : bool array;  (** per slot: definitely bound on entry *)
  st_facts_before : fact array;
  st_writes : int list;  (** slots this atom binds first *)
  st_rows_max : int;  (** sound candidate-row bound (0 = provably empty) *)
  st_rows_est : float;  (** log10 estimate refined by bound-slot discounts *)
}

type t = {
  order : int array;
  steps : step array;
  facts_after : fact array;  (** per slot, at exit *)
  bound_after : bool array;
  live : bool array;
  dead_slots : int list;  (** slots touched by no instruction, ascending *)
  all_bound : bool;
  search_bound : float;  (** log10 of the product of per-atom row bounds *)
  infeasible : bool;
}

val analyze : Engine.Inspect.view -> t

(** Exit fact of a slot ([Any] for out-of-range slots). *)
val fact_of_slot : t -> int -> fact

val to_json : t -> Json.t

(** Multi-line; boxed by the caller (same convention as
    {!Plan_audit.pp_view}). *)
val pp : Format.formatter -> t -> unit
