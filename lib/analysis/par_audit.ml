(* Static verification of the parallel execution plan.

   Mirrors Plan_audit: the auditor runs over the inspectable view
   (Engine.Inspect.par_view), not over the runtime itself, so tests can
   corrupt a copy of the view and watch the right E-code come back — while
   the genuine view is re-derived from the same pure functions the runtime
   partitions with, so a clean audit certifies the decision an actual region
   takes. Every check is O(plan): O(chunks) for coverage, O(reducers +
   writes + inventory) for the reducer and shared-state disciplines,
   O(domains) for snapshot skew. *)

module I = Engine.Inspect

let d ?witness code message = Diagnostic.make ?witness code message

(* E011: the chunk slices must partition [0, rows) exactly — each chunk
   starts where the previous one ended (gap/overlap otherwise), no chunk has
   negative width, and the last chunk ends at [rows]. A dropped candidate
   row is a silently missing answer; a double-covered one is a duplicate
   (and, for enumeration, an order violation). *)
let check_coverage (v : I.par_view) acc =
  let rows = v.I.pv_rows in
  let acc = ref acc in
  let expected = ref 0 in
  Array.iteri
    (fun i (lo, hi) ->
      if lo <> !expected then
        acc :=
          d
            ~witness:
              (Diagnostic.Coverage
                 { chunk = i; lo; hi; expected_lo = !expected; rows })
            Diagnostic.Chunk_coverage
            (Printf.sprintf
               "chunk %d spans [%d, %d) but must start at %d: %s in the \
                candidate range [0, %d)"
               i lo hi !expected
               (if lo > !expected then "gap" else "overlap")
               rows)
          :: !acc
      else if hi < lo then
        acc :=
          d
            ~witness:
              (Diagnostic.Coverage
                 { chunk = i; lo; hi; expected_lo = !expected; rows })
            Diagnostic.Chunk_coverage
            (Printf.sprintf "chunk %d has negative width [%d, %d)" i lo hi)
          :: !acc;
      expected := max lo hi)
    v.I.pv_chunks;
  if !expected <> rows then
    acc :=
      d
        ~witness:
          (Diagnostic.Coverage
             { chunk = Array.length v.I.pv_chunks;
               lo = !expected;
               hi = !expected;
               expected_lo = rows;
               rows })
        Diagnostic.Chunk_coverage
        (Printf.sprintf
           "chunks cover [0, %d) but the candidate range is [0, %d)" !expected
           rows)
      :: !acc;
  !acc

(* E016: morsel geometry — generalizes E011. A parallel partition must be
   the fixed-stride morsel slices the runtime promises: no chunk wider than
   the configured morsel cap (a fat chunk resurrects the single-huge-chunk
   skew the morsels exist to fix), every chunk before the last carrying the
   uniform stride, and the ragged tail no wider than that stride. Only
   meaningful once E011 certified the slices partition [0, rows) — the
   caller gates on that — and vacuous for sequential regions (one chunk is
   the whole range by design). *)
let check_morsels (v : I.par_view) acc =
  if v.I.pv_sequential || Array.length v.I.pv_chunks = 0 then acc
  else begin
    let n = Array.length v.I.pv_chunks in
    let m = v.I.pv_morsel_rows in
    let stride =
      let lo, hi = v.I.pv_chunks.(0) in
      hi - lo
    in
    let acc = ref acc in
    Array.iteri
      (fun i (lo, hi) ->
        let w = hi - lo in
        let flag message =
          acc :=
            d
              ~witness:
                (Diagnostic.Morsel { chunk = i; lo; hi; stride; morsel = m })
              Diagnostic.Morsel_coverage message
            :: !acc
        in
        if w > m then
          flag
            (Printf.sprintf
               "chunk %d spans [%d, %d): %d row(s) exceed the %d-row morsel \
                cap"
               i lo hi w m)
        else if i < n - 1 && w <> stride then
          flag
            (Printf.sprintf
               "chunk %d spans [%d, %d) but every chunk before the last must \
                carry the uniform %d-row stride"
               i lo hi stride)
        else if i = n - 1 && i > 0 && w > stride then
          flag
            (Printf.sprintf
               "last chunk %d spans [%d, %d): wider than the %d-row stride"
               i lo hi stride))
      v.I.pv_chunks;
    !acc
  end

(* E012: an order-sensitive primitive (enumeration: sequential-identical
   order is part of the contract) must merge chunk results in a
   chunk-order-preserving way — chunks are contiguous slices of the
   top-level candidate sequence, so chunk-order concatenation IS sequential
   order, and anything else is not. *)
let check_reducers_order (v : I.par_view) acc =
  Array.fold_left
    (fun acc (r : I.reducer_view) ->
      if r.I.r_ordered && not r.I.r_order_preserving then
        d
          ~witness:
            (Diagnostic.Reducer_unsound
               { primitive = r.I.r_primitive; merge = r.I.r_merge })
          Diagnostic.Unsound_reducer
          (Printf.sprintf
             "%s is order-sensitive but its merge (%s) does not preserve \
              chunk order"
             r.I.r_primitive r.I.r_merge)
        :: acc
      else acc)
    acc v.I.pv_reducers

(* E013: early cancellation is only sound for a primitive that needs just
   one witness (sat). A total primitive — enumeration, count — reached by a
   cancelling reducer drops the answers of the chunks it cancels. *)
let check_cancellation (v : I.par_view) acc =
  Array.fold_left
    (fun acc (r : I.reducer_view) ->
      if r.I.r_cancelling && r.I.r_total then
        d
          ~witness:
            (Diagnostic.Cancellation
               { primitive = r.I.r_primitive; merge = r.I.r_merge })
          Diagnostic.Cancel_drops
          (Printf.sprintf
             "%s needs every chunk's full answer set but its reducer cancels \
              peers early"
             r.I.r_primitive)
        :: acc
      else acc)
    acc v.I.pv_reducers

let kind_string = function
  | I.Atomic_cell -> "atomic"
  | I.Chunk_local -> "chunk-local"

(* E014: every write site must target a declared shared location, and a
   write performed by more than its owning chunk must target an atomic one —
   a cross-chunk store to chunk-local state is exactly the race the
   sanitizer exists to catch dynamically. *)
let check_writes (v : I.par_view) acc =
  Array.fold_left
    (fun acc (w : I.write_view) ->
      let decl =
        Array.to_list v.I.pv_shared
        |> List.find_opt (fun (s : I.shared_view) -> s.I.s_name = w.I.w_target)
      in
      match decl with
      | None ->
          d
            ~witness:
              (Diagnostic.Shared_write
                 { site = w.I.w_site;
                   target = w.I.w_target;
                   declared = false;
                   owner_only = w.I.w_owner_only;
                   kind = "undeclared" })
            Diagnostic.Undeclared_write
            (Printf.sprintf
               "write site %s targets %s, which is not in the declared \
                shared-state inventory"
               w.I.w_site w.I.w_target)
          :: acc
      | Some s when s.I.s_kind <> I.Atomic_cell && not w.I.w_owner_only ->
          d
            ~witness:
              (Diagnostic.Shared_write
                 { site = w.I.w_site;
                   target = w.I.w_target;
                   declared = true;
                   owner_only = false;
                   kind = kind_string s.I.s_kind })
            Diagnostic.Undeclared_write
            (Printf.sprintf
               "write site %s stores cross-chunk into %s, declared %s"
               w.I.w_site w.I.w_target (kind_string s.I.s_kind))
          :: acc
      | Some _ -> acc)
    acc v.I.pv_writes

(* E015: the region hands every domain the same compiled plan over the same
   store, so each domain must observe the same (compiled, store, live)
   snapshot triple; a deviating domain would enumerate a different database
   than its peers. *)
let check_snapshots (v : I.par_view) acc =
  if Array.length v.I.pv_snapshots = 0 then acc
  else begin
    let rc, rs, rl = v.I.pv_snapshots.(0) in
    let acc = ref acc in
    Array.iteri
      (fun i (c, s, l) ->
        if i > 0 && (c, s, l) <> (rc, rs, rl) then
          acc :=
            d
              ~witness:
                (Diagnostic.Skew
                   { domain = i;
                     compiled = c;
                     store = s;
                     live = l;
                     ref_domain = 0;
                     ref_compiled = rc;
                     ref_store = rs;
                     ref_live = rl })
              Diagnostic.Version_skew
              (Printf.sprintf
                 "domain %d observes snapshot (compiled %d, store %d, live \
                  %d); domain 0 observes (%d, %d, %d)"
                 i c s l rc rs rl)
            :: !acc)
      v.I.pv_snapshots;
    !acc
  end

let audit_view (v : I.par_view) =
  let coverage = check_coverage v [] in
  (* E016 presumes E011-certified slices; skip it when coverage already
     failed so every corruption keeps exactly one primary finding. *)
  let acc = if coverage = [] then check_morsels v [] else coverage in
  List.rev
    (check_snapshots v
       (check_writes v (check_cancellation v (check_reducers_order v acc))))

let audit p = audit_view (Engine.Inspect.par p)

(* ---- rendering (consumed by the explain CLI) --------------------------- *)

let par_json (v : I.par_view) =
  Json.Obj
    [ ("domains", Int v.I.pv_domains);
      ("min-rows", Int v.I.pv_min_rows);
      ("morsel-rows", Int v.I.pv_morsel_rows);
      ("atom", (match v.I.pv_atom with None -> Json.Null | Some a -> Int a));
      ("rows", Int v.I.pv_rows);
      ("sequential", Bool v.I.pv_sequential);
      ("reason", Str v.I.pv_reason);
      ( "chunks",
        List
          (Array.to_list v.I.pv_chunks
          |> List.map (fun (lo, hi) ->
                 Json.Obj [ ("lo", Json.Int lo); ("hi", Json.Int hi) ])) );
      ( "reducers",
        List
          (Array.to_list v.I.pv_reducers
          |> List.map (fun (r : I.reducer_view) ->
                 Json.Obj
                   [ ("primitive", Str r.I.r_primitive);
                     ("merge", Str r.I.r_merge);
                     ("ordered", Bool r.I.r_ordered);
                     ("order-preserving", Bool r.I.r_order_preserving);
                     ("total", Bool r.I.r_total);
                     ("cancelling", Bool r.I.r_cancelling) ])) );
      ( "shared",
        List
          (Array.to_list v.I.pv_shared
          |> List.map (fun (s : I.shared_view) ->
                 Json.Obj
                   [ ("name", Str s.I.s_name);
                     ("kind", Str (kind_string s.I.s_kind)) ])) );
      ( "writes",
        List
          (Array.to_list v.I.pv_writes
          |> List.map (fun (w : I.write_view) ->
                 Json.Obj
                   [ ("site", Str w.I.w_site);
                     ("target", Str w.I.w_target);
                     ("owner-only", Bool w.I.w_owner_only) ])) );
      ( "snapshots",
        List
          (Array.to_list v.I.pv_snapshots
          |> List.mapi (fun i (c, s, l) ->
                 Json.Obj
                   [ ("domain", Int i);
                     ("compiled", Int c);
                     ("store", Int s);
                     ("live", Int l) ])) ) ]

let batch_json (b : I.batch_view) =
  Json.Obj
    [ ("enabled", Bool b.I.b_enabled);
      ("morsel-rows", Int b.I.b_morsel_rows);
      ("groups", Int b.I.b_groups);
      ( "columns",
        List
          (Array.to_list b.I.b_columns
          |> List.map (fun (s, x) ->
                 Json.Obj
                   [ ("slot", Json.Int s); ("variable", Json.Str x) ])) );
      ( "stages",
        List
          (Array.to_list b.I.b_stages
          |> List.map (fun (st : I.batch_stage_view) ->
                 Json.Obj
                   [ ("atom", Int st.I.bv_atom);
                     ("checks", Int (Array.length st.I.bv_checks));
                     ("probe-cols", Int (Array.length st.I.bv_cols));
                     ("binds", Int (Array.length st.I.bv_binds));
                     ("dups", Int (Array.length st.I.bv_dups));
                     ("filter", Bool st.I.bv_filter) ])) ) ]

let pp_batch ppf (b : I.batch_view) =
  begin
    if not b.I.b_enabled then
      Format.fprintf ppf
        "batch: off — scalar tuple-at-a-time interpreter \
         (WDPT_ENGINE_BATCH=0); would-be geometry: %d-row morsel group(s), \
         %d group(s) at the top level@,"
        b.I.b_morsel_rows b.I.b_groups
    else
      Format.fprintf ppf
        "batch: vectorized — %d-row morsel group(s), %d group(s) at the top \
         level@,"
        b.I.b_morsel_rows b.I.b_groups;
    Format.fprintf ppf "  columns:";
    if Array.length b.I.b_columns = 0 then Format.fprintf ppf " none"
    else
      Array.iter
        (fun (s, x) -> Format.fprintf ppf " %d:%s" s x)
        b.I.b_columns;
    Format.fprintf ppf "@,";
    Array.iteri
      (fun i (st : I.batch_stage_view) ->
        if i > 0 then Format.fprintf ppf "@,";
        Format.fprintf ppf
          "  stage %d: atom %d — %d check(s), %d probe col(s), %d bind(s), \
           %d dup(s)%s"
          i st.I.bv_atom
          (Array.length st.I.bv_checks)
          (Array.length st.I.bv_cols)
          (Array.length st.I.bv_binds)
          (Array.length st.I.bv_dups)
          (if st.I.bv_filter then ", mask-only filter" else ""))
      b.I.b_stages;
    if Array.length b.I.b_stages = 0 then
      Format.fprintf ppf "  no stages (atomless plan)"
  end

let pp_par ppf (v : I.par_view) =
  Format.fprintf ppf "decision: %s@," v.I.pv_reason;
  Format.fprintf ppf "  pool of %d domain(s), %d-row threshold, %d-row morsels@,"
    v.I.pv_domains v.I.pv_min_rows v.I.pv_morsel_rows;
  (match v.I.pv_atom with
  | Some a ->
      Format.fprintf ppf "  top-level atom %d: %d candidate row(s)@," a
        v.I.pv_rows
  | None -> Format.fprintf ppf "  no top-level atom@,");
  Format.fprintf ppf "  chunks:";
  Array.iter (fun (lo, hi) -> Format.fprintf ppf " [%d,%d)" lo hi) v.I.pv_chunks;
  Format.fprintf ppf "@,";
  Array.iter
    (fun (r : I.reducer_view) ->
      Format.fprintf ppf "  reducer %s: merge %s%s%s@," r.I.r_primitive
        r.I.r_merge
        (if r.I.r_ordered then ", ordered" else "")
        (if r.I.r_cancelling then ", cancelling" else ""))
    v.I.pv_reducers;
  Format.fprintf ppf "  shared:";
  Array.iter
    (fun (s : I.shared_view) ->
      Format.fprintf ppf " %s (%s)" s.I.s_name (kind_string s.I.s_kind))
    v.I.pv_shared;
  Format.fprintf ppf "@,";
  let c, s, l =
    if Array.length v.I.pv_snapshots > 0 then v.I.pv_snapshots.(0) else (0, 0, 0)
  in
  Format.fprintf ppf "  snapshots: compiled %d, store %d, live %d on %d domain(s)"
    c s l
    (Array.length v.I.pv_snapshots)
