(** Static verification of the parallel execution plan
    ({!Engine.Inspect.par_view}).

    The concurrency auditor checks the soundness conditions the
    domain-parallel runtime relies on and reports violations as E-series
    {!Diagnostic}s, each with a machine-checkable witness:

    - [E011 chunk-coverage] — the chunk slices must partition the top-level
      candidate range [0, rows) exactly: no gap (a missing answer), no
      overlap (a duplicate, and an order violation for enumeration), no
      negative-width chunk, and a last chunk ending at [rows];
    - [E012 order-unsound-reducer] — an order-sensitive primitive
      (enumeration) whose merge is not chunk-order-preserving;
    - [E013 cancellation-drops-answers] — a cancelling reducer reachable
      from a primitive that needs every chunk's full answer set
      (enumeration, count); only single-witness primitives (sat) may cancel;
    - [E014 undeclared-shared-write] — a write site targeting state outside
      the declared shared inventory, or a cross-chunk write targeting a
      non-atomic (chunk-local) location;
    - [E015 cross-domain-version-skew] — domains observing different
      (compiled, store, live) snapshot triples of the one shared plan;
    - [E016 morsel-coverage] — a parallel partition that is not the
      fixed-stride morsel geometry the runtime promises: a chunk wider than
      the configured morsel cap ({!Engine.Parallel.morsel_rows}), a
      non-uniform stride before the last chunk, or an overlong tail.
      Generalizes E011 and only runs once E011 certified the slices;
      vacuous for sequential regions.

    All checks are O(plan): O(chunks) + O(reducers + writes + inventory) +
    O(domains). The genuine view is re-derived from the same pure functions
    the runtime partitions with ({!Engine.Parallel.decision},
    {!Engine.Parallel.chunk_bounds}), so a clean audit certifies the
    decision an actual region takes — the static complement of the dynamic
    race sanitizer ([WDPT_ENGINE_TSAN]). *)

(** Audit a view. Diagnostics come back in check order (E011 … E015). A view
    produced by {!Engine.Inspect.par} on a freshly compiled plan audits
    clean at every pool size — unless fault injection is enabled, which the
    genuine view declares and E014 flags. *)
val audit_view : Engine.Inspect.par_view -> Diagnostic.t list

(** [audit p = audit_view (Engine.Inspect.par p)]. *)
val audit : Engine.t -> Diagnostic.t list

(** JSON rendering of the parallel plan (decision, chunks, reducers, shared
    state, snapshots) for [wdpt explain --format json]. *)
val par_json : Engine.Inspect.par_view -> Json.t

(** Text rendering for [wdpt explain]. Multi-line; boxed by the caller. *)
val pp_par : Format.formatter -> Engine.Inspect.par_view -> unit

(** JSON rendering of the batched execution layout
    ({!Engine.Inspect.batch_view}) for [wdpt explain --format json]. *)
val batch_json : Engine.Inspect.batch_view -> Json.t

(** Text rendering of the batch decision (vectorized vs scalar, morsel
    geometry, stage pipeline) for [wdpt explain]. *)
val pp_batch : Format.formatter -> Engine.Inspect.batch_view -> unit
