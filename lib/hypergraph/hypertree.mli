(** Generalized hypertree decompositions and (generalized) hypertreewidth
    [HW(k)] (Section 3.1; the paper works with the generalized notion and
    calls it hypertreewidth). *)

open Relational

type t = {
  bags : String_set.t array;       (** [ν] *)
  guards : String_set.t list array; (** [κ]: each bag's covering edges *)
  tree : (int * int) list;
}

val width : t -> int

(** [guard_weight htd ~weight] is [Σ_bags Σ_{guards of bag} weight guard].
    With [weight e = log10 |R_e|] this is the log-domain per-bag guard
    product: any homomorphism restricted to a bag is determined by one
    matching tuple per guard edge, so the number of homomorphisms is at most
    [Π_bags Π_guards |R_guard|] — the decomposition-based output bound in the
    spirit of the AGM / hypertree-decomposition guarantees, computed
    statically from stored relation cardinalities. *)
val guard_weight : t -> weight:(String_set.t -> float) -> float

(** Validates: (bags, tree) is a tree decomposition and every bag is covered
    by the union of its guards. *)
val is_valid : Hypergraph.t -> t -> bool

(** [ghw_at_most hg k] decides generalized hypertreewidth <= k by exact
    separator-based search with memoization. Exponential in the number of
    edges in the worst case (the problem is NP-hard for k >= 2); intended for
    query-sized hypergraphs. [k = 1] is answered by GYO in polynomial time. *)
val ghw_at_most : Hypergraph.t -> int -> t option

(** Exact generalized hypertreewidth (iterates [ghw_at_most]). *)
val ghw : Hypergraph.t -> int
