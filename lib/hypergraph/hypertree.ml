open Relational

type t = {
  bags : String_set.t array;
  guards : String_set.t list array;
  tree : (int * int) list;
}

let width htd =
  Array.fold_left (fun w g -> max w (List.length g)) 0 htd.guards

let guard_weight htd ~weight =
  Array.fold_left
    (fun acc guards ->
      List.fold_left (fun acc g -> acc +. weight g) acc guards)
    0. htd.guards

let is_valid hg htd =
  let td = { Tree_decomposition.bags = htd.bags; tree = htd.tree } in
  Tree_decomposition.is_valid hg td
  && Array.for_all2
       (fun bag guards ->
         String_set.subset bag
           (List.fold_left String_set.union String_set.empty guards))
       htd.bags htd.guards

(* [combos k xs] enumerates subsets of size 1..k of [xs]. *)
let combos k xs =
  let rec go k xs =
    if k = 0 then [ [] ]
    else
      match xs with
      | [] -> [ [] ]
      | x :: rest ->
          let with_x = List.map (fun c -> x :: c) (go (k - 1) rest) in
          go k rest @ with_x
  in
  List.filter (fun c -> c <> []) (go k xs)

let of_join_forest hg jf =
  let edges = Array.of_list (Hypergraph.edges hg) in
  let n = Array.length edges in
  if n = 0 then
    { bags = [| String_set.empty |]; guards = [| [] |]; tree = [] }
  else begin
    (* one decomposition node per edge; connect forest roots to root 0 *)
    let tree = ref jf.Gyo.parents in
    List.iteri
      (fun i r ->
        ignore i;
        match jf.Gyo.roots with
        | r0 :: _ when r <> r0 -> tree := (r, r0) :: !tree
        | _ -> ())
      jf.Gyo.roots;
    { bags = Array.map Fun.id edges;
      guards = Array.init n (fun i -> [ edges.(i) ]);
      tree = !tree }
  end

(* Exact ghw <= k via recursive component decomposition.

   solve comp conn: [comp] is a connected set of vertices still to cover and
   [conn] the connector vertices that the chosen bag must contain.  We pick a
   guard (<= k edges); its bag is (union of guard) ∩ (comp ∪ conn).  The bag
   must cover conn, and must make progress.  Each remaining component of
   comp \ bag recurses with its neighbourhood as connector.  Returns the list
   of decomposition nodes created, as a tree hanging from the first node. *)
exception No_decomp

let ghw_at_most hg k =
  if k < 1 then None
  else if Hypergraph.num_edges hg = 0 then
    Some { bags = [| String_set.empty |]; guards = [| [] |]; tree = [] }
  else if k = 1 then
    match Gyo.join_forest hg with
    | Some jf -> Some (of_join_forest hg jf)
    | None -> None
  else begin
    let all_edges = Hypergraph.edges hg in
    let memo : (string, bool) Hashtbl.t = Hashtbl.create 256 in
    let key comp conn =
      String.concat "," (String_set.elements comp)
      ^ "|"
      ^ String.concat "," (String_set.elements conn)
    in
    (* nodes accumulated imperatively; returns index of subtree root *)
    let bags = ref [] and guards = ref [] and tree = ref [] and count = ref 0 in
    let add_node bag guard parent =
      let i = !count in
      incr count;
      bags := bag :: !bags;
      guards := guard :: !guards;
      (match parent with
      | Some p -> tree := (i, p) :: !tree
      | None -> ());
      i
    in
    let rec solve comp conn parent =
      if Hashtbl.find_opt memo (key comp conn) = Some false then raise No_decomp;
      let relevant = String_set.union comp conn in
      let candidates = combos k all_edges in
      let try_guard guard =
        let cover = List.fold_left String_set.union String_set.empty guard in
        let bag = String_set.inter cover relevant in
        if not (String_set.subset conn bag) then None
        else begin
          let rest = String_set.diff comp bag in
          if String_set.equal rest comp && not (String_set.is_empty comp) then None
          else begin
            (* snapshot for rollback on failure *)
            let s_b = !bags and s_g = !guards and s_t = !tree and s_c = !count in
            let node = add_node bag guard parent in
            let comps = Hypergraph.components_within hg rest in
            try
              List.iter
                (fun c ->
                  let conn' =
                    String_set.fold
                      (fun v acc ->
                        String_set.union acc
                          (String_set.inter (Hypergraph.neighbours hg v) bag))
                      c String_set.empty
                  in
                  solve c conn' (Some node))
                comps;
              Some node
            with No_decomp ->
              bags := s_b;
              guards := s_g;
              tree := s_t;
              count := s_c;
              None
          end
        end
      in
      let rec first = function
        | [] ->
            Hashtbl.replace memo (key comp conn) false;
            raise No_decomp
        | g :: rest -> (
            match try_guard g with
            | Some _ -> ()
            | None -> first rest)
      in
      first candidates
    in
    try
      let comps = Hypergraph.components hg in
      let root = add_node String_set.empty [] None in
      List.iter (fun c -> solve c String_set.empty (Some root)) comps;
      let bags = Array.of_list (List.rev !bags) in
      let guards = Array.of_list (List.rev !guards) in
      (* give the artificial root a real guard so width >= 1 nodes validate *)
      guards.(0) <- [];
      Some { bags; guards; tree = !tree }
    with No_decomp -> None
  end

let ghw hg =
  if Hypergraph.num_edges hg = 0 then 0
  else begin
    let rec go k = if Option.is_some (ghw_at_most hg k) then k else go (k + 1) in
    go 1
  end
