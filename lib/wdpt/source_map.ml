type t = {
  node_spans : Loc.span array;
  atom_spans : Loc.span array array;
}

let empty = { node_spans = [||]; atom_spans = [||] }
let make ~node_spans ~atom_spans = { node_spans; atom_spans }

let node_span t i =
  if i >= 0 && i < Array.length t.node_spans then Some t.node_spans.(i) else None

let atom_span t ~node ~atom =
  if node >= 0 && node < Array.length t.atom_spans
     && atom >= 0 && atom < Array.length t.atom_spans.(node)
  then Some t.atom_spans.(node).(atom)
  else None

let best_span t ~node ~atom =
  match atom with
  | Some a -> (
      match atom_span t ~node ~atom:a with
      | Some s -> Some s
      | None -> node_span t node)
  | None -> node_span t node
