(** Semantics of WDPTs (Definition 2) and the three evaluation problems of
    Section 3 in their general (unrestricted, hence exponential) form.

    Two independent implementations are provided and cross-validated in the
    test suite: a reference one that literally follows Definition 2, and a
    procedural top-down one (the pt-evaluation of Letelier et al. [17]) that
    exploits well-designedness to extend homomorphisms branch by branch. *)

open Relational

(** All maximal homomorphisms from [p] to [db] (procedural algorithm). *)
val maximal_homomorphisms : Database.t -> Pattern_tree.t -> Mapping.t list

(** Streaming enumeration of the maximal homomorphisms (no duplicate
    suppression: distinct branch extensions can project to equal answers). *)
val iter_maximal_homomorphisms :
  Database.t -> Pattern_tree.t -> (Mapping.t -> unit) -> unit

(** [iter_maximal_extensions db p ~init yield]: the maximal homomorphisms
    extending the partial mapping [init] (the general form of
    {!iter_maximal_homomorphisms}, which passes the empty mapping). With
    [init] binding all root-node variables this enumerates exactly the
    maximal homomorphisms whose root restriction equals [init] — the
    per-root-key scoped re-run {!Standing} is built on. *)
val iter_maximal_extensions :
  Database.t -> Pattern_tree.t -> init:Mapping.t -> (Mapping.t -> unit) -> unit

(** [stream_eval db p ~offset ~limit yield]: stream the answers of p(D) —
    deduplicated projections of the maximal homomorphisms — skipping the
    first [offset] and yielding at most [limit] (all when [None]); returns
    the number yielded. Enumeration short-circuits once the page is full:
    every procedurally enumerated homomorphism is already maximal, so an
    answer can be emitted the moment it is first seen and the working set is
    a bounded dedup buffer of at most [offset + limit] (or all-distinct)
    answers, never the full materialized answer set. Works for arbitrary
    tree-shaped (OPT) queries at {!eval} semantics; {!eval_max} semantics
    inherently needs the frontier of the whole answer set, so it cannot
    stream this way. *)
val stream_eval :
  Database.t ->
  Pattern_tree.t ->
  offset:int ->
  limit:int option ->
  (Mapping.t -> unit) ->
  int

(** Reference implementation: enumerate rooted subtrees, evaluate their CQs,
    keep the ⊑-maximal mappings. *)
val maximal_homomorphisms_naive : Database.t -> Pattern_tree.t -> Mapping.t list

(** One maximal homomorphism, computed greedily without enumerating the
    answer set ([None] iff the root pattern has no match). *)
val any_maximal_homomorphism : Database.t -> Pattern_tree.t -> Mapping.t option

(** The evaluation p(D): projections of the maximal homomorphisms to the free
    variables. *)
val eval : Database.t -> Pattern_tree.t -> Mapping.Set.t

val eval_naive : Database.t -> Pattern_tree.t -> Mapping.Set.t

(** The maximal-mappings evaluation p_m(D) (Section 3.4): the ⊑-maximal
    elements of p(D). *)
val eval_max : Database.t -> Pattern_tree.t -> Mapping.Set.t

(** EVAL(C): is [h ∈ p(D)]? *)
val decision : Database.t -> Pattern_tree.t -> Mapping.t -> bool

(** PARTIAL-EVAL(C): is there [h' ∈ p(D)] with [h ⊑ h']? *)
val partial_decision : Database.t -> Pattern_tree.t -> Mapping.t -> bool

(** MAX-EVAL(C): is [h ∈ p_m(D)]? *)
val max_decision : Database.t -> Pattern_tree.t -> Mapping.t -> bool
