(** Semantics-preserving syntactic rewrites of WDPTs.

    These are the rewrite opportunities surfaced by the static analyzer
    ([Analysis.Lint], codes W004/W006) and consumed by {!Optimizer.plan}:
    every rewrite preserves the evaluation [p(D)] (hence also the maximal
    evaluation and the three decision problems of Section 3) on every
    database.

    Soundness arguments, in terms of Definition 2's maximal homomorphisms:
    - a {e duplicate atom} — repeated inside its node, or already present in
      an ancestor node — occurs in every subtree CQ that contains its node,
      so removing the copy changes no [q_T'];
    - a {e foldable atom} [a] of node [t] can be dropped when the node's CQ
      with head [H = vars(t) ∩ (free ∪ vars(rest of tree))] is equivalent
      (Chandra–Merlin) to the CQ without [a]: the set of [H]-bindings the
      node admits is unchanged under every context, children only depend on
      [H]-variables (well-designedness), and answers project to free
      variables, which lie in [H];
    - a {e dead branch} is a non-root node whose entire subtree mentions only
      variables of its ancestors: extending a homomorphism into it never
      enlarges the domain, so it contributes no answers and can be removed.

    A rewrite is only reported when applying it yields a valid (still
    well-designed) tree. *)

open Relational

type reason =
  | Duplicate_in_node  (** the atom occurs twice in the same node *)
  | Duplicate_in_ancestor of int  (** … already required by ancestor node [i] *)
  | Foldable  (** node-CQ equivalence witnessed by a homomorphism *)

type rewrite =
  | Drop_atom of { node : int; atom : Atom.t; reason : reason }
  | Drop_subtree of { node : int }  (** drop a dead OPT branch *)

(** Atoms whose removal provably preserves the semantics, with the rule that
    fired. At most one rewrite is reported per (node, atom) pair. *)
val redundant_atoms : Pattern_tree.t -> (int * Atom.t * reason) list

(** Topmost dead branches: non-root nodes whose subtree introduces no
    variable beyond those of its ancestors. *)
val dead_branches : Pattern_tree.t -> int list

(** All applicable rewrites (dead branches first). *)
val rewrites : Pattern_tree.t -> rewrite list

(** [apply p r]: the rewritten tree, or [None] if [r] no longer applies
    (stale node index, missing atom, or a result that is not a valid tree —
    the rewrites returned by {!rewrites} always apply to the tree they were
    computed from). *)
val apply : Pattern_tree.t -> rewrite -> Pattern_tree.t option

(** Fixpoint: repeatedly apply rewrites until none remains; returns the
    simplified tree and the rewrites applied, in order. *)
val simplify : Pattern_tree.t -> Pattern_tree.t * rewrite list

val describe_rewrite : rewrite -> string
val pp_rewrite : Format.formatter -> rewrite -> unit
