open Relational

(* Distinct projections onto [keep] of the homomorphisms of [atoms] extending
   [init], via the decomposition-based evaluator (polynomial for bounded-width
   node patterns and |keep| <= c). *)
let local_projections db atoms ~init ~keep =
  let body = List.map (Mapping.apply_atom init) atoms in
  let ground, live_atoms = List.partition Atom.is_ground body in
  if not (List.for_all (fun a -> Database.mem db (Atom.to_fact a)) ground) then []
  else begin
    let live =
      List.fold_left
        (fun acc a -> String_set.union acc (Atom.var_set a))
        String_set.empty live_atoms
    in
    let head = String_set.elements (String_set.inter keep live) in
    let q = Cq.Query.make ~head ~body:live_atoms in
    let fixed = Mapping.restrict keep init in
    Cq.Decomp_eval.answers db q
    |> Mapping.Set.elements
    |> List.map (fun a -> Mapping.union a fixed)
  end

let matchable db atoms ~init =
  Cq.Decomp_eval.satisfiable db (Cq.Query.boolean atoms) ~init

let decision db p h =
  let free = Pattern_tree.free_set p in
  let dom = Mapping.domain h in
  if not (String_set.subset dom free) then false
  else
    match Pattern_tree.minimal_subtree_for p dom with
    | None -> false
    | Some t1 ->
        let free_in_t1 = String_set.inter (Pattern_tree.vars_of_subtree p t1) free in
        if not (String_set.subset free_in_t1 dom) then false
        else begin
          match Pattern_tree.maximal_subtree_without p dom with
          | None -> false
          | Some t2 ->
              let in_t1 = Array.make (Pattern_tree.node_count p) false in
              List.iter (fun i -> in_t1.(i) <- true) t1;
              let in_t2 = Array.make (Pattern_tree.node_count p) false in
              List.iter (fun i -> in_t2.(i) <- true) t2;
              let memo = Hashtbl.create 256 in
              (* good t beta: node t (in T″) admits a local match extending
                 beta (and h) whose branches can be completed into a maximal
                 homomorphism that binds exactly the free variables in dom *)
              let rec good t beta =
                (* memo key: node id + canonical sorted bindings (cheaper and
                   collision-free, unlike hashing the balanced map itself) *)
                let key = (t, Mapping.bindings beta) in
                match Hashtbl.find_opt memo key with
                | Some b -> b
                | None ->
                    let result = compute t beta in
                    Hashtbl.replace memo key result;
                    result
              and compute t beta =
                let tvars = Pattern_tree.node_vars p t in
                let init = Mapping.union beta (Mapping.restrict tvars h) in
                let kids = Pattern_tree.children p t in
                let interface =
                  List.fold_left
                    (fun acc c ->
                      String_set.union acc
                        (String_set.inter tvars (Pattern_tree.node_vars p c)))
                    String_set.empty kids
                in
                let gammas =
                  local_projections db (Pattern_tree.atoms p t) ~init ~keep:interface
                in
                let child_ok gamma c =
                  let shared = String_set.inter tvars (Pattern_tree.node_vars p c) in
                  let beta_c = Mapping.restrict shared gamma in
                  if in_t1.(c) then good c beta_c
                  else if in_t2.(c) then
                    let cinit =
                      Mapping.union beta_c
                        (Mapping.restrict (Pattern_tree.node_vars p c) h)
                    in
                    (not (matchable db (Pattern_tree.atoms p c) ~init:cinit))
                    || good c beta_c
                  else begin
                    (* outside T″: any match would force a new free variable *)
                    let cinit =
                      Mapping.union beta_c
                        (Mapping.restrict (Pattern_tree.node_vars p c) h)
                    in
                    not (matchable db (Pattern_tree.atoms p c) ~init:cinit)
                  end
                in
                List.exists
                  (fun gamma -> List.for_all (child_ok gamma) kids)
                  gammas
              in
              good (Pattern_tree.root p) Mapping.empty
        end
