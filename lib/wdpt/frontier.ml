open Relational

(* A support-counted answer set with its subsumption frontier, for one
   comparability group (answers sharing the root-free-key — only those can
   ever be ⊑-comparable, see standing.ml). The structure doubles as the
   bounded answer buffer of the streaming evaluator: all answers with
   multiplicity, plus the ⊑-maximal ones on top. *)

module MMap = Map.Make (Mapping)

type t = {
  support : int MMap.t;        (* answer -> number of maximal homs projecting to it *)
  frontier : Mapping.Set.t;    (* the ⊑-maximal answers *)
}

type event =
  | Added of { answer : Mapping.t; maximal : bool }
  | Removed of { answer : Mapping.t; was_maximal : bool }
  | Promoted of Mapping.t
  | Demoted of Mapping.t

let answer_of = function
  | Added { answer; _ } | Removed { answer; _ } | Promoted answer | Demoted answer
    -> answer

let empty = { support = MMap.empty; frontier = Mapping.Set.empty }
let is_empty t = MMap.is_empty t.support

let answers t =
  MMap.fold (fun a _ acc -> Mapping.Set.add a acc) t.support Mapping.Set.empty

let maximal t = t.frontier
let support t a = Option.value ~default:0 (MMap.find_opt a t.support)

let recompute_frontier support =
  Mapping.Set.of_list
    (Mapping.maximal_elements (List.map fst (MMap.bindings support)))

let of_answers l =
  let support =
    List.fold_left
      (fun acc a ->
        MMap.update a (function Some n -> Some (n + 1) | None -> Some 1) acc)
      MMap.empty l
  in
  { support; frontier = recompute_frontier support }

(* [apply t ~add ~remove]: shift the supports by the two multisets and diff
   the frontier, reporting one event per answer whose status changed. The
   frontier is recomputed from the surviving answers (O(group²) compares) —
   groups are comparability classes, typically tiny next to the view. *)
let apply t ~add ~remove =
  if add = [] && remove = [] then (t, [])
  else begin
    let support =
      List.fold_left
        (fun acc a ->
          MMap.update a (function Some n -> Some (n + 1) | None -> Some 1) acc)
        t.support add
    in
    let support =
      List.fold_left
        (fun acc a ->
          MMap.update a
            (function
              | Some n when n > 1 -> Some (n - 1)
              | Some _ -> None
              | None ->
                  invalid_arg "Frontier.apply: removing an unsupported answer")
            acc)
        support remove
    in
    let frontier = recompute_frontier support in
    let events = ref [] in
    let was a = MMap.mem a t.support
    and is a = MMap.mem a support in
    let consider a =
      let before = was a and after = is a in
      let fb = Mapping.Set.mem a t.frontier
      and fa = Mapping.Set.mem a frontier in
      match (before, after) with
      | false, true -> events := Added { answer = a; maximal = fa } :: !events
      | true, false -> events := Removed { answer = a; was_maximal = fb } :: !events
      | true, true ->
          if fb && not fa then events := Demoted a :: !events
          else if fa && not fb then events := Promoted a :: !events
      | false, false -> ()
    in
    (* candidates for a status change: answers touched by the shift, plus
       answers entering or leaving the frontier as a side effect *)
    let touched =
      List.fold_left
        (fun acc a -> Mapping.Set.add a acc)
        (Mapping.Set.union
           (Mapping.Set.diff t.frontier frontier)
           (Mapping.Set.diff frontier t.frontier))
        (add @ remove)
    in
    Mapping.Set.iter consider touched;
    let events =
      List.sort (fun a b -> Mapping.compare (answer_of a) (answer_of b)) !events
    in
    ({ support; frontier }, events)
  end
