(** Side table mapping the nodes and atoms of a parsed pattern tree back to
    spans in the source text.

    Node indices follow {!Pattern_tree}'s preorder numbering (root 0, children
    after parents in syntactic order), so a map built while parsing stays
    valid for the {!Pattern_tree.t} built from the same spec. Atom [j] of
    node [i] is the [j]-th atom of that node's atom list. *)

type t

val empty : t

(** [make ~node_spans ~atom_spans]: [node_spans.(i)] covers node [i]'s atom
    block; [atom_spans.(i).(j)] covers its [j]-th atom. *)
val make : node_spans:Loc.span array -> atom_spans:Loc.span array array -> t

(** [None] when the map has no entry for the node (e.g. {!empty}). *)
val node_span : t -> int -> Loc.span option

val atom_span : t -> node:int -> atom:int -> Loc.span option

(** Span of the atom, falling back to the node, falling back to [None]. *)
val best_span : t -> node:int -> atom:int option -> Loc.span option
