open Relational

type strategy =
  | Exact_tractable
  | Via_witness of Pattern_tree.t
  | Via_approximation of Pattern_tree.t list
  | Exact_exponential

type exec = Backtracking | Yannakakis | Decomposition

type plan = {
  query : Pattern_tree.t;
  source : Pattern_tree.t;
  rewrites : Simplify.rewrite list;
  k : int;
  bounded_interface : int;
  strategy : strategy;
  exec : exec;
  cost : Cq.Cost.t option;
}

(* Pick the per-instance execution engine from the statistics-only cost
   bounds of the full-tree query (ROADMAP: cost-based strategy selection).
   Acyclic instances go to Yannakakis (no bag materialization, Theorem 3);
   cyclic ones go to the tree-decomposition evaluator only when its
   |adom|^(tw+1) bag bound undercuts what plain backtracking is bounded by
   (the better of the variable-domain and relation-product bounds). *)
let choose_exec (c : Cq.Cost.t) =
  if c.acyclic then Yannakakis
  else if
    (* observed drift inflates the backtracking side: the variable-domain /
       relation-product bounds are what the feedback discredited, the bag
       bound depends only on |adom| and the width *)
    Cq.Cost.decomp_eval_bound c
    < Float.min c.vardom_bound c.product_bound +. c.drift
  then Decomposition
  else Backtracking

(* Stats-epoch-keyed memo for the full-tree cost analysis: re-planning the
   same body against the same database at an unchanged version reuses the
   analysis; a version bump (Database.add) or a different database misses.
   The store version is part of the lookup — never trusted from the entry —
   so a stale entry cannot be served (the E024 discipline, optimizer side). *)
let cost_memo :
    (Relational.Atom.t list * string list, Database.t * int * Cq.Cost.t)
    Hashtbl.t =
  Hashtbl.create 64

let analyze_memo db body ~free =
  let key = (body, free) in
  match Hashtbl.find_opt cost_memo key with
  | Some (db', v', c) when db' == db && v' = Database.version db -> c
  | _ ->
      if Hashtbl.length cost_memo > 1024 then Hashtbl.reset cost_memo;
      let c = Cq.Cost.analyze db body ~free in
      Hashtbl.replace cost_memo key (db, Database.version db, c);
      c

let plan ?db ~k p =
  (* consume the static analyzer's rewrite opportunities first: dropping
     redundant atoms and dead branches preserves p(D) and can only lower the
     widths the strategy selection below depends on *)
  let q, rewrites = Simplify.simplify p in
  let c = Classes.interface q in
  let strategy =
    if Classes.locally_in ~width:Tw ~k q || Classes.in_wb ~width:Tw ~k q then
      Exact_tractable
    else
      match Semantic_opt.wb_witness ~width:Tw ~k q with
      | Some w -> Via_witness w
      | None -> (
          match Approximation.wb_approximations ~width:Tw ~k q with
          | [] -> Exact_exponential
          | apps -> Via_approximation apps)
  in
  let cost =
    match db with
    | None -> None
    | Some db ->
        let full = Pattern_tree.q_full q in
        Some (analyze_memo db (Cq.Query.body full) ~free:(Cq.Query.head full))
  in
  let exec = match cost with None -> Backtracking | Some c -> choose_exec c in
  { query = q; source = p; rewrites; k; bounded_interface = c; strategy;
    exec; cost }

(* [replan pl ~drift] folds measured selectivity drift (from the engine's
   cardinality feedback, log10 decades) into the plan's cost report and
   re-runs strategy selection. Answers are unaffected — all three engines
   compute the same set — only the engine choice moves. *)
let replan pl ~drift =
  match pl.cost with
  | None -> pl
  | Some c ->
      let c = Cq.Cost.recalibrate c ~drift in
      { pl with cost = Some c; exec = choose_exec c }

let describe_exec = function
  | Backtracking -> "backtracking search"
  | Yannakakis -> "Yannakakis over the GYO join forest (acyclic instance)"
  | Decomposition -> "tree-decomposition join tree (bags beat backtracking)"

let describe pl =
  let prefix =
    match pl.rewrites with
    | [] -> ""
    | rs ->
        Printf.sprintf "simplified (%s); "
          (String.concat "; " (List.map Simplify.describe_rewrite rs))
  in
  let suffix =
    match pl.cost with
    | None -> ""
    | Some _ -> Printf.sprintf "; execution: %s" (describe_exec pl.exec)
  in
  prefix
  ^ (match pl.strategy with
    | Exact_tractable ->
        Printf.sprintf
          "tractable as written (interface %d, width budget %d): Theorems 6-9 apply"
          pl.bounded_interface pl.k
    | Via_witness _ ->
        Printf.sprintf
          "subsumption-equivalent to a WB(%d) query: partial/maximal evaluation \
           through the witness (Corollary 2)"
          pl.k
    | Via_approximation apps ->
        Printf.sprintf
          "outside WB(%d): %d sound approximation(s) available (Section 5.2)"
          pl.k (List.length apps)
    | Exact_exponential -> "no optimization found: exact exponential evaluation")
  ^ suffix

let decision pl db h =
  match pl.strategy with
  | Exact_tractable -> Eval_tractable.decision db pl.query h
  | Via_witness _ | Via_approximation _ | Exact_exponential ->
      (* EVAL is not preserved by ≡ₛ, so only the original query can answer
         it exactly; Eval_tractable is correct (if slower) on all inputs *)
      Eval_tractable.decision db pl.query h

let partial_decision pl db h =
  match pl.strategy with
  | Exact_tractable -> Partial_eval.decision db pl.query h
  | Via_witness w -> Partial_eval.decision db w h
  | Via_approximation apps ->
      List.exists (fun a -> Partial_eval.decision db a h) apps
  | Exact_exponential -> Semantics.partial_decision db pl.query h

let complete pl =
  match pl.strategy with
  | Exact_tractable | Via_witness _ | Exact_exponential -> true
  | Via_approximation _ -> false

(* A single-node WDPT is exactly the CQ r_{T} (head = the free variables):
   the root either matches — yielding a total answer — or nothing does, so
   the SPARQL semantics and the CQ semantics coincide and the cost-selected
   engine can run the whole evaluation. All three engines bottom out in the
   compiled Engine, so when WDPT_ENGINE_DOMAINS > 1 every choice made here
   runs on the domain pool with identical answers and order. *)
let eval_cq pl db p =
  let cq = Pattern_tree.r_of_subtree p (Pattern_tree.all_nodes p) in
  match pl.exec with
  | Yannakakis -> (
      match Cq.Yannakakis.answers db cq with
      | Some s -> s
      | None -> Cq.Eval.answers db cq (* stats said acyclic; instance isn't *))
  | Decomposition -> Cq.Decomp_eval.answers db cq
  | Backtracking -> Cq.Eval.answers db cq

let eval pl db =
  match pl.strategy with
  | Exact_tractable | Exact_exponential ->
      if Pattern_tree.node_count pl.query = 1 then eval_cq pl db pl.query
      else Semantics.eval db pl.query
  | Via_witness w ->
      (* ≡ₛ preserves maximal answers; report those *)
      Semantics.eval_max db w
  | Via_approximation apps ->
      List.fold_left
        (fun acc a -> Mapping.Set.union acc (Semantics.eval db a))
        Mapping.Set.empty apps
