open Relational

type strategy =
  | Exact_tractable
  | Via_witness of Pattern_tree.t
  | Via_approximation of Pattern_tree.t list
  | Exact_exponential

type plan = {
  query : Pattern_tree.t;
  source : Pattern_tree.t;
  rewrites : Simplify.rewrite list;
  k : int;
  bounded_interface : int;
  strategy : strategy;
}

let plan ~k p =
  (* consume the static analyzer's rewrite opportunities first: dropping
     redundant atoms and dead branches preserves p(D) and can only lower the
     widths the strategy selection below depends on *)
  let q, rewrites = Simplify.simplify p in
  let c = Classes.interface q in
  let strategy =
    if Classes.locally_in ~width:Tw ~k q || Classes.in_wb ~width:Tw ~k q then
      Exact_tractable
    else
      match Semantic_opt.wb_witness ~width:Tw ~k q with
      | Some w -> Via_witness w
      | None -> (
          match Approximation.wb_approximations ~width:Tw ~k q with
          | [] -> Exact_exponential
          | apps -> Via_approximation apps)
  in
  { query = q; source = p; rewrites; k; bounded_interface = c; strategy }

let describe pl =
  let prefix =
    match pl.rewrites with
    | [] -> ""
    | rs ->
        Printf.sprintf "simplified (%s); "
          (String.concat "; " (List.map Simplify.describe_rewrite rs))
  in
  prefix
  ^
  match pl.strategy with
  | Exact_tractable ->
      Printf.sprintf
        "tractable as written (interface %d, width budget %d): Theorems 6-9 apply"
        pl.bounded_interface pl.k
  | Via_witness _ ->
      Printf.sprintf
        "subsumption-equivalent to a WB(%d) query: partial/maximal evaluation \
         through the witness (Corollary 2)"
        pl.k
  | Via_approximation apps ->
      Printf.sprintf
        "outside WB(%d): %d sound approximation(s) available (Section 5.2)"
        pl.k (List.length apps)
  | Exact_exponential -> "no optimization found: exact exponential evaluation"

let decision pl db h =
  match pl.strategy with
  | Exact_tractable -> Eval_tractable.decision db pl.query h
  | Via_witness _ | Via_approximation _ | Exact_exponential ->
      (* EVAL is not preserved by ≡ₛ, so only the original query can answer
         it exactly; Eval_tractable is correct (if slower) on all inputs *)
      Eval_tractable.decision db pl.query h

let partial_decision pl db h =
  match pl.strategy with
  | Exact_tractable -> Partial_eval.decision db pl.query h
  | Via_witness w -> Partial_eval.decision db w h
  | Via_approximation apps ->
      List.exists (fun a -> Partial_eval.decision db a h) apps
  | Exact_exponential -> Semantics.partial_decision db pl.query h

let complete pl =
  match pl.strategy with
  | Exact_tractable | Via_witness _ | Exact_exponential -> true
  | Via_approximation _ -> false

let eval pl db =
  match pl.strategy with
  | Exact_tractable | Exact_exponential -> Semantics.eval db pl.query
  | Via_witness w ->
      (* ≡ₛ preserves maximal answers; report those *)
      Semantics.eval_max db w
  | Via_approximation apps ->
      List.fold_left
        (fun acc a -> Mapping.Set.union acc (Semantics.eval db a))
        Mapping.Set.empty apps
