(** Support-counted answer sets with their subsumption frontier.

    One [Frontier.t] holds the answers of a single comparability group — in
    WDPT maintenance, the answers sharing a root-free-key, since only those
    can ever be ⊑-comparable — as a multiset (each answer's *support* is the
    number of maximal homomorphisms projecting to it) together with the
    ⊑-maximal answers. {!apply} shifts the supports by a delta and reports
    the induced status changes as {!event}s: this is the unit of work
    standing-query refresh ({!Standing.refresh}) performs per touched group,
    and the structure that makes OPT demotion observable — an insertion can
    push a new answer above an existing maximal one, which then leaves the
    frontier while remaining an answer. *)

open Relational

type t

(** One answer's status change, at the two semantics levels. [Added]: the
    answer is new (support went 0 → positive); [maximal] tells whether it
    entered the frontier too. [Removed]: the answer is gone (support hit 0);
    [was_maximal] tells whether it was on the frontier. [Demoted]: still an
    answer, but a new strictly-subsuming answer pushed it off the frontier.
    [Promoted]: already an answer, re-entered the frontier (its dominators
    disappeared). *)
type event =
  | Added of { answer : Mapping.t; maximal : bool }
  | Removed of { answer : Mapping.t; was_maximal : bool }
  | Promoted of Mapping.t
  | Demoted of Mapping.t

val answer_of : event -> Mapping.t

val empty : t
val is_empty : t -> bool

(** [of_answers l] builds the group from a list of projections (with
    multiplicity: equal projections accumulate support). *)
val of_answers : Mapping.t list -> t

(** The distinct answers (support > 0). *)
val answers : t -> Mapping.Set.t

(** The ⊑-maximal answers. *)
val maximal : t -> Mapping.Set.t

val support : t -> Mapping.t -> int

(** [apply t ~add ~remove] shifts supports by the two multisets (projections
    of appearing / disappearing maximal homomorphisms), recomputes the
    frontier, and returns the new group with the status-change events,
    sorted by answer.
    @raise Invalid_argument if [remove] takes some answer below support 0. *)
val apply : t -> add:Mapping.t list -> remove:Mapping.t list -> t * event list
