(** Standing WDPT queries: incremental answer maintenance over a fact
    stream.

    [register db p] evaluates [p] once and stores the view — the maximal
    homomorphisms partitioned by *rootkey* (their restriction to the
    root-node variables) and the answers with support counts and subsumption
    frontiers partitioned by *root-free-key* (the rootkey restricted to the
    free variables; only answers agreeing there can ever be ⊑-comparable).
    After any sequence of {!Database.add} / {!Database.remove} on [db],
    {!refresh} nets the modification-log window ({!Engine.Delta.batch}),
    marks the dirty rootkeys (deletion scan over the stored homs + insertion
    path probes with delta-constrained pivots), recomputes exactly those
    partitions via the scoped re-run
    [Semantics.iter_maximal_extensions ~init:rootkey], and reports the
    answer change set as events — including OPT-specific [Demoted] /
    [Promoted] transitions of the maximal-answer frontier that full
    re-evaluation would silently absorb.

    Cost per refresh is O(probe hits + dirty partitions re-run + touched
    frontier groups), not O(database); the differential guarantee (events
    applied to the old answer sets reproduce full re-evaluation at both
    semantics levels) is fuzz-tested by [wdpt_fuzz --delta-diff] and
    audited by [Analysis.Delta_audit]. *)

open Relational

type t

(** Alias of {!Frontier.event}; answers are projections to the free
    variables. [Added]/[Removed] are eval-level changes (with their
    frontier status); [Demoted]/[Promoted] are frontier-only changes: the
    answer remains in p(D) but left / re-entered p_m(D). *)
type event = Frontier.event =
  | Added of { answer : Mapping.t; maximal : bool }
  | Removed of { answer : Mapping.t; was_maximal : bool }
  | Promoted of Mapping.t
  | Demoted of Mapping.t

(** [register db p] evaluates [p] on [db] and returns the maintained view,
    stamped with the database version. *)
val register : Database.t -> Pattern_tree.t -> t

(** [refresh t] catches the view up to the live database version and
    returns the change events, sorted by root-free-key group and answer.
    Returns [[]] when nothing changed (including windows that net to
    nothing). *)
val refresh : t -> event list

(** Current p(D): the maintained eval-level answer set. *)
val answers : t -> Mapping.Set.t

(** Current p_m(D): the union of the group frontiers. *)
val maximal_answers : t -> Mapping.Set.t

val query : t -> Pattern_tree.t
val database : t -> Database.t

(** The database version the view is synced at. *)
val version : t -> int

(** Counters from the last {!refresh} (for benchmarks and audits). *)
type stats = {
  refreshes : int;
  last_batch_added : int;
  last_batch_removed : int;
  last_dirty : int;
  last_recomputed : int;
  last_events : int;
}

val stats : t -> stats

(** {2 Plain-data view}

    The audited surface: [Analysis.Delta_audit] checks it without access to
    the internals, and tests corrupt it to prove the auditor catches each
    defect class. *)

type view = {
  v_version : int;
  v_rootkeys : (Mapping.t * Mapping.t list) list;
      (** rootkey -> stored maximal homomorphisms, both sorted *)
  v_groups : (Mapping.t * (Mapping.t * int) list * Mapping.t list) list;
      (** root-free-key -> (answer, support) list -> frontier *)
}

val view : t -> view
