type pos = {
  line : int;
  col : int;
  offset : int;
}

type span = {
  start : pos;
  stop : pos;
}

let start_pos = { line = 1; col = 1; offset = 0 }

let advance p = function
  | '\n' -> { line = p.line + 1; col = 1; offset = p.offset + 1 }
  | _ -> { p with col = p.col + 1; offset = p.offset + 1 }

let at p = { start = p; stop = p }
let make_span start stop = { start; stop }

let union a b =
  let min_pos p q = if p.offset <= q.offset then p else q in
  let max_pos p q = if p.offset >= q.offset then p else q in
  { start = min_pos a.start b.start; stop = max_pos a.stop b.stop }

let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.col

let pp_span ppf s =
  if s.stop.offset <= s.start.offset then pp_pos ppf s.start
  else Format.fprintf ppf "%a-%a" pp_pos s.start pp_pos s.stop

let describe_pos p = Printf.sprintf "line %d, col %d" p.line p.col
