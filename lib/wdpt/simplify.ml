open Relational

type reason =
  | Duplicate_in_node
  | Duplicate_in_ancestor of int
  | Foldable

type rewrite =
  | Drop_atom of { node : int; atom : Atom.t; reason : reason }
  | Drop_subtree of { node : int }

let ancestors p i =
  let rec up j acc = if j < 0 then acc else up (Pattern_tree.parent p j) (j :: acc) in
  up (Pattern_tree.parent p i) []

let subtree_nodes p i =
  let rec dfs j acc =
    List.fold_left (fun acc c -> dfs c acc) (j :: acc) (Pattern_tree.children p j)
  in
  dfs i []

(* variables of node [i] that the rest of the tree (or the projection) can
   observe: free variables and variables shared with any other node *)
let shared_head p i =
  let mine = Pattern_tree.node_vars p i in
  let others =
    List.fold_left
      (fun acc j -> if j = i then acc else String_set.union acc (Pattern_tree.node_vars p j))
      String_set.empty (Pattern_tree.all_nodes p)
  in
  String_set.inter mine (String_set.union (Pattern_tree.free_set p) others)

let remove_once a atoms =
  let rec go = function
    | [] -> []
    | b :: rest -> if Atom.equal a b then rest else b :: go rest
  in
  go atoms

let spec_replacing_atoms p node atoms' =
  let rec build i =
    let atoms = if i = node then atoms' else Pattern_tree.atoms p i in
    Pattern_tree.Node (atoms, List.map build (Pattern_tree.children p i))
  in
  build 0

let spec_without_subtree p node =
  let rec build i =
    Pattern_tree.Node
      ( Pattern_tree.atoms p i,
        List.filter_map
          (fun c -> if c = node then None else Some (build c))
          (Pattern_tree.children p i) )
  in
  build 0

let apply p = function
  | Drop_atom { node; atom; _ } ->
      if node < 0 || node >= Pattern_tree.node_count p then None
      else
        let atoms = Pattern_tree.atoms p node in
        if not (List.exists (Atom.equal atom) atoms) then None
        else
          let spec = spec_replacing_atoms p node (remove_once atom atoms) in
          (try Some (Pattern_tree.make ~free:(Pattern_tree.free p) spec)
           with Invalid_argument _ -> None)
  | Drop_subtree { node } ->
      if node <= 0 || node >= Pattern_tree.node_count p then None
      else
        let spec = spec_without_subtree p node in
        (try Some (Pattern_tree.make ~free:(Pattern_tree.free p) spec)
         with Invalid_argument _ -> None)

let foldable p i a =
  let head = String_set.elements (shared_head p i) in
  let body = Pattern_tree.atoms p i in
  let body' = remove_once a body in
  body' <> []
  && String_set.subset (String_set.of_list head)
       (List.fold_left
          (fun acc b -> String_set.union acc (Atom.var_set b))
          String_set.empty body')
  &&
  try
    Cq.Containment.equivalent
      (Cq.Query.make ~head ~body)
      (Cq.Query.make ~head ~body:body')
  with Invalid_argument _ -> false

let redundant_atoms p =
  let out = ref [] in
  List.iter
    (fun i ->
      let seen = ref [] in
      List.iter
        (fun a ->
          let dup_here = List.exists (Atom.equal a) !seen in
          seen := a :: !seen;
          let reason =
            if dup_here then Some Duplicate_in_node
            else
              match
                List.find_opt
                  (fun j -> List.exists (Atom.equal a) (Pattern_tree.atoms p j))
                  (ancestors p i)
              with
              | Some j -> Some (Duplicate_in_ancestor j)
              | None -> if foldable p i a then Some Foldable else None
          in
          match reason with
          | Some r
            when not
                   (List.exists (fun (n, b, _) -> n = i && Atom.equal a b) !out)
                 && Option.is_some (apply p (Drop_atom { node = i; atom = a; reason = r }))
            ->
              out := (i, a, r) :: !out
          | _ -> ())
        (Pattern_tree.atoms p i))
    (Pattern_tree.all_nodes p);
  List.rev !out

let dead_branches p =
  let n = Pattern_tree.node_count p in
  let dead = Array.make n false in
  for i = 1 to n - 1 do
    let anc_vars =
      List.fold_left
        (fun acc j -> String_set.union acc (Pattern_tree.node_vars p j))
        String_set.empty (ancestors p i)
    in
    let sub_vars = Pattern_tree.vars_of_subtree p (subtree_nodes p i) in
    dead.(i) <- String_set.subset sub_vars anc_vars
  done;
  List.filter
    (fun i ->
      i > 0 && dead.(i)
      && not dead.(Pattern_tree.parent p i))
    (Pattern_tree.all_nodes p)
  |> List.filter (fun i -> Option.is_some (apply p (Drop_subtree { node = i })))

let rewrites p =
  List.map (fun i -> Drop_subtree { node = i }) (dead_branches p)
  @ List.map
      (fun (node, atom, reason) -> Drop_atom { node; atom; reason })
      (redundant_atoms p)

let simplify p =
  (* every step removes at least one atom or node, so this terminates *)
  let rec go p applied =
    match rewrites p with
    | [] -> (p, List.rev applied)
    | r :: _ -> (
        match apply p r with
        | Some p' -> go p' (r :: applied)
        | None -> (p, List.rev applied))
  in
  go p []

let describe_reason = function
  | Duplicate_in_node -> "repeated in the same node"
  | Duplicate_in_ancestor j -> Printf.sprintf "already required by ancestor node %d" j
  | Foldable -> "folds into the node's remaining atoms (homomorphism)"

let describe_rewrite = function
  | Drop_atom { node; atom; reason } ->
      Format.asprintf "drop redundant atom %a from node %d (%s)" Atom.pp atom
        node (describe_reason reason)
  | Drop_subtree { node } ->
      Printf.sprintf
        "drop dead branch at node %d (its subtree binds no new variables)" node

let pp_rewrite ppf r = Format.pp_print_string ppf (describe_rewrite r)
