(** The paper's program as a single entry point: given a WDPT and a width
    budget [k], decide how to evaluate it.

    The plan mirrors Sections 3–5: if the query is in a tractable fragment,
    use the corresponding algorithm directly; otherwise look for an
    ≡ₛ-equivalent well-behaved query (semantic optimization, Theorem 13 /
    Corollary 2); otherwise fall back to a sound WB(k)-approximation
    (Section 5.2) or to the exact exponential algorithms. *)

open Relational

type strategy =
  | Exact_tractable
      (** already in ℓ-TW(k) ∩ BI(c) (for EVAL) / g-TW(k) (for partial and
          maximal evaluation): run the Theorems 6–9 algorithms directly *)
  | Via_witness of Pattern_tree.t
      (** ≡ₛ-equivalent WB(k) query found: evaluate partial/maximal answers
          through it (Corollary 2) *)
  | Via_approximation of Pattern_tree.t list
      (** sound under-approximations in WB(k); answers are a subset of the
          exact ones (up to ⊑) *)
  | Exact_exponential
      (** no optimization found: exponential general algorithms *)

type plan = private {
  query : Pattern_tree.t;
      (** the simplified query the strategy applies to *)
  source : Pattern_tree.t;  (** the query as given *)
  rewrites : Simplify.rewrite list;
      (** semantics-preserving rewrites applied ({!Simplify}): the analyzer's
          redundant-atom / dead-branch findings, consumed as optimizations *)
  k : int;
  bounded_interface : int;
  strategy : strategy;
}

(** [plan ~k p] first applies {!Simplify.simplify} (evaluation-preserving, so
    all answers below are still those of [p]), then classifies the result and
    picks a strategy. *)
val plan : k:int -> Pattern_tree.t -> plan

val describe : plan -> string

(** EVAL through the plan (always exact: EVAL is answered with the general
    algorithm unless the query is tractable; approximations do not preserve
    exact answers). *)
val decision : plan -> Database.t -> Mapping.t -> bool

(** PARTIAL-EVAL through the plan. For [Via_approximation] the answer is
    sound but possibly incomplete (a [true] is definitive, a [false] is not);
    [complete] reports whether the strategy is exact. *)
val partial_decision : plan -> Database.t -> Mapping.t -> bool

val complete : plan -> bool

(** Full evaluation through the plan (for [Via_approximation]: the union of
    the approximations' answers — a sound subset, every returned mapping
    subsumed by an exact answer). *)
val eval : plan -> Database.t -> Mapping.Set.t
