(** The paper's program as a single entry point: given a WDPT and a width
    budget [k], decide how to evaluate it.

    The plan mirrors Sections 3–5: if the query is in a tractable fragment,
    use the corresponding algorithm directly; otherwise look for an
    ≡ₛ-equivalent well-behaved query (semantic optimization, Theorem 13 /
    Corollary 2); otherwise fall back to a sound WB(k)-approximation
    (Section 5.2) or to the exact exponential algorithms. *)

open Relational

type strategy =
  | Exact_tractable
      (** already in ℓ-TW(k) ∩ BI(c) (for EVAL) / g-TW(k) (for partial and
          maximal evaluation): run the Theorems 6–9 algorithms directly *)
  | Via_witness of Pattern_tree.t
      (** ≡ₛ-equivalent WB(k) query found: evaluate partial/maximal answers
          through it (Corollary 2) *)
  | Via_approximation of Pattern_tree.t list
      (** sound under-approximations in WB(k); answers are a subset of the
          exact ones (up to ⊑) *)
  | Exact_exponential
      (** no optimization found: exponential general algorithms *)

(** Per-instance execution engine, chosen from the {!Cq.Cost} bounds of the
    full-tree query when a database is supplied to {!plan}. *)
type exec =
  | Backtracking  (** plain backtracking search (also the no-database default) *)
  | Yannakakis  (** acyclic instance: GYO join forest, no bag materialization *)
  | Decomposition
      (** cyclic, but the [|adom|^(tw+1)] bag bound undercuts the
          backtracking bounds *)

type plan = private {
  query : Pattern_tree.t;
      (** the simplified query the strategy applies to *)
  source : Pattern_tree.t;  (** the query as given *)
  rewrites : Simplify.rewrite list;
      (** semantics-preserving rewrites applied ({!Simplify}): the analyzer's
          redundant-atom / dead-branch findings, consumed as optimizations *)
  k : int;
  bounded_interface : int;
  strategy : strategy;
  exec : exec;
  cost : Cq.Cost.t option;
      (** the bounds behind the [exec] choice; [None] without a database *)
}

(** [plan ?db ~k p] first applies {!Simplify.simplify} (evaluation-preserving,
    so all answers below are still those of [p]), then classifies the result
    and picks a strategy. With [?db] it additionally analyzes the full-tree
    query's cost against that database's statistics and selects the execution
    engine ([exec]) per instance. *)
val plan : ?db:Database.t -> k:int -> Pattern_tree.t -> plan

(** [replan pl ~drift] folds measured selectivity drift (log10 decades, from
    the engine's cardinality feedback) into the plan's cost report via
    {!Cq.Cost.recalibrate} and re-runs execution-engine selection. A no-op
    on plans without cost bounds. Answers are unaffected — only [exec] (and
    the recorded [cost]) can change. The underlying full-tree cost analysis
    is memoized per (body, database, version): re-planning under an
    unchanged stats epoch is O(1), and a version bump ([Database.add])
    misses the memo rather than serving stale statistics. *)
val replan : plan -> drift:float -> plan

val describe : plan -> string

(** EVAL through the plan (always exact: EVAL is answered with the general
    algorithm unless the query is tractable; approximations do not preserve
    exact answers). *)
val decision : plan -> Database.t -> Mapping.t -> bool

(** PARTIAL-EVAL through the plan. For [Via_approximation] the answer is
    sound but possibly incomplete (a [true] is definitive, a [false] is not);
    [complete] reports whether the strategy is exact. *)
val partial_decision : plan -> Database.t -> Mapping.t -> bool

val complete : plan -> bool

(** Full evaluation through the plan (for [Via_approximation]: the union of
    the approximations' answers — a sound subset, every returned mapping
    subsumed by an exact answer). Single-node trees — plain CQs, where the
    SPARQL and CQ semantics coincide — are routed through the cost-selected
    [exec] engine. *)
val eval : plan -> Database.t -> Mapping.Set.t

(** One-line description of an execution engine choice. *)
val describe_exec : exec -> string
