open Relational

(* Standing WDPT queries: register once, then maintain the answer set under
   Database.add / Database.remove batches by recomputing only the parts of
   the view a batch can have touched.

   The view is keyed two ways:

   - *rootkey* (the restriction of a maximal homomorphism to the root-node
     variables): every maximal homomorphism binds all root variables, so the
     hom store partitions by rootkey, and a scoped re-run
     ([Semantics.iter_maximal_extensions ~init:rootkey]) recomputes one
     partition without touching the others.

   - *root-free-key* (the rootkey restricted to the free variables): two
     answers can only be ⊑-comparable when they agree on the free variables
     of the root (every answer binds all of those, and comparable mappings
     agree on their common domain) — so subsumption frontiers are maintained
     per root-free-key group ([Frontier.t]), never globally.

   Refresh marks a set of *dirty rootkeys* and recomputes exactly those
   partitions. Dirtiness comes from two sound sources:

   - deletions: a stored hom whose atom image meets the net-removed set dies
     with its partition. This also covers removal-induced *promotions* (a
     hom newly maximal because its extensions died): any such hom was
     previously covered by a maximal extension with the same rootkey, and
     that extension used a removed fact.

   - insertions: for every node [n], probe the path pattern root→n with the
     pivot atom ranging over [n]'s atoms, constrained to net-added facts
     (Engine.Delta.iter_pivot_homs). Any genuinely new maximal hom uses an
     added fact at some node [n] of its subtree, and its restriction to the
     path root→n is one of the probed homs — so its rootkey gets marked.
     The same probe also catches insertion-induced *demotions* (a stored hom
     newly extendable, hence no longer maximal): the extension uses an added
     fact in the child, and shares the rootkey. *)

module MMap = Map.Make (Mapping)

type event = Frontier.event =
  | Added of { answer : Mapping.t; maximal : bool }
  | Removed of { answer : Mapping.t; was_maximal : bool }
  | Promoted of Mapping.t
  | Demoted of Mapping.t

type stats = {
  refreshes : int;
  last_batch_added : int;
  last_batch_removed : int;
  last_dirty : int;      (* dirty rootkeys marked by the last refresh *)
  last_recomputed : int; (* rootkey partitions whose hom set actually changed *)
  last_events : int;
}

type t = {
  query : Pattern_tree.t;
  db : Database.t;
  all_atoms : Atom.t list;          (* every atom of the tree *)
  root_vars : string list;
  root_free : string list;          (* root_vars ∩ free vars: the group key *)
  free : String_set.t;
  paths : (Atom.t list * int * int) array;
      (* per node: (atoms of the path root→node, first pivot index, #pivots) *)
  mutable version : int;
  mutable homs : Mapping.Set.t MMap.t;   (* rootkey -> maximal homs *)
  mutable groups : Frontier.t MMap.t;    (* root-free-key -> answer frontier *)
  mutable stats : stats;
}

let rootkey t h = Mapping.restrict_list t.root_vars h
let groupkey t rk = Mapping.restrict_list t.root_free rk
let project t h = Mapping.restrict t.free h

let query t = t.query
let database t = t.db
let version t = t.version
let stats t = t.stats

let build_paths p =
  Array.init (Pattern_tree.node_count p) (fun n ->
      let rec up acc n = if n < 0 then acc else up (n :: acc) (Pattern_tree.parent p n) in
      let nodes = up [] n in
      let atoms = List.concat_map (Pattern_tree.atoms p) nodes in
      let pivots = List.length (Pattern_tree.atoms p n) in
      (atoms, List.length atoms - pivots, pivots))

let register db p =
  let root_vars = String_set.elements (Pattern_tree.node_vars p (Pattern_tree.root p)) in
  let free = Pattern_tree.free_set p in
  let t =
    { query = p;
      db;
      all_atoms =
        List.concat_map (Pattern_tree.atoms p)
          (List.init (Pattern_tree.node_count p) Fun.id);
      root_vars;
      root_free = List.filter (fun x -> String_set.mem x free) root_vars;
      free;
      paths = build_paths p;
      version = Database.version db;
      homs = MMap.empty;
      groups = MMap.empty;
      stats =
        { refreshes = 0;
          last_batch_added = 0;
          last_batch_removed = 0;
          last_dirty = 0;
          last_recomputed = 0;
          last_events = 0 } }
  in
  Semantics.iter_maximal_homomorphisms db p (fun h ->
      let rk = rootkey t h in
      t.homs <-
        MMap.update rk
          (fun prev ->
            Some (Mapping.Set.add h (Option.value ~default:Mapping.Set.empty prev)))
          t.homs);
  MMap.iter
    (fun rk hs ->
      let gk = groupkey t rk in
      let projs = List.map (project t) (Mapping.Set.elements hs) in
      t.groups <-
        MMap.update gk
          (fun prev ->
            let g = Option.value ~default:Frontier.empty prev in
            Some (fst (Frontier.apply g ~add:projs ~remove:[])))
          t.groups)
    t.homs;
  t

let answers t =
  MMap.fold
    (fun _ g acc -> Mapping.Set.union (Frontier.answers g) acc)
    t.groups Mapping.Set.empty

let maximal_answers t =
  MMap.fold
    (fun _ g acc -> Mapping.Set.union (Frontier.maximal g) acc)
    t.groups Mapping.Set.empty

(* -- refresh ----------------------------------------------------------- *)

let dirty_rootkeys t (b : Engine.Delta.batch) idx =
  let dirty = ref Mapping.Set.empty in
  (* deletions: partitions holding a hom whose atom image meets the removed
     set. [apply_atom] grounds each atom under the hom; atoms of nodes
     outside the hom's subtree may stay non-ground and are skipped (their
     facts are not used by the hom). *)
  if b.removed <> [] then begin
    let uses_removed h =
      List.exists
        (fun a ->
          let ga = Mapping.apply_atom h a in
          Atom.is_ground ga && Engine.Delta.mem_removed idx (Atom.to_fact ga))
        t.all_atoms
    in
    MMap.iter
      (fun rk hs ->
        if Mapping.Set.exists uses_removed hs then
          dirty := Mapping.Set.add rk !dirty)
      t.homs
  end;
  (* insertions: path probes with the pivot constrained to net-added facts *)
  if b.added <> [] then
    Array.iter
      (fun (path_atoms, first_pivot, pivots) ->
        for j = 0 to pivots - 1 do
          Engine.Delta.iter_pivot_homs t.db path_atoms ~pivot:(first_pivot + j)
            idx ~init:Mapping.empty (fun h ->
              dirty := Mapping.Set.add (rootkey t h) !dirty)
        done)
      t.paths;
  !dirty

let refresh t =
  let v = Database.version t.db in
  if v = t.version then []
  else begin
    let b = Engine.Delta.batch t.db ~since:t.version in
    t.version <- v;
    if Engine.Delta.is_empty b then begin
      (* the window nets to nothing (e.g. add immediately undone by remove):
         the database state is the one the view was built from *)
      t.stats <-
        { refreshes = t.stats.refreshes + 1;
          last_batch_added = 0;
          last_batch_removed = 0;
          last_dirty = 0;
          last_recomputed = 0;
          last_events = 0 };
      []
    end
    else begin
      let idx = Engine.Delta.index b in
      let dirty = dirty_rootkeys t b idx in
      (* recompute each dirty partition and accumulate the projection shifts
         per root-free-key group *)
      let pending = ref MMap.empty in
      let note gk adds removes =
        pending :=
          MMap.update gk
            (fun prev ->
              let pa, pr = Option.value ~default:([], []) prev in
              Some (adds @ pa, removes @ pr))
            !pending
      in
      let recomputed = ref 0 in
      Mapping.Set.iter
        (fun rk ->
          let old =
            Option.value ~default:Mapping.Set.empty (MMap.find_opt rk t.homs)
          in
          let fresh = ref Mapping.Set.empty in
          Semantics.iter_maximal_extensions t.db t.query ~init:rk (fun h ->
              fresh := Mapping.Set.add h !fresh);
          let fresh = !fresh in
          if not (Mapping.Set.equal old fresh) then begin
            incr recomputed;
            t.homs <-
              (if Mapping.Set.is_empty fresh then MMap.remove rk t.homs
               else MMap.add rk fresh t.homs);
            let gk = groupkey t rk in
            let adds =
              List.map (project t) (Mapping.Set.elements (Mapping.Set.diff fresh old))
            and removes =
              List.map (project t) (Mapping.Set.elements (Mapping.Set.diff old fresh))
            in
            if adds <> [] || removes <> [] then note gk adds removes
          end)
        dirty;
      (* one frontier update per touched group, events in group order *)
      let events = ref [] in
      MMap.iter
        (fun gk (adds, removes) ->
          let g =
            Option.value ~default:Frontier.empty (MMap.find_opt gk t.groups)
          in
          let g', evs = Frontier.apply g ~add:adds ~remove:removes in
          t.groups <-
            (if Frontier.is_empty g' then MMap.remove gk t.groups
             else MMap.add gk g' t.groups);
          events := evs :: !events)
        !pending;
      let events = List.concat (List.rev !events) in
      t.stats <-
        { refreshes = t.stats.refreshes + 1;
          last_batch_added = List.length b.added;
          last_batch_removed = List.length b.removed;
          last_dirty = Mapping.Set.cardinal dirty;
          last_recomputed = !recomputed;
          last_events = List.length events };
      events
    end
  end

(* -- plain-data view for the auditor ------------------------------------ *)

type view = {
  v_version : int;
  v_rootkeys : (Mapping.t * Mapping.t list) list;
  v_groups : (Mapping.t * (Mapping.t * int) list * Mapping.t list) list;
}

let view t =
  { v_version = t.version;
    v_rootkeys =
      List.map (fun (rk, hs) -> (rk, Mapping.Set.elements hs)) (MMap.bindings t.homs);
    v_groups =
      List.map
        (fun (gk, g) ->
          ( gk,
            List.map
              (fun a -> (a, Frontier.support g a))
              (Mapping.Set.elements (Frontier.answers g)),
            Mapping.Set.elements (Frontier.maximal g) ))
        (MMap.bindings t.groups) }
