(** Concrete textual syntax for WDPTs over arbitrary relational schemas, and
    a facts format for databases. The query syntax is exactly what
    {!Pattern_tree.pp} prints, so parsing and printing round-trip:

    {v
      free (x, y) { R(?x, ?y), S(?x, "some constant", 3) }
        [ { T(?y, ?z) } [ { U(?z) } ];
          { V(?x) } ]
    v}

    [?ident] is a variable, integers and quoted strings are constants, and a
    bare identifier in argument position is a string constant. Facts files
    contain one ground atom per line, e.g. [knows(ann, bob)]; ['#'] starts a
    comment.

    Parse errors carry source positions ([line 3, col 14: expected '}']); the
    lower-level {!parse_spec} additionally returns a {!Source_map.t} so
    static analysis ({!Analysis.Lint}) can point diagnostics at real spans,
    and returns the raw tree description so that non-well-designed input can
    still be analyzed. *)

open Relational

(** A parse failure: a message and the position it refers to ([None] only
    when the input ended unexpectedly and no position is meaningful). *)
type parse_failure = {
  message : string;
  pos : Loc.pos option;
}

(** ["line 3, col 14: expected '}'"] *)
val describe_failure : parse_failure -> string

(** Result of parsing one pattern: the free-variable list and tree
    description (not yet checked for well-designedness), plus the source
    spans of every node and atom. *)
type parsed = {
  free : string list;
  spec : Pattern_tree.spec;
  source : Source_map.t;
}

(** Parse without building the tree — no well-designedness or free-variable
    validation, so ill-formed queries can be diagnosed by the analyzer. *)
val parse_spec : string -> (parsed, parse_failure) result

val parse : string -> (Pattern_tree.t, string) result

(** Unions of WDPTs (Section 6): disjuncts separated by the keyword [UNION],
    e.g. [free (x) { R(?x) } UNION free (x) { S(?x, ?y) }]. *)
val parse_union : string -> (Union.t, string) result

(** Parse one ground atom, e.g. [R(1, "x", foo)]. *)
val parse_fact : string -> (Fact.t, string) result

(** Parse a facts document (one fact per line); errors report the line and
    column of the offending token. *)
val parse_database : string -> (Database.t, string) result

(** [to_string p] prints in the parseable syntax. *)
val to_string : Pattern_tree.t -> string
