open Relational

(* Procedural evaluation: for every homomorphism of the root pattern, extend
   it maximally and independently into each child branch.  Independence is
   justified by well-designedness: a variable occurring in two sibling
   branches also occurs in their common ancestors, hence is already bound
   when the branches are processed. *)
let iter_maximal_extensions db p ~init yield =
  (* stream maximal extensions of [h] into the subtree at [node]; nothing is
     yielded iff the node's pattern cannot be matched at all, so children are
     probed for matchability before recursing *)
  let rec iter_ext node h k =
    Cq.Eval.iter_homomorphisms db (Pattern_tree.atoms p node) ~init:h (fun g ->
        let rec kids acc = function
          | [] -> k acc
          | c :: rest ->
              let matchable =
                Option.is_some
                  (Cq.Eval.first_homomorphism db (Pattern_tree.atoms p c) ~init:acc)
              in
              if matchable then iter_ext c acc (fun e -> kids e rest)
              else kids acc rest
        in
        kids g (Pattern_tree.children p node))
  in
  iter_ext (Pattern_tree.root p) init yield

let iter_maximal_homomorphisms db p yield =
  iter_maximal_extensions db p ~init:Mapping.empty yield

let maximal_homomorphisms db p =
  let out = ref [] in
  iter_maximal_homomorphisms db p (fun h -> out := h :: !out);
  !out

let maximal_homomorphisms_naive db p =
  let all = ref [] in
  Seq.iter
    (fun s ->
      let atoms = Pattern_tree.atoms_of_subtree p s in
      let homs = Cq.Eval.homomorphisms db atoms ~init:Mapping.empty in
      all := homs @ !all)
    (Pattern_tree.subtrees p);
  Mapping.maximal_elements !all

let any_maximal_homomorphism db p =
  (* greedy: any root match extends to a maximal homomorphism by extending
     each branch with the first available match *)
  let rec extend node h =
    match Cq.Eval.first_homomorphism db (Pattern_tree.atoms p node) ~init:h with
    | None -> None
    | Some g ->
        Some
          (List.fold_left
             (fun acc child ->
               match extend child acc with
               | Some acc' -> acc'
               | None -> acc)
             g (Pattern_tree.children p node))
  in
  extend (Pattern_tree.root p) Mapping.empty

let project_set p homs =
  let free = Pattern_tree.free_set p in
  List.fold_left
    (fun acc h -> Mapping.Set.add (Mapping.restrict free h) acc)
    Mapping.Set.empty homs

let eval db p = project_set p (maximal_homomorphisms db p)
let eval_naive db p = project_set p (maximal_homomorphisms_naive db p)

let eval_max db p =
  Mapping.Set.of_list
    (Mapping.maximal_elements (Mapping.Set.elements (eval db p)))

exception Stream_done

let stream_eval db p ~offset ~limit yield =
  (* Bounded-buffer streaming of p(D): every hom the procedural enumeration
     yields is already maximal, so its projection is a *bona fide* answer the
     moment it appears — streaming only has to deduplicate, never to retract.
     The buffer holds the distinct answers seen so far and is therefore
     bounded by [offset + limit]; enumeration stops as soon as the page is
     full, without materializing the rest of the answer set. *)
  let free = Pattern_tree.free_set p in
  let seen = ref Mapping.Set.empty in
  let emitted = ref 0 in
  let want = match limit with None -> max_int | Some n -> n in
  (try
     iter_maximal_homomorphisms db p (fun h ->
         let a = Mapping.restrict free h in
         if not (Mapping.Set.mem a !seen) then begin
           seen := Mapping.Set.add a !seen;
           let rank = Mapping.Set.cardinal !seen in
           if rank > offset then begin
             yield a;
             incr emitted;
             if !emitted >= want then raise Stream_done
           end
         end)
   with Stream_done -> ());
  !emitted

let decision db p h = Mapping.Set.mem h (eval db p)

let partial_decision db p h =
  Mapping.Set.exists (fun h' -> Mapping.subsumes h h') (eval db p)

let max_decision db p h = Mapping.Set.mem h (eval_max db p)
