open Relational

type token =
  | FREE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | VAR of string
  | IDENT of string
  | INT of int
  | STRING of string

type parse_failure = {
  message : string;
  pos : Loc.pos option;
}

let describe_failure f =
  match f.pos with
  | Some p -> Printf.sprintf "%s: %s" (Loc.describe_pos p) f.message
  | None -> f.message

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' | '-' | '.' | '@' -> true
  | _ -> false

(* advance a position over src.[p.offset .. j-1] *)
let advance_to src p j =
  let q = ref p in
  for k = p.Loc.offset to j - 1 do
    q := Loc.advance !q src.[k]
  done;
  !q

let tokenize src =
  let n = String.length src in
  let rec go p acc =
    let i = p.Loc.offset in
    if i >= n then Ok (List.rev acc, p)
    else
      let c = src.[i] in
      let single tok = go (Loc.advance p c) ((tok, Loc.make_span p (Loc.advance p c)) :: acc) in
      match c with
      | ' ' | '\t' | '\n' | '\r' -> go (Loc.advance p c) acc
      | '#' ->
          let rec eol j = if j >= n || src.[j] = '\n' then j else eol (j + 1) in
          go (advance_to src p (eol i)) acc
      | '(' -> single LPAREN
      | ')' -> single RPAREN
      | '{' -> single LBRACE
      | '}' -> single RBRACE
      | '[' -> single LBRACKET
      | ']' -> single RBRACKET
      | ',' -> single COMMA
      | ';' -> single SEMI
      | '"' ->
          let rec close j =
            if j >= n then Error { message = "unterminated string literal"; pos = Some p }
            else if src.[j] = '"' then Ok j
            else close (j + 1)
          in
          (match close (i + 1) with
          | Error e -> Error e
          | Ok j ->
              let q = advance_to src p (j + 1) in
              go q ((STRING (String.sub src (i + 1) (j - i - 1)), Loc.make_span p q) :: acc))
      | '?' ->
          let rec word j = if j < n && is_ident_char src.[j] then word (j + 1) else j in
          let j = word (i + 1) in
          if j = i + 1 then Error { message = "empty variable name"; pos = Some p }
          else
            let q = advance_to src p j in
            go q ((VAR (String.sub src (i + 1) (j - i - 1)), Loc.make_span p q) :: acc)
      | '-' | '0' .. '9' ->
          let rec num j =
            if j < n && (match src.[j] with '0' .. '9' -> true | _ -> false) then
              num (j + 1)
            else j
          in
          let j = num (i + 1) in
          (match int_of_string_opt (String.sub src i (j - i)) with
          | Some k ->
              let q = advance_to src p j in
              go q ((INT k, Loc.make_span p q) :: acc)
          | None -> Error { message = "bad number"; pos = Some p })
      | c when is_ident_char c ->
          let rec word j = if j < n && is_ident_char src.[j] then word (j + 1) else j in
          let j = word i in
          let w = String.sub src i (j - i) in
          let tok = if String.lowercase_ascii w = "free" then FREE else IDENT w in
          let q = advance_to src p j in
          go q ((tok, Loc.make_span p q) :: acc)
      | c -> Error { message = Printf.sprintf "unexpected character %C" c; pos = Some p }
  in
  go Loc.start_pos []

exception Parse_error of parse_failure

type state = {
  mutable toks : (token * Loc.span) list;
  eof : Loc.pos;
}

let peek st = match st.toks with (t, _) :: _ -> Some t | [] -> None
let peek_span st = match st.toks with (_, s) :: _ -> Some s | [] -> None
let here st = match st.toks with (_, s) :: _ -> s.Loc.start | [] -> st.eof
let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let fail st message = raise (Parse_error { message; pos = Some (here st) })

let expect st t name =
  match peek st with
  | Some t' when t' = t ->
      let s = Option.get (peek_span st) in
      advance st;
      s
  | _ -> fail st ("expected " ^ name)

let term st =
  match peek st with
  | Some (VAR x) ->
      advance st;
      Term.var x
  | Some (IDENT w) ->
      advance st;
      Term.str w
  | Some (STRING s) ->
      advance st;
      Term.str s
  | Some (INT k) ->
      advance st;
      Term.int k
  | _ -> fail st "expected a term"

let rec comma_sep st elem close =
  match peek st with
  | Some t when t = close -> []
  | _ ->
      let x = elem st in
      (match peek st with
      | Some COMMA ->
          advance st;
          x :: comma_sep st elem close
      | _ -> [ x ])

let atom st =
  match peek st with
  | Some (IDENT r) ->
      let start = (Option.get (peek_span st)).Loc.start in
      advance st;
      ignore (expect st LPAREN "'('");
      let args = comma_sep st term RPAREN in
      let close = expect st RPAREN "')'" in
      (Atom.make r args, Loc.make_span start close.Loc.stop)
  | _ -> fail st "expected a relation name"

(* node descriptions annotated with spans, in syntactic order *)
type node_ann = {
  n_atoms : (Atom.t * Loc.span) list;
  n_span : Loc.span;
  n_kids : node_ann list;
}

let rec node st =
  let open_brace = expect st LBRACE "'{'" in
  let atoms = comma_sep st atom RBRACE in
  let close_brace = expect st RBRACE "'}'" in
  let kids =
    match peek st with
    | Some LBRACKET ->
        advance st;
        let rec sep () =
          let k = node st in
          match peek st with
          | Some SEMI ->
              advance st;
              k :: sep ()
          | _ -> [ k ]
        in
        let kids = sep () in
        ignore (expect st RBRACKET "']'");
        kids
    | _ -> []
  in
  { n_atoms = atoms;
    n_span = Loc.make_span open_brace.Loc.start close_brace.Loc.stop;
    n_kids = kids }

let var_name st =
  match peek st with
  | Some (IDENT x) ->
      advance st;
      x
  | Some (VAR x) ->
      advance st;
      x
  | _ -> fail st "expected a variable name"

type parsed = {
  free : string list;
  spec : Pattern_tree.spec;
  source : Source_map.t;
}

(* flatten in the same preorder as Pattern_tree.flatten so that node indices
   in the source map agree with the built tree's *)
let to_parsed free ann =
  let nodes = ref [] in
  let rec go a =
    nodes := a :: !nodes;
    List.iter go a.n_kids
  in
  go ann;
  let in_order = List.rev !nodes in
  let node_spans = Array.of_list (List.map (fun a -> a.n_span) in_order) in
  let atom_spans =
    Array.of_list
      (List.map (fun a -> Array.of_list (List.map snd a.n_atoms)) in_order)
  in
  let rec spec_of a =
    Pattern_tree.Node (List.map fst a.n_atoms, List.map spec_of a.n_kids)
  in
  { free;
    spec = spec_of ann;
    source = Source_map.make ~node_spans ~atom_spans }

let one_wdpt st =
  ignore (expect st FREE "'free'");
  ignore (expect st LPAREN "'('");
  let free = comma_sep st var_name RPAREN in
  ignore (expect st RPAREN "')'");
  let ann = node st in
  (free, ann)

let run_parser src f =
  match tokenize src with
  | Error e -> Error e
  | Ok (toks, eof) -> (
      let st = { toks; eof } in
      try Ok (f st) with Parse_error e -> Error e)

let no_trailing st =
  match peek st with
  | None -> ()
  | Some _ -> fail st "trailing tokens"

let parse_spec src =
  run_parser src (fun st ->
      let free, ann = one_wdpt st in
      no_trailing st;
      to_parsed free ann)

let parse src =
  match parse_spec src with
  | Error e -> Error (describe_failure e)
  | Ok { free; spec; _ } -> (
      try Ok (Pattern_tree.make ~free spec) with Invalid_argument e -> Error e)

let parse_union src =
  let result =
    run_parser src (fun st ->
        let rec go acc =
          let free, ann = one_wdpt st in
          let { free; spec; _ } = to_parsed free ann in
          let p =
            try Pattern_tree.make ~free spec
            with Invalid_argument e -> raise (Parse_error { message = e; pos = None })
          in
          match peek st with
          | Some (IDENT w) when String.uppercase_ascii w = "UNION" ->
              advance st;
              go (p :: acc)
          | None -> List.rev (p :: acc)
          | Some _ -> fail st "expected UNION or end of input"
        in
        go [])
  in
  Result.map_error describe_failure result

let parse_fact_failure line =
  run_parser line (fun st ->
      let a, _ = atom st in
      no_trailing st;
      if Atom.is_ground a then Atom.to_fact a
      else raise (Parse_error { message = "facts must be ground (no variables)"; pos = None }))

let parse_fact line = Result.map_error describe_failure (parse_fact_failure line)

let parse_database doc =
  let db = Database.create () in
  let rec go n = function
    | [] -> Ok db
    | line :: rest ->
        let stripped = String.trim line in
        if stripped = "" || stripped.[0] = '#' then go (n + 1) rest
        else
          match parse_fact_failure stripped with
          | Ok f ->
              Database.add db f;
              go (n + 1) rest
          | Error e ->
              (* the fact was tokenized in isolation: re-anchor its position
                 (always line 1) at this line of the document, shifted past
                 any leading whitespace lost to trimming *)
              let leading =
                let rec f i =
                  if i < String.length line && (line.[i] = ' ' || line.[i] = '\t')
                  then f (i + 1)
                  else i
                in
                f 0
              in
              Error
                (match e.pos with
                | Some p ->
                    Printf.sprintf "line %d, col %d: %s" n (p.Loc.col + leading)
                      e.message
                | None -> Printf.sprintf "line %d: %s" n e.message)
  in
  go 1 (String.split_on_char '\n' doc)

let to_string p = Format.asprintf "%a" Pattern_tree.pp p
