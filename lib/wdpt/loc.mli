(** Source positions and spans for the concrete query syntaxes.

    Positions are 1-based in lines and columns (the convention of compiler
    diagnostics); [offset] is the 0-based byte offset into the source. A
    [span] covers the half-open byte range [\[start.offset, stop.offset)]. *)

type pos = {
  line : int;
  col : int;
  offset : int;
}

type span = {
  start : pos;
  stop : pos;
}

val start_pos : pos

(** [advance p c] moves past character [c] (newlines reset the column). *)
val advance : pos -> char -> pos

(** A zero-width span at a position. *)
val at : pos -> span

val make_span : pos -> pos -> span

(** [union a b] is the smallest span covering both. *)
val union : span -> span -> span

(** ["3:14"] *)
val pp_pos : Format.formatter -> pos -> unit

(** ["3:14-3:20"], or ["3:14"] for zero-width spans. *)
val pp_span : Format.formatter -> span -> unit

(** ["line 3, col 14"] — the phrasing used in parse errors. *)
val describe_pos : pos -> string
