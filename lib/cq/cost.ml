(* Static cost model for a conjunctive body over a concrete database,
   computed from stored statistics only (relation counts, per-position
   distinct counts, active-domain size) — no enumeration.

   This lives at the CQ layer (rather than in lib/analysis) so that
   Wdpt.Optimizer can consume the bounds for per-instance strategy selection
   without a dependency cycle; Analysis.Cost re-exports everything and adds
   the WDPT-level classification and rendering on top.

   All cardinality bounds live in log10 so products become sums and the
   numbers stay printable; [neg_infinity] encodes a provably empty result
   (some relation or domain is empty). *)

open Relational
module Hg = Hypergraphs.Hypergraph
module Td = Hypergraphs.Tree_decomposition
module Ht = Hypergraphs.Hypertree
module Gyo = Hypergraphs.Gyo

type growth = Polynomial of int | Exponential

type t = {
  natoms : int;
  nvars : int;
  nfree : int;
  adom : int;
  treewidth : int;
  acyclic : bool;
  ghw_le : int option;  (* least k <= ghw_cap with ghw <= k, when searched *)
  product_bound : float;  (* log10 Π_atoms |R_a| *)
  vardom_bound : float;  (* log10 Π_vars (tightest per-position domain) *)
  decomp_bound : float option;  (* log10 per-bag guard product over a GHW decomposition *)
  adom_bound : float;  (* nvars · log10 |adom| *)
  hom_bound : float;  (* min of the four: bound on homomorphism count *)
  answer_bound : float;  (* bound on answers = projections onto the free variables *)
  growth : growth;
  drift : float;
      (* log10 decades of observed-over-estimated selectivity drift folded
         in by cardinality feedback; 0. for a purely static analysis. The
         static bounds above stay untouched (they are sound regardless of
         drift) — drift only biases strategy selection away from the
         backtracking bounds the observations discredit. *)
}

(* ghw_at_most is exponential in the number of edges; keep the search tiny. *)
let ghw_cap = 2
let ghw_max_edges = 10

let log_count n = if n <= 0 then neg_infinity else log10 (float_of_int n)

(* The tightest statically known domain of [x]: the least distinct-count over
   the positions where [x] occurs, falling back to the active domain for a
   variable with no occurrence (a free variable outside the body). *)
let var_domain db atoms adom x =
  let best = ref max_int in
  List.iter
    (fun a ->
      let args = Atom.args a in
      List.iteri
        (fun i t ->
          match t with
          | Term.Var y when String.equal x y ->
              let d = Database.distinct_count db (Atom.rel a) i in
              if d < !best then best := d
          | _ -> ())
        args)
    atoms;
  if !best = max_int then adom else !best

let classify ~nvars ~acyclic ~treewidth =
  if nvars = 0 then Polynomial 0
  else if acyclic then Polynomial 1
  else
    let w = treewidth + 1 in
    (* A width-k decomposition yields O(|D|^(k+1)) evaluation; when every bag
       already holds all variables the "polynomial" degree equals the trivial
       |adom|^nvars exponent — that is the saturated, exponential-in-query
       regime (cliques, grids at full width). *)
    if w < nvars || nvars <= 2 then Polynomial (min w nvars) else Exponential

let analyze db atoms ~free =
  let natoms = List.length atoms in
  let vars =
    List.fold_left
      (fun acc a -> String_set.union acc (Atom.var_set a))
      String_set.empty atoms
  in
  let nvars = String_set.cardinal vars in
  let adom = Database.adom_size db in
  let product_bound =
    List.fold_left
      (fun acc a -> acc +. log_count (Database.count_of db (Atom.rel a)))
      0. atoms
  in
  let vardom_bound =
    String_set.fold
      (fun x acc -> acc +. log_count (var_domain db atoms adom x))
      vars 0.
  in
  let adom_bound = float_of_int nvars *. log_count adom in
  let adom_bound = if nvars = 0 then 0. else adom_bound in
  let edges =
    List.filter_map
      (fun a ->
        let vs = Atom.var_set a in
        if String_set.is_empty vs then None else Some vs)
      atoms
  in
  let hg = Hg.of_edges edges in
  let acyclic = edges = [] || Gyo.is_acyclic hg in
  let treewidth = if edges = [] then 0 else max 0 (Td.treewidth hg) in
  (* Guard weight: a guard is an edge of the hypergraph, i.e. the variable
     set of some atom; weigh it by the smallest relation realizing it. *)
  let edge_weight g =
    List.fold_left
      (fun acc a ->
        if String_set.equal g (Atom.var_set a) then
          Float.min acc (log_count (Database.count_of db (Atom.rel a)))
        else acc)
      infinity atoms
    |> fun w -> if w = infinity then 0. else w
  in
  let ghw_le, decomp_bound =
    if edges = [] || List.length edges > ghw_max_edges then (None, None)
    else
      let rec search k =
        if k > ghw_cap then (None, None)
        else
          match Ht.ghw_at_most hg k with
          | Some htd -> (Some k, Some (Ht.guard_weight htd ~weight:edge_weight))
          | None -> search (k + 1)
      in
      search 1
  in
  let hom_bound =
    List.fold_left Float.min product_bound
      (vardom_bound :: adom_bound
      :: (match decomp_bound with Some b -> [ b ] | None -> []))
  in
  let free_in = List.sort_uniq String.compare free in
  let free_dom_bound =
    List.fold_left
      (fun acc x -> acc +. log_count (var_domain db atoms adom x))
      0. free_in
  in
  let answer_bound = Float.min hom_bound free_dom_bound in
  {
    natoms;
    nvars;
    nfree = List.length free_in;
    adom;
    treewidth;
    acyclic;
    ghw_le;
    product_bound;
    vardom_bound;
    decomp_bound;
    adom_bound;
    hom_bound;
    answer_bound;
    growth = classify ~nvars ~acyclic ~treewidth;
    drift = 0.;
  }

(* [recalibrate c ~drift] folds observed drift into the cost report for
   re-planning; negative drift is clamped (overestimates never discredit
   the static bounds). *)
let recalibrate c ~drift = { c with drift = Float.max 0. drift }

(* [bound_count c] turns a log10 bound back into an integer ceiling (capped at
   max_int) for direct comparison against measured answer counts. *)
let bound_count c =
  if c.answer_bound = neg_infinity then 0
  else if c.answer_bound > 18. then max_int
  else int_of_float (Float.ceil (10. ** c.answer_bound))

(* [decomp_eval_bound c]: log10 of the per-bag materialization cost a
   width-(treewidth) tree-decomposition evaluation pays, |adom|^(tw+1) — the
   quantity per-instance strategy selection compares against the
   backtracking bounds. *)
let decomp_eval_bound c =
  float_of_int (c.treewidth + 1) *. log_count (max 1 c.adom)
