open Relational

type t = {
  vars : String_set.t;
  rows : Mapping.Set.t;
}

let make vars rows =
  List.iter
    (fun r ->
      if not (String_set.equal (Mapping.domain r) vars) then
        invalid_arg "Relation.make: row domain mismatch")
    rows;
  { vars; rows = Mapping.Set.of_list rows }

let vars r = r.vars
let rows r = Mapping.Set.elements r.rows
let cardinal r = Mapping.Set.cardinal r.rows
let is_empty r = Mapping.Set.is_empty r.rows
let unit = { vars = String_set.empty; rows = Mapping.Set.singleton Mapping.empty }

(* Hash keys for joins: the sorted bindings of the restriction to [key].
   Canonical (Map.bindings is ordered) and structurally hashable, unlike the
   balanced trees themselves — and far cheaper than the pretty-printed
   strings used previously. *)
let restrict_key key row = Mapping.bindings (Mapping.restrict key row)

(* index rows by their restriction to [key] *)
let index key r =
  let tbl = Hashtbl.create (max 16 (Mapping.Set.cardinal r.rows)) in
  Mapping.Set.iter
    (fun row -> Hashtbl.add tbl (restrict_key key row) row)
    r.rows;
  tbl

let join r s =
  let shared = String_set.inter r.vars s.vars in
  let small, large = if cardinal r <= cardinal s then (r, s) else (s, r) in
  let idx = index shared small in
  let out = ref Mapping.Set.empty in
  Mapping.Set.iter
    (fun row ->
      List.iter
        (fun row' -> out := Mapping.Set.add (Mapping.union row row') !out)
        (Hashtbl.find_all idx (restrict_key shared row)))
    large.rows;
  { vars = String_set.union r.vars s.vars; rows = !out }

let semijoin r s =
  let shared = String_set.inter r.vars s.vars in
  let keys = Hashtbl.create 64 in
  Mapping.Set.iter
    (fun row -> Hashtbl.replace keys (restrict_key shared row) ())
    s.rows;
  { r with
    rows =
      Mapping.Set.filter
        (fun row -> Hashtbl.mem keys (restrict_key shared row))
        r.rows }

let project vars r =
  let vars = String_set.inter vars r.vars in
  { vars;
    rows = Mapping.Set.map (Mapping.restrict vars) r.rows }

let extend_all r x values =
  if String_set.mem x r.vars then invalid_arg "Relation.extend_all: variable present";
  { vars = String_set.add x r.vars;
    rows =
      Mapping.Set.fold
        (fun row acc ->
          List.fold_left (fun acc v -> Mapping.Set.add (Mapping.add x v row) acc) acc values)
        r.rows Mapping.Set.empty }

let pp ppf r =
  Format.fprintf ppf "@[<v>vars %a (%d rows)@,%a@]" String_set.pp r.vars (cardinal r)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Mapping.pp)
    (rows r)
