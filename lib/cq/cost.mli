(** Static cost model: worst-case output bounds for a conjunctive body over a
    concrete database, computed from stored statistics only — relation
    cardinalities, per-position distinct counts ({!Database.distinct_count})
    and the active-domain size. No tuple is enumerated.

    Bounds are kept in log10 ([neg_infinity] = provably empty). Four
    independent sound bounds on the number of homomorphisms are combined by
    minimum:

    - the relation product [Π_a |R_a|] (each homomorphism picks one matching
      fact per atom);
    - the variable-domain product [Π_x dom(x)], where [dom(x)] is the least
      distinct-count over the positions [x] occupies;
    - the per-bag guard product over a generalized hypertree decomposition
      ({!Hypergraphs.Hypertree.guard_weight}), searched for width <= 2 on
      small hypergraphs;
    - the trivial [|adom|^nvars].

    The answer bound additionally projects onto the free variables.

    This module is the CQ-level core consumed by {!Wdpt.Optimizer} for
    per-instance strategy selection; [Analysis.Cost] re-exports it and adds
    the WDPT tree classification and JSON rendering. *)

open Relational

type growth =
  | Polynomial of int  (** degree bound in the database size *)
  | Exponential  (** saturated regime: width does not beat [|adom|^nvars] *)

type t = {
  natoms : int;
  nvars : int;
  nfree : int;
  adom : int;
  treewidth : int;
  acyclic : bool;
  ghw_le : int option;  (** least k <= 2 with ghw <= k, when searched *)
  product_bound : float;
  vardom_bound : float;
  decomp_bound : float option;
  adom_bound : float;
  hom_bound : float;
  answer_bound : float;
  growth : growth;
  drift : float;
      (** log10 decades of observed-over-estimated selectivity drift folded
          in by cardinality feedback ({!recalibrate}); [0.] for a purely
          static analysis. The sound bounds above are never modified —
          drift only biases strategy selection. *)
}

(** [analyze db atoms ~free]: statistics are read from [db]; [free] names the
    projection variables (answers are projections of homomorphisms, so
    [answer_bound <= hom_bound]). *)
val analyze : Database.t -> Atom.t list -> free:string list -> t

(** The answer bound as an integer ceiling ([max_int] beyond 10^18),
    comparable against a measured answer count. *)
val bound_count : t -> int

(** log10 of the per-bag materialization cost [(treewidth+1) · log10 |adom|]
    a tree-decomposition evaluation pays — the quantity strategy selection
    compares against the backtracking bounds. *)
val decomp_eval_bound : t -> float

(** [recalibrate c ~drift] folds observed selectivity drift (log10 decades,
    clamped to [>= 0.]) into the report. [Wdpt.Optimizer.replan] feeds the
    drift the engine's cardinality feedback measured; strategy selection
    then penalizes the backtracking-side bounds the observations
    discredited. *)
val recalibrate : t -> drift:float -> t
