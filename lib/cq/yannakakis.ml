open Relational
module Gyo = Hypergraphs.Gyo
module Rel = Engine.Rel

(* The join forest is evaluated over interned relations (Engine.Rel): rows
   are dense-int tuples, semijoins and joins are hash-based on projected key
   tuples. Mapping.t values appear only in the final conversion of the
   combined answer relation. The semijoin passes go chunk-parallel when
   WDPT_ENGINE_DOMAINS > 1 (Rel.semijoin partitions the probe side over the
   domain pool against the shared read-only hash index, keeping row order). *)

type node = {
  mutable rel : Rel.t;
  mutable children : int list;
  mutable is_root : bool;
}

type prepared =
  | Cyclic
  | Ground_failure
  | Ready of Query.t * node array

(* Build per-atom interned relations and the join-forest structure. *)
let prepare db q ~init =
  let q = Query.substitute init q in
  let ground, atoms = List.partition Atom.is_ground (Query.body q) in
  if not (List.for_all (fun a -> Database.mem db (Atom.to_fact a)) ground) then
    Ground_failure
  else begin
    let hg = Hypergraphs.Hypergraph.of_edges (List.map Atom.var_set atoms) in
    match Gyo.join_forest hg with
    | None -> Cyclic
    | Some jf ->
        let nodes =
          Array.of_list
            (List.map
               (fun a ->
                 { rel = Rel.of_atom db a; children = []; is_root = false })
               atoms)
        in
        List.iter
          (fun (child, parent) ->
            nodes.(parent).children <- child :: nodes.(parent).children)
          jf.Gyo.parents;
        List.iter (fun r -> nodes.(r).is_root <- true) jf.Gyo.roots;
        Ready (q, nodes)
  end

let rec up_pass nodes i =
  List.iter
    (fun c ->
      up_pass nodes c;
      nodes.(i).rel <- Rel.semijoin nodes.(i).rel nodes.(c).rel)
    nodes.(i).children

let roots_of nodes =
  let out = ref [] in
  Array.iteri (fun i n -> if n.is_root then out := i :: !out) nodes;
  !out

let satisfiable db q ~init =
  match prepare db q ~init with
  | Cyclic -> None
  | Ground_failure -> Some false
  | Ready (_, nodes) ->
      let roots = roots_of nodes in
      List.iter (fun r -> up_pass nodes r) roots;
      Some (List.for_all (fun r -> not (Rel.is_empty nodes.(r).rel)) roots)

let answers db q =
  match prepare db q ~init:Mapping.empty with
  | Cyclic -> None
  | Ground_failure -> Some Mapping.Set.empty
  | Ready (q', nodes) ->
      let head = Query.head_set q' in
      let roots = roots_of nodes in
      List.iter (fun r -> up_pass nodes r) roots;
      if List.exists (fun r -> Rel.is_empty nodes.(r).rel) roots then
        Some Mapping.Set.empty
      else begin
        (* full reducer: downward semijoins *)
        let rec down i =
          List.iter
            (fun c ->
              nodes.(c).rel <- Rel.semijoin nodes.(c).rel nodes.(i).rel;
              down c)
            nodes.(i).children
        in
        List.iter down roots;
        (* upward joins projecting onto atom vars ∪ head *)
        let rec up i =
          let keep = String_set.union (Rel.var_set nodes.(i).rel) head in
          List.fold_left
            (fun acc c -> Rel.project keep (Rel.join acc (up c)))
            nodes.(i).rel nodes.(i).children
        in
        let combined =
          List.fold_left
            (fun acc r -> Rel.join acc (Rel.project head (up r)))
            Rel.unit roots
        in
        Some (Mapping.Set.of_list (Rel.to_mappings db combined))
      end
