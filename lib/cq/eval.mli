(** Backtracking evaluation of arbitrary CQs (worst-case exponential; this is
    the "general" evaluator the tractable algorithms are compared against).

    The entry points below run on the compiled engine ({!Engine}): values and
    variables interned to dense ints, a flat slot environment, candidate
    ranking from stored index counts. {!Naive} is the original direct
    implementation, kept as the oracle for agreement testing and the
    before/after benchmark. *)

open Relational

(** The pre-engine reference evaluator: [Map]-based environments, candidate
    lists rebuilt at every backtracking node. Semantically equivalent to the
    toplevel entry points (a qcheck property enforces this). *)
module Naive : sig
  val iter_homomorphisms :
    Database.t -> Atom.t list -> init:Mapping.t -> (Mapping.t -> unit) -> unit

  val homomorphisms :
    Database.t -> Atom.t list -> init:Mapping.t -> Mapping.t list

  val first_homomorphism :
    Database.t -> Atom.t list -> init:Mapping.t -> Mapping.t option

  val satisfiable : Database.t -> Atom.t list -> init:Mapping.t -> bool
  val answers : Database.t -> Query.t -> Mapping.Set.t
end

(** [iter_homomorphisms db atoms ~init f] calls [f] on every extension of
    [init] that maps every atom into [db]. Atoms are matched in a dynamically
    chosen most-constrained-first order. Raising inside [f] aborts the
    enumeration. *)
val iter_homomorphisms :
  Database.t -> Atom.t list -> init:Mapping.t -> (Mapping.t -> unit) -> unit

(** All homomorphisms extending [init]. *)
val homomorphisms : Database.t -> Atom.t list -> init:Mapping.t -> Mapping.t list

(** First homomorphism found, if any (stops early). *)
val first_homomorphism :
  Database.t -> Atom.t list -> init:Mapping.t -> Mapping.t option

(** [satisfiable db atoms ~init]: does some homomorphism extend [init]? *)
val satisfiable : Database.t -> Atom.t list -> init:Mapping.t -> bool

(** [answers db q]: the evaluation q(D) as a set of partial mappings on the
    head variables. *)
val answers : Database.t -> Query.t -> Mapping.Set.t

(** [decision db q h]: is [h ∈ q(D)]? ([h] must be defined on exactly the head
    variables; otherwise the answer is [false].) *)
val decision : Database.t -> Query.t -> Mapping.t -> bool
