open Relational

(* Reference implementation: direct backtracking over the string-keyed
   representation (Map environments, candidate lists rebuilt per node). Kept
   verbatim as the oracle for the engine-agreement properties and for the
   before/after benchmark; production entry points below run compiled. *)
module Naive = struct
  let iter_homomorphisms db atoms ~init f =
    (* dynamic atom selection: at each step match the atom with the fewest
       candidate facts under the current partial mapping *)
    let rec go h remaining =
      match remaining with
      | [] -> f h
      | _ ->
          let scored =
            List.map (fun a -> (a, Database.candidates db a h)) remaining
          in
          let (best, cands), rest =
            match
              List.stable_sort
                (fun (_, c1) (_, c2) -> List.compare_lengths c1 c2)
                scored
            with
            | x :: rest -> (x, List.map fst rest)
            | [] -> assert false
          in
          List.iter
            (fun fact ->
              match Mapping.matches_fact h best fact with
              | Some h' -> go h' rest
              | None -> ())
            cands
    in
    go init atoms

  let homomorphisms db atoms ~init =
    let out = ref [] in
    iter_homomorphisms db atoms ~init (fun h -> out := h :: !out);
    !out

  exception Found of Mapping.t

  let first_homomorphism db atoms ~init =
    try
      iter_homomorphisms db atoms ~init (fun h -> raise (Found h));
      None
    with Found h -> Some h

  exception Sat

  let satisfiable db atoms ~init =
    try
      iter_homomorphisms db atoms ~init (fun _ -> raise Sat);
      false
    with Sat -> true

  let answers db q =
    let head = Query.head_set q in
    let out = ref Mapping.Set.empty in
    iter_homomorphisms db (Query.body q) ~init:Mapping.empty (fun h ->
        out := Mapping.Set.add (Mapping.restrict head h) !out);
    !out
end

(* Compiled entry points (see Engine): same semantics, interned values and
   slot environments in the hot loop. When WDPT_ENGINE_DOMAINS > 1 these
   inherit the domain-parallel runtime (Engine.Parallel) transitively —
   enumeration order and answer sets are identical to the sequential path,
   so nothing at this level needs to know. *)

let iter_homomorphisms = Engine.iter_homomorphisms
let homomorphisms = Engine.homomorphisms
let first_homomorphism = Engine.first_homomorphism
let satisfiable = Engine.satisfiable

let answers db q =
  Mapping.Set.of_list
    (Engine.distinct_projections db (Query.body q) ~init:Mapping.empty
       ~onto:(Query.head q))

let decision db q h =
  String_set.equal (Mapping.domain h) (Query.head_set q)
  && satisfiable db (Query.body q) ~init:h
