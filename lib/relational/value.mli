(** Constants of the universe [U].

    The paper works with an abstract countably infinite set of constants; we
    realize it as the disjoint union of machine integers and strings, which is
    enough for every construction in the paper (canonical databases need fresh
    constants, which {!fresh} provides). *)

type t =
  | Int of int
  | Str of string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val int : int -> t
val str : string -> t

(** [fresh ~tag ()] returns a constant guaranteed distinct from every constant
    created so far in this process (used to freeze variables in canonical
    databases). *)
val fresh : ?tag:string -> unit -> t

(** [reset_fresh ()] rewinds the global fresh-constant counter. Only for test
    setup: it makes fresh-constant names deterministic per test instead of
    depending on how many tests ran before. Never call it while values from a
    previous epoch are still alive in a database. *)
val reset_fresh : unit -> unit

(** [with_fresh_counter f] runs [f] and restores the counter afterwards, even
    on exceptions — a scoped variant of {!reset_fresh}. *)
val with_fresh_counter : (unit -> 'a) -> 'a

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
