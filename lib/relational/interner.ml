(* Generic intern pools: bijections between hashable values and the dense
   integers 0, 1, 2, ...  Interned ids index flat arrays in the compiled
   evaluation engine, so allocation order must be stable: the id of a value is
   the number of distinct values interned before it. *)

type 'a t = {
  mutable slots : 'a array;
  mutable len : int;
  ids : ('a, int) Hashtbl.t;
}

let create ?(capacity = 64) () =
  { slots = [||]; len = 0; ids = Hashtbl.create (max 1 capacity) }

let size p = p.len

let grow p witness =
  let cap = Array.length p.slots in
  if p.len >= cap then begin
    let cap' = max 8 (2 * cap) in
    let slots' = Array.make cap' witness in
    Array.blit p.slots 0 slots' 0 p.len;
    p.slots <- slots'
  end

let intern p v =
  match Hashtbl.find_opt p.ids v with
  | Some id -> id
  | None ->
      grow p v;
      let id = p.len in
      p.slots.(id) <- v;
      p.len <- p.len + 1;
      Hashtbl.add p.ids v id;
      id

let find p v = Hashtbl.find_opt p.ids v

let get p id =
  if id < 0 || id >= p.len then invalid_arg "Interner.get: id out of range";
  p.slots.(id)

let iter f p =
  for id = 0 to p.len - 1 do
    f id p.slots.(id)
  done
