(* Interned tuples: immutable arrays of dense value ids. The compiled engine
   stores every database fact and every intermediate relation row in this
   form, so comparisons are int-vs-int and never touch the original values. *)

type t = int array

let of_array = Array.copy
let of_list = Array.of_list
let length = Array.length
let get (t : t) i = t.(i)
let to_list = Array.to_list

let equal (a : t) (b : t) =
  a == b
  ||
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let compare (a : t) (b : t) =
  let na = Array.length a and nb = Array.length b in
  if na <> nb then Int.compare na nb
  else
    let rec go i =
      if i >= na then 0
      else
        let c = Int.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let hash (t : t) = Array.fold_left (fun acc v -> (acc * 31) + v + 1) 17 t

let pp ppf t =
  Format.fprintf ppf "⟨%a⟩"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (Array.to_list t)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
