(** Databases: finite sets of facts, with hash indexes per relation and per
    (relation, position, value) for efficient candidate retrieval during
    homomorphism search. *)

type t

val create : unit -> t
val of_list : Fact.t list -> t
val of_atoms : Atom.t list -> t

(** [add db f] inserts a fact (idempotent). *)
val add : t -> Fact.t -> unit

val mem : t -> Fact.t -> bool
val size : t -> int
val facts : t -> Fact.t list
val facts_of : t -> string -> Fact.t list

(** [count_of db rel] is [List.length (facts_of db rel)], read from the
    counted relation cell in O(1). *)
val count_of : t -> string -> int

(** [index_count db rel pos v] is the number of facts of [rel] whose argument
    at [pos] equals [v], read from the counted index cell in O(1). *)
val index_count : t -> string -> int -> Value.t -> int

(** [distinct_count db rel pos] is the number of distinct values occurring at
    argument position [pos] of [rel], maintained incrementally (O(1) read).
    Bounds the image of any variable at that position — the per-variable
    domain statistics the static cost model ({!Analysis.Cost}) reads. *)
val distinct_count : t -> string -> int -> int

(** [|active_domain db|] in O(1). *)
val adom_size : t -> int

(** Arity of [rel]'s stored facts ([None] if the relation is empty). *)
val arity_of : t -> string -> int option

val relations : t -> string list
val schema : t -> Schema.t

(** Monotone modification counter: bumped on every successful {!add}. Lets
    derived structures (e.g. the compiled engine form) detect staleness. *)
val version : t -> int

(** One cache slot for a derived structure, invalidated on every {!add}.
    Extend [cache] with your constructor and check the stored version. *)
type cache = ..

val get_cache : t -> cache option
val set_cache : t -> cache -> unit

(** Active domain: every constant occurring in some fact. *)
val active_domain : t -> Value.Set.t

(** [candidates db a h] returns the facts that atom [a] could match under the
    partial mapping [h], using the most selective available index (any
    position of [a] that is a constant or bound by [h]). *)
val candidates : t -> Atom.t -> Mapping.t -> Fact.t list

(** [matches db a h] extends [h] in all ways that map atom [a] into [db]. *)
val matches : t -> Atom.t -> Mapping.t -> Mapping.t list

val copy : t -> t
val union : t -> t -> t
val pp : Format.formatter -> t -> unit
