(** Databases: finite sets of facts, with hash indexes per relation and per
    (relation, position, value) for efficient candidate retrieval during
    homomorphism search. *)

type t

val create : unit -> t
val of_list : Fact.t list -> t
val of_atoms : Atom.t list -> t

(** [add db f] inserts a fact (idempotent). *)
val add : t -> Fact.t -> unit

val mem : t -> Fact.t -> bool
val size : t -> int
val facts : t -> Fact.t list
val facts_of : t -> string -> Fact.t list

(** [count_of db rel] is [List.length (facts_of db rel)], read from the
    counted relation cell in O(1). *)
val count_of : t -> string -> int

(** [index_count db rel pos v] is the number of facts of [rel] whose argument
    at [pos] equals [v], read from the counted index cell in O(1). *)
val index_count : t -> string -> int -> Value.t -> int

(** [distinct_count db rel pos] is the number of distinct values occurring at
    argument position [pos] of [rel], maintained incrementally (O(1) read).
    Bounds the image of any variable at that position — the per-variable
    domain statistics the static cost model ({!Analysis.Cost}) reads. *)
val distinct_count : t -> string -> int -> int

(** [|active_domain db|] in O(1). *)
val adom_size : t -> int

(** Arity of [rel]'s stored facts ([None] if the relation is empty). *)
val arity_of : t -> string -> int option

val relations : t -> string list
val schema : t -> Schema.t

(** Monotone modification counter: bumped on every successful {!add}. Lets
    derived structures (e.g. the compiled engine form) detect staleness. *)
val version : t -> int

(** [facts_since db v] lists the facts inserted after the database was at
    version [v], in insertion order. [facts_since db 0] replays the whole
    database. This is the catch-up feed for incrementally maintained derived
    structures: a structure stamped with version [v] extends itself with
    exactly these facts instead of rebuilding. O(version - v). *)
val facts_since : t -> int -> Fact.t list

(** One cache slot for a derived structure. The slot survives {!add} — the
    structure is expected to compare its stored version against {!version}
    and catch up via {!facts_since} (the compiled engine form does exactly
    this). Extend [cache] with your constructor. *)
type cache = ..

val get_cache : t -> cache option
val set_cache : t -> cache -> unit

(** Drop the cached derived structure, forcing the next consumer to rebuild
    from scratch (benchmark baseline and differential tests). *)
val clear_cache : t -> unit

(** Active domain: every constant occurring in some fact. *)
val active_domain : t -> Value.Set.t

(** [candidates db a h] returns the facts that atom [a] could match under the
    partial mapping [h], using the most selective available index (any
    position of [a] that is a constant or bound by [h]). *)
val candidates : t -> Atom.t -> Mapping.t -> Fact.t list

(** [matches db a h] extends [h] in all ways that map atom [a] into [db]. *)
val matches : t -> Atom.t -> Mapping.t -> Mapping.t list

val copy : t -> t
val union : t -> t -> t
val pp : Format.formatter -> t -> unit
