(** Databases: finite sets of facts, with hash indexes per relation and per
    (relation, position, value) for efficient candidate retrieval during
    homomorphism search. *)

type t

val create : unit -> t
val of_list : Fact.t list -> t
val of_atoms : Atom.t list -> t

(** [add db f] inserts a fact (idempotent). Re-adding a fact that was
    {!remove}d resurrects it in place: the tombstone is cleared and the live
    counts restored without touching the physical index cells. *)
val add : t -> Fact.t -> unit

(** [remove db f] deletes a live fact (no-op otherwise). Deletion is by
    tombstone: the fact is dropped from the live set and every counted cell's
    live count is decremented, but the physical cell lists keep the fact
    until the next {!compact} (automatic once tombstones outnumber a third of
    the live facts, or explicit). Reads ({!facts_of}, {!candidates}) filter
    tombstones lazily, so in-flight enumerations over previously obtained
    candidate lists keep a consistent snapshot. Between a remove and the next
    compaction, {!active_domain}/{!adom_size} may overapproximate. *)
val remove : t -> Fact.t -> unit

(** [compact db] physically erases tombstoned facts from every index cell and
    recomputes the active domain and distinct-value statistics exactly.
    No-op when there are no tombstones; never changes the live fact set,
    {!version} or {!deletions}. *)
val compact : t -> unit

val mem : t -> Fact.t -> bool
val size : t -> int
val facts : t -> Fact.t list
val facts_of : t -> string -> Fact.t list

(** [count_of db rel] is [List.length (facts_of db rel)], read from the
    counted relation cell in O(1). *)
val count_of : t -> string -> int

(** [index_count db rel pos v] is the number of facts of [rel] whose argument
    at [pos] equals [v], read from the counted index cell in O(1). *)
val index_count : t -> string -> int -> Value.t -> int

(** [distinct_count db rel pos] is the number of distinct values occurring at
    argument position [pos] of [rel], maintained incrementally (O(1) read).
    Bounds the image of any variable at that position — the per-variable
    domain statistics the static cost model ({!Analysis.Cost}) reads. *)
val distinct_count : t -> string -> int -> int

(** [|active_domain db|] in O(1). *)
val adom_size : t -> int

(** Arity of [rel]'s stored facts ([None] if the relation is empty). *)
val arity_of : t -> string -> int option

val relations : t -> string list
val schema : t -> Schema.t

(** Monotone modification counter: bumped on every successful {!add} and
    every successful {!remove}. Lets derived structures (e.g. the compiled
    engine form) detect staleness. *)
val version : t -> int

(** Monotone deletion epoch: bumped on every successful {!remove}, never by
    {!add} or {!compact}. A derived structure that only knows how to ingest
    insertions (the compiled engine form) stamps this alongside {!version}
    and rebuilds instead of extending when the epoch moved. *)
val deletions : t -> int

(** One entry of the modification log: the stamped insertion log and deletion
    log, interleaved in modification order. *)
type change =
  | Add of Fact.t
  | Remove of Fact.t

(** [changes_since db v] lists the log entries recorded after the database
    was at version [v], oldest first. Per fact, the entries of any such
    window strictly alternate [Add]/[Remove] starting from the fact's state
    at version [v] ({!add} only logs when the fact is absent, {!remove} only
    when it is live) — so the net effect on a fact is read off the first and
    last entry alone. Returns [[]] when [v >= version db]. O(version - v). *)
val changes_since : t -> int -> change list

(** [facts_since db v] lists the *net-new* facts since version [v]: facts
    that are live now but were not at [v], in order of first insertion.
    [facts_since db 0] replays the whole live database. When no deletion
    touched the window this is exactly the slice of the insertion log, and
    the catch-up feed for incrementally maintained derived structures: a
    structure stamped with version [v] extends itself with exactly these
    facts instead of rebuilding (sound as long as the {!deletions} epoch did
    not move — net removals are invisible to this function; use
    {!changes_since} to see them). Returns [[]] when [v >= version db],
    including versions *ahead* of the current one (a caller holding a stamp
    from a different database simply gets no catch-up feed, never garbage).
    O(version - v). *)
val facts_since : t -> int -> Fact.t list

(** One cache slot for a derived structure. The slot survives {!add} — the
    structure is expected to compare its stored version against {!version}
    and catch up via {!facts_since} (the compiled engine form does exactly
    this). Extend [cache] with your constructor. *)
type cache = ..

val get_cache : t -> cache option
val set_cache : t -> cache -> unit

(** Drop the cached derived structure, forcing the next consumer to rebuild
    from scratch (benchmark baseline and differential tests). *)
val clear_cache : t -> unit

(** Active domain: every constant occurring in some fact. *)
val active_domain : t -> Value.Set.t

(** [candidates db a h] returns the facts that atom [a] could match under the
    partial mapping [h], using the most selective available index (any
    position of [a] that is a constant or bound by [h]). *)
val candidates : t -> Atom.t -> Mapping.t -> Fact.t list

(** [matches db a h] extends [h] in all ways that map atom [a] into [db]. *)
val matches : t -> Atom.t -> Mapping.t -> Mapping.t list

val copy : t -> t
val union : t -> t -> t
val pp : Format.formatter -> t -> unit
