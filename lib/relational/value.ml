type t =
  | Int of int
  | Str of string

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1

let equal a b = compare a b = 0

let hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Str s -> Hashtbl.hash (1, s)

let int x = Int x
let str s = Str s

let fresh_counter = ref 0

let fresh ?(tag = "c") () =
  incr fresh_counter;
  Str (Printf.sprintf "#%s%d" tag !fresh_counter)

let reset_fresh () = fresh_counter := 0

let with_fresh_counter f =
  let saved = !fresh_counter in
  Fun.protect ~finally:(fun () -> fresh_counter := saved) f

let pp ppf = function
  | Int x -> Format.pp_print_int ppf x
  | Str s -> Format.pp_print_string ppf s

let to_string v = Format.asprintf "%a" pp v

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
