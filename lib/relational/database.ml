type key = {
  k_rel : string;
  k_pos : int;
  k_val : Value.t;
}

module Key = struct
  type t = key

  let equal a b =
    String.equal a.k_rel b.k_rel && a.k_pos = b.k_pos && Value.equal a.k_val b.k_val

  let hash a = Hashtbl.hash (a.k_rel, a.k_pos, Value.hash a.k_val)
end

module Idx = Hashtbl.Make (Key)

(* Counted cells: the length rides along with the fact list so index selection
   is O(1) per bound position instead of a length scan. *)
type cell = {
  mutable c_count : int;
  mutable c_facts : Fact.t list;
}

type cache = ..

type t = {
  mutable all : Fact.Set.t;
  by_rel : (string, cell) Hashtbl.t;
  by_pos : cell Idx.t;
  distinct : (string * int, int ref) Hashtbl.t;
      (* (rel, pos) -> number of distinct values at that position *)
  mutable adom : Value.Set.t;
  mutable adom_count : int;
  mutable version : int;
  mutable log : Fact.t list;
      (* reverse insertion order; length = version. The log is what lets a
         derived structure catch up incrementally: [facts_since] slices it. *)
  mutable cache : cache option;
}

let create () =
  { all = Fact.Set.empty;
    by_rel = Hashtbl.create 16;
    by_pos = Idx.create 64;
    distinct = Hashtbl.create 16;
    adom = Value.Set.empty;
    adom_count = 0;
    version = 0;
    log = [];
    cache = None }

let mem db f = Fact.Set.mem f db.all

let cell_add cell f =
  cell.c_count <- cell.c_count + 1;
  cell.c_facts <- f :: cell.c_facts

let add db f =
  if not (mem db f) then begin
    db.all <- Fact.Set.add f db.all;
    db.version <- db.version + 1;
    db.log <- f :: db.log;
    (* the cache survives: derived structures compare their stored version
       against [version] and catch up via [facts_since] (or rebuild) *)
    let cell =
      match Hashtbl.find_opt db.by_rel (Fact.rel f) with
      | Some c -> c
      | None ->
          let c = { c_count = 0; c_facts = [] } in
          Hashtbl.add db.by_rel (Fact.rel f) c;
          c
    in
    cell_add cell f;
    List.iteri
      (fun i v ->
        let key = { k_rel = Fact.rel f; k_pos = i; k_val = v } in
        let cell =
          match Idx.find_opt db.by_pos key with
          | Some c -> c
          | None ->
              let c = { c_count = 0; c_facts = [] } in
              Idx.add db.by_pos key c;
              (match Hashtbl.find_opt db.distinct (Fact.rel f, i) with
              | Some n -> incr n
              | None -> Hashtbl.add db.distinct (Fact.rel f, i) (ref 1));
              c
        in
        cell_add cell f;
        if not (Value.Set.mem v db.adom) then begin
          db.adom <- Value.Set.add v db.adom;
          db.adom_count <- db.adom_count + 1
        end)
      (Fact.tuple f)
  end

let of_list fs =
  let db = create () in
  List.iter (add db) fs;
  db

let of_atoms atoms = of_list (List.map Atom.to_fact atoms)
let size db = Fact.Set.cardinal db.all
let facts db = Fact.Set.elements db.all

let facts_of db rel =
  match Hashtbl.find_opt db.by_rel rel with
  | Some c -> c.c_facts
  | None -> []

let count_of db rel =
  match Hashtbl.find_opt db.by_rel rel with
  | Some c -> c.c_count
  | None -> 0

let index_count db rel pos v =
  match Idx.find_opt db.by_pos { k_rel = rel; k_pos = pos; k_val = v } with
  | Some c -> c.c_count
  | None -> 0

let relations db = Hashtbl.fold (fun r _ acc -> r :: acc) db.by_rel []

let schema db =
  List.fold_left
    (fun s r ->
      match facts_of db r with
      | [] -> s
      | f :: _ -> Schema.add r (Fact.arity f) s)
    Schema.empty (relations db)

let active_domain db = db.adom
let adom_size db = db.adom_count

let distinct_count db rel pos =
  match Hashtbl.find_opt db.distinct (rel, pos) with
  | Some n -> !n
  | None -> 0

let arity_of db rel =
  match facts_of db rel with [] -> None | f :: _ -> Some (Fact.arity f)

let version db = db.version

let facts_since db v =
  (* the newest [version - v] log entries, oldest first *)
  let rec take n acc l =
    if n <= 0 then acc
    else match l with [] -> acc | f :: rest -> take (n - 1) (f :: acc) rest
  in
  take (db.version - v) [] db.log

let get_cache db = db.cache
let set_cache db c = db.cache <- Some c
let clear_cache db = db.cache <- None

let candidates db a h =
  (* Pick the smallest counted index cell among the bound positions,
     defaulting to the whole relation; counts are stored, so selection costs
     O(arity) lookups and never materializes or measures a list. *)
  let rel = Atom.rel a in
  let best = ref None in
  let consider i v =
    let key = { k_rel = rel; k_pos = i; k_val = v } in
    let cell =
      match Idx.find_opt db.by_pos key with
      | Some c -> c
      | None -> { c_count = 0; c_facts = [] }
    in
    match !best with
    | Some b when b.c_count <= cell.c_count -> ()
    | _ -> best := Some cell
  in
  List.iteri
    (fun i t ->
      match t with
      | Term.Const v -> consider i v
      | Term.Var x -> (
          match Mapping.find x h with
          | Some v -> consider i v
          | None -> ()))
    (Atom.args a);
  match !best with
  | Some cell -> cell.c_facts
  | None -> facts_of db rel

let matches db a h =
  List.filter_map (Mapping.matches_fact h a) (candidates db a h)

let copy db =
  let db' = create () in
  Fact.Set.iter (add db') db.all;
  db'

let union a b =
  let db = copy a in
  Fact.Set.iter (add db) b.all;
  db

let pp ppf db =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Fact.pp)
    (facts db)
