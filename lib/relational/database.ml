type key = {
  k_rel : string;
  k_pos : int;
  k_val : Value.t;
}

module Key = struct
  type t = key

  let equal a b =
    String.equal a.k_rel b.k_rel && a.k_pos = b.k_pos && Value.equal a.k_val b.k_val

  let hash a = Hashtbl.hash (a.k_rel, a.k_pos, Value.hash a.k_val)
end

module Idx = Hashtbl.Make (Key)

(* Counted cells: the live count rides along with the fact list so index
   selection is O(1) per bound position instead of a length scan. After a
   {!remove}, [c_count] is the number of *live* facts while [c_facts] may
   still physically contain tombstoned facts until the next compaction. *)
type cell = {
  mutable c_count : int;
  mutable c_facts : Fact.t list;
}

type change =
  | Add of Fact.t
  | Remove of Fact.t

type cache = ..

type t = {
  mutable all : Fact.Set.t;          (* live facts only *)
  mutable live_count : int;
  by_rel : (string, cell) Hashtbl.t;
  by_pos : cell Idx.t;
  mutable distinct : (string * int, int ref) Hashtbl.t;
      (* (rel, pos) -> number of distinct values with a live fact there *)
  mutable adom : Value.Set.t;
  mutable adom_count : int;
  mutable version : int;
  mutable log : change list;
      (* reverse modification order; length = version. The log is what lets a
         derived structure catch up incrementally: [facts_since] /
         [changes_since] slice it. *)
  mutable deletions : int;           (* deletion epoch: bumped per remove *)
  mutable dead : Fact.Set.t;
      (* tombstones: removed facts still physically present in the cells.
         Invariant: f ∈ dead  ⟹  f sits in every cell it belongs to, so a
         re-add before compaction resurrects by bookkeeping alone. *)
  mutable dead_count : int;
  mutable cache : cache option;
}

let create () =
  { all = Fact.Set.empty;
    live_count = 0;
    by_rel = Hashtbl.create 16;
    by_pos = Idx.create 64;
    distinct = Hashtbl.create 16;
    adom = Value.Set.empty;
    adom_count = 0;
    version = 0;
    log = [];
    deletions = 0;
    dead = Fact.Set.empty;
    dead_count = 0;
    cache = None }

let mem db f = Fact.Set.mem f db.all

let cell_add cell f =
  cell.c_count <- cell.c_count + 1;
  cell.c_facts <- f :: cell.c_facts

let rel_cell db r =
  match Hashtbl.find_opt db.by_rel r with
  | Some c -> c
  | None ->
      let c = { c_count = 0; c_facts = [] } in
      Hashtbl.add db.by_rel r c;
      c

let pos_cell db key =
  match Idx.find_opt db.by_pos key with
  | Some c -> c
  | None ->
      let c = { c_count = 0; c_facts = [] } in
      Idx.add db.by_pos key c;
      c

let bump_distinct db rel pos delta =
  match Hashtbl.find_opt db.distinct (rel, pos) with
  | Some n -> n := !n + delta
  | None -> if delta > 0 then Hashtbl.add db.distinct (rel, pos) (ref delta)

let add db f =
  if not (mem db f) then begin
    db.all <- Fact.Set.add f db.all;
    db.live_count <- db.live_count + 1;
    db.version <- db.version + 1;
    db.log <- Add f :: db.log;
    (* the cache survives: derived structures compare their stored version
       (and deletion epoch) against [version] and catch up via [facts_since]
       (or rebuild) *)
    if Fact.Set.mem f db.dead then begin
      (* Resurrection: the fact is still physically present in every cell it
         belongs to, so restoring the live counts is all that is needed. *)
      db.dead <- Fact.Set.remove f db.dead;
      db.dead_count <- db.dead_count - 1;
      let rc = rel_cell db (Fact.rel f) in
      rc.c_count <- rc.c_count + 1;
      List.iteri
        (fun i v ->
          let cell = pos_cell db { k_rel = Fact.rel f; k_pos = i; k_val = v } in
          cell.c_count <- cell.c_count + 1;
          if cell.c_count = 1 then bump_distinct db (Fact.rel f) i 1;
          if not (Value.Set.mem v db.adom) then begin
            db.adom <- Value.Set.add v db.adom;
            db.adom_count <- db.adom_count + 1
          end)
        (Fact.tuple f)
    end
    else begin
      cell_add (rel_cell db (Fact.rel f)) f;
      List.iteri
        (fun i v ->
          let key = { k_rel = Fact.rel f; k_pos = i; k_val = v } in
          let cell = pos_cell db key in
          if cell.c_count = 0 then bump_distinct db (Fact.rel f) i 1;
          cell_add cell f;
          if not (Value.Set.mem v db.adom) then begin
            db.adom <- Value.Set.add v db.adom;
            db.adom_count <- db.adom_count + 1
          end)
        (Fact.tuple f)
    end
  end

let is_dead db f = Fact.Set.mem f db.dead

let live_facts db l =
  if db.dead_count = 0 then l
  else List.filter (fun f -> not (is_dead db f)) l

let of_list fs =
  let db = create () in
  List.iter (add db) fs;
  db

let of_atoms atoms = of_list (List.map Atom.to_fact atoms)
let size db = db.live_count
let facts db = Fact.Set.elements db.all

let facts_of db rel =
  match Hashtbl.find_opt db.by_rel rel with
  | Some c -> live_facts db c.c_facts
  | None -> []

let count_of db rel =
  match Hashtbl.find_opt db.by_rel rel with
  | Some c -> c.c_count
  | None -> 0

let index_count db rel pos v =
  match Idx.find_opt db.by_pos { k_rel = rel; k_pos = pos; k_val = v } with
  | Some c -> c.c_count
  | None -> 0

let relations db = Hashtbl.fold (fun r _ acc -> r :: acc) db.by_rel []

let schema db =
  List.fold_left
    (fun s r ->
      match facts_of db r with
      | [] -> s
      | f :: _ -> Schema.add r (Fact.arity f) s)
    Schema.empty (relations db)

let active_domain db = db.adom
let adom_size db = db.adom_count

let distinct_count db rel pos =
  match Hashtbl.find_opt db.distinct (rel, pos) with
  | Some n -> !n
  | None -> 0

let arity_of db rel =
  match facts_of db rel with [] -> None | f :: _ -> Some (Fact.arity f)

let version db = db.version
let deletions db = db.deletions

let changes_entries db v =
  (* the newest [version - v] log entries, oldest first *)
  let rec take n acc l =
    if n <= 0 then acc
    else match l with [] -> acc | e :: rest -> take (n - 1) (e :: acc) rest
  in
  take (db.version - v) [] db.log

let changes_since db v = changes_entries db v

let facts_since db v =
  if v >= db.version then []
  else if db.deletions = 0 then
    (* pure-add history: the window is all Add entries *)
    List.filter_map (function Add f -> Some f | Remove _ -> None)
      (changes_entries db v)
  else begin
    (* Net-new facts of the window: per fact, window entries strictly
       alternate Add/Remove starting from its state at version [v] (add only
       logs when the fact is absent, remove only when live). So a fact is
       net-new iff its first window entry is [Add] (absent at [v]) and its
       last is [Add] (live now). Emitted in order of first addition. *)
    let entries = changes_entries db v in
    let first : (Fact.t, change) Hashtbl.t = Hashtbl.create 32 in
    let last : (Fact.t, change) Hashtbl.t = Hashtbl.create 32 in
    let order = ref [] in
    List.iter
      (fun e ->
        let f = match e with Add f | Remove f -> f in
        if not (Hashtbl.mem first f) then begin
          Hashtbl.add first f e;
          order := f :: !order
        end;
        Hashtbl.replace last f e)
      entries;
    List.filter
      (fun f ->
        match (Hashtbl.find first f, Hashtbl.find last f) with
        | Add _, Add _ -> true
        | _ -> false)
      (List.rev !order)
  end

let get_cache db = db.cache
let set_cache db c = db.cache <- Some c
let clear_cache db = db.cache <- None

let compact db =
  if db.dead_count > 0 then begin
    let live f = not (is_dead db f) in
    Hashtbl.iter
      (fun _ c ->
        c.c_facts <- List.filter live c.c_facts;
        c.c_count <- List.length c.c_facts)
      db.by_rel;
    Idx.filter_map_inplace
      (fun _ c ->
        c.c_facts <- List.filter live c.c_facts;
        c.c_count <- List.length c.c_facts;
        if c.c_count = 0 then None else Some c)
      db.by_pos;
    (* recompute adom and distinct exactly from what survived *)
    let distinct = Hashtbl.create 16 in
    Idx.iter
      (fun k c ->
        if c.c_count > 0 then
          match Hashtbl.find_opt distinct (k.k_rel, k.k_pos) with
          | Some n -> incr n
          | None -> Hashtbl.add distinct (k.k_rel, k.k_pos) (ref 1))
      db.by_pos;
    db.distinct <- distinct;
    let adom =
      Fact.Set.fold
        (fun f acc ->
          List.fold_left (fun acc v -> Value.Set.add v acc) acc (Fact.tuple f))
        db.all Value.Set.empty
    in
    db.adom <- adom;
    db.adom_count <- Value.Set.cardinal adom;
    db.dead <- Fact.Set.empty;
    db.dead_count <- 0
  end

(* Auto-compaction threshold: once tombstones outnumber a third of the live
   facts (and there are enough of them to matter) the lazy filters in
   [facts_of]/[candidates] start costing more than one linear sweep. *)
let maybe_compact db =
  if db.dead_count > 32 && db.dead_count * 3 > db.live_count then compact db

let remove db f =
  if mem db f then begin
    db.all <- Fact.Set.remove f db.all;
    db.live_count <- db.live_count - 1;
    db.version <- db.version + 1;
    db.deletions <- db.deletions + 1;
    db.log <- Remove f :: db.log;
    db.dead <- Fact.Set.add f db.dead;
    db.dead_count <- db.dead_count + 1;
    let rc = rel_cell db (Fact.rel f) in
    rc.c_count <- rc.c_count - 1;
    List.iteri
      (fun i v ->
        let key = { k_rel = Fact.rel f; k_pos = i; k_val = v } in
        let cell = pos_cell db key in
        cell.c_count <- cell.c_count - 1;
        if cell.c_count = 0 then bump_distinct db (Fact.rel f) i (-1))
      (Fact.tuple f);
    (* adom is left as an overapproximation until the next compaction *)
    maybe_compact db
  end

let candidates db a h =
  (* Pick the smallest counted index cell among the bound positions,
     defaulting to the whole relation; counts are stored, so selection costs
     O(arity) lookups and never materializes or measures a list. *)
  let rel = Atom.rel a in
  let best = ref None in
  let consider i v =
    let key = { k_rel = rel; k_pos = i; k_val = v } in
    let cell =
      match Idx.find_opt db.by_pos key with
      | Some c -> c
      | None -> { c_count = 0; c_facts = [] }
    in
    match !best with
    | Some b when b.c_count <= cell.c_count -> ()
    | _ -> best := Some cell
  in
  List.iteri
    (fun i t ->
      match t with
      | Term.Const v -> consider i v
      | Term.Var x -> (
          match Mapping.find x h with
          | Some v -> consider i v
          | None -> ()))
    (Atom.args a);
  match !best with
  | Some cell -> live_facts db cell.c_facts
  | None -> facts_of db rel

let matches db a h =
  List.filter_map (Mapping.matches_fact h a) (candidates db a h)

let copy db =
  let db' = create () in
  Fact.Set.iter (add db') db.all;
  db'

let union a b =
  let db = copy a in
  Fact.Set.iter (add db) b.all;
  db

let pp ppf db =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Fact.pp)
    (facts db)
