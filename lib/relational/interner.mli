(** Intern pools mapping hashable values to dense integer ids.

    The compiled evaluation engine stores facts as [int array] tuples whose
    entries are ids from a pool of {!Value.t}; variable names are interned the
    same way into environment slots. Ids are allocated densely in first-intern
    order, so they can index flat arrays directly. Uses structural equality
    and hashing, which coincide with [Value.equal]/[Value.hash]. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

(** [intern p v] returns the id of [v], allocating the next dense id on first
    sight. *)
val intern : 'a t -> 'a -> int

(** [find p v] is the id of [v] if it has been interned. *)
val find : 'a t -> 'a -> int option

(** [get p id] is the value with id [id].
    @raise Invalid_argument if [id] was never allocated. *)
val get : 'a t -> int -> 'a

(** Number of distinct interned values; valid ids are [0 .. size - 1]. *)
val size : 'a t -> int

(** [iter f p] applies [f id v] in id order. *)
val iter : (int -> 'a -> unit) -> 'a t -> unit
