(** Immutable tuples of dense value ids (see {!Interner}).

    The compiled evaluation engine represents facts and relation rows as
    [int array]s over an intern pool, making the hot matching loop pure
    integer comparisons. *)

type t = int array

(** [of_array a] copies [a] (callers may reuse their scratch buffer). *)
val of_array : int array -> t

val of_list : int list -> t
val length : t -> int
val get : t -> int -> int
val to_list : t -> int list
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Hash tables keyed by tuples (used for dedup and hash joins). *)
module Tbl : Hashtbl.S with type key = t
