module M = Map.Make (String)

type t = Value.t M.t

let empty = M.empty
let is_empty = M.is_empty
let singleton x v = M.singleton x v
let add x v h = M.add x v h
let of_list bs = List.fold_left (fun h (x, v) -> M.add x v h) M.empty bs
let find x h = M.find_opt x h
let mem x h = M.mem x h
let bindings h = M.bindings h
let domain h = M.fold (fun x _ acc -> String_set.add x acc) h String_set.empty
let cardinal = M.cardinal

let term x h =
  match M.find_opt x h with
  | Some v -> Term.Const v
  | None -> Term.Var x

let subsumes h h' =
  M.for_all
    (fun x v ->
      match M.find_opt x h' with
      | Some v' -> Value.equal v v'
      | None -> false)
    h

let equal h h' = M.equal Value.equal h h'
let strictly_subsumes h h' = subsumes h h' && not (equal h h')
let compare h h' = M.compare Value.compare h h'

let compatible h h' =
  M.for_all
    (fun x v ->
      match M.find_opt x h' with
      | Some v' -> Value.equal v v'
      | None -> true)
    h

let union h h' =
  M.union
    (fun x v v' ->
      if Value.equal v v' then Some v
      else invalid_arg ("Mapping.union: incompatible on " ^ x))
    h h'

let restrict vars h = M.filter (fun x _ -> String_set.mem x vars) h
let restrict_list xs h = restrict (String_set.of_list xs) h
let apply_atom h a = Atom.apply ~f:(fun x -> term x h) a

let matches_fact h a f =
  if Fact.rel f <> Atom.rel a || Fact.arity f <> Atom.arity a then None
  else
    let rec go i acc args =
      match args with
      | [] -> Some acc
      | t :: rest -> (
          let v = Fact.arg f i in
          match t with
          | Term.Const c -> if Value.equal c v then go (i + 1) acc rest else None
          | Term.Var x -> (
              match M.find_opt x acc with
              | Some v' -> if Value.equal v v' then go (i + 1) acc rest else None
              | None -> go (i + 1) (M.add x v acc) rest))
    in
    go 0 h (Atom.args a)

let pp ppf h =
  let pp_binding ppf (x, v) = Format.fprintf ppf "%s↦%a" x Value.pp v in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_binding)
    (bindings h)

let maximal_elements hs =
  (* A mapping can only be strictly subsumed by one of strictly larger domain
     (equal cardinality + subsumption = equality), so sweep in decreasing
     cardinality and test each candidate only against the already-kept
     mappings of strictly larger domain. Transitivity makes kept-only checks
     sufficient: anything that subsumes a dropped subsumer is itself kept. *)
  let distinct = List.sort_uniq compare hs in
  let by_size_desc =
    List.stable_sort (fun a b -> Int.compare (cardinal b) (cardinal a)) distinct
  in
  let kept = ref [] in
  List.iter
    (fun h ->
      let n = cardinal h in
      if
        not
          (List.exists
             (fun (n', h') -> n' > n && subsumes h h')
             !kept)
      then kept := (n, h) :: !kept)
    by_size_desc;
  (* keep the historical contract: result sorted by [compare] *)
  List.sort compare (List.rev_map snd !kept)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
