(** Compiled evaluation engine.

    Queries are compiled once — values interned to dense ints ({!Interner}),
    facts stored as immutable {!Tuple.t}s, variables assigned slots of a flat
    [int array] environment, atoms lowered to per-position check/slot
    instructions — and then matched by a tight backtracking loop that ranks
    candidate atoms from stored index counts instead of materialized lists.
    The compiled form of a database is cached on the database itself and
    invalidated by [Database.add]; plan cores (instruction selection, slot
    assignment) are additionally cached per atom list, so re-evaluating one
    body under many [~init] bindings compiles once.

    [Mapping.t] appears only at the boundaries: [~init] is interned at
    compile time and solutions are read back out of the slot environment. *)

open Relational

(** A compiled query plan: instructions over a slot environment, bound to the
    compiled form of one database. *)
type t

(** One per-position instruction of an atom's matching sequence: [Check id]
    requires the argument to equal the interned constant [id]; [Slot s] reads
    environment slot [s] when bound and writes it otherwise. *)
type op =
  | Check of int
  | Slot of int

(** [compile db atoms ~init] builds a plan for the homomorphisms of [atoms]
    into [db] extending [init]. *)
val compile : Database.t -> Atom.t list -> init:Mapping.t -> t

(** Number of environment slots (distinct variables occurring in the atoms). *)
val slot_count : t -> int

(** [slot_of p x] is the environment slot of variable [x], if it occurs. *)
val slot_of : t -> string -> int option

(** [value_of p id] resolves an interned value id from the plan's pool. *)
val value_of : t -> int -> Value.t

(** [iter_envs p f] calls [f env] for every satisfying slot assignment. The
    environment is borrowed: it is mutated after [f] returns, so callers must
    copy whatever they keep. Raising inside [f] aborts the enumeration. *)
val iter_envs : t -> (int array -> unit) -> unit

(** [mapping_of_env p env] converts a satisfying environment back to a
    mapping extending the plan's [init]. *)
val mapping_of_env : t -> int array -> Mapping.t

(** Drop-in equivalents of the [Cq.Eval] entry points, running compiled. *)

val iter_homomorphisms :
  Database.t -> Atom.t list -> init:Mapping.t -> (Mapping.t -> unit) -> unit

val homomorphisms : Database.t -> Atom.t list -> init:Mapping.t -> Mapping.t list

val first_homomorphism :
  Database.t -> Atom.t list -> init:Mapping.t -> Mapping.t option

val satisfiable : Database.t -> Atom.t list -> init:Mapping.t -> bool

(** [distinct_projections db atoms ~init ~onto] is the set (no duplicates) of
    restrictions to [onto] of the homomorphisms of [atoms] extending [init].
    Deduplication happens on raw slot tuples, before any [Mapping.t] is
    built. Variables of [onto] bound by [init] but absent from the atoms are
    preserved; unbound absent ones are dropped (restriction semantics). *)
val distinct_projections :
  Database.t -> Atom.t list -> init:Mapping.t -> onto:string list -> Mapping.t list

(** Interned relations: sorted variable arrays over deduplicated id-tuples,
    with hash-based semijoin/join/project. This is the representation the
    Yannakakis passes run on. *)
module Rel : sig
  type t

  val unit : t
  val vars : t -> string list
  val var_set : t -> String_set.t
  val cardinal : t -> int
  val is_empty : t -> bool

  (** [make vars rows] builds a relation (rows deduplicated); [vars] must be
      sorted and each row indexed in that order. *)
  val make : string array -> Tuple.t list -> t

  (** [of_atom db a] is the distinct projections of the facts matching [a]
      onto the sorted variables of [a]. *)
  val of_atom : Database.t -> Atom.t -> t

  val semijoin : t -> t -> t
  val join : t -> t -> t
  val project : String_set.t -> t -> t

  (** Boundary conversion of every row to a [Mapping.t]. *)
  val to_mappings : Database.t -> t -> Mapping.t list
end

(** Structural view of a compiled plan, for static verification
    ({!Analysis.Plan_audit}) and the [explain] CLI. The view is plain data:
    corrupting a copy (tests do) cannot corrupt the plan itself. *)
module Inspect : sig
  type atom_view = {
    a_index : int;  (** position in plan (= source atom list) order *)
    a_atom : Atom.t;  (** the source atom this plan entry compiles *)
    a_rel : string;  (** stored relation name *)
    a_arity : int;  (** stored relation arity *)
    a_index_arity : int;  (** number of per-position indexes *)
    a_rows : int;  (** stored tuple count *)
    a_ops : op array;  (** per-position instructions *)
  }

  type view = {
    i_feasible : bool;
    i_slots : string array;  (** slot -> variable name *)
    i_pool : int;  (** interner pool size; valid ids are [0 .. i_pool-1] *)
    i_env : int array;  (** initial environment (slot -> id, -1 unbound) *)
    i_atoms : atom_view array;  (** empty when infeasible *)
    i_order : int array;
        (** static atom order: indices into [i_atoms], ascending row count *)
    i_compiled_version : int;  (** database version the plan was built at *)
    i_live_version : int;  (** database version at inspection time *)
  }

  (** Snapshot the IR of a compiled plan. *)
  val plan : t -> view
end

(** {2 Checked execution (sanitizer mode)}

    When enabled — [WDPT_ENGINE_CHECKED=1] in the environment, or
    {!set_checked} — every enumeration runs on an instrumented interpreter
    that validates the plan invariants statically (the runtime twin of
    [Analysis.Plan_audit]: slot ranges, interner ids, arity coherence, order,
    staleness), checks each instruction's effect (tuple widths, single-write
    slot discipline, trail bracketing, index counts), and re-verifies every
    reported solution against the stored relations. Same instruction
    selection and enumeration order as the fast path. *)

(** Raised by the instrumented interpreter on any invariant violation. *)
exception Check_failure of string

val set_checked : bool -> unit
val checked_enabled : unit -> bool
