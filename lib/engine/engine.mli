(** Compiled evaluation engine.

    Queries are compiled once — values interned to dense ints ({!Interner}),
    facts stored as immutable {!Tuple.t}s, variables assigned slots of a flat
    [int array] environment, atoms lowered to per-position check/slot
    instructions — and then matched by a tight backtracking loop that ranks
    candidate atoms from stored index counts instead of materialized lists.
    The compiled form of a database is cached on the database itself and
    invalidated by [Database.add]; plan cores (instruction selection, slot
    assignment) are additionally cached per atom list, so re-evaluating one
    body under many [~init] bindings compiles once.

    [Mapping.t] appears only at the boundaries: [~init] is interned at
    compile time and solutions are read back out of the slot environment. *)

open Relational

(** A compiled query plan: instructions over a slot environment, bound to the
    compiled form of one database. *)
type t

(** [compile db atoms ~init] builds a plan for the homomorphisms of [atoms]
    into [db] extending [init]. *)
val compile : Database.t -> Atom.t list -> init:Mapping.t -> t

(** Number of environment slots (distinct variables occurring in the atoms). *)
val slot_count : t -> int

(** [slot_of p x] is the environment slot of variable [x], if it occurs. *)
val slot_of : t -> string -> int option

(** [value_of p id] resolves an interned value id from the plan's pool. *)
val value_of : t -> int -> Value.t

(** [iter_envs p f] calls [f env] for every satisfying slot assignment. The
    environment is borrowed: it is mutated after [f] returns, so callers must
    copy whatever they keep. Raising inside [f] aborts the enumeration. *)
val iter_envs : t -> (int array -> unit) -> unit

(** [mapping_of_env p env] converts a satisfying environment back to a
    mapping extending the plan's [init]. *)
val mapping_of_env : t -> int array -> Mapping.t

(** Drop-in equivalents of the [Cq.Eval] entry points, running compiled. *)

val iter_homomorphisms :
  Database.t -> Atom.t list -> init:Mapping.t -> (Mapping.t -> unit) -> unit

val homomorphisms : Database.t -> Atom.t list -> init:Mapping.t -> Mapping.t list

val first_homomorphism :
  Database.t -> Atom.t list -> init:Mapping.t -> Mapping.t option

val satisfiable : Database.t -> Atom.t list -> init:Mapping.t -> bool

(** [distinct_projections db atoms ~init ~onto] is the set (no duplicates) of
    restrictions to [onto] of the homomorphisms of [atoms] extending [init].
    Deduplication happens on raw slot tuples, before any [Mapping.t] is
    built. Variables of [onto] bound by [init] but absent from the atoms are
    preserved; unbound absent ones are dropped (restriction semantics). *)
val distinct_projections :
  Database.t -> Atom.t list -> init:Mapping.t -> onto:string list -> Mapping.t list

(** Interned relations: sorted variable arrays over deduplicated id-tuples,
    with hash-based semijoin/join/project. This is the representation the
    Yannakakis passes run on. *)
module Rel : sig
  type t

  val unit : t
  val vars : t -> string list
  val var_set : t -> String_set.t
  val cardinal : t -> int
  val is_empty : t -> bool

  (** [make vars rows] builds a relation (rows deduplicated); [vars] must be
      sorted and each row indexed in that order. *)
  val make : string array -> Tuple.t list -> t

  (** [of_atom db a] is the distinct projections of the facts matching [a]
      onto the sorted variables of [a]. *)
  val of_atom : Database.t -> Atom.t -> t

  val semijoin : t -> t -> t
  val join : t -> t -> t
  val project : String_set.t -> t -> t

  (** Boundary conversion of every row to a [Mapping.t]. *)
  val to_mappings : Database.t -> t -> Mapping.t list
end
