(** Compiled evaluation engine.

    Queries are compiled once — values interned to dense ints ({!Interner}),
    facts stored as immutable {!Tuple.t}s, variables assigned slots of a flat
    [int array] environment, atoms lowered to per-position check/slot
    instructions — and then matched by a tight backtracking loop that ranks
    candidate atoms from stored index counts instead of materialized lists.
    The compiled form of a database is cached on the database itself and
    maintained incrementally: [Database.add] appends to the insertion log,
    and the next compile catches the cached form up in place (interned
    tuples and counted index cells are growable arrays with live prefixes)
    instead of rebuilding — extending from version [v] replays exactly
    [Database.facts_since db v], so the extended form is structurally
    identical to a fresh rebuild. Plan cores (instruction selection, slot
    assignment) are additionally cached per atom list, so re-evaluating one
    body under many [~init] bindings compiles once.

    Enumeration can run domain-parallel (see {!Parallel}): the top-level
    candidate row range is partitioned into contiguous chunks drained by a
    pool of OCaml 5 domains, and per-primitive reducers merge chunk results
    in chunk order — which reproduces the sequential enumeration order
    exactly, so output is deterministic regardless of scheduling.

    [Mapping.t] appears only at the boundaries: [~init] is interned at
    compile time and solutions are read back out of the slot environment. *)

open Relational

(** A compiled query plan: instructions over a slot environment, bound to the
    compiled form of one database. *)
type t

(** One per-position instruction of an atom's matching sequence: [Check id]
    requires the argument to equal the interned constant [id]; [Slot s] reads
    environment slot [s] when bound and writes it otherwise. *)
type op =
  | Check of int
  | Slot of int

(** [compile db atoms ~init] builds a plan for the homomorphisms of [atoms]
    into [db] extending [init]. When optimization is enabled (the default,
    see {!set_optimize}) the plan is additionally run through the
    optimization pass pipeline; every pass records a certificate in the
    plan's provenance ({!Inspect.trail}). *)
val compile : Database.t -> Atom.t list -> init:Mapping.t -> t

(** {2 Selectivity scoring}

    The static atom order of every plan sorts by the lexicographic key
    [(ground?, score)]: fully-ground atoms (only [Check] instructions) first,
    then ascending {!selectivity} score. [Analysis.Plan_audit] E005 and the
    checked interpreter verify exactly this invariant. *)

(** [selectivity ~rows ~dcounts ops] is log10 of the estimated candidate rows
    left after the [Check] instructions filter: log10 [rows] minus log10 of
    the distinct count of each checked position (uniformity assumption).
    [neg_infinity] when [rows = 0]. *)
val selectivity : rows:int -> dcounts:int array -> op array -> float

(** [ground ops]: the sequence contains no [Slot] instruction. *)
val ground : op array -> bool

(** The static-order sort key: [(0 if ground else 1, selectivity)]. *)
val order_key : rows:int -> dcounts:int array -> op array -> int * float

(** {2 Optimization passes and translation-validation certificates}

    The pipeline runs five passes over every feasible plan: [constant-fold]
    (init-bound [Slot]s become [Check]s), [dead-instruction] (exact-duplicate
    atoms and stored-row-matched ground atoms are dropped), [dead-slot]
    (untouched slots dropped, survivors renumbered), [check-hoist] (ground
    atoms stable-partitioned to the front of the static order) and
    [selectivity-reorder] (full static-order invariant re-established).
    Every pass emits a {!cert}; [Analysis.Equiv] re-verifies the whole trail
    in O(plan) and rejects the optimized plan ({!Inspect.base} is the
    fallback) if any certificate fails. *)

(** Why a pass dropped an atom: exact duplicate of a kept before-atom, or an
    all-[Check] atom satisfied by the named stored row. *)
type drop =
  | Duplicate_of of int
  | Ground_matched of int

(** Plain-data certificate emitted by each pass: before → after mappings of
    slots and atoms ([-1] = dropped) plus the facts justifying each rewrite.
    Nothing in it is trusted; the checker re-derives everything. *)
type cert = {
  cert_pass : string;
  cert_reorders : bool;
  cert_slot_map : int array;
  cert_atom_map : int array;
  cert_folds : (int * int) array;
  cert_drops : (int * drop) array;
  cert_scores : float array;
}

(** Run the pass pipeline on a plan (no-op on infeasible or already-optimized
    plans). [compile] applies this automatically when enabled; it is exposed
    so benches can time the pipeline in isolation. *)
val optimize : t -> t

(** Toggle the pipeline for subsequent [compile] calls (differential
    testing). Defaults to enabled; [WDPT_ENGINE_OPT=0] disables. *)
val set_optimize : bool -> unit

val optimize_enabled : unit -> bool

(** {2 Verified adaptive re-planning}

    Every completed (uncancelled) enumeration accumulates cheap per-atom
    counters into its plan — probe contexts entered, candidate rows probed,
    rows surviving all checks — exposed as plain data by
    {!Inspect.feedback}. When adaptation is enabled ([WDPT_ENGINE_ADAPT=1]
    or {!set_adapt}) and an atom's observed log10 selectivity drifts more
    than {!drift_threshold} decades above its calibrated estimate (with at
    least {!drift_min_probed} rows of evidence), the engine recalibrates:
    the drift is folded into a per-atom calibration term, the static order
    re-sorted by the calibrated key, and the result cached keyed by the
    source atom list and the stats epoch (store version) it was costed at.
    The next [compile] of the same atom list picks the calibration up —
    entries from an older epoch are evicted, never applied (the E024
    discipline). Every swap emits a {!swap_cert} that [Analysis.Feedback]
    independently re-verifies (E025); an invalid certificate keeps the old
    plan. Calibration only reorders the static atom order — the answer set
    is order-independent, so adaptive and non-adaptive runs agree
    answer-for-answer ([wdpt_fuzz --drift-diff] checks this). *)

val set_adapt : bool -> unit
val adapt_enabled : unit -> bool

(** Drift threshold in log10 decades (default 2.0, clamped to [>= 0.1]):
    re-calibration (and the E022 diagnostic) trigger when the observed
    per-context survival exceeds the calibrated estimate by more than
    this. One-sided — overestimates never force a swap. *)
val set_drift_threshold : float -> unit

val drift_threshold : unit -> float

(** Minimum probed rows before drift evidence is acted on (default 64,
    clamped to [>= 1]). *)
val set_drift_min_probed : int -> unit

val drift_min_probed : unit -> int

(** Plain-data certificate of one adaptive plan swap: enough to recompute
    the calibration from the drift evidence and re-verify the re-sorted
    order, without trusting the loop that produced it. *)
type swap_cert = {
  sw_epoch : int;
      (** stats epoch (store version) the swap was costed at *)
  sw_runs : int;  (** completed runs the evidence covers *)
  sw_drift : (int * float * float) array;
      (** per drifted atom: (index, calibrated estimate, observed log10
          selectivity) — the E022-level evidence justifying the swap *)
  sw_calib : float array;  (** full per-atom calibration after the swap *)
}

(** [replan p]: examine [p]'s accumulated counters; on E022-level drift
    return the recalibrated plan and its certificate, [None] otherwise
    (no evidence, no drift, or infeasible). Pure with respect to the
    adapt cache — [compile] + the commit hook drive the cache itself. *)
val replan : t -> (t * swap_cert) option

(** The cached swap certificate for [p]'s atom list, if an adaptive swap
    has been stored for it on [p]'s compiled store ([None] otherwise) —
    what [Analysis.Feedback] re-verifies as E025. *)
val cached_swap : t -> swap_cert option

(** {2 Batched (vectorized) execution}

    By default the engine executes each compiled instruction over a vector
    of candidate environments at once: the environment vector is columnar
    (one flat [int array] per stage-bound slot, batch-row indexed), checks
    narrow a survivor bitmask in place, and index probes sort/group the
    batch by probe key so counted-cell lookups become sequential runs. The
    pipeline runs the atoms in a fixed order — the pre-computed top-level
    choice, then the static order — which makes slot boundness uniform
    across a batch; enumeration order is the depth-first order of that
    fixed-order recursion, identical at every pool size (chunk-order
    replay), and validated env-for-env against a scalar fixed-order twin
    in checked mode. Top-level candidates are processed in groups of
    {!Parallel.morsel_rows} rows, bounding the columnar footprint.

    [WDPT_ENGINE_BATCH=0] (or {!set_batched}[ false]) falls back to the
    tuple-at-a-time interpreter with dynamic per-node atom selection; the
    two modes produce the same answer multiset, though possibly in a
    different order ([wdpt_fuzz --batch-diff] checks set equality). *)

val set_batched : bool -> unit
val batched_enabled : unit -> bool

(** High-water marks of the batched pipeline's memory consumers, in the
    units the certified resource envelope ({!Analysis.Resource}) is stated
    in. Each mark is the peak of one slice (column/dense scratch) or of one
    group/chunk (replay buffering) — never a cross-domain sum — so a
    per-slice envelope can be checked sound against it directly
    ([measured <= certified], E021 otherwise). Bumped once per slice or
    group, never per row. *)
type batch_stats = {
  bm_column_words : int;
      (** peak columnar scratch words (slot columns, parent pointers, probe
          scratch, survivor mask, candidate arrays) of any one slice *)
  bm_dense_words : int;
      (** peak dense probe-table words (the per-stage count/rows top arrays;
          row arrays alias the counted index) of any one slice *)
  bm_replay_rows : int;
      (** peak buffered environment rows of any one checked-mode morsel
          group or parallel enumeration chunk *)
}

val batch_stats : unit -> batch_stats

(** Reset all marks to 0 (before a measured run). *)
val reset_batch_stats : unit -> unit

(** Number of environment slots (distinct variables occurring in the atoms). *)
val slot_count : t -> int

(** [slot_of p x] is the environment slot of variable [x], if it occurs. *)
val slot_of : t -> string -> int option

(** [value_of p id] resolves an interned value id from the plan's pool. *)
val value_of : t -> int -> Value.t

(** [iter_envs p f] calls [f env] for every satisfying slot assignment. The
    environment is borrowed: it is mutated (or dropped) after [f] returns, so
    callers must copy whatever they keep. Raising inside [f] aborts the
    enumeration. Under a parallel configuration ({!Parallel.set_domains})
    chunks buffer their solutions and [f] is applied on the calling domain
    in chunk order, so the order of calls is identical to the sequential
    enumeration and [f] itself never runs concurrently. *)
val iter_envs : t -> (int array -> unit) -> unit

(** [count_envs p] is the number of satisfying slot assignments. Parallel
    reducer: per-chunk counts, summed. *)
val count_envs : t -> int

(** [sat p]: some satisfying assignment exists. Parallel reducer: the first
    witness on any domain raises a shared atomic cancellation flag; peers
    poll it between top-level candidates and stop early. *)
val sat : t -> bool

(** [mapping_of_env p env] converts a satisfying environment back to a
    mapping extending the plan's [init]. *)
val mapping_of_env : t -> int array -> Mapping.t

(** Drop-in equivalents of the [Cq.Eval] entry points, running compiled. *)

val iter_homomorphisms :
  Database.t -> Atom.t list -> init:Mapping.t -> (Mapping.t -> unit) -> unit

val homomorphisms : Database.t -> Atom.t list -> init:Mapping.t -> Mapping.t list

val first_homomorphism :
  Database.t -> Atom.t list -> init:Mapping.t -> Mapping.t option

val satisfiable : Database.t -> Atom.t list -> init:Mapping.t -> bool

(** [distinct_projections db atoms ~init ~onto] is the set (no duplicates) of
    restrictions to [onto] of the homomorphisms of [atoms] extending [init].
    Deduplication happens on raw slot tuples, before any [Mapping.t] is
    built. Variables of [onto] bound by [init] but absent from the atoms are
    preserved; unbound absent ones are dropped (restriction semantics). *)
val distinct_projections :
  Database.t -> Atom.t list -> init:Mapping.t -> onto:string list -> Mapping.t list

(** [stream_projections db atoms ~init ~onto ~offset ~limit f] emits distinct
    projections in first-seen enumeration order, skipping the first [offset]
    and stopping after [limit] (no cap when [None]); returns the number
    emitted. Pagination without materializing the answer set: enumeration
    runs on the sequential path (early exit is the point) and stops as soon
    as the page is full. *)
val stream_projections :
  Database.t ->
  Atom.t list ->
  init:Mapping.t ->
  onto:string list ->
  offset:int ->
  limit:int option ->
  (Mapping.t -> unit) ->
  int

(** {2 Domain-parallel enumeration}

    The matching loop's top level iterates the candidate rows of one
    statically chosen atom — a pure function of the plan, replicated outside
    the loop — so the row range partitions into contiguous chunks that
    domains drain from a shared atomic counter. Per-primitive reducers merge
    in chunk order (= sequential order). Checked mode composes: every chunk
    runs the instrumented interpreter with the full per-run validation.
    A region falls back to sequential when the pool size is 1, the top-level
    candidate count is under {!Parallel.min_rows}, or a region is already
    running (nested engine calls from an enumeration callback). *)
module Parallel : sig
  (** Set the domain pool size (clamped to [1..64]). 1 = sequential.
      Initialized from [WDPT_ENGINE_DOMAINS]. *)
  val set_domains : int -> unit

  val domains : unit -> int

  (** Minimum top-level candidate rows before a parallel region pays for its
      [Domain.spawn] latency (default 128; tests lower it to exercise the
      parallel path on small instances). *)
  val set_min_rows : int -> unit

  val min_rows : unit -> int

  (** Morsel size: the maximum rows per parallel chunk and the batch group
      size of the vectorized interpreter (default 1024, clamped to
      [1 .. 2^20]). Initialized from [WDPT_ENGINE_MORSEL]. Capping chunk
      size at the morsel fixes the single-huge-chunk skew: one fat
      top-level range now splits into many morsels drained from the shared
      counter instead of [4 × pool] static slices. *)
  val set_morsel_rows : int -> unit

  val morsel_rows : unit -> int

  (** [chunk_size_for nd count]: rows per chunk for a pool of [nd] over
      [count] candidate rows — [ceil (count / (4 * nd))] capped at
      {!morsel_rows}, at least 1. *)
  val chunk_size_for : int -> int -> int

  (** [chunk_bounds count nchunks]: the [nchunks] fixed-stride contiguous
      morsel slices of [0, count) as [(lo, hi)] pairs (uniform stride,
      ragged last chunk) — the exact partition a region uses (and the one
      [Analysis.Par_audit] E011/E016 re-check). *)
  val chunk_bounds : int -> int -> (int * int) array

  (** [nchunks_for nd count = ceil (count / chunk_size_for nd count)]:
      chunks per region for a pool of [nd] over [count] candidate rows. *)
  val nchunks_for : int -> int -> int

  (** {2 Data-race sanitizer}

      When enabled — [WDPT_ENGINE_TSAN=1] in the environment, or
      {!set_race_check} — every parallel region logs its shared-location
      accesses (dispatch counter, error slot, cancel flag, per-chunk result
      cells) into per-chunk event buffers with per-chunk logical clocks, and
      validates after the join that no two unordered conflicting accesses
      occurred: chunks have no happens-before edges between each other (only
      fork and join), so any two accesses to the same non-atomic location
      from different chunks with at least one write constitute a race —
      reported by raising {!Race_failure}. Atomic locations are exempt.
      Logging is deduplicated per (location, access kind, chunk), so the
      overhead is O(distinct locations) per chunk plus one lookup per
      logged access. *)

  val set_race_check : bool -> unit
  val race_check_enabled : unit -> bool

  (** Cumulative sanitizer counters: regions validated, access records
      logged, races found (a found race also raises). *)
  type race_stats = { rs_regions : int; rs_events : int; rs_races : int }

  val race_stats : unit -> race_stats
  val reset_race_stats : unit -> unit

  (** Test-only seeded fault: while enabled, each parallel count/enum chunk
      additionally performs a value-neutral store into a peer chunk's result
      cell — a deliberately corrupted reducer the sanitizer must catch (and
      {!Inspect.par} declares, so [Analysis.Par_audit] E014 flags it too). *)
  val set_fault_injection : bool -> unit

  val fault_injection_enabled : unit -> bool

  (** The partitioning decision for a plan under the current configuration,
      as plain data (reported by [explain] and {!Analysis.Cost}). *)
  type decision = {
    d_domains : int;  (** configured pool size *)
    d_atom : int option;  (** top-level atom (plan index), if any *)
    d_rows : int;  (** top-level candidate rows *)
    d_chunks : int;  (** 1 = sequential *)
    d_chunk_rows : int;  (** estimated rows per chunk *)
    d_reason : string;  (** why parallel / why sequential *)
  }

  val decision : t -> decision
end

(** Interned relations: sorted variable arrays over deduplicated id-tuples,
    with hash-based semijoin/join/project. This is the representation the
    Yannakakis passes run on. *)
module Rel : sig
  type t

  val unit : t
  val vars : t -> string list
  val var_set : t -> String_set.t
  val cardinal : t -> int
  val is_empty : t -> bool

  (** [make vars rows] builds a relation (rows deduplicated); [vars] must be
      sorted and each row indexed in that order. *)
  val make : string array -> Tuple.t list -> t

  (** [of_atom db a] is the distinct projections of the facts matching [a]
      onto the sorted variables of [a]. *)
  val of_atom : Database.t -> Atom.t -> t

  val semijoin : t -> t -> t
  val join : t -> t -> t
  val project : String_set.t -> t -> t

  (** Boundary conversion of every row to a [Mapping.t]. *)
  val to_mappings : Database.t -> t -> Mapping.t list
end

(** Structural view of a compiled plan, for static verification
    ({!Analysis.Plan_audit}) and the [explain] CLI. The view is plain data:
    corrupting a copy (tests do) cannot corrupt the plan itself. *)
module Inspect : sig
  type atom_view = {
    a_index : int;  (** position in plan (= source atom list) order *)
    a_atom : Atom.t;  (** the source atom this plan entry compiles *)
    a_rel : string;  (** stored relation name *)
    a_arity : int;  (** stored relation arity *)
    a_index_arity : int;  (** number of per-position indexes *)
    a_rows : int;  (** stored tuple count *)
    a_dcounts : int array;  (** per position: distinct stored value ids *)
    a_ranges : (int * int) array;
        (** per position: (min, max) stored id, (0, -1) when empty *)
    a_ops : op array;  (** per-position instructions *)
    a_calib : float;
        (** feedback calibration applied to this atom's selectivity score
            (log10 decades); [0.] on fresh or non-adapted plans *)
  }

  type view = {
    i_feasible : bool;
    i_slots : string array;  (** slot -> variable name *)
    i_pool : int;  (** interner pool size; valid ids are [0 .. i_pool-1] *)
    i_env : int array;  (** initial environment (slot -> id, -1 unbound) *)
    i_atoms : atom_view array;  (** empty when infeasible *)
    i_order : int array;
        (** static atom order: indices into [i_atoms], ground atoms first
            then ascending selectivity score (see {!Engine.order_key}) *)
    i_compiled_version : int;  (** database version the plan was built at *)
    i_store_version : int;
        (** version of the compiled store backing the plan: equal to
            [i_compiled_version] when untouched since compilation, ahead of
            it when the store was incrementally extended by later inserts *)
    i_live_version : int;  (** database version at inspection time *)
  }

  (** Snapshot the IR of a compiled plan. *)
  val plan : t -> view

  (** {2 The cardinality-feedback view}

      Plain-data snapshot of the per-atom runtime counters beside the
      static estimates that chose the plan — what [Analysis.Feedback]
      audits (E022–E026) and [explain --drift] prints. All counters are
      zero for a plan that never ran. *)

  type feedback_atom = {
    f_atom : int;  (** plan atom index *)
    f_contexts : int;  (** probe contexts this atom was selected in *)
    f_probed : int;  (** candidate rows probed across those contexts *)
    f_survived : int;  (** rows surviving all checks (matches) *)
    f_rows : int;  (** stored relation rows (sound E026 probe bound) *)
    f_score : float;  (** static selectivity estimate, log10 *)
    f_calib : float;  (** feedback calibration applied on top, log10 *)
  }

  type feedback_view = {
    f_atoms : feedback_atom array;  (** empty when infeasible/atomless *)
    f_runs : int;  (** completed (uncancelled) enumerations folded in *)
    f_top : int option;
        (** the top-level atom the first dynamic selection would choose *)
    f_threshold : float;  (** {!Engine.drift_threshold} in force *)
    f_min_probed : int;  (** {!Engine.drift_min_probed} in force *)
    f_costed_at : int;
        (** stats epoch the plan's calibration was costed at; older than
            [f_store_version] is the E024 stale-epoch shape *)
    f_compiled_version : int;
    f_store_version : int;
    f_live_version : int;
  }

  val feedback : t -> feedback_view

  (** {2 The parallel execution plan}

      Plain-data view of the partitioning decision a parallel region would
      take for this plan under the current configuration, re-derived from
      the same pure functions the runtime uses ({!Parallel.decision},
      {!Parallel.nchunks_for}, {!Parallel.chunk_bounds}) — what
      [Analysis.Par_audit] verifies (E011–E015). *)

  (** How a declared shared location is protected: a hardware-ordered atomic
      cell, or chunk-local state only its owning chunk may write. *)
  type shared_kind =
    | Atomic_cell
    | Chunk_local

  type shared_view = { s_name : string; s_kind : shared_kind }

  (** One shared-state write site of the region: where it writes, what it
      targets, and whether only the owning chunk performs it. *)
  type write_view = { w_site : string; w_target : string; w_owner_only : bool }

  (** One per-primitive reducer: how chunk results merge. [r_ordered]
      primitives have order-sensitive observable output, so their merge must
      be chunk-order-preserving (E012); [r_total] primitives need every
      chunk's full answer set, so they must not cancel peers (E013). *)
  type reducer_view = {
    r_primitive : string;  (** ["enum"] / ["count"] / ["sat"] *)
    r_merge : string;
        (** ["chunk-order-concat"] / ["sum"] / ["first-witness"] *)
    r_ordered : bool;
    r_order_preserving : bool;
    r_total : bool;
    r_cancelling : bool;
  }

  type par_view = {
    pv_domains : int;  (** configured pool size *)
    pv_min_rows : int;  (** parallelism threshold ({!Parallel.min_rows}) *)
    pv_morsel_rows : int;  (** morsel cap ({!Parallel.morsel_rows}); no
            chunk may exceed it (E016) *)
    pv_atom : int option;  (** re-derived top-level atom (plan index) *)
    pv_rows : int;  (** top-level candidate rows *)
    pv_sequential : bool;  (** true when the region falls back to one chunk *)
    pv_reason : string;  (** why parallel / why sequential *)
    pv_chunks : (int * int) array;
        (** the [(lo, hi)] slices; must partition [0, pv_rows) exactly
            (E011). [[|(0, 0)|]] for a rowless plan. *)
    pv_reducers : reducer_view array;
    pv_shared : shared_view array;  (** declared shared-state inventory *)
    pv_writes : write_view array;
        (** every write must target a declared location, and cross-chunk
            writes only atomic ones (E014) *)
    pv_snapshots : (int * int * int) array;
        (** per domain: (compiled, store, live) version triple; all domains
            share one plan so skew is a defect (E015) *)
  }

  val par : t -> par_view

  (** {2 The batched execution layout}

      Plain-data view of the vectorized interpreter's stage pipeline and
      columnar layout for this plan — re-derived from the same pure stage
      compiler the runtime uses, so what [explain] prints is what runs. *)

  (** One pipeline stage: the instruction vector of one atom, split by
      role. [(pos, v)] pairs are argument positions of the atom's stored
      relation. *)
  type batch_stage_view = {
    bv_atom : int;  (** plan atom index this stage matches *)
    bv_checks : (int * int) array;
        (** (pos, interned id): constant equality, including init-bound
            slots folded to constants at stage-compile time *)
    bv_cols : (int * int) array;
        (** (pos, slot): compare against a column bound by an earlier
            stage — these positions form the batched probe key *)
    bv_binds : (int * int) array;
        (** (pos, slot): first occurrence — writes the slot's column *)
    bv_dups : (int * int) array;
        (** (pos, earlier pos): repeated variable within the atom *)
    bv_filter : bool;
        (** no binds: the stage only narrows the survivor mask
            (existence semantics — stored facts are deduplicated) *)
  }

  type batch_view = {
    b_enabled : bool;  (** {!Engine.batched_enabled} at inspection time *)
    b_morsel_rows : int;  (** batch group size ({!Parallel.morsel_rows}) *)
    b_stages : batch_stage_view array;
        (** fixed stage order: top-level choice first, then the static
            order — empty for infeasible or atomless plans *)
    b_columns : (int * string) array;
        (** the columnar environment: (slot, variable name) per
            stage-bound slot, one flat [int array] each at run time *)
    b_groups : int;
        (** morsel groups the top-level candidate range splits into *)
  }

  val batch : t -> batch_view

  (** The optimization trail: one [(view of the plan before the pass,
      certificate)] pair per pass, plus the final view. [([], plan p)] for
      unoptimized plans. *)
  val trail : t -> (view * cert) list * view

  (** The plans before each pass, aligned with [trail]'s stage list (for
      building {!row_matches} probes per stage). *)
  val stage_plans : t -> t list

  (** The unoptimized original of an optimized plan (itself otherwise) —
      the fallback when certificate verification rejects the trail. *)
  val base : t -> t

  (** [row_matches p ~atom ~row]: stored tuple [row] of [atom]'s relation
      satisfies the atom's instructions, which must be all-[Check]. O(arity),
      false on any out-of-range input. Probe for [Ground_matched] claims. *)
  val row_matches : t -> atom:int -> row:int -> bool
end

(** {2 Checked execution (sanitizer mode)}

    When enabled — [WDPT_ENGINE_CHECKED=1] in the environment, or
    {!set_checked} — every enumeration runs on an instrumented interpreter
    that validates the plan invariants statically (the runtime twin of
    [Analysis.Plan_audit]: slot ranges, interner ids, arity coherence, order,
    staleness), checks each instruction's effect (tuple widths, single-write
    slot discipline, trail bracketing, index counts), and re-verifies every
    reported solution against the stored relations. Same instruction
    selection and enumeration order as the fast path. *)

(** Raised by the instrumented interpreter on any invariant violation. *)
exception Check_failure of string

val set_checked : bool -> unit
val checked_enabled : unit -> bool

(** Raised by the data-race sanitizer ({!Parallel.set_race_check} /
    [WDPT_ENGINE_TSAN=1]) when a parallel region performed two unordered
    conflicting accesses to the same non-atomic shared location. *)
exception Race_failure of string

(** {2 Delta evaluation}

    Net change batches read off the database's stamped modification log,
    plus the two scoped-probe primitives incremental view maintenance is
    built from: dirty-range derivation (which (atom, position) probe ranges
    a batch touches — plain data, auditable by [Analysis.Delta_audit]) and
    pivot-constrained enumeration (homomorphisms forced to use at least one
    net-added fact). [Wdpt.Standing] drives both to maintain standing-query
    answers incrementally. *)
module Delta : sig
  (** The net effect of the log window [(from_version, to_version]]: facts
      live now but not at [from_version] ([added]) and facts live at
      [from_version] but not now ([removed]), each in first-touch order. A
      fact inserted and deleted inside the window appears in neither. *)
  type batch = {
    from_version : int;
    to_version : int;
    added : Fact.t list;
    removed : Fact.t list;
  }

  (** [batch db ~since] nets the log window since version [since]. For
      [since >= version db] the batch is empty. O(window). *)
  val batch : Database.t -> since:int -> batch

  val is_empty : batch -> bool

  (** Membership/per-relation view of a batch, built once per refresh. *)
  type index

  val index : batch -> index
  val mem_added : index -> Fact.t -> bool
  val mem_removed : index -> Fact.t -> bool

  (** Net-added facts of a relation, oldest first. *)
  val added_of : index -> string -> Fact.t list

  (** One touched probe range: matching the atom at index [dr_atom] of the
      probed atom list, position [dr_pos] can only have gained or lost
      matches at the listed values. *)
  type dirty_range = {
    dr_atom : int;
    dr_rel : string;
    dr_pos : int;
    dr_values : Value.t list;  (** distinct, ascending *)
  }

  (** [dirty_ranges atoms b]: every (atom, position) range of [atoms] that
      batch [b] touches. Complete by construction: any batch fact unifiable
      with an atom of the list lands in that atom's ranges at every
      position. *)
  val dirty_ranges : Atom.t list -> batch -> dirty_range list

  (** [iter_pivot_homs db atoms ~pivot idx ~init yield]: all homomorphisms
      of [atoms] extending [init] whose atom [pivot] maps onto a net-added
      fact of the batch behind [idx]; the other atoms match against the full
      current database. Ranging [pivot] over the atom list enumerates (a
      superset of) the genuinely new homomorphisms of the pattern, since
      each must use at least one added fact.
      @raise Invalid_argument if [pivot] is out of range. *)
  val iter_pivot_homs :
    Database.t ->
    Atom.t list ->
    pivot:int ->
    index ->
    init:Mapping.t ->
    (Mapping.t -> unit) ->
    unit
end
